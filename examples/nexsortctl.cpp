// nexsortctl: command-line client for the nexsortd daemon
// (docs/SERVICE.md). Speaks `nexsortd-wire-v1` over the daemon's
// unix-domain socket: one JSON request per line, one JSON response back.
//
//   nexsortctl --socket PATH <command> [args]
//
//   ping                     check the daemon is alive (prints the schema)
//   submit [options]         queue a job; prints the job record
//     --kind K               sort | merge | batch_update (default sort)
//     --tenant NAME          tenant to bill the job to (default "default")
//     --priority P           higher dispatches first within the tenant
//     --order SPEC           ordering spec (core/order_spec_parse.h)
//     --input FILE           input document (sort / batch_update base);
//                            read here and sent inline
//     --input-path FILE      same, but the daemon reads it (shared host)
//     --inputs F1,F2,...     merge inputs, read here, merge order
//     --updates FILE         batch_update updates document
//     --output FILE          daemon stages + atomically renames here
//     --stream               sort jobs: daemon drains the pull-based
//                            SortedStream and reports time_to_first_byte_ms
//     --merge-policy P       sort jobs: merge scheduling, planned (default)
//                            or greedy (docs/MERGE_PLANNING.md)
//     --no-dfs-placement     sort jobs: keep final runs on the scratch
//                            free list instead of contiguous extents
//     --print                wait and print the result document to stdout
//     --wait                 block until the job is terminal
//   status --job ID          one job record
//   wait --job ID            block until terminal, print the record
//   cancel --job ID          cancel (queued: immediate; running: next
//                            block boundary)
//   jobs                     every job record the daemon remembers
//   stats                    the nexsortd-stats-v1 document (env, live
//                            sessions, queue, admission, tenants, jobs)
//   shutdown                 ask the daemon to exit cleanly
//   --version / --help
//
// Exit status: 0 ok; 1 transport/daemon error; 3 the awaited job failed
// or was cancelled.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_writer.h"
#include "service/client.h"
#include "service/server.h"

using namespace nexsort;

namespace {

constexpr const char* kVersion = "nexsortctl 1.0.0";

void Usage(FILE* out) {
  std::fprintf(
      out,
      "usage: nexsortctl --socket PATH <command> [args]\n"
      "  ping | jobs | stats | shutdown\n"
      "  submit [--kind sort|merge|batch_update] [--tenant NAME]\n"
      "         [--priority P] [--order SPEC] [--input FILE]\n"
      "         [--input-path FILE] [--inputs F1,F2,...] [--updates FILE]\n"
      "         [--output FILE] [--stream] [--merge-policy planned|greedy]\n"
      "         [--no-dfs-placement] [--print] [--wait]\n"
      "  status --job ID | wait --job ID | cancel --job ID\n");
}

bool ReadFileOrDie(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "nexsortctl: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = std::move(buffer).str();
  return true;
}

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

int RoundTrip(const std::string& socket_path, const std::string& request,
              JsonValue* response) {
  auto client = ServiceClient::Connect(socket_path);
  if (!client.ok()) {
    std::fprintf(stderr, "nexsortctl: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  auto reply = client.value()->Call(request);
  if (!reply.ok()) {
    std::fprintf(stderr, "nexsortctl: %s\n",
                 reply.status().ToString().c_str());
    return 1;
  }
  Status ok = ResponseStatus(reply.value());
  if (!ok.ok()) {
    std::fprintf(stderr, "nexsortctl: daemon: %s\n",
                 ok.ToString().c_str());
    const JsonValue* retry = reply.value().Find("retry_after_ms");
    if (retry != nullptr && retry->is_number()) {
      std::fprintf(stderr, "nexsortctl: retry after %.0f ms\n",
                   retry->number_value());
    }
    return 1;
  }
  *response = std::move(reply).value();
  return 0;
}

/// Re-serialize one job record for human eyes (stable key order).
void PrintJob(const JsonValue& job) {
  std::printf(
      "job %llu  %-12s %-9s tenant=%s priority=%lld",
      static_cast<unsigned long long>(job.GetUint("id")),
      job.GetString("kind", "?").c_str(),
      job.GetString("state", "?").c_str(),
      job.GetString("tenant", "?").c_str(),
      static_cast<long long>(job.GetInt("priority")));
  if (job.GetBool("streamed", false)) {
    const JsonValue* ttfb = job.Find("time_to_first_byte_ms");
    if (ttfb != nullptr && ttfb->is_number()) {
      std::printf("  ttfb=%.1fms", ttfb->number_value());
    }
  }
  std::string error = job.GetString("error");
  if (!error.empty()) std::printf("  error=%s", error.c_str());
  std::printf("\n");
}

int JobExitCode(const JsonValue& job) {
  std::string state = job.GetString("state");
  if (state == "failed" || state == "cancelled") return 3;
  return 0;
}

int SimpleJobOp(const std::string& socket_path, const std::string& op,
                uint64_t job_id, bool exit_by_state) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("op");
  writer.String(op);
  writer.Key("job");
  writer.Uint(job_id);
  writer.EndObject();
  JsonValue response;
  int rc = RoundTrip(socket_path, std::move(writer).Take(), &response);
  if (rc != 0) return rc;
  const JsonValue* job = response.Find("job");
  if (job != nullptr) {
    PrintJob(*job);
    if (exit_by_state) return JobExitCode(*job);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string command;
  std::vector<std::string> rest;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--version") {
      std::printf("%s (wire %s)\n", kVersion,
                  std::string(kWireSchema).c_str());
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage(stdout);
      return 0;
    } else if (command.empty() && arg.rfind("--", 0) != 0) {
      command = arg;
    } else {
      rest.push_back(arg);
    }
  }
  if (socket_path.empty() || command.empty()) {
    Usage(stderr);
    return 2;
  }

  auto rest_value = [&](size_t i) -> const char* {
    if (i + 1 >= rest.size()) {
      Usage(stderr);
      std::exit(2);
    }
    return rest[++i].c_str();
  };
  (void)rest_value;

  if (command == "ping" || command == "jobs" || command == "stats" ||
      command == "shutdown") {
    JsonWriter writer;
    writer.BeginObject();
    writer.Key("op");
    writer.String(command);
    writer.EndObject();
    JsonValue response;
    int rc = RoundTrip(socket_path, std::move(writer).Take(), &response);
    if (rc != 0) return rc;
    if (command == "ping") {
      std::printf("ok (%s)\n", response.GetString("schema", "?").c_str());
    } else if (command == "shutdown") {
      std::printf("daemon stopping\n");
    } else if (command == "stats") {
      const JsonValue* stats = response.Find("stats");
      std::printf("%s\n",
                  stats != nullptr ? stats->ToJsonString().c_str() : "{}");
    } else {
      const JsonValue* jobs = response.Find("jobs");
      if (jobs != nullptr && jobs->is_array()) {
        for (const JsonValue& job : jobs->array_items()) PrintJob(job);
      }
    }
    return 0;
  }

  if (command == "status" || command == "wait" || command == "cancel") {
    uint64_t job_id = 0;
    bool have_id = false;
    for (size_t i = 0; i < rest.size(); ++i) {
      if (rest[i] == "--job" && i + 1 < rest.size()) {
        job_id = std::strtoull(rest[++i].c_str(), nullptr, 10);
        have_id = true;
      }
    }
    if (!have_id) {
      Usage(stderr);
      return 2;
    }
    return SimpleJobOp(socket_path, command, job_id,
                       /*exit_by_state=*/command == "wait");
  }

  if (command != "submit") {
    Usage(stderr);
    return 2;
  }

  std::string kind = "sort";
  std::string tenant;
  long long priority = 0;
  bool have_priority = false;
  std::string order;
  std::string input_text;
  bool have_input_text = false;
  std::string input_path;
  std::vector<std::string> input_texts;
  std::string updates_text;
  bool have_updates = false;
  std::string output_path;
  bool stream = false;
  std::string merge_policy;
  bool dfs_placement = true;
  bool print_result = false;
  bool wait = false;

  for (size_t i = 0; i < rest.size(); ++i) {
    const std::string& arg = rest[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= rest.size()) {
        Usage(stderr);
        std::exit(2);
      }
      return rest[++i].c_str();
    };
    if (arg == "--kind") {
      kind = next();
    } else if (arg == "--tenant") {
      tenant = next();
    } else if (arg == "--priority") {
      priority = std::strtoll(next(), nullptr, 10);
      have_priority = true;
    } else if (arg == "--order") {
      order = next();
    } else if (arg == "--input") {
      if (!ReadFileOrDie(next(), &input_text)) return 1;
      have_input_text = true;
    } else if (arg == "--input-path") {
      input_path = next();
    } else if (arg == "--inputs") {
      for (const std::string& path : SplitCommas(next())) {
        std::string text;
        if (!ReadFileOrDie(path, &text)) return 1;
        input_texts.push_back(std::move(text));
      }
    } else if (arg == "--updates") {
      if (!ReadFileOrDie(next(), &updates_text)) return 1;
      have_updates = true;
    } else if (arg == "--output") {
      output_path = next();
    } else if (arg == "--stream") {
      stream = true;
    } else if (arg == "--merge-policy") {
      merge_policy = next();
      if (merge_policy != "planned" && merge_policy != "greedy") {
        std::fprintf(stderr, "unknown --merge-policy '%s'\n",
                     merge_policy.c_str());
        return 2;
      }
    } else if (arg == "--no-dfs-placement") {
      dfs_placement = false;
    } else if (arg == "--print") {
      print_result = true;
      wait = true;
    } else if (arg == "--wait") {
      wait = true;
    } else {
      Usage(stderr);
      return 2;
    }
  }

  JsonWriter writer;
  writer.BeginObject();
  writer.Key("op");
  writer.String("submit");
  writer.Key("kind");
  writer.String(kind);
  if (!tenant.empty()) {
    writer.Key("tenant");
    writer.String(tenant);
  }
  if (have_priority) {
    writer.Key("priority");
    writer.Int(priority);
  }
  if (!order.empty()) {
    writer.Key("order");
    writer.String(order);
  }
  if (have_input_text) {
    writer.Key("input_text");
    writer.String(input_text);
  }
  if (!input_path.empty()) {
    writer.Key("input_path");
    writer.String(input_path);
  }
  if (!input_texts.empty()) {
    writer.Key("input_texts");
    writer.BeginArray();
    for (const std::string& text : input_texts) writer.String(text);
    writer.EndArray();
  }
  if (have_updates) {
    writer.Key("updates_text");
    writer.String(updates_text);
  }
  if (!output_path.empty()) {
    writer.Key("output");
    writer.String(output_path);
  }
  if (!merge_policy.empty()) {
    writer.Key("merge_policy");
    writer.String(merge_policy);
  }
  if (!dfs_placement) {
    writer.Key("dfs_placement");
    writer.Bool(false);
  }
  if (stream) {
    writer.Key("stream");
    writer.Bool(true);
  }
  if (print_result) {
    writer.Key("return_output");
    writer.Bool(true);
  }
  if (wait) {
    writer.Key("wait");
    writer.Bool(true);
  }
  writer.EndObject();

  JsonValue response;
  int rc = RoundTrip(socket_path, std::move(writer).Take(), &response);
  if (rc != 0) return rc;
  const JsonValue* job = response.Find("job");
  if (job == nullptr) {
    std::fprintf(stderr, "nexsortctl: malformed response\n");
    return 1;
  }
  if (print_result) {
    const JsonValue* output = response.Find("output");
    if (output != nullptr && output->is_string()) {
      std::fwrite(output->string_value().data(), 1,
                  output->string_value().size(), stdout);
      return JobExitCode(*job);
    }
  }
  PrintJob(*job);
  return wait ? JobExitCode(*job) : 0;
}
