// Quickstart: sort a small XML document with NEXSORT.
//
//   build/examples/quickstart
//
// Walks through the minimal public-API surface: a SortEnv (working
// storage plus the paper's memory budget M behind one handle), an
// OrderSpec (the sorting criterion), and NexSorter::Sort from a byte
// source to a byte sink.
#include <cstdio>

#include "core/nexsort.h"
#include "env/sort_env.h"

using namespace nexsort;

int main() {
  // An unsorted product catalog: categories ordered arbitrarily, products
  // within them ordered arbitrarily.
  const std::string catalog =
      "<catalog>"
      "<category name=\"tools\">"
      "<product sku=\"930\"><title>wrench</title></product>"
      "<product sku=\"112\"><title>hammer</title></product>"
      "</category>"
      "<category name=\"garden\">"
      "<product sku=\"417\"><title>trowel</title></product>"
      "<product sku=\"208\"><title>hose</title></product>"
      "</category>"
      "</catalog>";

  // Ordering criterion: categories by their name attribute, products by
  // numeric SKU. Rules are matched per element tag; the first match wins.
  OrderSpec order;
  OrderRule product;
  product.element = "product";
  product.source = KeySource::kAttribute;
  product.argument = "sku";
  product.numeric = true;
  order.AddRule(product);
  OrderRule category;
  category.element = "category";
  category.source = KeySource::kAttribute;
  category.argument = "name";
  order.AddRule(category);

  // The execution environment: working storage plus the memory cap
  // (M = 32 blocks of 4 KiB) behind one handle. The default in-memory
  // device counts I/Os exactly like a real disk would; add .File(path)
  // for file-backed runs.
  auto env_or = SortEnvBuilder().BlockSize(4096).MemoryBlocks(32).Build();
  if (!env_or.ok()) {
    std::fprintf(stderr, "env failed: %s\n",
                 env_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<SortEnv> env = std::move(env_or).value();

  NexSortOptions options;
  options.order = order;
  NexSorter sorter(env.get(), options);

  StringByteSource input(catalog);
  std::string sorted;
  StringByteSink output(&sorted);
  Status status = sorter.Sort(&input, &output);
  if (!status.ok()) {
    std::fprintf(stderr, "sort failed: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("input:\n%s\n\nsorted:\n%s\n\n", catalog.c_str(),
              sorted.c_str());
  const NexSortStats& stats = sorter.stats();
  std::printf("elements: %llu, max fan-out k: %llu, subtree sorts: %llu\n",
              static_cast<unsigned long long>(stats.scan.elements),
              static_cast<unsigned long long>(stats.scan.max_fanout),
              static_cast<unsigned long long>(stats.subtree_sorts));
  std::printf("block I/Os: %llu\n",
              static_cast<unsigned long long>(
                  env->physical_device()->stats().total()));
  return 0;
}
