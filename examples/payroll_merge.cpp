// The paper's running example (Example 1.1 / Figure 1): merging a
// personnel document with a payroll document.
//
//   build/examples/payroll_merge
//
// Both documents are NEXSORT-sorted under the same criterion (region and
// branch by name, employee by ID), then combined in a single pass with
// StructuralMerge — the XML analogue of sort-merge join. Matching
// employees end up with both their personal and salary information, and
// regions/branches appearing in only one document are preserved (outer
// join).
#include <cstdio>

#include "core/nexsort.h"
#include "env/sort_env.h"
#include "merge/structural_merge.h"

using namespace nexsort;

namespace {

// D1 and D2 from Figure 1 of the paper.
const char kPersonnel[] =
    "<company>"
    "<region name=\"NE\"></region>"
    "<region name=\"AC\">"
    "<branch name=\"Durham\">"
    "<employee ID=\"454\"></employee>"
    "<employee ID=\"323\"><name>Smith</name><phone>5552345</phone>"
    "</employee>"
    "</branch>"
    "<branch name=\"Atlanta\"></branch>"
    "</region>"
    "</company>";

const char kPayroll[] =
    "<company>"
    "<region name=\"NW\"></region>"
    "<region name=\"AC\">"
    "<branch name=\"Durham\">"
    "<employee ID=\"844\"></employee>"
    "<employee ID=\"323\"><salary>45000</salary><bonus>5000</bonus>"
    "</employee>"
    "</branch>"
    "<branch name=\"Miami\"></branch>"
    "</region>"
    "</company>";

OrderSpec MakeSpec() {
  OrderSpec spec;
  OrderRule employee;
  employee.element = "employee";
  employee.source = KeySource::kAttribute;
  employee.argument = "ID";
  spec.AddRule(employee);
  OrderRule by_name;  // region and branch both key on name
  by_name.element = "*";
  by_name.source = KeySource::kAttribute;
  by_name.argument = "name";
  spec.AddRule(by_name);
  return spec;
}

bool Sort(const std::string& xml, const OrderSpec& spec, std::string* out) {
  auto env_or = SortEnvBuilder().BlockSize(4096).MemoryBlocks(32).Build();
  if (!env_or.ok()) {
    std::fprintf(stderr, "env failed: %s\n",
                 env_or.status().ToString().c_str());
    return false;
  }
  std::unique_ptr<SortEnv> env = std::move(env_or).value();
  NexSortOptions options;
  options.order = spec;
  NexSorter sorter(env.get(), options);
  StringByteSource source(xml);
  StringByteSink sink(out);
  Status status = sorter.Sort(&source, &sink);
  if (!status.ok()) {
    std::fprintf(stderr, "sort failed: %s\n", status.ToString().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main() {
  OrderSpec spec = MakeSpec();

  // Step 1: sort both documents under the shared criterion.
  std::string personnel_sorted;
  std::string payroll_sorted;
  if (!Sort(kPersonnel, spec, &personnel_sorted) ||
      !Sort(kPayroll, spec, &payroll_sorted)) {
    return 1;
  }
  std::printf("personnel (sorted):\n%s\n\n", personnel_sorted.c_str());
  std::printf("payroll (sorted):\n%s\n\n", payroll_sorted.c_str());

  // Step 2: one-pass structural merge.
  MergeOptions merge_options;
  merge_options.order = spec;
  StringByteSource left(personnel_sorted);
  StringByteSource right(payroll_sorted);
  std::string merged;
  StringByteSink sink(&merged);
  MergeStats stats;
  Status status = StructuralMerge(&left, &right, &sink, merge_options, &stats);
  if (!status.ok()) {
    std::fprintf(stderr, "merge failed: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("merged (Figure 1, bottom):\n%s\n\n", merged.c_str());
  std::printf("matched elements: %llu, personnel-only: %llu, "
              "payroll-only: %llu\n",
              static_cast<unsigned long long>(stats.matched_elements),
              static_cast<unsigned long long>(stats.left_only),
              static_cast<unsigned long long>(stats.right_only));
  return 0;
}
