// xmldiff: compute an update batch between two XML documents — the
// command-line face of StructuralDiff. Inputs are NEXSORT-sorted first, so
// unsorted documents are fine; the emitted batch applies with
// `xmlmerge --updates base.xml batch.xml out.xml`.
//
//   xmldiff [options] <base.xml> <target.xml> <batch.xml>
//
//   --by-attr NAME   element identity attribute (default: id)
//   --numeric        compare keys numerically
//   --order SPEC     full ordering spec (overrides --by-attr)
//   --memory-mb M    internal memory budget in MiB (default 64)
//   --block-kb B     block size in KiB (default 64)
//   --stats          print change counts
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/nexsort.h"
#include "core/order_spec_parse.h"
#include "env/sort_env.h"
#include "merge/structural_diff.h"

using namespace nexsort;

namespace {

class FileSource final : public ByteSource {
 public:
  explicit FileSource(FILE* file) : file_(file) {}
  Status Read(char* buf, size_t n, size_t* out) override {
    *out = std::fread(buf, 1, n, file_);
    if (*out < n && std::ferror(file_)) return Status::IOError("read error");
    return Status::OK();
  }

 private:
  FILE* file_;
};

class FileSink final : public ByteSink {
 public:
  explicit FileSink(FILE* file) : file_(file) {}
  Status Append(std::string_view data) override {
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return Status::IOError("write error");
    }
    return Status::OK();
  }

 private:
  FILE* file_;
};

void Usage() {
  std::fprintf(stderr,
               "usage: xmldiff [--by-attr NAME] [--numeric] [--order SPEC]\n"
               "               [--memory-mb M] [--block-kb B] [--stats]\n"
               "               <base.xml> <target.xml> <batch.xml>\n");
  std::exit(2);
}

bool SortFile(const std::string& path, const OrderSpec& spec,
              size_t block_size, uint64_t memory_blocks,
              std::string* sorted_path) {
  FILE* input = std::fopen(path.c_str(), "rb");
  if (input == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  *sorted_path = path + ".sorted.tmp";
  FILE* output = std::fopen(sorted_path->c_str(), "wb");
  if (output == nullptr) {
    std::fclose(input);
    return false;
  }
  std::string work = *sorted_path + ".work";
  auto env_or = SortEnvBuilder()
                    .BlockSize(block_size)
                    .MemoryBlocks(memory_blocks)
                    .File(work)
                    .Build();
  if (!env_or.ok()) {
    std::fclose(input);
    std::fclose(output);
    return false;
  }
  std::unique_ptr<SortEnv> env = std::move(env_or).value();
  NexSortOptions options;
  options.order = spec;
  NexSorter sorter(env.get(), options);
  FileSource source(input);
  FileSink sink(output);
  Status st = sorter.Sort(&source, &sink);
  std::fclose(input);
  std::fclose(output);
  std::remove(work.c_str());
  if (!st.ok()) {
    std::fprintf(stderr, "sorting %s failed: %s\n", path.c_str(),
                 st.ToString().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  OrderRule rule;
  rule.element = "*";
  rule.source = KeySource::kAttribute;
  rule.argument = "id";
  std::string order_text;
  bool show_stats = false;
  uint64_t memory_mb = 64;
  uint64_t block_kb = 64;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage();
      return argv[++i];
    };
    if (arg == "--by-attr") rule.argument = next();
    else if (arg == "--numeric") rule.numeric = true;
    else if (arg == "--order") order_text = next();
    else if (arg == "--memory-mb") memory_mb = std::strtoull(next(), nullptr, 10);
    else if (arg == "--block-kb") block_kb = std::strtoull(next(), nullptr, 10);
    else if (arg == "--stats") show_stats = true;
    else if (arg.rfind("--", 0) == 0) Usage();
    else paths.push_back(arg);
  }
  if (paths.size() != 3) Usage();

  OrderSpec spec;
  if (!order_text.empty()) {
    auto parsed = ParseOrderSpec(order_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 2;
    }
    spec = *parsed;
  } else {
    spec.AddRule(rule);
  }

  size_t block_size = static_cast<size_t>(block_kb) * 1024;
  uint64_t memory_blocks = memory_mb * 1024 * 1024 / block_size;
  if (memory_blocks < 8) {
    std::fprintf(stderr, "memory budget too small\n");
    return 2;
  }

  std::string base_sorted;
  std::string target_sorted;
  if (!SortFile(paths[0], spec, block_size, memory_blocks, &base_sorted) ||
      !SortFile(paths[1], spec, block_size, memory_blocks, &target_sorted)) {
    return 1;
  }

  FILE* base = std::fopen(base_sorted.c_str(), "rb");
  FILE* target = std::fopen(target_sorted.c_str(), "rb");
  FILE* batch = std::fopen(paths[2].c_str(), "wb");
  if (base == nullptr || target == nullptr || batch == nullptr) {
    std::fprintf(stderr, "cannot open working files\n");
    return 1;
  }
  FileSource base_source(base);
  FileSource target_source(target);
  FileSink batch_sink(batch);
  DiffOptions options;
  options.order = spec;
  DiffStats stats;
  Status st =
      StructuralDiff(&base_source, &target_source, &batch_sink, options,
                     &stats);
  std::fclose(base);
  std::fclose(target);
  std::fclose(batch);
  std::remove(base_sorted.c_str());
  std::remove(target_sorted.c_str());
  if (!st.ok()) {
    std::fprintf(stderr, "diff failed: %s\n", st.ToString().c_str());
    return 1;
  }
  if (show_stats) {
    std::fprintf(stderr,
                 "inserted %llu, deleted %llu, replaced %llu, unchanged "
                 "%llu, descended %llu\n",
                 static_cast<unsigned long long>(stats.inserted),
                 static_cast<unsigned long long>(stats.deleted),
                 static_cast<unsigned long long>(stats.replaced),
                 static_cast<unsigned long long>(stats.unchanged),
                 static_cast<unsigned long long>(stats.descended));
  }
  // Exit code 1 when differences exist mirrors diff(1)'s convention.
  return (stats.inserted + stats.deleted + stats.replaced) > 0 ? 1 : 0;
}
