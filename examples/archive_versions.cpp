// XML archiving (the paper's related work: Buneman et al. merge new
// versions of a scientific document into an archive with Nested Merge,
// "which needs to sort the input documents at every level" — the paper
// positions NEXSORT as the scalable sort underneath). This example sorts
// three versions of a dataset and folds them into one archive document in
// a single simultaneous pass.
//
//   build/examples/archive_versions
#include <cstdio>
#include <memory>

#include "core/nexsort.h"
#include "env/sort_env.h"
#include "merge/structural_merge.h"

using namespace nexsort;

namespace {

OrderSpec ArchiveSpec() {
  OrderSpec spec;
  OrderRule rule;
  rule.element = "*";
  rule.source = KeySource::kAttribute;
  rule.argument = "id";
  spec.AddRule(rule);
  return spec;
}

bool Sort(const std::string& xml, std::string* out) {
  auto env_or = SortEnvBuilder().BlockSize(4096).MemoryBlocks(32).Build();
  if (!env_or.ok()) {
    std::fprintf(stderr, "env failed: %s\n",
                 env_or.status().ToString().c_str());
    return false;
  }
  std::unique_ptr<SortEnv> env = std::move(env_or).value();
  NexSortOptions options;
  options.order = ArchiveSpec();
  NexSorter sorter(env.get(), options);
  StringByteSource source(xml);
  StringByteSink sink(out);
  Status status = sorter.Sort(&source, &sink);
  if (!status.ok()) {
    std::fprintf(stderr, "sort failed: %s\n", status.ToString().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main() {
  // Three snapshots of a measurement dataset. Each version adds stations
  // or readings; overlapping readings appear in several versions (the
  // oldest version's attributes win in the archive).
  const std::vector<std::string> versions = {
      "<observations>"
      "<station id=\"S2\"><reading id=\"r1\" temp=\"18.2\"/></station>"
      "<station id=\"S1\"><reading id=\"r1\" temp=\"21.0\"/></station>"
      "</observations>",

      "<observations>"
      "<station id=\"S1\">"
      "<reading id=\"r2\" temp=\"20.4\"/><reading id=\"r1\" temp=\"21.9\"/>"
      "</station>"
      "</observations>",

      "<observations>"
      "<station id=\"S3\"><reading id=\"r1\" temp=\"15.5\"/></station>"
      "<station id=\"S1\"><reading id=\"r3\" temp=\"19.7\"/></station>"
      "</observations>",
  };

  std::vector<std::string> sorted(versions.size());
  for (size_t i = 0; i < versions.size(); ++i) {
    if (!Sort(versions[i], &sorted[i])) return 1;
    std::printf("version %zu (sorted):\n%s\n\n", i + 1, sorted[i].c_str());
  }

  std::vector<std::unique_ptr<StringByteSource>> owned;
  std::vector<ByteSource*> inputs;
  for (const std::string& doc : sorted) {
    owned.push_back(std::make_unique<StringByteSource>(doc));
    inputs.push_back(owned.back().get());
  }
  MergeOptions options;
  options.order = ArchiveSpec();
  std::string archive;
  StringByteSink sink(&archive);
  MergeStats stats;
  Status status = StructuralMergeMany(inputs, &sink, options, &stats);
  if (!status.ok()) {
    std::fprintf(stderr, "merge failed: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("archive (one pass over all versions):\n%s\n\n",
              archive.c_str());
  std::printf("matched across versions: %llu, single-version elements: %llu\n",
              static_cast<unsigned long long>(stats.matched_elements),
              static_cast<unsigned long long>(stats.left_only));
  return 0;
}
