// Depth-limited sorting (paper Section 3.2): "useful under conditions
// where sorting XML from head to toe would be overkill... a user may know
// a depth below which no overlap of information is possible."
//
//   build/examples/depth_limited
//
// Sorts a feed of articles by date at levels 1-2 while leaving each
// article's internal structure (paragraph order!) untouched.
#include <cstdio>

#include "core/nexsort.h"
#include "env/sort_env.h"

using namespace nexsort;

namespace {

std::string SortWithDepthLimit(const std::string& xml, int depth_limit) {
  auto env_or = SortEnvBuilder().BlockSize(4096).MemoryBlocks(32).Build();
  if (!env_or.ok()) {
    std::fprintf(stderr, "env failed: %s\n",
                 env_or.status().ToString().c_str());
    std::exit(1);
  }
  std::unique_ptr<SortEnv> env = std::move(env_or).value();
  NexSortOptions options;
  OrderRule rule;
  rule.element = "*";
  rule.source = KeySource::kAttribute;
  rule.argument = "date";
  options.order.AddRule(rule);
  options.depth_limit = depth_limit;
  NexSorter sorter(env.get(), options);
  StringByteSource source(xml);
  std::string out;
  StringByteSink sink(&out);
  Status status = sorter.Sort(&source, &sink);
  if (!status.ok()) {
    std::fprintf(stderr, "sort failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
  return out;
}

}  // namespace

int main() {
  // Paragraph order inside an article is meaningful and must survive; the
  // paragraphs deliberately carry date attributes that would reorder them
  // under a head-to-toe sort.
  const std::string feed =
      "<feed>"
      "<article date=\"2004-03-02\">"
      "<p date=\"zz\">It was a dark and stormy night.</p>"
      "<p date=\"aa\">Suddenly, a shot rang out.</p>"
      "</article>"
      "<article date=\"2004-01-15\">"
      "<p date=\"9\">Second paragraph written first.</p>"
      "<p date=\"1\">First paragraph written second.</p>"
      "</article>"
      "</feed>";

  std::string depth_limited = SortWithDepthLimit(feed, /*depth_limit=*/1);
  std::string head_to_toe = SortWithDepthLimit(feed, /*depth_limit=*/0);

  std::printf("input:\n%s\n\n", feed.c_str());
  std::printf("depth limit 1 (articles ordered, paragraphs preserved):\n%s\n\n",
              depth_limited.c_str());
  std::printf("head to toe (paragraphs reordered too — not what an author "
              "wants):\n%s\n",
              head_to_toe.c_str());
  return 0;
}
