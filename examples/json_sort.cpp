// Sorting nested data that is not XML (paper Section 6: "our results apply
// to any type of nested data in general"): JSON documents sorted in
// external memory through the element-tree encoding.
//
//   build/examples/json_sort
#include <cstdio>

#include "env/sort_env.h"
#include "nested/json.h"

using namespace nexsort;

int main() {
  // An API response with members in arrival order and records unsorted.
  const std::string json = R"({
    "total": 3,
    "items": [
      {"id": 214, "name": "osmium"},
      {"id": 7,   "name": "argon"},
      {"id": 92,  "name": "radon"}
    ],
    "cursor": null,
    "aggregates": {"sum": 313, "max": 214, "count": 3}
  })";

  auto env_or = SortEnvBuilder().BlockSize(4096).MemoryBlocks(32).Build();
  if (!env_or.ok()) {
    std::fprintf(stderr, "env failed: %s\n",
                 env_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<SortEnv> env = std::move(env_or).value();

  JsonSortOptions options;
  options.sort_object_members = true;   // canonicalize member order
  options.sort_arrays_by = "id";        // order records by their id member
  options.numeric_array_keys = true;

  JsonSorter sorter(env.get(), options);
  StringByteSource input(json);
  std::string sorted;
  StringByteSink output(&sorted);
  Status status = sorter.Sort(&input, &output);
  if (!status.ok()) {
    std::fprintf(stderr, "sort failed: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("input:\n%s\n\nsorted (canonical member order, items by id):\n"
              "%s\n\n",
              json.c_str(), sorted.c_str());
  std::printf("values: %llu (objects %llu, arrays %llu); "
              "underlying NEXSORT subtree sorts: %llu\n",
              static_cast<unsigned long long>(sorter.stats().values),
              static_cast<unsigned long long>(sorter.stats().objects),
              static_cast<unsigned long long>(sorter.stats().arrays),
              static_cast<unsigned long long>(
                  sorter.stats().sort.subtree_sorts));
  return 0;
}
