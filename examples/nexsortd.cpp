// nexsortd: the multi-tenant sort daemon (docs/SERVICE.md). One shared
// SortEnv, a fixed executor pool, weighted-fair scheduling with admission
// control, all behind a unix-domain socket speaking `nexsortd-wire-v1`
// (one JSON request/response per line; drive it with nexsortctl).
//
//   nexsortd --socket PATH [options]
//
//   --socket PATH         unix-domain socket to listen on (required)
//   --block-kb B          block size in KiB (default 64)
//   --memory-mb M         shared internal-memory budget in MiB (default 64)
//   --executors N         concurrent jobs; each gets an equal deterministic
//                         share of the budget (default 2)
//   --queue-depth N       backlog bound before submissions are rejected
//                         with a retry_after_ms hint (default 64)
//   --retry-after-ms N    the hint handed back on rejection (default 50)
//   --cache-blocks N      shared buffer-pool frames over the working
//                         device (0 = off); counted against --memory-mb
//   --threads N           worker threads per job for partitioned spill
//                         sorts (double-buffering is always off in the
//                         daemon so jobs stay inside their grants)
//   --scratch-dir DIR     working device + staged outputs live here under
//                         crash-safe scoped names; orphans of crashed
//                         prior instances are swept at startup
//   --tenant SPEC         quota override, name:weight:inflight[:bytes],
//                         repeatable (e.g. batch:0.5:1:8388608)
//   --default-weight W    default tenant weight (default 1.0)
//   --default-inflight N  default per-tenant concurrent-job cap (default 2)
//   --timeline-out FILE   stream env gauges as nexsort-timeline-v1 JSONL
//   --sample-interval-ms N sampler cadence (default 10 when --timeline-out
//                         is given, else off)
//   --version / --help
//
// Shutdown: SIGTERM/SIGINT or the wire `shutdown` op. Either way the
// daemon stops accepting, cancels queued and in-flight jobs at the next
// block boundary, joins the executors, flushes the timeline sink, removes
// the socket file, and exits 0.
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "env/sort_env.h"
#include "obs/json_writer.h"
#include "obs/telemetry_hub.h"
#include "service/server.h"
#include "service/service.h"

using namespace nexsort;

namespace {

constexpr const char* kVersion = "nexsortd 1.0.0";

// Self-pipe: the only async-signal-safe way to get a signal into the
// blocking main thread. The handler writes one byte; main reads it.
int g_signal_pipe[2] = {-1, -1};

extern "C" void OnSignal(int /*signo*/) {
  char byte = 's';
  ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

void Usage(FILE* out) {
  std::fprintf(
      out,
      "usage: nexsortd --socket PATH [--block-kb B] [--memory-mb M]\n"
      "                [--executors N] [--queue-depth N] "
      "[--retry-after-ms N]\n"
      "                [--cache-blocks N] [--threads N] "
      "[--scratch-dir DIR]\n"
      "                [--tenant name:weight:inflight[:bytes]]...\n"
      "                [--default-weight W] [--default-inflight N]\n"
      "                [--timeline-out FILE] [--sample-interval-ms N]\n"
      "                [--version] [--help]\n");
}

bool ParseTenantSpec(const std::string& spec, std::string* name,
                     TenantQuota* quota) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t colon = spec.find(':', start);
    parts.push_back(spec.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  if (parts.size() < 3 || parts.size() > 4 || parts[0].empty()) return false;
  *name = parts[0];
  quota->weight = std::strtod(parts[1].c_str(), nullptr);
  quota->max_in_flight =
      static_cast<uint32_t>(std::strtoul(parts[2].c_str(), nullptr, 10));
  quota->max_bytes_in_flight =
      parts.size() == 4 ? std::strtoull(parts[3].c_str(), nullptr, 10) : 0;
  return quota->weight > 0 && quota->max_in_flight > 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  uint64_t block_kb = 64;
  uint64_t memory_mb = 64;
  uint64_t executors = 2;
  uint64_t queue_depth = 64;
  uint64_t retry_after_ms = 50;
  uint64_t cache_blocks = 0;
  uint64_t threads = 0;
  std::string scratch_dir;
  std::string timeline_out_path;
  uint64_t sample_interval_ms = 0;
  double default_weight = 1.0;
  uint64_t default_inflight = 2;
  std::map<std::string, TenantQuota> tenant_quotas;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(stderr);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--block-kb") {
      block_kb = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--memory-mb") {
      memory_mb = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--executors") {
      executors = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--queue-depth") {
      queue_depth = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--retry-after-ms") {
      retry_after_ms = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--cache-blocks") {
      cache_blocks = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--threads") {
      threads = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--scratch-dir") {
      scratch_dir = next();
    } else if (arg == "--tenant") {
      std::string name;
      TenantQuota quota;
      if (!ParseTenantSpec(next(), &name, &quota)) {
        std::fprintf(stderr,
                     "bad --tenant spec (want name:weight:inflight"
                     "[:bytes])\n");
        return 2;
      }
      tenant_quotas[name] = quota;
    } else if (arg == "--default-weight") {
      default_weight = std::strtod(next(), nullptr);
    } else if (arg == "--default-inflight") {
      default_inflight = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--timeline-out") {
      timeline_out_path = next();
    } else if (arg == "--sample-interval-ms") {
      sample_interval_ms = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--version") {
      std::printf("%s (wire %s)\n", kVersion,
                  std::string(kWireSchema).c_str());
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage(stdout);
      return 0;
    } else {
      Usage(stderr);
      return 2;
    }
  }
  if (socket_path.empty()) {
    Usage(stderr);
    return 2;
  }
  if (!timeline_out_path.empty() && sample_interval_ms == 0) {
    sample_interval_ms = 10;
  }

  size_t block_size = static_cast<size_t>(block_kb) * 1024;
  uint64_t memory_blocks = memory_mb * 1024 * 1024 / block_size;

  ServiceOptions options;
  options.env.block_size = block_size;
  options.env.memory_blocks = memory_blocks;
  options.env.cache = {.frames = cache_blocks};
  options.env.parallel.threads = static_cast<uint32_t>(threads);
  options.env.sample_interval_ms = static_cast<uint32_t>(sample_interval_ms);
  options.executors = static_cast<uint32_t>(executors);
  options.max_queue_depth = queue_depth;
  options.retry_after_ms = retry_after_ms;
  options.default_quota.weight = default_weight;
  options.default_quota.max_in_flight =
      static_cast<uint32_t>(default_inflight);
  options.tenant_quotas = std::move(tenant_quotas);
  options.scratch_dir = scratch_dir;
  options.instance = static_cast<uint64_t>(::getpid());

  auto service_or = SortService::Create(std::move(options));
  if (!service_or.ok()) {
    std::fprintf(stderr, "nexsortd: %s\n",
                 service_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<SortService> service = std::move(service_or).value();

  if (!timeline_out_path.empty()) {
    JsonWriter env_json;
    service->env()->DescribeJson(&env_json);
    auto sink_or = FileTimelineSink::Open(
        timeline_out_path, std::move(env_json).Take(),
        static_cast<uint32_t>(sample_interval_ms));
    if (!sink_or.ok()) {
      std::fprintf(stderr, "nexsortd: cannot open %s: %s\n",
                   timeline_out_path.c_str(),
                   sink_or.status().ToString().c_str());
      return 1;
    }
    service->env()->telemetry()->AddSink(std::move(sink_or).value());
  }

  auto server_or = SocketServer::Start(service.get(), socket_path);
  if (!server_or.ok()) {
    std::fprintf(stderr, "nexsortd: %s\n",
                 server_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<SocketServer> server = std::move(server_or).value();

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "nexsortd: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = OnSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  std::fprintf(stderr,
               "nexsortd: listening on %s (%llu executors, %llu-block "
               "grant, %llu orphaned scratch files swept)\n",
               socket_path.c_str(),
               static_cast<unsigned long long>(executors),
               static_cast<unsigned long long>(service->grant_blocks()),
               static_cast<unsigned long long>(service->swept_orphans()));

  // The wire `shutdown` op lands on a server thread; funnel it into the
  // same pipe the signal handler uses so main has one thing to wait on.
  std::thread wire_watcher([&] {
    if (server->WaitForShutdownRequest()) OnSignal(0);
  });

  char byte;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }

  std::fprintf(stderr, "nexsortd: shutting down\n");
  // Cancel first so connection threads blocked in wait ops see their jobs
  // go terminal and drain before the server joins them.
  service->Shutdown(/*cancel_inflight=*/true);
  server->Stop();
  wire_watcher.join();
  if (service->env()->telemetry() != nullptr) {
    service->env()->telemetry()->StopSampler();
  }
  service.reset();  // flushes sinks and removes staged scratch
  ::close(g_signal_pipe[0]);
  ::close(g_signal_pipe[1]);
  std::fprintf(stderr, "nexsortd: bye\n");
  return 0;
}
