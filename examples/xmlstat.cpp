// xmlstat: profile an XML document and report the quantities NEXSORT's
// analysis is parameterized by (N, k, height, element sizes, per-level
// fan-outs), plus the paper's suggested sort threshold.
//
//   xmlstat [--block-kb B] <input.xml>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "xml/doc_stats.h"

using namespace nexsort;

namespace {

class FileSource final : public ByteSource {
 public:
  explicit FileSource(FILE* file) : file_(file) {}
  Status Read(char* buf, size_t n, size_t* out) override {
    *out = std::fread(buf, 1, n, file_);
    if (*out < n && std::ferror(file_)) {
      return Status::IOError("read error");
    }
    return Status::OK();
  }

 private:
  FILE* file_;
};

}  // namespace

int main(int argc, char** argv) {
  uint64_t block_kb = 64;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--block-kb" && i + 1 < argc) {
      block_kb = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg.rfind("--", 0) != 0 && path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "usage: xmlstat [--block-kb B] <input.xml>\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: xmlstat [--block-kb B] <input.xml>\n");
    return 2;
  }
  FILE* input = std::fopen(path.c_str(), "rb");
  if (input == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  FileSource source(input);
  auto stats = ProfileDocument(&source);
  std::fclose(input);
  if (!stats.ok()) {
    std::fprintf(stderr, "profile failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::fputs(stats->ToString(block_kb * 1024).c_str(), stdout);
  return 0;
}
