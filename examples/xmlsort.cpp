// xmlsort: command-line external-memory XML sorter.
//
//   xmlsort [options] <input.xml> <output.xml>
//
//   --order SPEC          full ordering spec, e.g.
//                         "employee:attr(dept),attr(ID)n;*:attr(name)"
//                         (see core/order_spec_parse.h for the grammar)
//   --by-attr NAME        sort every element by attribute NAME (default: id)
//   --by-tag              sort every element by its tag name
//   --by-child-text PATH  sort by the text of the descendant at PATH
//                         (e.g. personalInfo/name/lastName)
//   --numeric             compare keys numerically
//   --descending          reverse the order
//   --depth-limit D       sort levels 1..D only (0 = head to toe)
//   --memory-mb M         internal memory budget in MiB (default 64)
//   --block-kb B          block size in KiB (default 64, like the paper)
//   --threshold-blocks T  sort threshold t in blocks (default 2)
//   --sort-memory-blocks N pin each sort's memory allowance to N blocks
//                         instead of granting whatever the budget has
//                         free (0 = dynamic, the default); small values
//                         force the external path, and concurrent jobs
//                         get identical deterministic grants
//   --cache-blocks N      buffer-pool cache of N block frames over the
//                         working device (0 = off, the default); frames
//                         come out of the --memory-mb budget, so M must
//                         cover N + the 8 blocks the sort needs. See
//                         docs/CACHING.md
//   --readahead N         prefetch up to N blocks ahead on sequential
//                         scans (needs --cache-blocks; capped at half
//                         the pool)
//   --threads N           worker threads overlapping compute and I/O:
//                         double-buffered run formation + partitioned
//                         spill sorts (0 = serial, the default; output is
//                         byte-identical either way). See
//                         docs/PARALLELISM.md
//   --prefetch-depth K    prefetch merge-input runs K blocks ahead per
//                         source into the block cache (needs
//                         --cache-blocks)
//   --run-formation P     run-formation policy for external sorts:
//                         quicksort (default) or replacement
//                         (heap-based replacement selection: ~2x mean run
//                         length on random input, a single run on
//                         nearly-sorted input; output is byte-identical
//                         either way). See docs/RUN_FORMATION.md
//   --merge-policy P      merge-scheduling policy for external sorts:
//                         planned (default; optimized merge patterns that
//                         never run more passes or move more bytes) or
//                         greedy (the left-to-right baseline, kept for
//                         A/B comparisons; output is byte-identical
//                         either way). See docs/MERGE_PLANNING.md
//   --no-dfs-placement    keep output runs on scratch blocks instead of
//                         laying them in ascending contiguous extents for
//                         the output DFS (docs/MERGE_PLANNING.md)
//   --stream              pull sorted output incrementally through the
//                         SortedStream API instead of the eager Sort call;
//                         output bytes are identical, and the stats gain
//                         time_to_first_byte_ms
//   --graceful            enable graceful degeneration into merge sort
//   --scope TAG           XSort mode: only sort children of TAG elements
//                         (repeatable)
//   --record-order ATTR   stamp each element with its original position
//   --strip-attr ATTR     drop ATTR from output elements
//   --check               verify the output is fully sorted afterwards
//   --check-only          just verify the input; no sorting, no output file
//   --pretty              indent the output document
//   --dtd FILE            parse FILE as a DTD: validate the input against
//                         it before sorting and pre-seed the compaction
//                         dictionary with its vocabulary
//   --stats               print the I/O breakdown afterwards
//   --stats-json FILE     write machine-readable telemetry (per-phase wall
//                         time + I/O, per-category counts, memory peak,
//                         run count, run-size histogram) as JSON; see
//                         docs/OBSERVABILITY.md for the schema
//   --trace-out FILE      write the JSONL trace stream (one span or
//                         run-lifecycle event per line)
//   --sample-interval-ms N poll env-wide gauges (budget, cache, workers,
//                         runs, I/O) every N ms on a background sampler;
//                         implied (10 ms) by --timeline-out / --progress
//   --timeline-out FILE   stream sampler ticks as nexsort-timeline-v1
//                         JSONL (header record, then one sample per line)
//   --chrome-trace FILE   write a Chrome Trace Event JSON file (spans as
//                         thread lanes, sampler gauges as counter tracks)
//                         loadable in Perfetto / chrome://tracing
//   --progress            live one-line status on stderr, driven by the
//                         sampler
//
// Working storage (stacks + sorted runs) lives in <output.xml>.work, which
// is removed on success.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/nexsort.h"
#include "core/order_spec_parse.h"
#include "core/sorted_check.h"
#include "xml/dtd.h"
#include "env/sort_env.h"
#include "extmem/block_device.h"
#include "extmem/stream.h"
#include "obs/chrome_trace.h"
#include "obs/json_writer.h"
#include "obs/telemetry_hub.h"
#include "obs/tracer.h"
#include "util/string_util.h"

using namespace nexsort;

namespace {

// Streams stdin-independent file I/O through stdio; input/output documents
// are ordinary files, while the working device is block-addressed.
class FileSource final : public ByteSource {
 public:
  explicit FileSource(FILE* file) : file_(file) {}
  Status Read(char* buf, size_t n, size_t* out) override {
    *out = std::fread(buf, 1, n, file_);
    if (*out < n && std::ferror(file_)) {
      return Status::IOError("read error on input file");
    }
    return Status::OK();
  }

 private:
  FILE* file_;
};

class FileSink final : public ByteSink {
 public:
  explicit FileSink(FILE* file) : file_(file) {}
  Status Append(std::string_view data) override {
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return Status::IOError("write error on output file");
    }
    return Status::OK();
  }

 private:
  FILE* file_;
};

void Usage() {
  std::fprintf(stderr,
               "usage: xmlsort [--by-attr NAME | --by-tag | --by-child-text "
               "PATH]\n               [--numeric] [--descending] "
               "[--depth-limit D] [--memory-mb M]\n               "
               "[--block-kb B] [--threshold-blocks T] [--cache-blocks N] "
               "[--readahead N]\n               [--threads N] "
               "[--prefetch-depth K] [--graceful] [--stats]\n               "
               "[--run-formation quicksort|replacement]\n               "
               "[--merge-policy planned|greedy] [--no-dfs-placement] "
               "[--stream]\n               "
               "[--sample-interval-ms N] [--timeline-out FILE] "
               "[--chrome-trace FILE] [--progress]\n               "
               "<input.xml> <output.xml>\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  OrderRule rule;
  rule.element = "*";
  rule.source = KeySource::kAttribute;
  rule.argument = "id";
  int depth_limit = 0;
  uint64_t memory_mb = 64;
  uint64_t block_kb = 64;
  uint64_t threshold_blocks = 2;
  uint64_t sort_memory_blocks = 0;
  uint64_t cache_blocks = 0;
  uint64_t cache_readahead = 0;
  uint64_t threads = 0;
  uint64_t prefetch_depth = 0;
  bool graceful = false;
  bool stream_mode = false;
  RunFormationPolicy run_formation = RunFormationPolicy::kQuicksortChunks;
  MergePolicy merge_policy = MergePolicy::kPlanned;
  bool dfs_placement = true;
  bool show_stats = false;
  std::string stats_json_path;
  std::string trace_out_path;
  std::string timeline_out_path;
  std::string chrome_trace_path;
  uint64_t sample_interval_ms = 0;
  bool progress = false;
  bool check_output = false;
  bool check_only = false;
  bool pretty = false;
  std::string order_spec_text;
  std::string dtd_path;
  std::vector<std::string> scope_tags;
  std::string record_order;
  std::string strip_attr;
  std::string input_path;
  std::string output_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage();
      return argv[++i];
    };
    if (arg == "--order") {
      order_spec_text = next();
    } else if (arg == "--by-attr") {
      rule.source = KeySource::kAttribute;
      rule.argument = next();
    } else if (arg == "--by-tag") {
      rule.source = KeySource::kTagName;
      rule.argument.clear();
    } else if (arg == "--by-child-text") {
      rule.source = KeySource::kChildText;
      rule.argument = next();
    } else if (arg == "--numeric") {
      rule.numeric = true;
    } else if (arg == "--descending") {
      rule.descending = true;
    } else if (arg == "--depth-limit") {
      depth_limit = std::atoi(next());
    } else if (arg == "--memory-mb") {
      memory_mb = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--block-kb") {
      block_kb = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--threshold-blocks") {
      threshold_blocks = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--sort-memory-blocks") {
      sort_memory_blocks = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--cache-blocks") {
      cache_blocks = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--readahead") {
      cache_readahead = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--threads") {
      threads = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--prefetch-depth") {
      prefetch_depth = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--run-formation") {
      std::string policy = next();
      if (policy == "quicksort" || policy == "quicksort_chunks") {
        run_formation = RunFormationPolicy::kQuicksortChunks;
      } else if (policy == "replacement" ||
                 policy == "replacement_selection") {
        run_formation = RunFormationPolicy::kReplacementSelection;
      } else {
        std::fprintf(stderr, "unknown --run-formation policy '%s'\n",
                     policy.c_str());
        return 2;
      }
    } else if (arg == "--merge-policy") {
      std::string policy = next();
      if (policy == "planned") {
        merge_policy = MergePolicy::kPlanned;
      } else if (policy == "greedy") {
        merge_policy = MergePolicy::kGreedy;
      } else {
        std::fprintf(stderr, "unknown --merge-policy '%s'\n", policy.c_str());
        return 2;
      }
    } else if (arg == "--no-dfs-placement") {
      dfs_placement = false;
    } else if (arg == "--stream") {
      stream_mode = true;
    } else if (arg == "--graceful") {
      graceful = true;
    } else if (arg == "--scope") {
      scope_tags.emplace_back(next());
    } else if (arg == "--record-order") {
      record_order = next();
    } else if (arg == "--strip-attr") {
      strip_attr = next();
    } else if (arg == "--dtd") {
      dtd_path = next();
    } else if (arg == "--pretty") {
      pretty = true;
    } else if (arg == "--check") {
      check_output = true;
    } else if (arg == "--check-only") {
      check_only = true;
    } else if (arg == "--stats") {
      show_stats = true;
    } else if (arg == "--stats-json") {
      stats_json_path = next();
    } else if (arg.rfind("--stats-json=", 0) == 0) {
      stats_json_path = arg.substr(std::strlen("--stats-json="));
    } else if (arg == "--trace-out") {
      trace_out_path = next();
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out_path = arg.substr(std::strlen("--trace-out="));
    } else if (arg == "--timeline-out") {
      timeline_out_path = next();
    } else if (arg.rfind("--timeline-out=", 0) == 0) {
      timeline_out_path = arg.substr(std::strlen("--timeline-out="));
    } else if (arg == "--chrome-trace") {
      chrome_trace_path = next();
    } else if (arg.rfind("--chrome-trace=", 0) == 0) {
      chrome_trace_path = arg.substr(std::strlen("--chrome-trace="));
    } else if (arg == "--sample-interval-ms") {
      sample_interval_ms = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg.rfind("--", 0) == 0) {
      Usage();
    } else if (input_path.empty()) {
      input_path = arg;
    } else if (output_path.empty()) {
      output_path = arg;
    } else {
      Usage();
    }
  }
  if (input_path.empty() || (output_path.empty() && !check_only)) Usage();

  OrderSpec spec;
  if (!order_spec_text.empty()) {
    auto parsed = ParseOrderSpec(order_spec_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 2;
    }
    spec = *parsed;
  } else {
    spec.AddRule(rule);
  }

  if (check_only) {
    FILE* input = std::fopen(input_path.c_str(), "rb");
    if (input == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", input_path.c_str());
      return 1;
    }
    FileSource source(input);
    auto report = CheckSorted(&source, spec, depth_limit);
    std::fclose(input);
    if (!report.ok()) {
      std::fprintf(stderr, "check failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    if (report->sorted) {
      std::printf("sorted (%s elements)\n",
                  WithCommas(report->elements).c_str());
      return 0;
    }
    std::printf("NOT sorted: %s\n", report->violation.c_str());
    return 3;
  }

  size_t block_size = static_cast<size_t>(block_kb) * 1024;
  uint64_t memory_blocks = memory_mb * 1024 * 1024 / block_size;
  if (memory_blocks < 8 + cache_blocks) {
    std::fprintf(stderr,
                 "memory budget too small: need >= 8 blocks plus the "
                 "%llu cache frames\n",
                 static_cast<unsigned long long>(cache_blocks));
    return 2;
  }
  if (cache_readahead > 0 && cache_blocks == 0) {
    std::fprintf(stderr, "--readahead needs --cache-blocks\n");
    return 2;
  }
  if (prefetch_depth > 0 && cache_blocks == 0) {
    std::fprintf(stderr, "--prefetch-depth needs --cache-blocks\n");
    return 2;
  }
  if (threads > 64) {
    std::fprintf(stderr, "--threads capped at 64\n");
    return 2;
  }

  Dtd dtd;
  bool have_dtd = false;
  if (!dtd_path.empty()) {
    FILE* dtd_file = std::fopen(dtd_path.c_str(), "rb");
    if (dtd_file == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", dtd_path.c_str());
      return 1;
    }
    std::string dtd_text;
    char chunk[4096];
    size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), dtd_file)) > 0) {
      dtd_text.append(chunk, got);
    }
    std::fclose(dtd_file);
    auto parsed_dtd = Dtd::Parse(dtd_text);
    if (!parsed_dtd.ok()) {
      std::fprintf(stderr, "%s\n", parsed_dtd.status().ToString().c_str());
      return 2;
    }
    dtd = std::move(*parsed_dtd);
    have_dtd = true;
    // Validate the input before doing any sorting work.
    FILE* check = std::fopen(input_path.c_str(), "rb");
    if (check == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", input_path.c_str());
      return 1;
    }
    FileSource check_source(check);
    auto report = dtd.Validate(&check_source);
    std::fclose(check);
    if (!report.ok()) {
      std::fprintf(stderr, "DTD validation failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    if (!report->valid) {
      std::fprintf(stderr, "input violates the DTD: %s\n",
                   report->violation.c_str());
      return 3;
    }
  }

  FILE* input = std::fopen(input_path.c_str(), "rb");
  if (input == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", input_path.c_str());
    return 1;
  }
  FILE* output = std::fopen(output_path.c_str(), "wb");
  if (output == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", output_path.c_str());
    std::fclose(input);
    return 1;
  }

  std::string work_path = output_path + ".work";
  bool want_telemetry = show_stats || !stats_json_path.empty() ||
                        !trace_out_path.empty() || !chrome_trace_path.empty();
  Tracer tracer;

  // The timeline/progress surfaces are sampler-driven; give them a
  // default cadence when the user asked for the output but not the rate.
  if ((!timeline_out_path.empty() || progress) && sample_interval_ms == 0) {
    sample_interval_ms = 10;
  }

  SortEnvOptions env_options;
  env_options.block_size = block_size;
  env_options.memory_blocks = memory_blocks;
  env_options.file_path = work_path;
  env_options.sort_memory_blocks = sort_memory_blocks;
  env_options.cache = {.frames = cache_blocks, .readahead = cache_readahead};
  env_options.parallel.threads = static_cast<uint32_t>(threads);
  env_options.parallel.prefetch_depth =
      static_cast<uint32_t>(prefetch_depth);
  env_options.sample_interval_ms = static_cast<uint32_t>(sample_interval_ms);
  if (want_telemetry) env_options.tracer = &tracer;
  auto env_or = SortEnv::Create(std::move(env_options));
  if (!env_or.ok()) {
    std::fprintf(stderr, "cannot open working storage: %s\n",
                 env_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<SortEnv> env = std::move(env_or).value();

  if (!timeline_out_path.empty()) {
    JsonWriter env_json;
    env->DescribeJson(&env_json);
    auto sink_or = FileTimelineSink::Open(
        timeline_out_path, std::move(env_json).Take(),
        static_cast<uint32_t>(sample_interval_ms));
    if (!sink_or.ok()) {
      std::fprintf(stderr, "cannot open %s: %s\n", timeline_out_path.c_str(),
                   sink_or.status().ToString().c_str());
      return 1;
    }
    env->telemetry()->AddSink(std::move(sink_or).value());
  }
  if (progress) {
    env->telemetry()->AddSink(std::make_unique<ProgressSink>());
  }

  NexSortOptions options;
  options.order = spec;
  options.pretty_output = pretty;
  if (have_dtd) options.dtd = &dtd;
  options.depth_limit = depth_limit;
  options.sort_threshold = threshold_blocks * block_size;
  options.graceful_degeneration = graceful;
  options.sort_scope_tags = scope_tags;
  options.record_order_attribute = record_order;
  options.strip_attribute = strip_attr;
  options.run_formation = run_formation;
  options.merge_policy = merge_policy;
  options.dfs_placement = dfs_placement;
  NexSorter sorter(env.get(), options);

  FileSource source(input);
  FileSink sink(output);
  double time_to_first_byte_ms = 0.0;
  double sort_wall_ms = 0.0;
  Status status;
  {
    auto started = std::chrono::steady_clock::now();
    auto elapsed_ms = [&started]() {
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - started)
          .count();
    };
    if (stream_mode) {
      auto stream_or = sorter.SortStream(&source);
      status = stream_or.status();
      if (status.ok()) {
        std::unique_ptr<SortedStream> stream = std::move(stream_or).value();
        std::string_view chunk;
        bool first = true;
        while (true) {
          auto more = stream->Next(&chunk);
          if (!more.ok()) {
            status = more.status();
            break;
          }
          if (!*more) break;
          if (first) {
            first = false;
            time_to_first_byte_ms = elapsed_ms();
          }
          status = sink.Append(chunk);
          if (!status.ok()) break;
        }
      }
    } else {
      status = sorter.Sort(&source, &sink);
    }
    sort_wall_ms = elapsed_ms();
  }
  std::fclose(input);
  std::fclose(output);
  // Stop the sampler before reporting: the final sample lands in the
  // timeline stream (and samples() retention) and the progress line ends.
  if (env->telemetry() != nullptr) env->telemetry()->StopSampler();
  if (!status.ok()) {
    std::fprintf(stderr, "sort failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::remove(work_path.c_str());

  if (check_output && !scope_tags.empty()) {
    std::fprintf(stderr,
                 "--check skipped: scoped output is not fully sorted\n");
    check_output = false;
  }
  if (check_output) {
    FILE* verify = std::fopen(output_path.c_str(), "rb");
    if (verify == nullptr) {
      std::fprintf(stderr, "cannot reopen %s\n", output_path.c_str());
      return 1;
    }
    FileSource source(verify);
    auto report = CheckSorted(&source, spec, depth_limit);
    std::fclose(verify);
    if (!report.ok() || !report->sorted) {
      std::fprintf(stderr, "output verification FAILED: %s\n",
                   report.ok() ? report->violation.c_str()
                               : report.status().ToString().c_str());
      return 3;
    }
    std::fprintf(stderr, "output verified sorted\n");
  }

  if (show_stats) {
    const NexSortStats& stats = sorter.stats();
    std::fprintf(stderr,
                 "elements %s, text nodes %s, k=%llu, height %llu\n"
                 "subtree sorts %llu (internal %llu, external %llu), "
                 "fragments %llu\n%s%s",
                 WithCommas(stats.scan.elements).c_str(),
                 WithCommas(stats.scan.text_nodes).c_str(),
                 static_cast<unsigned long long>(stats.scan.max_fanout),
                 static_cast<unsigned long long>(stats.scan.max_depth),
                 static_cast<unsigned long long>(stats.subtree_sorts),
                 static_cast<unsigned long long>(stats.sorts.internal_sorts),
                 static_cast<unsigned long long>(stats.sorts.external_sorts),
                 static_cast<unsigned long long>(stats.fragment_runs),
                 env->physical_device()->stats().ToString(block_size).c_str(),
                 tracer.ReportString().c_str());
    if (stats.sorts.run_formation.runs_formed > 0) {
      std::fprintf(
          stderr,
          "run formation (%s): %llu runs, avg %.1f blocks, max %llu "
          "blocks, %llu merge passes\n",
          RunFormationPolicyName(run_formation),
          static_cast<unsigned long long>(
              stats.sorts.run_formation.runs_formed),
          stats.sorts.run_formation.avg_run_blocks(),
          static_cast<unsigned long long>(
              stats.sorts.run_formation.max_run_blocks),
          static_cast<unsigned long long>(stats.sorts.merge_passes));
    }
    if (stats.sorts.merge_plan.plans > 0) {
      const MergePlanStats& plan = stats.sorts.merge_plan;
      std::fprintf(
          stderr,
          "merge plan (%s): %llu steps over %llu runs, fan-in %llu-%llu, "
          "%.1f MiB merged\n",
          MergePolicyName(plan.policy),
          static_cast<unsigned long long>(plan.steps),
          static_cast<unsigned long long>(plan.input_runs),
          static_cast<unsigned long long>(plan.fanin_min),
          static_cast<unsigned long long>(plan.fanin_max),
          static_cast<double>(plan.actual_bytes) / (1024.0 * 1024.0));
    }
    if (stream_mode) {
      std::fprintf(stderr, "streamed: first byte at %.1f ms of %.1f ms\n",
                   time_to_first_byte_ms, sort_wall_ms);
    }
    if (cache_blocks > 0) {
      CacheStats cache = sorter.cache_stats();
      std::fprintf(stderr,
                   "cache: %llu frames, %llu hits / %llu misses "
                   "(%.1f%% hit rate), %llu evictions, %llu writebacks, "
                   "%llu prefetches\n",
                   static_cast<unsigned long long>(cache_blocks),
                   static_cast<unsigned long long>(cache.hits),
                   static_cast<unsigned long long>(cache.misses),
                   cache.hit_rate() * 100.0,
                   static_cast<unsigned long long>(cache.evictions),
                   static_cast<unsigned long long>(cache.writebacks),
                   static_cast<unsigned long long>(cache.prefetches));
    }
    if (threads > 0 || prefetch_depth > 0) {
      ParallelStats par = sorter.parallel_stats();
      std::fprintf(stderr,
                   "parallel: %llu threads, %llu async / %llu sync spills "
                   "(%llu declined), %llu partitioned sorts, "
                   "%llu prefetched blocks, spill wait %.3f s / busy %.3f s\n",
                   static_cast<unsigned long long>(threads),
                   static_cast<unsigned long long>(par.async_spills),
                   static_cast<unsigned long long>(par.sync_spills),
                   static_cast<unsigned long long>(par.double_buffer_declined),
                   static_cast<unsigned long long>(par.parallel_sorts),
                   static_cast<unsigned long long>(par.prefetch_issued),
                   par.spill_wait_seconds, par.spill_busy_seconds);
    }
  }

  if (!stats_json_path.empty()) {
    JsonWriter json;
    json.BeginObject();
    json.Key("schema");
    json.String("nexsort-stats-v1");
    json.Key("tool");
    json.String("xmlsort");
    json.Key("input");
    json.String(input_path);
    json.Key("block_size");
    json.Uint(block_size);
    json.Key("memory_blocks");
    json.Uint(memory_blocks);
    json.Key("memory_peak_blocks");
    json.Uint(env->budget()->peak_blocks());
    json.Key("run_count");
    json.Uint(tracer.run_event_counts()[static_cast<int>(
        RunEventKind::kCreated)]);
    // The composed execution environment (device stack, cache, workers)
    // that produced this run, as configured — see docs/ARCHITECTURE.md.
    json.Key("env");
    env->DescribeJson(&json);
    json.Key("io");
    env->physical_device()->stats().ToJson(&json);
    // The io block above is *physical* transfers on the working device;
    // with caching on, the counters here say how many logical accesses
    // the pool absorbed.
    json.Key("cache");
    json.BeginObject();
    json.Key("enabled");
    json.Bool(cache_blocks > 0);
    json.Key("frames");
    json.Uint(cache_blocks);
    json.Key("readahead");
    json.Uint(cache_readahead);
    json.Key("counters");
    sorter.cache_stats().ToJson(&json);
    json.EndObject();
    json.Key("parallel");
    json.BeginObject();
    json.Key("enabled");
    json.Bool(threads > 0 || prefetch_depth > 0);
    json.Key("threads");
    json.Uint(threads);
    json.Key("prefetch_depth");
    json.Uint(prefetch_depth);
    json.Key("counters");
    sorter.parallel_stats().ToJson(&json);
    json.EndObject();
    // Per-session attribution: xmlsort runs one job, so one entry, but
    // the array shape is shared with multi-session envs (see
    // docs/OBSERVABILITY.md).
    json.Key("sessions");
    env->SessionsToJson(&json);
    // Run-formation + delivery summary for this job (docs/RUN_FORMATION.md):
    // run-length accounting comes from the external sorts' run formation,
    // time_to_first_byte_ms is 0 unless --stream pulled the output.
    {
      const RunFormationStats& runs = sorter.stats().sorts.run_formation;
      json.Key("sort");
      json.BeginObject();
      json.Key("run_formation");
      json.String(RunFormationPolicyName(run_formation));
      json.Key("runs_formed");
      json.Uint(runs.runs_formed);
      json.Key("avg_run_blocks");
      json.Double(runs.avg_run_blocks());
      json.Key("max_run_blocks");
      json.Uint(runs.max_run_blocks);
      json.Key("merge_passes");
      json.Uint(sorter.stats().sorts.merge_passes);
      json.Key("merge_policy");
      json.String(MergePolicyName(merge_policy));
      json.Key("dfs_placement");
      json.Bool(dfs_placement);
      // Merge-schedule accounting (docs/MERGE_PLANNING.md): only present
      // when at least one external sort actually ran merge steps.
      const MergePlanStats& plan = sorter.stats().sorts.merge_plan;
      if (plan.plans > 0) {
        json.Key("merge_plan");
        plan.ToJson(&json);
      }
      json.Key("streaming");
      json.Bool(stream_mode);
      json.Key("time_to_first_byte_ms");
      json.Double(time_to_first_byte_ms);
      json.Key("wall_ms");
      json.Double(sort_wall_ms);
      json.EndObject();
    }
    json.Key("nexsort");
    sorter.stats().ToJson(&json);
    json.Key("telemetry");
    tracer.ToJson(&json);
    json.EndObject();
    FILE* out = std::fopen(stats_json_path.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", stats_json_path.c_str());
      return 1;
    }
    std::string text = std::move(json).Take();
    text.push_back('\n');
    std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
  }

  if (!trace_out_path.empty()) {
    FILE* out = std::fopen(trace_out_path.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", trace_out_path.c_str());
      return 1;
    }
    std::string text = tracer.ToJsonl();
    std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
  }

  if (!chrome_trace_path.empty()) {
    ChromeTraceExporter exporter;
    exporter.AddSession("xmlsort", tracer);
    if (env->telemetry() != nullptr) {
      exporter.AddCounterTrack("env gauges", env->telemetry()->samples(),
                               env->telemetry()->epoch());
    }
    FILE* out = std::fopen(chrome_trace_path.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", chrome_trace_path.c_str());
      return 1;
    }
    std::string text = exporter.ToJsonString();
    text.push_back('\n');
    std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
  }
  return 0;
}
