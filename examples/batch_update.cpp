// Batch updates to a sorted document (the paper's second application of
// sorting, Section 1): sort the update batch by the same criterion, then
// apply it in a single merge pass. The result document remains sorted.
//
//   build/examples/batch_update
#include <cstdio>

#include "core/nexsort.h"
#include "env/sort_env.h"
#include "merge/batch_update.h"

using namespace nexsort;

int main() {
  OrderSpec spec = OrderSpec::ByAttribute("isbn", /*numeric=*/true);

  // The existing library catalog, already fully sorted by ISBN.
  const std::string base =
      "<library>"
      "<book isbn=\"1001\"><title>External Memory Algorithms</title>"
      "<copies>2</copies></book>"
      "<book isbn=\"1004\"><title>Query Processing</title>"
      "<copies>1</copies></book>"
      "<book isbn=\"1009\"><title>Semistructured Data</title>"
      "<copies>4</copies></book>"
      "</library>";

  // A day's worth of changes, in arrival (unsorted) order:
  //   - a new acquisition (no op attribute = insert/merge),
  //   - a correction replacing a record wholesale,
  //   - a deaccession.
  const std::string updates =
      "<library>"
      "<book isbn=\"1009\" op=\"delete\"></book>"
      "<book isbn=\"1002\"><title>Sorting and Searching</title>"
      "<copies>3</copies></book>"
      "<book isbn=\"1004\" op=\"replace\"><title>Query Processing, 2nd ed."
      "</title><copies>2</copies></book>"
      "</library>";

  auto env_or = SortEnvBuilder().BlockSize(4096).MemoryBlocks(32).Build();
  if (!env_or.ok()) {
    std::fprintf(stderr, "env failed: %s\n",
                 env_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<SortEnv> env = std::move(env_or).value();

  BatchUpdateOptions options;
  options.order = spec;
  StringByteSource base_source(base);
  std::string result;
  StringByteSink sink(&result);
  MergeStats stats;
  Status status = ApplyBatchUpdates(&base_source, updates, env.get(),
                                    &sink, options, &stats);
  if (!status.ok()) {
    std::fprintf(stderr, "update failed: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("base:\n%s\n\nupdates:\n%s\n\nresult:\n%s\n\n", base.c_str(),
              updates.c_str(), result.c_str());
  std::printf("inserted: %llu, replaced: %llu, deleted: %llu\n",
              static_cast<unsigned long long>(stats.right_only),
              static_cast<unsigned long long>(stats.replaced),
              static_cast<unsigned long long>(stats.deleted));
  return 0;
}
