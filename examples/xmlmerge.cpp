// xmlmerge: command-line structural merge of XML documents — the paper's
// Example 1.1 as a tool. Sorts every input with NEXSORT (file-backed
// working storage), then merges them all in one simultaneous pass.
//
//   xmlmerge [options] <in1.xml> <in2.xml> [in3.xml ...] <output.xml>
//
//   --by-attr NAME   match/order elements by attribute NAME (default: id)
//   --numeric        compare keys numerically
//   --concat-text    keep text from every input (default: first input wins)
//   --updates        two inputs only: treat the second as a batch of
//                    updates (op="merge|replace|delete" attributes)
//   --memory-mb M    internal memory budget in MiB (default 64)
//   --block-kb B     block size in KiB (default 64)
//   --stats          print match statistics afterwards
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/nexsort.h"
#include "env/sort_env.h"
#include "merge/structural_merge.h"

using namespace nexsort;

namespace {

class FileSource final : public ByteSource {
 public:
  explicit FileSource(FILE* file) : file_(file) {}
  Status Read(char* buf, size_t n, size_t* out) override {
    *out = std::fread(buf, 1, n, file_);
    if (*out < n && std::ferror(file_)) {
      return Status::IOError("read error");
    }
    return Status::OK();
  }

 private:
  FILE* file_;
};

class FileSink final : public ByteSink {
 public:
  explicit FileSink(FILE* file) : file_(file) {}
  Status Append(std::string_view data) override {
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return Status::IOError("write error");
    }
    return Status::OK();
  }

 private:
  FILE* file_;
};

void Usage() {
  std::fprintf(stderr,
               "usage: xmlmerge [--by-attr NAME] [--numeric] [--concat-text]"
               "\n                [--updates] [--memory-mb M] [--block-kb B] "
               "[--stats]\n                <in1.xml> <in2.xml> [...] "
               "<output.xml>\n");
  std::exit(2);
}

// NEXSORT `path` into a sorted temp file; returns the temp path.
bool SortToTemp(const std::string& path, const OrderSpec& spec,
                size_t block_size, uint64_t memory_blocks,
                std::string* temp_path) {
  FILE* input = std::fopen(path.c_str(), "rb");
  if (input == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  *temp_path = path + ".sorted.tmp";
  FILE* output = std::fopen(temp_path->c_str(), "wb");
  if (output == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", temp_path->c_str());
    std::fclose(input);
    return false;
  }
  std::string work_path = *temp_path + ".work";
  auto env_or = SortEnvBuilder()
                    .BlockSize(block_size)
                    .MemoryBlocks(memory_blocks)
                    .File(work_path)
                    .Build();
  if (!env_or.ok()) {
    std::fprintf(stderr, "working storage: %s\n",
                 env_or.status().ToString().c_str());
    std::fclose(input);
    std::fclose(output);
    return false;
  }
  std::unique_ptr<SortEnv> env = std::move(env_or).value();
  NexSortOptions options;
  options.order = spec;
  NexSorter sorter(env.get(), options);
  FileSource source(input);
  FileSink sink(output);
  Status status = sorter.Sort(&source, &sink);
  std::fclose(input);
  std::fclose(output);
  std::remove(work_path.c_str());
  if (!status.ok()) {
    std::fprintf(stderr, "sorting %s failed: %s\n", path.c_str(),
                 status.ToString().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  OrderRule rule;
  rule.element = "*";
  rule.source = KeySource::kAttribute;
  rule.argument = "id";
  bool concat_text = false;
  bool updates = false;
  bool show_stats = false;
  uint64_t memory_mb = 64;
  uint64_t block_kb = 64;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage();
      return argv[++i];
    };
    if (arg == "--by-attr") rule.argument = next();
    else if (arg == "--numeric") rule.numeric = true;
    else if (arg == "--concat-text") concat_text = true;
    else if (arg == "--updates") updates = true;
    else if (arg == "--memory-mb") memory_mb = std::strtoull(next(), nullptr, 10);
    else if (arg == "--block-kb") block_kb = std::strtoull(next(), nullptr, 10);
    else if (arg == "--stats") show_stats = true;
    else if (arg.rfind("--", 0) == 0) Usage();
    else paths.push_back(arg);
  }
  if (paths.size() < 3) Usage();
  if (updates && paths.size() != 3) {
    std::fprintf(stderr, "--updates takes exactly two inputs\n");
    return 2;
  }
  std::string output_path = paths.back();
  paths.pop_back();

  size_t block_size = static_cast<size_t>(block_kb) * 1024;
  uint64_t memory_blocks = memory_mb * 1024 * 1024 / block_size;
  if (memory_blocks < 8) {
    std::fprintf(stderr, "memory budget too small\n");
    return 2;
  }

  OrderSpec spec;
  spec.AddRule(rule);

  // Phase 1: sort every input.
  std::vector<std::string> sorted_paths(paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    if (!SortToTemp(paths[i], spec, block_size, memory_blocks,
                    &sorted_paths[i])) {
      return 1;
    }
  }

  // Phase 2: one-pass merge of all sorted inputs.
  std::vector<FILE*> files;
  std::vector<std::unique_ptr<FileSource>> sources;
  std::vector<ByteSource*> inputs;
  for (const std::string& path : sorted_paths) {
    FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot reopen %s\n", path.c_str());
      return 1;
    }
    files.push_back(file);
    sources.push_back(std::make_unique<FileSource>(file));
    inputs.push_back(sources.back().get());
  }
  FILE* output = std::fopen(output_path.c_str(), "wb");
  if (output == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", output_path.c_str());
    return 1;
  }
  FileSink sink(output);
  MergeOptions options;
  options.order = spec;
  options.text_policy = concat_text ? MergeOptions::TextPolicy::kConcat
                                    : MergeOptions::TextPolicy::kPreferLeft;
  MergeStats stats;
  Status status;
  if (updates) {
    options.apply_update_ops = true;
    status = StructuralMerge(inputs[0], inputs[1], &sink, options, &stats);
  } else {
    status = StructuralMergeMany(inputs, &sink, options, &stats);
  }
  for (FILE* file : files) std::fclose(file);
  std::fclose(output);
  for (const std::string& path : sorted_paths) std::remove(path.c_str());
  if (!status.ok()) {
    std::fprintf(stderr, "merge failed: %s\n", status.ToString().c_str());
    return 1;
  }
  if (show_stats) {
    std::fprintf(stderr,
                 "matched %llu, single-input %llu, right-only %llu, "
                 "replaced %llu, deleted %llu\n",
                 static_cast<unsigned long long>(stats.matched_elements),
                 static_cast<unsigned long long>(stats.left_only),
                 static_cast<unsigned long long>(stats.right_only),
                 static_cast<unsigned long long>(stats.replaced),
                 static_cast<unsigned long long>(stats.deleted));
  }
  return 0;
}
