#include "sort/merge_plan.h"

#include <algorithm>
#include <limits>

#include "obs/json_writer.h"
#include "util/dcheck.h"

namespace nexsort {

namespace {

constexpr uint64_t kInfiniteCost = std::numeric_limits<uint64_t>::max();

// One level of the plan under construction: the surviving node indices in
// run-sequence order (contiguity is defined over this order) and their
// byte sizes mirrored for cheap prefix sums.
struct Level {
  std::vector<uint32_t> nodes;
  std::vector<uint64_t> bytes;
};

uint32_t EmitStep(MergePlan* plan, Level* level, size_t begin, size_t count,
                  uint32_t pass) {
  MergeStep step;
  step.pass = pass;
  step.inputs.reserve(count);
  uint64_t total = 0;
  for (size_t i = begin; i < begin + count; ++i) {
    step.inputs.push_back(level->nodes[i]);
    total += level->bytes[i];
  }
  step.output = plan->node_count();
  plan->node_bytes.push_back(total);
  plan->steps.push_back(std::move(step));
  return plan->steps.back().output;
}

// The historical merge loop, expressed as a plan: left-to-right groups of
// `fan_in` runs every pass; a trailing group of one run becomes a fan-in-1
// copy step, exactly as the old code rewrote it through the loser tree.
void PlanGreedy(MergePlan* plan, Level* level, uint64_t fan_in) {
  uint32_t pass = 0;
  while (level->nodes.size() > 1) {
    Level next;
    for (size_t i = 0; i < level->nodes.size(); i += fan_in) {
      size_t count = std::min<size_t>(fan_in, level->nodes.size() - i);
      uint32_t out = EmitStep(plan, level, i, count, pass);
      next.nodes.push_back(out);
      next.bytes.push_back(plan->node_bytes[out]);
    }
    *level = std::move(next);
    ++pass;
  }
  plan->passes = pass;
}

// Raise fan_in to `exp` without overflow; saturates at `limit` (callers
// only compare the result against counts <= limit).
uint64_t PowClamped(uint64_t fan_in, uint32_t exp, uint64_t limit) {
  uint64_t result = 1;
  for (uint32_t i = 0; i < exp; ++i) {
    if (result > limit / fan_in) return limit;
    result *= fan_in;
  }
  return result;
}

// One planned pass over `level`: choose a contiguous segmentation into
// merge groups (size 2..fan_in) and carried singletons that minimizes the
// bytes merged this pass, subject to leaving at most `max_next` nodes for
// the following passes. Carried nodes cost zero bytes, so the DP naturally
// merges the smallest window of runs it can get away with — which is what
// yields the classic "first merge takes 1 + (n-1) mod (F-1) runs" pattern
// and the graceful-degradation case (n = F+1 -> one cheapest 2-way merge).
//
// dp[i][j]: minimum bytes merged covering the first i nodes with j nodes
// surviving to the next level; transitions carry node i (free) or close a
// group of s in [2..fan_in] ending at i (costs the window's bytes).
void PlanOnePass(MergePlan* plan, Level* level, uint64_t fan_in,
                 uint64_t max_next, uint32_t pass) {
  const size_t m = level->nodes.size();
  const size_t t_max =
      static_cast<size_t>(std::min<uint64_t>(max_next, m - 1));
  NEXSORT_DCHECK(t_max >= 1);

  std::vector<uint64_t> prefix(m + 1, 0);
  for (size_t i = 0; i < m; ++i) prefix[i + 1] = prefix[i] + level->bytes[i];

  // dp + choice are (m+1) x (t_max+1), row-major. choice[i][j] is the
  // segment length that ends at node i-1 in the optimal solution (1 =
  // carried). Ties prefer the carry / shorter segment (first transition
  // examined), keeping reconstruction deterministic.
  const size_t stride = t_max + 1;
  std::vector<uint64_t> dp((m + 1) * stride, kInfiniteCost);
  std::vector<uint32_t> choice((m + 1) * stride, 0);
  dp[0] = 0;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j <= std::min(i, t_max); ++j) {
      const uint64_t here = dp[i * stride + j];
      if (here == kInfiniteCost || j + 1 > t_max) continue;
      // Carry node i to the next level untouched.
      size_t idx = (i + 1) * stride + (j + 1);
      if (here < dp[idx]) {
        dp[idx] = here;
        choice[idx] = 1;
      }
      // Close a merge group of size s ending at node i+s-1.
      const size_t s_max = std::min<size_t>(fan_in, m - i);
      for (size_t s = 2; s <= s_max; ++s) {
        const uint64_t cost = here + (prefix[i + s] - prefix[i]);
        idx = (i + s) * stride + (j + 1);
        if (cost < dp[idx]) {
          dp[idx] = cost;
          choice[idx] = static_cast<uint32_t>(s);
        }
      }
    }
  }

  // Best surviving-node count. j == m would mean "carry everything" (no
  // progress); it is unreachable because t_max <= m - 1, so any feasible
  // answer contains at least one real merge group.
  size_t best_j = 0;
  uint64_t best_cost = kInfiniteCost;
  for (size_t j = 1; j <= t_max; ++j) {
    if (dp[m * stride + j] < best_cost) {
      best_cost = dp[m * stride + j];
      best_j = j;
    }
  }
  NEXSORT_DCHECK(best_cost != kInfiniteCost);

  // Reconstruct the segmentation back-to-front, then emit in order.
  std::vector<uint32_t> lengths;
  for (size_t i = m, j = best_j; i > 0;) {
    const uint32_t s = choice[i * stride + j];
    NEXSORT_DCHECK(s >= 1);
    lengths.push_back(s);
    i -= s;
    --j;
  }
  std::reverse(lengths.begin(), lengths.end());

  Level next;
  size_t at = 0;
  for (uint32_t s : lengths) {
    if (s == 1) {
      next.nodes.push_back(level->nodes[at]);
      next.bytes.push_back(level->bytes[at]);
    } else {
      uint32_t out = EmitStep(plan, level, at, s, pass);
      next.nodes.push_back(out);
      next.bytes.push_back(plan->node_bytes[out]);
    }
    at += s;
  }
  NEXSORT_DCHECK(at == m);
  NEXSORT_DCHECK(next.nodes.size() == best_j);
  *level = std::move(next);
}

// Optimized merge patterns under a hard pass ceiling. Invariant entering
// pass k: level size <= fan_in^(greedy_passes - k), so capping the nodes
// left after pass k at fan_in^(greedy_passes - k - 1) keeps the remaining
// passes feasible at full fan-in — the planned pass count can never exceed
// the greedy one, while the per-pass DP spends the slack (cap - ceil(m/F))
// on carrying large runs instead of rewriting them.
void PlanOptimized(MergePlan* plan, Level* level, uint64_t fan_in) {
  const uint32_t greedy_passes =
      MergePlanner::GreedyPassCount(level->nodes.size(), fan_in);
  uint32_t pass = 0;
  while (level->nodes.size() > 1) {
    const size_t m = level->nodes.size();
    if (m <= fan_in) {
      uint32_t out = EmitStep(plan, level, 0, m, pass);
      level->nodes.assign(1, out);
      level->bytes.assign(1, plan->node_bytes[out]);
    } else {
      NEXSORT_DCHECK(pass + 1 < greedy_passes);
      const uint64_t cap =
          PowClamped(fan_in, greedy_passes - pass - 1, m - 1);
      PlanOnePass(plan, level, fan_in, cap, pass);
    }
    ++pass;
  }
  NEXSORT_DCHECK(pass <= greedy_passes);
  plan->passes = pass;
}

}  // namespace

const char* MergePolicyName(MergePolicy policy) {
  switch (policy) {
    case MergePolicy::kGreedy:
      return "greedy";
    case MergePolicy::kPlanned:
      return "planned";
  }
  return "unknown";
}

uint64_t MergePlan::predicted_bytes_moved() const {
  uint64_t total = 0;
  for (const MergeStep& step : steps) total += node_bytes[step.output];
  return total;
}

uint32_t MergePlanner::GreedyPassCount(uint64_t runs, uint64_t fan_in) {
  NEXSORT_DCHECK(fan_in >= 2);
  uint32_t passes = 0;
  while (runs > 1) {
    runs = (runs + fan_in - 1) / fan_in;
    ++passes;
  }
  return passes;
}

MergePlan MergePlanner::Plan(const std::vector<uint64_t>& run_bytes,
                             uint64_t fan_in, MergePolicy policy) {
  NEXSORT_DCHECK(fan_in >= 2);
  MergePlan plan;
  plan.policy = policy;
  plan.num_inputs = static_cast<uint32_t>(run_bytes.size());
  plan.node_bytes = run_bytes;
  if (run_bytes.size() <= 1) return plan;

  Level level;
  level.nodes.resize(run_bytes.size());
  for (uint32_t i = 0; i < level.nodes.size(); ++i) level.nodes[i] = i;
  level.bytes = run_bytes;

  if (policy == MergePolicy::kGreedy) {
    PlanGreedy(&plan, &level, fan_in);
  } else {
    PlanOptimized(&plan, &level, fan_in);
  }
  NEXSORT_DCHECK(!plan.steps.empty());
  plan.steps.back().final = true;
  return plan;
}

void MergePlanStats::ToJson(JsonWriter* writer) const {
  writer->BeginObject();
  writer->Key("policy");
  writer->String(MergePolicyName(policy));
  writer->Key("plans");
  writer->Uint(plans);
  writer->Key("steps");
  writer->Uint(steps);
  writer->Key("input_runs");
  writer->Uint(input_runs);
  writer->Key("fanin_min");
  writer->Uint(fanin_min);
  writer->Key("fanin_max");
  writer->Uint(fanin_max);
  writer->Key("fanin_total");
  writer->Uint(fanin_total);
  writer->Key("predicted_bytes");
  writer->Uint(predicted_bytes);
  writer->Key("actual_bytes");
  writer->Uint(actual_bytes);
  writer->EndObject();
}

}  // namespace nexsort
