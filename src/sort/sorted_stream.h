// SortedStream: pull-based sorted output (docs/RUN_FORMATION.md). Eager
// sorting APIs materialize the whole output before the caller sees byte
// one; a SortedStream instead hands out sorted bytes incrementally as the
// final merge / output traversal produces them, so a serving layer
// (xmlsort --stream, nexsortd's stream job mode) measures time-to-first-
// byte instead of batch latency. Contract:
//
//  * Next() returns true and a non-empty chunk (valid until the next call)
//    while output remains, false exactly once at the end;
//  * the concatenation of all chunks is byte-identical to what the eager
//    API writes — streaming changes delivery, never content;
//  * completion work (final flush, metrics) happens inside the Next() that
//    returns false, so its errors surface to the caller;
//  * dropping the stream early (cancellation, error) releases every
//    resource through normal RAII unwind — no Finish call required.
#pragma once

#include <string_view>

#include "util/status.h"

namespace nexsort {

/// Pull iterator over sorted output bytes.
class SortedStream {
 public:
  virtual ~SortedStream() = default;

  /// Produce the next chunk of sorted output. The view stays valid until
  /// the next call. Returns false when the stream is complete.
  [[nodiscard]] virtual StatusOr<bool> Next(std::string_view* chunk) = 0;
};

}  // namespace nexsort
