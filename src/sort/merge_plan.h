// Merge planning: turn "a pile of formed runs" into an explicit schedule of
// merge steps before any byte moves. The planner sees the formed runs'
// sizes and the merge fan-in (M-1 readers) and emits a MergePlan — a DAG of
// MergeSteps — that the ExternalMergeSorter executes mechanically.
//
// Two policies:
//
//  * kGreedy reproduces the classic left-to-right full-fan-in loop the
//    sorter always ran: every pass rewrites every byte, and a trailing
//    group of one run is literally copied (fan-in 1). Kept for A/B
//    comparisons and as the cost baseline the planner must beat.
//  * kPlanned applies the optimized-merge-pattern techniques from the
//    external-merge-sort literature (cf. the CS764 material in
//    SNIPPETS.md): size the *first* merge of a pass so every later merge
//    runs at full fan-in, carry the largest runs through a pass untouched
//    (zero bytes moved for them), and degrade gracefully — when the run
//    count barely exceeds the fan-in, merge only enough of the smallest
//    runs to fit instead of paying a full extra pass over everything.
//
// Stability constraint: the LoserTree breaks equal keys by (tie_seq,
// source index), so a merge of runs is stable in source order. Stable
// merging is associative only over *contiguous* spans — regrouping
// non-adjacent runs can reorder duplicate keys. Every step in a plan
// therefore merges a contiguous span of the current run sequence and
// replaces it in place, which makes the final output byte-identical under
// either policy, for any key distribution.
//
// Guarantees (property-tested in tests/merge_plan_test.cc):
//  * planned pass count  <= greedy pass count,
//  * planned bytes moved <= greedy bytes moved,
//  * every input run is consumed exactly once; planned fan-ins are >= 2
//    (only greedy emits copy steps) and <= fan_in.
//
// See docs/MERGE_PLANNING.md for the plan model and worked examples.
#pragma once

#include <cstdint>
#include <vector>

namespace nexsort {

class JsonWriter;

/// How the merge phase schedules its passes (rides on CommonSortOptions so
/// every sorting entry point — and the nexsortd wire — shares one switch).
enum class MergePolicy {
  /// Left-to-right groups at full fan-in, every pass, trailing singleton
  /// groups copied. The historical behaviour, kept for A/B tests.
  kGreedy,
  /// Optimized merge patterns + graceful degradation (see file comment).
  kPlanned,
};

/// Short display name for stats JSON ("greedy" / "planned").
const char* MergePolicyName(MergePolicy policy);

/// One merge: read the runs at `inputs` (indices into the plan's node
/// table, always a contiguous span of the current run sequence), write one
/// merged run registered as node `output`.
struct MergeStep {
  std::vector<uint32_t> inputs;
  uint32_t output = 0;
  /// Pass this step belongs to (0-based). Steps are emitted pass by pass;
  /// a step only consumes nodes produced in strictly earlier passes.
  uint32_t pass = 0;
  /// True for the step that produces the plan's root (the sort's result).
  bool final = false;
};

/// A full merge schedule. Nodes 0..num_inputs-1 are the formed runs in
/// formation order; each step appends one node. node_bytes[i] is the exact
/// byte size of node i (outputs are concatenations, so sizes are known
/// before any byte moves — that is the "predicted" side of the stats).
struct MergePlan {
  MergePolicy policy = MergePolicy::kPlanned;
  uint32_t num_inputs = 0;
  uint32_t passes = 0;
  std::vector<uint64_t> node_bytes;
  std::vector<MergeStep> steps;

  uint32_t node_count() const {
    return static_cast<uint32_t>(node_bytes.size());
  }
  /// The node the last step produces (the single surviving run).
  uint32_t root() const { return steps.empty() ? 0 : steps.back().output; }

  /// Total bytes every step will write — the plan's predicted I/O volume
  /// (each step writes the sum of its inputs' bytes).
  uint64_t predicted_bytes_moved() const;
};

/// Builds a MergePlan from formed-run sizes and the memory budget's merge
/// fan-in. Pure function of its inputs: same runs + same fan-in + same
/// policy => same plan, so merges replay deterministically.
class MergePlanner {
 public:
  /// `fan_in` >= 2. One run yields an empty plan (no steps); the sorter
  /// skips the merge phase outright in that case.
  static MergePlan Plan(const std::vector<uint64_t>& run_bytes,
                        uint64_t fan_in, MergePolicy policy);

  /// Pass count the greedy policy pays for `runs` runs at `fan_in` — the
  /// ceiling the planned policy never exceeds.
  static uint32_t GreedyPassCount(uint64_t runs, uint64_t fan_in);
};

/// Aggregated description of the merge plans one job executed; the
/// `merge_plan` block of nexsort-stats-v1 (docs/OBSERVABILITY.md). A job
/// may run many external sorts (NEXSORT runs one per oversized subtree),
/// so counters accumulate across plans; the invariant
///   fanin_total == input_runs + steps - plans
/// holds because every non-root step output is consumed by a later step.
struct MergePlanStats {
  MergePolicy policy = MergePolicy::kPlanned;
  uint64_t plans = 0;        // merge phases planned (multi-run sorts only)
  uint64_t steps = 0;
  uint64_t input_runs = 0;   // formed runs consumed by those plans
  uint64_t fanin_min = 0;    // 0 until the first step is recorded
  uint64_t fanin_max = 0;
  uint64_t fanin_total = 0;
  uint64_t predicted_bytes = 0;  // planner's byte volume
  uint64_t actual_bytes = 0;     // bytes the executor's writers produced

  void RecordStep(uint64_t fan_in, uint64_t predicted, uint64_t actual) {
    ++steps;
    fanin_min = fanin_min == 0 ? fan_in : (fan_in < fanin_min ? fan_in
                                                              : fanin_min);
    if (fan_in > fanin_max) fanin_max = fan_in;
    fanin_total += fan_in;
    predicted_bytes += predicted;
    actual_bytes += actual;
  }

  void MergeFrom(const MergePlanStats& other) {
    policy = other.plans > 0 ? other.policy : policy;
    plans += other.plans;
    steps += other.steps;
    input_runs += other.input_runs;
    if (other.fanin_min != 0 &&
        (fanin_min == 0 || other.fanin_min < fanin_min)) {
      fanin_min = other.fanin_min;
    }
    if (other.fanin_max > fanin_max) fanin_max = other.fanin_max;
    fanin_total += other.fanin_total;
    predicted_bytes += other.predicted_bytes;
    actual_bytes += other.actual_bytes;
  }

  /// One JSON object with every counter (telemetry schema `merge_plan`).
  void ToJson(JsonWriter* writer) const;
};

}  // namespace nexsort
