// Heap-based replacement-selection run formation (docs/RUN_FORMATION.md):
// the RunFormationPolicy::kReplacementSelection engine behind
// ExternalMergeSorter. Incoming records fill a selection tournament (the
// project's LoserTree over fixed record slots); once memory is full, each
// arrival evicts the smallest eligible record to the open run and takes its
// slot. A record smaller than the last byte written cannot extend the
// current run, so it is *fenced* into the next one by a tag byte that
// prefixes its tournament key — the two-run invariant: at any moment slots
// hold records of at most two runs, the open run (tag 0) and the next
// (tag 1). When the winner carries tag 1 the open run is complete: close
// it, strip the tags, and keep going. On random input the expected run
// length is twice memory (Knuth 5.4.1); on nearly-sorted input nothing is
// ever fenced and the whole input becomes a single run.
//
// Stability: the tournament orders records by (run tag, key, arrival
// sequence) — `tie_seq()` carries the sequence into LoserTree — and run
// assignment of equal keys is monotone in arrival order, so the formed
// runs merge (ties to the earlier run) into exactly the record sequence
// the quicksort-chunk path produces. Byte-identical output, fewer runs.
//
// Memory is budget-exact against the capacity the owning sorter reserved:
// every resident record is charged key+value bytes plus a fixed per-slot
// overhead, and the double-buffered spill path (AsyncSpiller) only engages
// after reserving its two staging blocks from the MemoryBudget.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "extmem/block_device.h"
#include "extmem/memory_budget.h"
#include "extmem/run_store.h"
#include "parallel/parallel.h"
#include "sort/loser_tree.h"
#include "sort/run_formation.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace nexsort {

class AsyncSpiller;
class Tracer;

/// One tournament slot: holds at most one resident record. A record costs
/// key+value bytes plus exactly sizeof(ReplacementHeapSlot) of overhead —
/// the tag byte, key, and value share one buffer, and slots live by value
/// in a deque (stable addresses, chunked allocation) — so small records do
/// not halve the effective tournament capacity. The stored key is prefixed
/// with the run tag; `tie_seq` is the record's arrival number, which
/// LoserTree compares on equal keys so eviction order is arrival order.
class ReplacementHeapSlot final : public MergeSource {
 public:
  /// Tag byte values: the open run sorts before the fenced next run.
  static constexpr char kCurrentRunTag = '\x00';
  static constexpr char kNextRunTag = '\x01';

  bool exhausted() const override { return !filled_; }
  std::string_view key() const override {  // tag byte + user key
    return std::string_view(data_).substr(0, 1 + key_len_);
  }
  uint64_t tie_seq() const override { return seq_; }

  /// Popping a slot empties it; refills go through Fill + ReplaySource.
  [[nodiscard]] Status Advance() override {
    filled_ = false;
    return Status::OK();
  }

  void Fill(char tag, std::string_view key, std::string_view value,
            uint64_t seq) {
    data_.clear();
    data_.reserve(1 + key.size() + value.size());
    data_.push_back(tag);
    data_.append(key);
    data_.append(value);
    key_len_ = static_cast<uint32_t>(key.size());
    seq_ = seq;
    filled_ = true;
  }

  void set_index(uint32_t index) { index_ = index; }
  uint32_t index() const { return index_; }

  bool fenced() const { return data_[0] == kNextRunTag; }
  void Unfence() { data_[0] = kCurrentRunTag; }

  std::string_view user_key() const {
    return std::string_view(data_).substr(1, key_len_);
  }
  std::string_view value() const {
    return std::string_view(data_).substr(1 + key_len_);
  }
  bool filled() const { return filled_; }

  /// Budget charge for the resident record.
  uint64_t bytes() const {
    return data_.size() - 1 + sizeof(ReplacementHeapSlot);
  }

 private:
  std::string data_;  // 1 tag byte + user key + value, one buffer
  uint64_t seq_ = 0;
  uint32_t index_ = 0;    // position in the former's slot deque
  uint32_t key_len_ = 0;  // user-key bytes (excluding the tag)
  bool filled_ = false;
};

/// One external sort's replacement-selection run former: Add every record,
/// then either FinishRuns (something spilled) or PopMin (everything fit).
class ReplacementSelectionFormer {
 public:
  struct Options {
    /// Tournament memory in bytes (the sorter's (M-1)-block reservation;
    /// the run writer's block is on top, exactly like the quicksort path).
    uint64_t capacity_bytes = 0;
    IoCategory temp_category = IoCategory::kSortTemp;
    Tracer* tracer = nullptr;                 // not owned; may be null
    ParallelContext* parallel = nullptr;      // not owned; may be null
    const CancellationToken* cancel = nullptr;  // not owned; may be null
  };

  ReplacementSelectionFormer(RunStore* store, Options options);
  ~ReplacementSelectionFormer();

  ReplacementSelectionFormer(const ReplacementSelectionFormer&) = delete;
  ReplacementSelectionFormer& operator=(const ReplacementSelectionFormer&) =
      delete;

  /// Admit one record, evicting tournament minima to the open run until it
  /// fits. Polls the cancellation token once per evicted record.
  [[nodiscard]] Status Add(std::string_view key, std::string_view value);

  /// True once any record has been written toward an on-disk run.
  bool spilled() const { return spilled_; }

  /// Drain the tournament into runs and close the last one. The tail may
  /// fence once more, so this can add one final run beyond those already
  /// closed. Appends every formed run to *runs in creation order.
  [[nodiscard]] Status FinishRuns(std::vector<RunHandle>* runs);

  /// In-memory drain for inputs that never spilled: pop records in
  /// (key, arrival) order. Returns false when empty. Must not be mixed
  /// with FinishRuns.
  [[nodiscard]] StatusOr<bool> PopMin(std::string* key, std::string* value);

  const RunFormationStats& stats() const { return stats_; }

  /// Async-path counters for the owner to fold into its ParallelStats.
  const ParallelStats& parallel_stats() const { return pstats_; }

 private:
  /// Build (or rebuild, after growing the slot array) the tournament.
  [[nodiscard]] Status BuildTree();

  /// Evict the tournament winner to the open run, closing it and starting
  /// the next when the winner is fenced. Leaves the winner's slot *pending*
  /// — still seated in the tournament holding the emitted record — so a
  /// following Add can refill it in place and re-seat it with the cheap
  /// champion replay (the textbook replacement-selection step).
  [[nodiscard]] Status EmitMin();

  /// Retire a pending slot that no Add reclaimed: mark it exhausted,
  /// replay, and put it on the free list.
  [[nodiscard]] Status ResolvePending();

  [[nodiscard]] Status StartRun();
  [[nodiscard]] Status CloseRun();

  /// Append one encoded record to the open run — directly, or via the
  /// double-buffered staging path when it is engaged.
  [[nodiscard]] Status WriteRecord(std::string_view key,
                                   std::string_view value);

  /// Hand the filled staging buffer to the background spiller and keep
  /// encoding into the other one.
  [[nodiscard]] Status FlushStagingAsync();

  RunStore* store_;
  const Options options_;
  const uint64_t block_size_;
  BudgetReservation staging_reservation_;  // funds the two staging blocks

  std::deque<ReplacementHeapSlot> slots_;  // stable element addresses
  std::vector<uint32_t> free_slots_;
  std::unique_ptr<LoserTree> tree_;
  bool built_ = false;
  uint64_t used_bytes_ = 0;
  uint64_t live_ = 0;
  uint64_t next_seq_ = 0;

  // The champion slot whose record EmitMin just wrote out: logically dead,
  // but still seated so the next Add can take it over in place.
  bool pending_ = false;
  size_t pending_slot_ = 0;

  // Open-run state. `last_key_` is the largest (== latest) key emitted to
  // the open run; records below it are fenced to the next run.
  bool spilled_ = false;
  bool have_last_key_ = false;
  std::string last_key_;
  std::vector<RunHandle> runs_;
  RunFormationStats stats_;
  ParallelStats pstats_;

  // Double-buffered spill path: records are encoded into one staging
  // buffer while the spiller appends the other to the run writer.
  bool async_attempted_ = false;
  bool async_engaged_ = false;
  std::string staging_[2];
  size_t active_staging_ = 0;

  bool writer_open_ = false;
  std::unique_ptr<RunWriter> run_writer_;

  // Declared last: destroyed first, so an in-flight staging append drains
  // before the writer and staging buffers it references go away.
  std::unique_ptr<AsyncSpiller> spiller_;
};

}  // namespace nexsort
