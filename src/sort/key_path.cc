#include "sort/key_path.h"

namespace nexsort {

namespace {
void AppendSeqBe64(std::string* dst, uint64_t seq) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    dst->push_back(static_cast<char>((seq >> shift) & 0xFF));
  }
}
}  // namespace

void AppendKeyPathComponent(std::string* dst, std::string_view key,
                            uint64_t seq) {
  for (char c : key) {
    if (c == '\0') {
      dst->push_back('\0');
      dst->push_back('\xFF');
    } else {
      dst->push_back(c);
    }
  }
  dst->push_back('\0');
  dst->push_back('\x01');
  AppendSeqBe64(dst, seq);
}

Status DecodeKeyPathComponent(std::string_view* input, std::string* key,
                              uint64_t* seq) {
  key->clear();
  while (true) {
    if (input->empty()) return Status::Corruption("truncated key path");
    char c = input->front();
    input->remove_prefix(1);
    if (c != '\0') {
      key->push_back(c);
      continue;
    }
    if (input->empty()) return Status::Corruption("truncated key escape");
    char next = input->front();
    input->remove_prefix(1);
    if (next == '\xFF') {
      key->push_back('\0');
      continue;
    }
    if (next != '\x01') return Status::Corruption("bad key escape byte");
    break;  // terminator
  }
  if (input->size() < 8) return Status::Corruption("truncated sequence");
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value = (value << 8) | static_cast<unsigned char>((*input)[i]);
  }
  input->remove_prefix(8);
  *seq = value;
  return Status::OK();
}

StatusOr<int> KeyPathDepth(std::string_view path) {
  int depth = 0;
  std::string key;
  uint64_t seq = 0;
  while (!path.empty()) {
    RETURN_IF_ERROR(DecodeKeyPathComponent(&path, &key, &seq));
    ++depth;
  }
  return depth;
}

}  // namespace nexsort
