#include "sort/loser_tree.h"

#include "util/dcheck.h"

namespace nexsort {

LoserTree::LoserTree(std::vector<MergeSource*> sources)
    : sources_(std::move(sources)), k_(static_cast<int>(sources_.size())) {}

int LoserTree::Compare(int a, int b) const {
  // Exhausted sources lose to everything; ties go to the lower tie_seq,
  // then the lower index (tie_seq is a constant for classic run merging,
  // so the historical index tie-break is unchanged there).
  if (a < 0 || static_cast<size_t>(a) >= sources_.size()) return b;
  if (b < 0 || static_cast<size_t>(b) >= sources_.size()) return a;
  bool a_done = sources_[a]->exhausted();
  bool b_done = sources_[b]->exhausted();
  if (a_done) return b;
  if (b_done) return a;
  std::string_view ka = sources_[a]->key();
  std::string_view kb = sources_[b]->key();
  if (ka < kb) return a;
  if (kb < ka) return b;
  uint64_t sa = sources_[a]->tie_seq();
  uint64_t sb = sources_[b]->tie_seq();
  if (sa != sb) return sa < sb ? a : b;
  return a < b ? a : b;
}

bool LoserTree::HeapOrderOk() const {
  int w = tree_[0];
  if (w < 0) return k_ == 0;
  if (sources_[w]->exhausted()) {
    // An exhausted winner is only legal once every source is exhausted.
    for (const MergeSource* source : sources_) {
      if (!source->exhausted()) return false;
    }
    return true;
  }
  std::string_view winner_key = sources_[w]->key();
  uint64_t winner_seq = sources_[w]->tie_seq();
  for (int i = 0; i < k_; ++i) {
    if (sources_[i]->exhausted()) continue;
    std::string_view key = sources_[i]->key();
    if (key < winner_key) return false;
    if (key == winner_key) {  // stability tie-break: (tie_seq, index)
      uint64_t seq = sources_[i]->tie_seq();
      if (seq < winner_seq) return false;
      if (seq == winner_seq && i < w) return false;
    }
  }
  return true;
}

Status LoserTree::Init() {
  NEXSORT_DCHECK(k_ > 0);
  tree_.assign(2 * k_, -1);
  // Leaves occupy [k_, 2k); run one full bottom-up tournament.
  std::vector<int> winner(2 * k_, -1);
  for (int i = 0; i < k_; ++i) winner[k_ + i] = i;
  for (int node = k_ - 1; node >= 1; --node) {
    int left = winner[2 * node];
    int right = winner[2 * node + 1];
    int win = Compare(left, right);
    winner[node] = win;
    tree_[node] = (win == left) ? right : left;
  }
  tree_[0] = winner.size() > 1 ? winner[1] : -1;
  initialized_ = true;
  NEXSORT_DCHECK_MSG(HeapOrderOk(), "loser tree built out of order");
  return Status::OK();
}

MergeSource* LoserTree::Min() const {
  NEXSORT_DCHECK(initialized_);
  int w = tree_[0];
  if (w < 0 || sources_[w]->exhausted()) return nullptr;
  return sources_[w];
}

void LoserTree::Replay(int leaf) {
  int winner = leaf;
  for (int node = (k_ + leaf) / 2; node >= 1; node /= 2) {
    int challenger = tree_[node];
    int win = Compare(winner, challenger);
    if (win != winner) {
      tree_[node] = winner;
      winner = win;
    }
  }
  tree_[0] = winner;
}

void LoserTree::ReplaySource(size_t index) {
  NEXSORT_DCHECK(initialized_);
  NEXSORT_DCHECK(index < sources_.size());
  // Only the reigning champion may be re-seated: its index lives solely in
  // tree_[0] (every internal node holds a loser), so the bottom-up replay —
  // the same fix-up AdvanceMin runs — restores the tournament in one pass.
  // A non-champion source may sit as a stored loser on its own path, which
  // a single walk cannot reconcile against the champion; callers that need
  // to re-key an arbitrary source must rebuild via Init.
  NEXSORT_DCHECK(tree_[0] == static_cast<int>(index));
  Replay(static_cast<int>(index));
  NEXSORT_DCHECK_MSG(HeapOrderOk(),
                     "loser tree heap order violated after re-seat");
}

Status LoserTree::AdvanceMin() {
  NEXSORT_DCHECK(initialized_);
  int w = tree_[0];
  if (w < 0) return Status::InvalidArgument("merge already exhausted");
  RETURN_IF_ERROR(sources_[w]->Advance());
  Replay(w);
  NEXSORT_DCHECK_MSG(HeapOrderOk(),
                     "loser tree heap order violated after replay "
                     "(unsorted source run?)");
  return Status::OK();
}

}  // namespace nexsort
