// Generic external merge sort of (key, value) records under a strict memory
// budget: the classic algorithm the paper compares against (and the one
// NEXSORT falls back to for subtrees larger than internal memory). Run
// formation fills (M-1) blocks of buffer, sorts, and spills; merging uses a
// loser tree with fan-in M-1, so the pass count is ceil(log_{M-1}(runs)) —
// the log_{M/B}(N/B) factor of the flat-file bound.
//
// With a ParallelContext attached (see src/parallel/), the same algorithm
// overlaps compute and I/O without changing its structure:
//
//  * double-buffered run formation — a background worker sorts and spills
//    one full buffer while the foreground keeps Add()-ing into a second
//    one, charged to the same MemoryBudget (and declined, falling back to
//    the serial path, when the budget cannot afford it);
//  * partitioned buffer sorts — the in-memory sort of a full buffer is
//    split across the pool and merged (the record comparator is a strict
//    total order, so the result is bit-identical to the serial sort);
//  * merge-input prefetching — a RunPrefetcher stays prefetch_depth blocks
//    ahead of each merge source inside the BufferPool.
//
// Run boundaries, run contents, merge order, and logical I/O are identical
// with and without a context; only the wall-clock schedule changes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "extmem/block_device.h"
#include "extmem/memory_budget.h"
#include "extmem/run_store.h"
#include "extmem/stream.h"
#include "parallel/parallel.h"
#include "sort/loser_tree.h"
#include "sort/merge_plan.h"
#include "sort/run_formation.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace nexsort {

class BufferPool;
class Tracer;
class AsyncSpiller;
class ReplacementSelectionFormer;

struct ExtSortOptions {
  /// Blocks of internal memory this sort may use (the paper's M for the
  /// baseline; NEXSORT grants its subtree sorts what remains after stack
  /// reservations). Must be >= 3: one output block plus a >=2-way merge.
  uint64_t memory_blocks = 8;

  /// Accounting category for temporary runs.
  IoCategory temp_category = IoCategory::kSortTemp;

  /// Optional telemetry sink (not owned; may be null): spans for run
  /// formation and each merge pass, plus merged-run lifecycle events.
  Tracer* tracer = nullptr;

  /// Shared parallel state (not owned; may be null = fully serial). The
  /// owning sorter creates one ParallelContext so nested subtree sorts
  /// share a single worker pool.
  ParallelContext* parallel = nullptr;

  /// The block cache's pool (not owned; may be null), required for merge
  /// prefetching: prefetched blocks live in its frames, and merge readers
  /// must go through the corresponding CachedBlockDevice to hit them.
  BufferPool* buffer_pool = nullptr;

  /// Cooperative cancellation (not owned; may be null = never cancelled).
  /// Polled at block-granular points — before each run spill and once per
  /// merged record — so Spill/Finish/Next return Status::Cancelled shortly
  /// after the token flips, with all runs and reservations released by the
  /// normal unwind.
  const CancellationToken* cancel = nullptr;

  /// How run formation cuts runs (docs/RUN_FORMATION.md). Output records
  /// are byte-identical under either policy; replacement selection forms
  /// fewer, longer runs and therefore fewer merge passes.
  RunFormationPolicy run_formation = RunFormationPolicy::kQuicksortChunks;

  /// How the merge phase is scheduled (docs/MERGE_PLANNING.md). Output
  /// records are byte-identical under either policy; kPlanned never moves
  /// more bytes or runs more passes than kGreedy.
  MergePolicy merge_policy = MergePolicy::kPlanned;

  /// Lay the final merged run in ascending contiguous extents
  /// (PlacementHint::kSequentialOutput) so draining it reads
  /// sequentially. Changes which block ids carry the run, never its
  /// contents or logical I/O count.
  bool dfs_placement = true;
};

struct ExtSortStats {
  uint64_t records = 0;
  uint64_t bytes = 0;
  uint64_t initial_runs = 0;
  uint64_t merge_passes = 0;
  bool in_memory = false;  // everything fit; no run was spilled
  /// Run-length accounting for the "sort" telemetry block (equal to
  /// initial_runs in count; adds the per-run block sizes).
  RunFormationStats runs;
  /// Merge-schedule accounting (the `merge_plan` telemetry block); all
  /// zero when no merge ran (single-run or in-memory sorts).
  MergePlanStats plan;
};

/// MergeSource decoding length-prefixed (key, value) records from a run.
class RecordRunSource final : public MergeSource {
 public:
  RecordRunSource(RunStore* store, RunHandle handle, IoCategory category);

  /// Prime the first record.
  [[nodiscard]] Status Open();

  bool exhausted() const override { return exhausted_; }
  std::string_view key() const override { return key_; }
  [[nodiscard]] Status Advance() override;

  std::string_view value() const { return value_; }

  /// Byte offset of the next unread record within the run (for merge
  /// prefetching: offset / block_size is the run-block currently in use).
  uint64_t run_offset() const;

  /// Position of this source within its merge group, so the merge loop can
  /// report consumption to the prefetcher without a pointer lookup.
  void set_source_index(size_t index) { source_index_ = index; }
  size_t source_index() const { return source_index_; }

 private:
  RunReader reader_;
  size_t source_index_ = 0;
  bool exhausted_ = false;
  std::string key_;
  std::string value_;
};

/// One-shot sorter: Add all records, Finish, then drain with Next.
class ExternalMergeSorter {
 public:
  ExternalMergeSorter(RunStore* store, ExtSortOptions options);
  ~ExternalMergeSorter();

  const Status& init_status() const { return init_status_; }

  /// Buffer one record, spilling a sorted run if the buffer is full.
  [[nodiscard]] Status Add(std::string_view key, std::string_view value);

  /// Sort everything added. After this only Next may be called. Any error
  /// a background spill hit — including a failed run write — surfaces
  /// here (or from the Add that first observed it).
  [[nodiscard]] Status Finish();

  /// Produce records in key order. Returns false when drained.
  [[nodiscard]] StatusOr<bool> Next(std::string* key, std::string* value);

  const ExtSortStats& stats() const { return stats_; }

  /// This sorter's parallel counters (also folded into the attached
  /// ParallelContext at Finish).
  const ParallelStats& parallel_stats() const { return pstats_; }

 private:
  struct RecordRef {
    uint64_t offset;  // into the buffer's arena
    uint32_t key_len;
    uint32_t value_len;
  };

  /// One run-formation buffer. Two exist so a background spill of one can
  /// overlap filling the other; serial mode only ever touches the first.
  struct SpillBuffer {
    std::string arena;
    std::vector<RecordRef> records;

    uint64_t bytes() const {
      return arena.size() + records.size() * sizeof(RecordRef);
    }
    void Clear() {
      arena.clear();
      records.clear();
    }
  };

  /// Route a full buffer to the background spiller (engaging double
  /// buffering on first use when the budget allows) or spill inline.
  [[nodiscard]] Status Spill();

  /// Sort `buffer` and write it out as one run. `background` suppresses
  /// tracing (the Tracer is single-threaded) and defers the run-created
  /// event for the foreground to emit.
  [[nodiscard]] Status SpillRun(SpillBuffer* buffer, bool background);

  /// Sort a buffer's records: std::sort, or partitioned across the worker
  /// pool and merged when a pool is attached and the buffer is large.
  void SortBuffer(SpillBuffer* buffer);

  /// Emit run-created events recorded by completed background spills.
  /// Callers must know the spiller is idle (after WaitIdle/Drain).
  void FlushDeferredTraces();

  /// Fold the replacement-selection engine's counters into this sorter's
  /// stats, exactly once (idempotent; safe before or after former_ goes).
  void AbsorbFormerStats();

  /// Fold pstats_ into the attached ParallelContext, exactly once.
  void PublishStats();

  /// Plan the merge of the formed runs (MergePlanner, per merge_policy)
  /// and execute the plan step by step: open the step's inputs, loser-tree
  /// them into one output run (placed per dfs_placement on the final
  /// step), free the inputs. runs_ tracks the live runs exactly as steps
  /// complete, so the destructor frees each leftover once on any error.
  [[nodiscard]] Status MergeAll();

  /// Shared Finish tail for both policies: merge the formed runs (skipped
  /// outright when formation produced a single run — zero merge-pass I/O)
  /// and open the survivor for draining.
  [[nodiscard]] Status MergeAndOpenResult();

  RunStore* store_;
  const ExtSortOptions options_;
  BudgetReservation buffer_reservation_;
  BudgetReservation spare_reservation_;  // second buffer when engaged
  Status init_status_;

  uint64_t buffer_capacity_ = 0;  // bytes
  SpillBuffer buffers_[2];
  SpillBuffer* current_ = &buffers_[0];
  std::vector<RunHandle> runs_;
  ExtSortStats stats_;
  ParallelStats pstats_;
  bool double_buffer_attempted_ = false;
  bool double_buffer_engaged_ = false;
  bool stats_published_ = false;
  std::vector<RunHandle> deferred_traces_;  // created by background spills

  // Replacement-selection engine; null under kQuicksortChunks. Its slot
  // memory is charged against buffer_reservation_, exactly like the
  // quicksort path's arena.
  std::unique_ptr<ReplacementSelectionFormer> former_;
  bool former_stats_absorbed_ = false;

  bool finished_ = false;
  // Drain state: either an in-memory cursor or a reader on the final run.
  size_t mem_cursor_ = 0;
  std::unique_ptr<RecordRunSource> result_source_;
  bool result_primed_ = false;
  bool advised_result_ = false;  // pool read-advice installed for the drain

  // Declared last: destroyed first, so an in-flight background spill
  // drains before the buffers and run list it references go away.
  std::unique_ptr<AsyncSpiller> spiller_;
};

/// Decode helper shared by run-record readers.
[[nodiscard]] Status ReadVarintFromRun(RunReader* reader, uint64_t* value);

/// Append one length-prefixed record to `sink`.
[[nodiscard]] Status AppendRecord(ByteSink* sink, std::string_view key,
                    std::string_view value);

}  // namespace nexsort
