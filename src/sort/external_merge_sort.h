// Generic external merge sort of (key, value) records under a strict memory
// budget: the classic algorithm the paper compares against (and the one
// NEXSORT falls back to for subtrees larger than internal memory). Run
// formation fills (M-1) blocks of buffer, sorts, and spills; merging uses a
// loser tree with fan-in M-1, so the pass count is ceil(log_{M-1}(runs)) —
// the log_{M/B}(N/B) factor of the flat-file bound.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "extmem/run_store.h"
#include "sort/loser_tree.h"
#include "util/status.h"

namespace nexsort {

class Tracer;

struct ExtSortOptions {
  /// Blocks of internal memory this sort may use (the paper's M for the
  /// baseline; NEXSORT grants its subtree sorts what remains after stack
  /// reservations). Must be >= 3: one output block plus a >=2-way merge.
  uint64_t memory_blocks = 8;

  /// Accounting category for temporary runs.
  IoCategory temp_category = IoCategory::kSortTemp;

  /// Optional telemetry sink (not owned; may be null): spans for run
  /// formation and each merge pass, plus merged-run lifecycle events.
  Tracer* tracer = nullptr;
};

struct ExtSortStats {
  uint64_t records = 0;
  uint64_t bytes = 0;
  uint64_t initial_runs = 0;
  uint64_t merge_passes = 0;
  bool in_memory = false;  // everything fit; no run was spilled
};

/// MergeSource decoding length-prefixed (key, value) records from a run.
class RecordRunSource final : public MergeSource {
 public:
  RecordRunSource(RunStore* store, RunHandle handle, IoCategory category);

  /// Prime the first record.
  Status Open();

  bool exhausted() const override { return exhausted_; }
  std::string_view key() const override { return key_; }
  Status Advance() override;

  std::string_view value() const { return value_; }

 private:
  RunReader reader_;
  bool exhausted_ = false;
  std::string key_;
  std::string value_;
};

/// One-shot sorter: Add all records, Finish, then drain with Next.
class ExternalMergeSorter {
 public:
  ExternalMergeSorter(RunStore* store, ExtSortOptions options);
  ~ExternalMergeSorter();

  const Status& init_status() const { return init_status_; }

  /// Buffer one record, spilling a sorted run if the buffer is full.
  Status Add(std::string_view key, std::string_view value);

  /// Sort everything added. After this only Next may be called.
  Status Finish();

  /// Produce records in key order. Returns false when drained.
  StatusOr<bool> Next(std::string* key, std::string* value);

  const ExtSortStats& stats() const { return stats_; }

 private:
  struct RecordRef {
    uint64_t offset;  // into arena_
    uint32_t key_len;
    uint32_t value_len;
  };

  Status SpillRun();
  Status MergeAll();

  RunStore* store_;
  const ExtSortOptions options_;
  BudgetReservation buffer_reservation_;
  Status init_status_;

  uint64_t buffer_capacity_ = 0;  // bytes
  std::string arena_;
  std::vector<RecordRef> records_;
  std::vector<RunHandle> runs_;
  ExtSortStats stats_;

  bool finished_ = false;
  // Drain state: either an in-memory cursor or a reader on the final run.
  size_t mem_cursor_ = 0;
  std::unique_ptr<RecordRunSource> result_source_;
  bool result_primed_ = false;
};

/// Decode helper shared by run-record readers.
Status ReadVarintFromRun(RunReader* reader, uint64_t* value);

/// Append one length-prefixed record to `sink`.
Status AppendRecord(ByteSink* sink, std::string_view key,
                    std::string_view value);

}  // namespace nexsort
