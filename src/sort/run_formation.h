// RunFormationPolicy + RunFormationStats: how an external sort cuts sorted
// runs, and what it can report about the runs it cut. The policy knob rides
// on CommonSortOptions (core/common_options.h) so every sorting entry point
// — ExternalMergeSorter, NexSorter, KeyPathXmlSorter — shares one switch;
// the engine behind kReplacementSelection lives in
// sort/replacement_selection.h and the contract is documented in
// docs/RUN_FORMATION.md.
#pragma once

#include <cstdint>

namespace nexsort {

/// How external sorts cut sorted runs during run formation. Output bytes
/// are identical under either policy; only run boundaries (and therefore
/// merge-pass I/O) change.
enum class RunFormationPolicy {
  /// Fill (M-1) blocks of buffer, quicksort, spill: run length == memory.
  /// The classic baseline the paper costs against.
  kQuicksortChunks,
  /// Heap-based replacement selection: a selection tournament emits the
  /// smallest eligible record and refills from input, so runs average ~2x
  /// memory on random input and a nearly-sorted input collapses to a
  /// single run — fewer runs, fewer merge passes.
  kReplacementSelection,
};

/// Short display name for stats JSON ("quicksort_chunks" /
/// "replacement_selection").
const char* RunFormationPolicyName(RunFormationPolicy policy);

/// Run-length accounting shared by both policies: how many runs formation
/// produced and how big they were, in whole blocks (ceil). Feeds the
/// "sort" block of nexsort-stats-v1 (runs_formed / avg_run_blocks /
/// max_run_blocks).
struct RunFormationStats {
  uint64_t runs_formed = 0;
  uint64_t run_blocks_sum = 0;
  uint64_t max_run_blocks = 0;

  void RecordRun(uint64_t run_bytes, uint64_t block_size) {
    uint64_t blocks =
        block_size == 0 ? 0 : (run_bytes + block_size - 1) / block_size;
    ++runs_formed;
    run_blocks_sum += blocks;
    if (blocks > max_run_blocks) max_run_blocks = blocks;
  }

  double avg_run_blocks() const {
    return runs_formed == 0
               ? 0.0
               : static_cast<double>(run_blocks_sum) /
                     static_cast<double>(runs_formed);
  }

  void MergeFrom(const RunFormationStats& other) {
    runs_formed += other.runs_formed;
    run_blocks_sum += other.run_blocks_sum;
    if (other.max_run_blocks > max_run_blocks) {
      max_run_blocks = other.max_run_blocks;
    }
  }
};

}  // namespace nexsort
