#include "sort/replacement_selection.h"

#include <algorithm>
#include <utility>

#include "obs/tracer.h"
#include "parallel/async_spiller.h"
#include "sort/external_merge_sort.h"
#include "util/dcheck.h"
#include "util/varint.h"

namespace nexsort {

ReplacementSelectionFormer::ReplacementSelectionFormer(RunStore* store,
                                                       Options options)
    : store_(store),
      options_(options),
      block_size_(store->device()->block_size()) {}

ReplacementSelectionFormer::~ReplacementSelectionFormer() {
  // An in-flight staging append references the writer and staging buffers;
  // wait it out before tearing anything down.
  if (spiller_ != nullptr) (void)spiller_->WaitIdle();
  // Best-effort cleanup of runs never handed over (cancellation / error
  // unwind); FinishRuns clears the list on the normal path.
  for (RunHandle run : runs_) {
    (void)store_->FreeRun(run);  // unwind path: nothing can act on failure
  }
}

Status ReplacementSelectionFormer::BuildTree() {
  std::vector<MergeSource*> raw;
  raw.reserve(slots_.size());
  for (ReplacementHeapSlot& slot : slots_) raw.push_back(&slot);
  tree_ = std::make_unique<LoserTree>(std::move(raw));
  RETURN_IF_ERROR(tree_->Init());
  built_ = true;
  return Status::OK();
}

Status ReplacementSelectionFormer::Add(std::string_view key,
                                       std::string_view value) {
  const uint64_t record_bytes =
      key.size() + value.size() + sizeof(ReplacementHeapSlot);
  if (!built_) {
    // Fill phase: memory is not full yet, so every record simply becomes a
    // new slot (the first record is always admitted, mirroring the
    // quicksort path's always-accepting empty buffer).
    if (slots_.empty() ||
        used_bytes_ + record_bytes <= options_.capacity_bytes) {
      slots_.emplace_back();
      slots_.back().set_index(static_cast<uint32_t>(slots_.size() - 1));
      slots_.back().Fill(ReplacementHeapSlot::kCurrentRunTag, key, value,
                         next_seq_++);
      used_bytes_ += record_bytes;
      ++live_;
      return Status::OK();
    }
    RETURN_IF_ERROR(BuildTree());
  }
  // Steady state: evict minima until the newcomer fits. If earlier
  // evictions over-freed (a large record made room for this smaller one),
  // evict once anyway: the extra pop is the record the tournament would
  // emit next regardless, and it keeps a pending champion slot available —
  // the only position LoserTree can re-key in one pass. Equal-key arrival
  // order is tournament order either way, so output bytes are unaffected.
  while (used_bytes_ + record_bytes > options_.capacity_bytes && live_ > 0) {
    RETURN_IF_ERROR(EmitMin());
  }
  if (!pending_ && live_ > 0) RETURN_IF_ERROR(EmitMin());
  const char tag = (!have_last_key_ || key >= last_key_)
                       ? ReplacementHeapSlot::kCurrentRunTag
                       : ReplacementHeapSlot::kNextRunTag;
  if (pending_) {
    // Textbook replacement selection: the newcomer takes the just-evicted
    // champion's slot in place, and a champion replay re-seats it.
    pending_ = false;
    slots_[pending_slot_].Fill(tag, key, value, next_seq_++);
    tree_->ReplaySource(pending_slot_);
  } else {
    // The tournament is empty (a record larger than the whole capacity):
    // seat it in a retired slot — or a fresh one — and rebuild.
    uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slots_.emplace_back();
      slot = static_cast<uint32_t>(slots_.size() - 1);
      slots_.back().set_index(slot);
    }
    slots_[slot].Fill(tag, key, value, next_seq_++);
    RETURN_IF_ERROR(BuildTree());
  }
  used_bytes_ += record_bytes;
  ++live_;
  return Status::OK();
}

Status ReplacementSelectionFormer::EmitMin() {
  // Record-granular cancellation point, same cadence as the merge loop.
  RETURN_IF_ERROR(CheckCancelled(options_.cancel));
  RETURN_IF_ERROR(ResolvePending());
  MergeSource* min = tree_->Min();
  NEXSORT_DCHECK(min != nullptr);
  auto* slot = static_cast<ReplacementHeapSlot*>(min);
  if (slot->fenced()) {
    // Every resident record is fenced: the open run has fully drained.
    RETURN_IF_ERROR(CloseRun());
  }
  if (!writer_open_) RETURN_IF_ERROR(StartRun());
  RETURN_IF_ERROR(WriteRecord(slot->user_key(), slot->value()));
  last_key_.assign(slot->user_key());
  have_last_key_ = true;
  used_bytes_ -= slot->bytes();
  --live_;
  pending_ = true;
  pending_slot_ = slot->index();
  return Status::OK();
}

Status ReplacementSelectionFormer::ResolvePending() {
  if (!pending_) return Status::OK();
  // No Add reclaimed the emitted champion's slot: exhaust it so the next
  // winner surfaces, and let a later no-eviction insert reuse it.
  pending_ = false;
  free_slots_.push_back(pending_slot_);
  return tree_->AdvanceMin();
}

Status ReplacementSelectionFormer::StartRun() {
  if (!async_attempted_) {
    async_attempted_ = true;
    ParallelContext* ctx = options_.parallel;
    if (ctx != nullptr && ctx->pool() != nullptr &&
        ctx->options().double_buffer) {
      // The staging pair costs two blocks on top of the tournament and the
      // writer's block. Decline gracefully when the budget cannot fund it;
      // run contents are identical either way.
      if (staging_reservation_.Acquire(store_->budget(), 2).ok()) {
        async_engaged_ = true;
        spiller_ = std::make_unique<AsyncSpiller>(ctx->pool());
      } else {
        ++pstats_.double_buffer_declined;
      }
    }
  }
  run_writer_ =
      std::make_unique<RunWriter>(store_->NewRun(options_.temp_category));
  RETURN_IF_ERROR(run_writer_->init_status());
  if (!async_engaged_) ++pstats_.sync_spills;  // one inline spill per run
  // Staged appends finish on a worker thread; the Tracer is single-
  // threaded, so suppress the writer's own events and emit the created-
  // event from the foreground in CloseRun.
  if (async_engaged_) run_writer_->set_suppress_trace(true);
  writer_open_ = true;
  spilled_ = true;
  return Status::OK();
}

Status ReplacementSelectionFormer::WriteRecord(std::string_view key,
                                               std::string_view value) {
  if (!async_engaged_) {
    return AppendRecord(run_writer_.get(), key, value);
  }
  std::string& staging = staging_[active_staging_];
  PutVarint64(&staging, key.size());
  staging.append(key);
  PutVarint64(&staging, value.size());
  staging.append(value);
  if (staging.size() >= block_size_) RETURN_IF_ERROR(FlushStagingAsync());
  return Status::OK();
}

Status ReplacementSelectionFormer::FlushStagingAsync() {
  // One-deep pipeline: wait for the previous chunk (freeing its buffer),
  // then hand this one off and keep encoding into the drained buffer.
  RETURN_IF_ERROR(spiller_->WaitIdle());
  std::string* full = &staging_[active_staging_];
  active_staging_ ^= 1;
  ++pstats_.async_spills;
  RunWriter* writer = run_writer_.get();
  return spiller_->Submit([writer, full] {
    Status appended = writer->Append(*full);
    full->clear();
    return appended;
  });
}

Status ReplacementSelectionFormer::CloseRun() {
  if (writer_open_) {
    ScopedSpan span(options_.tracer, "run_formation");
    if (async_engaged_) {
      RETURN_IF_ERROR(spiller_->WaitIdle());
      std::string& staging = staging_[active_staging_];
      if (!staging.empty()) {
        RETURN_IF_ERROR(run_writer_->Append(staging));
        staging.clear();
      }
    }
    RunHandle handle;
    RETURN_IF_ERROR(run_writer_->Finish(&handle));
    if (async_engaged_) {
      TraceRunEvent(store_->tracer(), RunEventKind::kCreated,
                    options_.temp_category, handle.byte_size, handle.id);
    }
    runs_.push_back(handle);
    stats_.RecordRun(handle.byte_size, block_size_);
    run_writer_.reset();
    writer_open_ = false;
  }
  have_last_key_ = false;
  last_key_.clear();
  // The next run's records become the open run's. A uniform retag keeps
  // the tournament's relative order, so no rebuild is needed.
  for (ReplacementHeapSlot& slot : slots_) {
    if (slot.filled() && slot.fenced()) slot.Unfence();
  }
  return Status::OK();
}

Status ReplacementSelectionFormer::FinishRuns(std::vector<RunHandle>* runs) {
  NEXSORT_DCHECK(spilled_);
  while (live_ > 0) {
    RETURN_IF_ERROR(EmitMin());
  }
  RETURN_IF_ERROR(CloseRun());
  if (spiller_ != nullptr) {
    pstats_.spill_wait_seconds += spiller_->wait_seconds();
    pstats_.spill_busy_seconds += spiller_->busy_seconds();
  }
  staging_reservation_.Reset();
  runs->insert(runs->end(), runs_.begin(), runs_.end());
  runs_.clear();
  return Status::OK();
}

StatusOr<bool> ReplacementSelectionFormer::PopMin(std::string* key,
                                                  std::string* value) {
  NEXSORT_DCHECK(!spilled_);
  if (live_ == 0) return false;
  if (!built_) RETURN_IF_ERROR(BuildTree());
  MergeSource* min = tree_->Min();
  NEXSORT_DCHECK(min != nullptr);
  auto* slot = static_cast<ReplacementHeapSlot*>(min);
  key->assign(slot->user_key());
  value->assign(slot->value());
  used_bytes_ -= slot->bytes();
  --live_;
  RETURN_IF_ERROR(tree_->AdvanceMin());
  return true;
}

}  // namespace nexsort
