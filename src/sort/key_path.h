// Order-preserving key-path encoding: the flat representation of Table 1 in
// the paper ("the key path of an element is the concatenation of the sort
// key values of all elements along the path from the root"). Encoded paths
// compare correctly with plain bytewise comparison:
//
//   component := escape(key) 0x00 0x01 seq_be64
//   path      := component*          (one component per ancestor, root first)
//
// escape maps 0x00 -> 0x00 0xFF so the 0x00 0x01 terminator sorts before
// any continuation of a longer key, and a parent's path is a strict byte
// prefix of its children's paths, so parents always sort first. The
// fixed-width big-endian sequence number makes every path unique (the
// paper: "we can make it unique by appending the element's location in the
// input") and keeps equal-key siblings in document order.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace nexsort {

/// Append one path component for an element with normalized sort key `key`
/// and document-order sequence number `seq`.
void AppendKeyPathComponent(std::string* dst, std::string_view key,
                            uint64_t seq);

/// Decode the component starting at the front of *input (for debugging and
/// tests); advances past it.
[[nodiscard]] Status DecodeKeyPathComponent(std::string_view* input, std::string* key,
                              uint64_t* seq);

/// Number of components in an encoded path; Corruption if malformed.
[[nodiscard]] StatusOr<int> KeyPathDepth(std::string_view path);

}  // namespace nexsort
