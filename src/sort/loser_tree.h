// Tournament (loser) tree for k-way merging: the merge engine behind
// external merge sort and NEXSORT's incomplete-run merging. O(log k)
// comparisons per record, independent of which source wins.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace nexsort {

/// A stream of key-ordered records feeding a merge.
class MergeSource {
 public:
  virtual ~MergeSource() = default;

  /// True when the stream has no current record.
  virtual bool exhausted() const = 0;

  /// Key of the current record. Valid only if !exhausted().
  virtual std::string_view key() const = 0;

  /// Secondary ordering for equal keys, compared before the source-index
  /// tie-break. The default (a constant) preserves the classic behaviour —
  /// equal keys drain in source order. Replacement selection overrides it
  /// with the record's arrival sequence so the tournament is stable in
  /// arrival order, matching the quicksort-chunk path byte for byte.
  virtual uint64_t tie_seq() const { return 0; }

  /// Move to the next record (possibly exhausting the stream).
  [[nodiscard]] virtual Status Advance() = 0;
};

/// Classic loser tree over `sources`. Ties are broken by (tie_seq, source
/// index), so a merge of runs created in input order is stable.
class LoserTree {
 public:
  explicit LoserTree(std::vector<MergeSource*> sources);

  /// Build the initial tournament. Must be called before Min(); calling it
  /// again rebuilds from the sources' current records (replacement
  /// selection re-seats slots this way after growing the slot array).
  [[nodiscard]] Status Init();

  /// Source holding the globally smallest current key, or nullptr when all
  /// sources are exhausted.
  MergeSource* Min() const;

  /// Advance the winning source and replay its path in the tournament.
  [[nodiscard]] Status AdvanceMin();

  /// Re-seat the *current winner* after its record changed out of band —
  /// replacement selection refills the just-popped champion's slot with a
  /// fresh input record and replays only that leaf's path. AdvanceMin is
  /// exactly Advance-on-the-winner + ReplaySource(winner); re-keying any
  /// other source requires a rebuild via Init.
  void ReplaySource(size_t index);

 private:
  int Compare(int a, int b) const;  // winner of the pair (index)
  void Replay(int leaf);

  /// O(k) tournament audit for NEXSORT_DCHECK: the winner's key is <= the
  /// current key of every non-exhausted source (with index tie-break).
  bool HeapOrderOk() const;

  std::vector<MergeSource*> sources_;
  std::vector<int> tree_;  // internal nodes hold losers; tree_[0] = winner
  int k_ = 0;
  bool initialized_ = false;
};

}  // namespace nexsort
