#include "sort/external_merge_sort.h"

#include <algorithm>
#include <atomic>
#include <optional>

#include "cache/buffer_pool.h"
#include "extmem/block_device.h"
#include "extmem/memory_budget.h"
#include "extmem/stream.h"
#include "obs/tracer.h"
#include "parallel/async_spiller.h"
#include "parallel/run_prefetcher.h"
#include "parallel/worker_pool.h"
#include "sort/replacement_selection.h"
#include "util/cancellation.h"
#include "util/dcheck.h"
#include "util/thread_annotations.h"
#include "util/varint.h"

namespace nexsort {

Status ReadVarintFromRun(RunReader* reader, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    char byte = 0;
    RETURN_IF_ERROR(reader->ReadExact(&byte, 1));
    unsigned char b = static_cast<unsigned char>(byte);
    result |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      *value = result;
      return Status::OK();
    }
  }
  return Status::Corruption("varint too long in run");
}

Status AppendRecord(ByteSink* sink, std::string_view key,
                    std::string_view value) {
  std::string header;
  PutVarint64(&header, key.size());
  RETURN_IF_ERROR(sink->Append(header));
  RETURN_IF_ERROR(sink->Append(key));
  header.clear();
  PutVarint64(&header, value.size());
  RETURN_IF_ERROR(sink->Append(header));
  return sink->Append(value);
}

RecordRunSource::RecordRunSource(RunStore* store, RunHandle handle,
                                 IoCategory category)
    : reader_(store->OpenRun(handle, 0, category)) {}

Status RecordRunSource::Open() {
  RETURN_IF_ERROR(reader_.init_status());
  return Advance();
}

Status RecordRunSource::Advance() {
  if (reader_.bytes_remaining() == 0) {
    exhausted_ = true;
    return Status::OK();
  }
  uint64_t key_len = 0;
  RETURN_IF_ERROR(ReadVarintFromRun(&reader_, &key_len));
  key_.resize(key_len);
  RETURN_IF_ERROR(reader_.ReadExact(key_.data(), key_len));
  uint64_t value_len = 0;
  RETURN_IF_ERROR(ReadVarintFromRun(&reader_, &value_len));
  value_.resize(value_len);
  RETURN_IF_ERROR(reader_.ReadExact(value_.data(), value_len));
  return Status::OK();
}

uint64_t RecordRunSource::run_offset() const { return reader_.offset(); }

ExternalMergeSorter::ExternalMergeSorter(RunStore* store,
                                         ExtSortOptions options)
    : store_(store), options_(options) {
  if (options_.memory_blocks < 3) {
    init_status_ =
        Status::InvalidArgument("external sort needs at least 3 blocks");
    return;
  }
  // One block stays free for the spill/merge writer; the rest buffer input.
  init_status_ =
      buffer_reservation_.Acquire(store->budget(), options_.memory_blocks - 1);
  if (init_status_.ok()) {
    buffer_capacity_ =
        (options_.memory_blocks - 1) * store->device()->block_size();
    if (options_.run_formation == RunFormationPolicy::kReplacementSelection) {
      ReplacementSelectionFormer::Options former_options;
      former_options.capacity_bytes = buffer_capacity_;
      former_options.temp_category = options_.temp_category;
      former_options.tracer = options_.tracer;
      former_options.parallel = options_.parallel;
      former_options.cancel = options_.cancel;
      former_ = std::make_unique<ReplacementSelectionFormer>(
          store_, former_options);
    }
  }
}

ExternalMergeSorter::~ExternalMergeSorter() {
  // An in-flight background spill references our buffers and run list;
  // wait it out before tearing anything down.
  if (spiller_ != nullptr) (void)spiller_->WaitIdle();
  // Drop the drain's read advice: the result run's block ids recycle into
  // later runs, and stale advice would prefetch them at the wrong time.
  if (advised_result_) options_.buffer_pool->ClearReadAdvice();
  PublishStats();
  for (RunHandle run : runs_) {
    (void)store_->FreeRun(run);  // best-effort cleanup of leftover runs
  }
}

Status ExternalMergeSorter::Add(std::string_view key, std::string_view value) {
  if (finished_) return Status::InvalidArgument("sorter already finished");
  if (former_ != nullptr) {
    ++stats_.records;
    stats_.bytes += key.size() + value.size();
    return former_->Add(key, value);
  }
  uint64_t record_bytes = key.size() + value.size() + sizeof(RecordRef);
  if (!current_->records.empty() &&
      current_->bytes() + record_bytes > buffer_capacity_) {
    RETURN_IF_ERROR(Spill());
  }
  SpillBuffer& buffer = *current_;
  RecordRef ref;
  ref.offset = buffer.arena.size();
  ref.key_len = static_cast<uint32_t>(key.size());
  ref.value_len = static_cast<uint32_t>(value.size());
  buffer.arena.append(key);
  buffer.arena.append(value);
  buffer.records.push_back(ref);
  ++stats_.records;
  stats_.bytes += key.size() + value.size();
  return Status::OK();
}

Status ExternalMergeSorter::Spill() {
  // Block-granular cancellation point: a full buffer is about to become a
  // run. Bailing here loses no durable state — spilled runs are freed by
  // the destructor and the buffer reservations unwind normally.
  RETURN_IF_ERROR(CheckCancelled(options_.cancel));
  ParallelContext* ctx = options_.parallel;
  if (!double_buffer_attempted_ && ctx != nullptr && ctx->pool() != nullptr &&
      ctx->options().double_buffer) {
    double_buffer_attempted_ = true;
    // Engaging costs a whole second buffer on top of the first, and the
    // budget must still have the spill writer's block left over. When it
    // doesn't, stay on the serial path — run boundaries are set by
    // buffer_capacity_, which never changes, so output and logical I/O are
    // identical either way.
    MemoryBudget* budget = store_->budget();
    if (spare_reservation_.Acquire(budget, options_.memory_blocks - 1).ok() &&
        budget->available_blocks() >= 1) {
      double_buffer_engaged_ = true;
      spiller_ = std::make_unique<AsyncSpiller>(ctx->pool());
    } else {
      spare_reservation_.Reset();
      ++pstats_.double_buffer_declined;
    }
  }
  if (!double_buffer_engaged_) {
    ++pstats_.sync_spills;
    return SpillRun(current_, /*background=*/false);
  }
  // Wait for the previous spill (making the other buffer reusable), emit
  // the trace events it deferred, then hand the full buffer off and keep
  // accepting records into the drained one.
  RETURN_IF_ERROR(spiller_->WaitIdle());
  FlushDeferredTraces();
  SpillBuffer* full = current_;
  current_ = (current_ == &buffers_[0]) ? &buffers_[1] : &buffers_[0];
  ++pstats_.async_spills;
  return spiller_->Submit(
      [this, full] { return SpillRun(full, /*background=*/true); });
}

Status ExternalMergeSorter::SpillRun(SpillBuffer* buffer, bool background) {
  // Span recording is thread-safe, so a background spill gets its own
  // worker-lane span in the trace; only its run-created *event* stays
  // deferred to the foreground (run events feed histograms, which are
  // foreground-only).
  ScopedSpan span(options_.tracer, "run_formation");
  SortBuffer(buffer);
  RunWriter writer = store_->NewRun(options_.temp_category);
  RETURN_IF_ERROR(writer.init_status());
  if (background) writer.set_suppress_trace(true);
  const char* arena = buffer->arena.data();
  for (const RecordRef& ref : buffer->records) {
    std::string_view key(arena + ref.offset, ref.key_len);
    std::string_view value(arena + ref.offset + ref.key_len, ref.value_len);
    RETURN_IF_ERROR(AppendRecord(&writer, key, value));
  }
  RunHandle handle;
  RETURN_IF_ERROR(writer.Finish(&handle));
  runs_.push_back(handle);
  ++stats_.initial_runs;
  stats_.runs.RecordRun(handle.byte_size, store_->device()->block_size());
  if (background) deferred_traces_.push_back(handle);
  buffer->Clear();
  return Status::OK();
}

void ExternalMergeSorter::SortBuffer(SpillBuffer* buffer) {
  // (key, arena offset) is a strict total order — offsets are unique — so
  // the sorted sequence is unique and any correct sort (serial, or
  // partitioned + merged below) produces bit-identical output. The offset
  // tie-break doubles as stability: arrival order equals arena order.
  struct RecordLess {
    const char* arena;
    bool operator()(const RecordRef& a, const RecordRef& b) const {
      std::string_view ka(arena + a.offset, a.key_len);
      std::string_view kb(arena + b.offset, b.key_len);
      if (ka != kb) return ka < kb;
      return a.offset < b.offset;
    }
  };
  RecordLess less{buffer->arena.data()};
  WorkerPool* pool =
      options_.parallel != nullptr ? options_.parallel->pool() : nullptr;
  const size_t n = buffer->records.size();
  constexpr size_t kMinParallelSortRecords = 4096;
  if (pool == nullptr || pool->size() < 2 || n < kMinParallelSortRecords) {
    std::sort(buffer->records.begin(), buffer->records.end(), less);
    return;
  }

  const size_t chunks = std::min<size_t>(pool->size(), 8);
  struct SortShared {
    RecordRef* base = nullptr;
    RecordLess less{nullptr};
    std::vector<size_t> bounds;
    std::atomic<size_t> next{0};
    Mutex mutex{"ExternalMergeSort::partition", lock_rank::kSortPartition};
    CondVar done_cv;
    size_t done NEXSORT_GUARDED_BY(mutex) = 0;
  };
  auto shared = std::make_shared<SortShared>();
  shared->base = buffer->records.data();
  shared->less = less;
  shared->bounds.resize(chunks + 1);
  for (size_t i = 0; i <= chunks; ++i) shared->bounds[i] = i * n / chunks;
  Tracer* tracer = options_.tracer;
  auto work = [shared, chunks, tracer] {
    for (;;) {
      size_t c = shared->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) break;
      // Thread-safe span: each chunk shows up on the lane of whichever
      // thread (worker or the submitting one) sorted it.
      ScopedSpan span(tracer, "sort_partition");
      std::sort(shared->base + shared->bounds[c],
                shared->base + shared->bounds[c + 1], shared->less);
      span.End();
      MutexLock lock(&shared->mutex);
      if (++shared->done == chunks) shared->done_cv.SignalAll();
    }
  };
  // Helpers may never get a worker (this sort can itself be running on
  // one): the submitting thread participates, so every chunk gets sorted
  // regardless, and stragglers find `next` exhausted and return.
  for (size_t i = 0; i + 1 < chunks; ++i) (void)pool->Submit(work);
  work();
  {
    MutexLock lock(&shared->mutex);
    while (shared->done != chunks) shared->done_cv.Wait(&shared->mutex);
  }
  for (size_t width = 1; width < chunks; width *= 2) {
    for (size_t lo = 0; lo + width < chunks; lo += 2 * width) {
      size_t hi = std::min(chunks, lo + 2 * width);
      std::inplace_merge(shared->base + shared->bounds[lo],
                         shared->base + shared->bounds[lo + width],
                         shared->base + shared->bounds[hi], less);
    }
  }
  ++pstats_.parallel_sorts;
  pstats_.sort_partitions += chunks;
}

void ExternalMergeSorter::FlushDeferredTraces() {
  for (const RunHandle& handle : deferred_traces_) {
    TraceRunEvent(store_->tracer(), RunEventKind::kCreated,
                  options_.temp_category, handle.byte_size, handle.id);
  }
  deferred_traces_.clear();
}

void ExternalMergeSorter::AbsorbFormerStats() {
  if (former_ == nullptr || former_stats_absorbed_) return;
  former_stats_absorbed_ = true;
  stats_.runs = former_->stats();
  stats_.initial_runs = stats_.runs.runs_formed;
  pstats_.MergeFrom(former_->parallel_stats());
}

void ExternalMergeSorter::PublishStats() {
  if (stats_published_) return;
  stats_published_ = true;
  AbsorbFormerStats();
  if (spiller_ != nullptr) {
    pstats_.spill_wait_seconds += spiller_->wait_seconds();
    pstats_.spill_busy_seconds += spiller_->busy_seconds();
  }
  if (options_.parallel != nullptr) options_.parallel->AddStats(pstats_);
}

Status ExternalMergeSorter::MergeAll() {
  const uint64_t fan_in = options_.memory_blocks - 1;
  const uint64_t block_size = store_->device()->block_size();
  const uint32_t depth = options_.parallel != nullptr
                             ? options_.parallel->options().prefetch_depth
                             : 0;
  std::vector<uint64_t> run_bytes;
  run_bytes.reserve(runs_.size());
  for (const RunHandle& run : runs_) run_bytes.push_back(run.byte_size);
  const MergePlan plan =
      MergePlanner::Plan(run_bytes, fan_in, options_.merge_policy);
  stats_.plan.policy = options_.merge_policy;
  ++stats_.plan.plans;
  stats_.plan.input_runs += plan.num_inputs;

  // Node table over the plan's DAG: leaves are the formed runs; a step's
  // output handle lands in its node slot when the step completes.
  // `consumed` enforces the exactly-once discipline on inputs.
  std::vector<RunHandle> nodes(plan.node_count());
  std::vector<bool> ready(plan.node_count(), false);
  std::vector<bool> consumed(plan.node_count(), false);
  for (size_t i = 0; i < runs_.size(); ++i) {
    nodes[i] = runs_[i];
    ready[i] = true;
  }

  uint32_t current_pass = 0;
  std::optional<ScopedSpan> pass_span;
  for (const MergeStep& step : plan.steps) {
    if (!pass_span.has_value() || step.pass != current_pass) {
      pass_span.emplace(options_.tracer, "merge_pass");
      current_pass = step.pass;
      ++stats_.merge_passes;
    }
    const size_t width = step.inputs.size();
    if (options_.tracer != nullptr) {
      // Every step records its true fan-in (the trailing group of a greedy
      // pass — and every planned carry-pass window — is narrower than F).
      options_.tracer->metrics()->GetHistogram("merge_fan_in")
          ->Record(width);
    }
    std::vector<std::unique_ptr<RecordRunSource>> sources;
    std::vector<MergeSource*> raw;
    for (size_t i = 0; i < width; ++i) {
      const uint32_t node = step.inputs[i];
      NEXSORT_DCHECK_MSG(ready[node] && !consumed[node],
                         "merge plan uses a node early or twice");
      sources.push_back(std::make_unique<RecordRunSource>(
          store_, nodes[node], options_.temp_category));
      sources.back()->set_source_index(i);
      RETURN_IF_ERROR(sources.back()->Open());
      raw.push_back(sources.back().get());
    }
    // Prefetch this step's input blocks into the buffer pool ahead of
    // consumption. The merge readers go through the CachedBlockDevice
    // over the same pool, so their logical reads are unchanged — the
    // prefetcher only moves the physical load off the critical path.
    std::unique_ptr<RunPrefetcher> prefetcher;
    std::vector<uint64_t> reported;
    if (depth > 0) {
      if (options_.buffer_pool == nullptr) {
        ++pstats_.prefetch_declined;
      } else {
        std::vector<RunPrefetcher::Source> prefetch_sources;
        for (size_t i = 0; i < width; ++i) {
          RunPrefetcher::Source source;
          RETURN_IF_ERROR(
              store_->SnapshotBlocks(nodes[step.inputs[i]], &source.blocks));
          prefetch_sources.push_back(std::move(source));
        }
        prefetcher = std::make_unique<RunPrefetcher>(
            options_.buffer_pool, options_.temp_category, depth,
            std::move(prefetch_sources));
        reported.assign(width, 0);
      }
    }
    LoserTree tree(std::move(raw));
    RunHandle merged;
    Status step_status = tree.Init();
    if (step_status.ok()) {
      const PlacementHint hint = step.final && options_.dfs_placement
                                     ? PlacementHint::kSequentialOutput
                                     : PlacementHint::kScratch;
      RunWriter writer = store_->NewRun(options_.temp_category, hint);
      step_status = writer.init_status();
      while (step_status.ok()) {
        step_status = CheckCancelled(options_.cancel);
        if (!step_status.ok()) break;
        MergeSource* min = tree.Min();
        if (min == nullptr) break;
        auto* source = static_cast<RecordRunSource*>(min);
        step_status = AppendRecord(&writer, source->key(), source->value());
        if (!step_status.ok()) break;
        step_status = tree.AdvanceMin();
        if (!step_status.ok()) break;
        if (prefetcher != nullptr && !source->exhausted()) {
          uint64_t block = source->run_offset() / block_size;
          size_t index = source->source_index();
          if (block + 1 > reported[index]) {
            reported[index] = block + 1;
            prefetcher->OnConsumed(index, block);
          }
        }
      }
      if (step_status.ok()) step_status = writer.Finish(&merged);
    }
    if (prefetcher != nullptr) {
      prefetcher->Stop();  // before the inputs it reads are freed
      pstats_.prefetch_issued += prefetcher->issued();
    }
    RETURN_IF_ERROR(step_status);
    sources.clear();  // release reader buffers before freeing inputs
    for (size_t i = 0; i < width; ++i) {
      const uint32_t node = step.inputs[i];
      TraceRunEvent(options_.tracer, RunEventKind::kMerged,
                    options_.temp_category, nodes[node].byte_size,
                    nodes[node].id);
      consumed[node] = true;
      // Keep runs_ an exact live-run list as the plan progresses so the
      // destructor frees each leftover exactly once if a later step fails.
      const uint32_t freed_id = nodes[node].id;
      runs_.erase(std::find_if(runs_.begin(), runs_.end(),
                               [freed_id](const RunHandle& run) {
                                 return run.id == freed_id;
                               }));
      RETURN_IF_ERROR(store_->FreeRun(nodes[node]));
    }
    nodes[step.output] = merged;
    ready[step.output] = true;
    runs_.push_back(merged);
    // Outputs are exact concatenations, so the planner's predicted size
    // must match what the writer produced.
    NEXSORT_DCHECK_EQ(merged.byte_size, plan.node_bytes[step.output]);
    stats_.plan.RecordStep(width, plan.node_bytes[step.output],
                           merged.byte_size);
  }
#if NEXSORT_DCHECK_ENABLED
  // Exactly-once discipline over the whole plan: every input run was
  // consumed; only the plan's root survives.
  for (uint32_t i = 0; i < plan.num_inputs; ++i) {
    NEXSORT_DCHECK_MSG(consumed[i], "merge plan left an input run behind");
  }
  NEXSORT_DCHECK(runs_.size() == 1);
  NEXSORT_DCHECK(runs_.front().id == nodes[plan.root()].id);
#endif
  return Status::OK();
}

Status ExternalMergeSorter::MergeAndOpenResult() {
  Status merged = Status::OK();
  if (runs_.size() == 1) {
    // Single-run fast path: run formation already produced the answer, so
    // the merge phase vanishes — no merge pass, no merge-pass I/O. The
    // drain below reads the formed run directly.
    NEXSORT_DCHECK(stats_.merge_passes == 0);
    if (options_.tracer != nullptr) {
      options_.tracer->metrics()
          ->GetCounter("merge_skipped_single_run")
          ->Add(1);
    }
  } else {
    merged = MergeAll();
  }
  PublishStats();
  RETURN_IF_ERROR(merged);
  // Teach the pool the drain's exact block order before the reader opens:
  // with DFS placement most of it is id-adjacent already, but the advice
  // also covers the extent seams the sequential detector would miss.
  if (options_.buffer_pool != nullptr &&
      options_.buffer_pool->options().readahead > 0) {
    std::vector<uint64_t> blocks;
    if (store_->SnapshotBlocks(runs_.front(), &blocks).ok()) {
      options_.buffer_pool->AdviseReadSequence(std::move(blocks));
      advised_result_ = true;
    }
  }
  result_source_ = std::make_unique<RecordRunSource>(
      store_, runs_.front(), options_.temp_category);
  RETURN_IF_ERROR(result_source_->Open());
  result_primed_ = true;
  return Status::OK();
}

Status ExternalMergeSorter::Finish() {
  if (finished_) return Status::InvalidArgument("sorter already finished");
  finished_ = true;
  if (former_ != nullptr) {
    if (!former_->spilled()) {
      // Everything fit in the tournament: drain from memory via PopMin.
      stats_.in_memory = true;
      PublishStats();
      return Status::OK();
    }
    Status formed = former_->FinishRuns(&runs_);
    AbsorbFormerStats();
    if (!formed.ok()) {
      PublishStats();
      return formed;
    }
    // Release the tournament's memory before the merge claims its fan-in
    // readers, mirroring the quicksort path's buffer release below.
    former_.reset();
    buffer_reservation_.Reset();
    spare_reservation_.Reset();
    return MergeAndOpenResult();
  }
  if (spiller_ != nullptr) {
    // Surface any background spill failure — a lost run write must fail
    // the sort, not vanish on a worker thread.
    Status background = spiller_->Drain();
    FlushDeferredTraces();
    if (!background.ok()) {
      PublishStats();
      return background;
    }
  }
  if (runs_.empty()) {
    // Everything fit in the buffer: sort in place and drain from memory.
    stats_.in_memory = true;
    SortBuffer(current_);
    PublishStats();
    return Status::OK();
  }
  if (!current_->records.empty()) {
    // The final partial buffer spills inline: there is nothing left to
    // overlap it with.
    ++pstats_.sync_spills;
    Status spilled = SpillRun(current_, /*background=*/false);
    if (!spilled.ok()) {
      PublishStats();
      return spilled;
    }
  }
  // Release the input buffers before merging: merge fan-in readers (M-1
  // blocks) plus the output writer (1 block) then use exactly M blocks,
  // the sort's whole allowance.
  for (SpillBuffer& buffer : buffers_) {
    buffer.arena.clear();
    buffer.arena.shrink_to_fit();
    buffer.records.clear();
    buffer.records.shrink_to_fit();
  }
  buffer_reservation_.Reset();
  spare_reservation_.Reset();
  return MergeAndOpenResult();
}

StatusOr<bool> ExternalMergeSorter::Next(std::string* key, std::string* value) {
  if (!finished_) return Status::InvalidArgument("Finish() not called");
  if (stats_.in_memory) {
    if (former_ != nullptr) return former_->PopMin(key, value);
    const SpillBuffer& buffer = *current_;
    if (mem_cursor_ >= buffer.records.size()) return false;
    const RecordRef& ref = buffer.records[mem_cursor_++];
    key->assign(buffer.arena.data() + ref.offset, ref.key_len);
    value->assign(buffer.arena.data() + ref.offset + ref.key_len,
                  ref.value_len);
    return true;
  }
  if (!result_primed_ || result_source_->exhausted()) return false;
  key->assign(result_source_->key());
  value->assign(result_source_->value());
  RETURN_IF_ERROR(result_source_->Advance());
  return true;
}

}  // namespace nexsort
