#include "sort/external_merge_sort.h"

#include <algorithm>

#include "obs/tracer.h"
#include "util/varint.h"

namespace nexsort {

Status ReadVarintFromRun(RunReader* reader, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    char byte = 0;
    RETURN_IF_ERROR(reader->ReadExact(&byte, 1));
    unsigned char b = static_cast<unsigned char>(byte);
    result |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      *value = result;
      return Status::OK();
    }
  }
  return Status::Corruption("varint too long in run");
}

Status AppendRecord(ByteSink* sink, std::string_view key,
                    std::string_view value) {
  std::string header;
  PutVarint64(&header, key.size());
  RETURN_IF_ERROR(sink->Append(header));
  RETURN_IF_ERROR(sink->Append(key));
  header.clear();
  PutVarint64(&header, value.size());
  RETURN_IF_ERROR(sink->Append(header));
  return sink->Append(value);
}

RecordRunSource::RecordRunSource(RunStore* store, RunHandle handle,
                                 IoCategory category)
    : reader_(store->OpenRun(handle, 0, category)) {}

Status RecordRunSource::Open() {
  RETURN_IF_ERROR(reader_.init_status());
  return Advance();
}

Status RecordRunSource::Advance() {
  if (reader_.bytes_remaining() == 0) {
    exhausted_ = true;
    return Status::OK();
  }
  uint64_t key_len = 0;
  RETURN_IF_ERROR(ReadVarintFromRun(&reader_, &key_len));
  key_.resize(key_len);
  RETURN_IF_ERROR(reader_.ReadExact(key_.data(), key_len));
  uint64_t value_len = 0;
  RETURN_IF_ERROR(ReadVarintFromRun(&reader_, &value_len));
  value_.resize(value_len);
  RETURN_IF_ERROR(reader_.ReadExact(value_.data(), value_len));
  return Status::OK();
}

ExternalMergeSorter::ExternalMergeSorter(RunStore* store,
                                         ExtSortOptions options)
    : store_(store), options_(options) {
  if (options_.memory_blocks < 3) {
    init_status_ =
        Status::InvalidArgument("external sort needs at least 3 blocks");
    return;
  }
  // One block stays free for the spill/merge writer; the rest buffer input.
  init_status_ =
      buffer_reservation_.Acquire(store->budget(), options_.memory_blocks - 1);
  if (init_status_.ok()) {
    buffer_capacity_ =
        (options_.memory_blocks - 1) * store->device()->block_size();
  }
}

ExternalMergeSorter::~ExternalMergeSorter() {
  for (RunHandle run : runs_) {
    (void)store_->FreeRun(run);
  }
}

Status ExternalMergeSorter::Add(std::string_view key, std::string_view value) {
  if (finished_) return Status::InvalidArgument("sorter already finished");
  uint64_t record_bytes = key.size() + value.size() + sizeof(RecordRef);
  if (!records_.empty() &&
      arena_.size() + records_.size() * sizeof(RecordRef) + record_bytes >
          buffer_capacity_) {
    RETURN_IF_ERROR(SpillRun());
  }
  RecordRef ref;
  ref.offset = arena_.size();
  ref.key_len = static_cast<uint32_t>(key.size());
  ref.value_len = static_cast<uint32_t>(value.size());
  arena_.append(key);
  arena_.append(value);
  records_.push_back(ref);
  ++stats_.records;
  stats_.bytes += key.size() + value.size();
  return Status::OK();
}

Status ExternalMergeSorter::SpillRun() {
  ScopedSpan span(options_.tracer, "run_formation");
  std::sort(records_.begin(), records_.end(),
            [this](const RecordRef& a, const RecordRef& b) {
              std::string_view ka(arena_.data() + a.offset, a.key_len);
              std::string_view kb(arena_.data() + b.offset, b.key_len);
              if (ka != kb) return ka < kb;
              return a.offset < b.offset;  // stability
            });
  RunWriter writer = store_->NewRun(options_.temp_category);
  RETURN_IF_ERROR(writer.init_status());
  for (const RecordRef& ref : records_) {
    std::string_view key(arena_.data() + ref.offset, ref.key_len);
    std::string_view value(arena_.data() + ref.offset + ref.key_len,
                           ref.value_len);
    RETURN_IF_ERROR(AppendRecord(&writer, key, value));
  }
  RunHandle handle;
  RETURN_IF_ERROR(writer.Finish(&handle));
  runs_.push_back(handle);
  ++stats_.initial_runs;
  arena_.clear();
  records_.clear();
  return Status::OK();
}

Status ExternalMergeSorter::MergeAll() {
  const uint64_t fan_in = options_.memory_blocks - 1;
  while (runs_.size() > 1) {
    ++stats_.merge_passes;
    ScopedSpan pass_span(options_.tracer, "merge_pass");
    if (options_.tracer != nullptr) {
      options_.tracer->metrics()->GetHistogram("merge_fan_in")
          ->Record(std::min<uint64_t>(fan_in, runs_.size()));
    }
    std::vector<RunHandle> next_level;
    for (size_t group = 0; group < runs_.size(); group += fan_in) {
      size_t end = std::min(runs_.size(), group + fan_in);
      std::vector<std::unique_ptr<RecordRunSource>> sources;
      std::vector<MergeSource*> raw;
      for (size_t i = group; i < end; ++i) {
        sources.push_back(std::make_unique<RecordRunSource>(
            store_, runs_[i], options_.temp_category));
        RETURN_IF_ERROR(sources.back()->Open());
        raw.push_back(sources.back().get());
      }
      LoserTree tree(std::move(raw));
      RETURN_IF_ERROR(tree.Init());
      RunWriter writer = store_->NewRun(options_.temp_category);
      RETURN_IF_ERROR(writer.init_status());
      while (MergeSource* min = tree.Min()) {
        auto* source = static_cast<RecordRunSource*>(min);
        RETURN_IF_ERROR(AppendRecord(&writer, source->key(), source->value()));
        RETURN_IF_ERROR(tree.AdvanceMin());
      }
      RunHandle merged;
      RETURN_IF_ERROR(writer.Finish(&merged));
      sources.clear();  // release reader buffers before freeing inputs
      for (size_t i = group; i < end; ++i) {
        TraceRunEvent(options_.tracer, RunEventKind::kMerged,
                      options_.temp_category, runs_[i].byte_size,
                      runs_[i].id);
        RETURN_IF_ERROR(store_->FreeRun(runs_[i]));
      }
      next_level.push_back(merged);
    }
    runs_ = std::move(next_level);
  }
  return Status::OK();
}

Status ExternalMergeSorter::Finish() {
  if (finished_) return Status::InvalidArgument("sorter already finished");
  finished_ = true;
  if (runs_.empty()) {
    // Everything fit in the buffer: sort in place and drain from memory.
    stats_.in_memory = true;
    std::sort(records_.begin(), records_.end(),
              [this](const RecordRef& a, const RecordRef& b) {
                std::string_view ka(arena_.data() + a.offset, a.key_len);
                std::string_view kb(arena_.data() + b.offset, b.key_len);
                if (ka != kb) return ka < kb;
                return a.offset < b.offset;
              });
    return Status::OK();
  }
  if (!records_.empty()) RETURN_IF_ERROR(SpillRun());
  // Release the (M-1)-block input buffer before merging: merge fan-in
  // readers (M-1 blocks) plus the output writer (1 block) then use exactly
  // M blocks, the sort's whole allowance.
  arena_.clear();
  arena_.shrink_to_fit();
  records_.clear();
  records_.shrink_to_fit();
  buffer_reservation_.Reset();
  RETURN_IF_ERROR(MergeAll());
  result_source_ = std::make_unique<RecordRunSource>(
      store_, runs_.front(), options_.temp_category);
  RETURN_IF_ERROR(result_source_->Open());
  result_primed_ = true;
  return Status::OK();
}

StatusOr<bool> ExternalMergeSorter::Next(std::string* key, std::string* value) {
  if (!finished_) return Status::InvalidArgument("Finish() not called");
  if (stats_.in_memory) {
    if (mem_cursor_ >= records_.size()) return false;
    const RecordRef& ref = records_[mem_cursor_++];
    key->assign(arena_.data() + ref.offset, ref.key_len);
    value->assign(arena_.data() + ref.offset + ref.key_len, ref.value_len);
    return true;
  }
  if (!result_primed_ || result_source_->exhausted()) return false;
  key->assign(result_source_->key());
  value->assign(result_source_->value());
  RETURN_IF_ERROR(result_source_->Advance());
  return true;
}

}  // namespace nexsort
