#include "sort/run_formation.h"

namespace nexsort {

const char* RunFormationPolicyName(RunFormationPolicy policy) {
  switch (policy) {
    case RunFormationPolicy::kQuicksortChunks:
      return "quicksort_chunks";
    case RunFormationPolicy::kReplacementSelection:
      return "replacement_selection";
  }
  return "unknown";
}

}  // namespace nexsort
