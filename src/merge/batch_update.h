// Batch updates to a sorted XML document, the paper's second application of
// sorting (Section 1): "we first sort the batch of updates according to the
// same ordering criterion as the existing document. Then, we can process
// the batched updates in a way similar to merging them with the existing
// document. The result document remains sorted."
//
// The updates document uses the same shape as the base; each element may
// carry op="merge" (default: union attributes, recurse), op="replace"
// (substitute the whole subtree), or op="delete" (remove the matched
// subtree). Unmatched update elements are inserted in sorted position.
#pragma once

#include "core/nexsort.h"
#include "env/sort_env.h"
#include "extmem/stream.h"
#include "merge/structural_merge.h"
#include "util/status.h"

namespace nexsort {

struct BatchUpdateOptions {
  /// Criterion the base document is sorted by; the updates are sorted with
  /// it automatically before applying.
  OrderSpec order;

  /// Name of the operation attribute on update elements.
  std::string op_attribute = "op";
};

/// Apply `updates` (unsorted XML text) to the already-sorted `base`.
/// The updates batch is NEXSORT-sorted in a session of `env` first, then
/// merged into the base in one pass (telemetry flows from the env's
/// tracer). The result stays fully sorted.
[[nodiscard]] Status ApplyBatchUpdates(ByteSource* base, std::string_view updates,
                         SortEnv* env, ByteSink* output,
                         const BatchUpdateOptions& options,
                         MergeStats* stats = nullptr);

/// Same, but running the update sort in a caller-provided session — so a
/// service job keeps its own I/O attribution and its cancellation token
/// reaches the sort (the merge pass itself is one streaming scan with no
/// run state; cancellation applies while the updates sort runs).
[[nodiscard]] Status ApplyBatchUpdates(ByteSource* base, std::string_view updates,
                         SortEnv::Session session, ByteSink* output,
                         const BatchUpdateOptions& options,
                         MergeStats* stats = nullptr);

}  // namespace nexsort
