#include "merge/batch_update.h"

#include <utility>

#include "extmem/stream.h"
#include "obs/tracer.h"
#include "util/status.h"

namespace nexsort {

Status ApplyBatchUpdates(ByteSource* base, std::string_view updates,
                         SortEnv* env, ByteSink* output,
                         const BatchUpdateOptions& options, MergeStats* stats) {
  return ApplyBatchUpdates(base, updates, env->NewSession(), output, options,
                           stats);
}

Status ApplyBatchUpdates(ByteSource* base, std::string_view updates,
                         SortEnv::Session session, ByteSink* output,
                         const BatchUpdateOptions& options, MergeStats* stats) {
  Tracer* tracer = session.tracer();
  // Step 1: sort the update batch by the base document's criterion.
  std::string sorted_updates;
  {
    ScopedSpan span(tracer, "sort_updates");
    NexSortOptions sort_options;
    sort_options.order = options.order;
    NexSorter sorter(std::move(session), std::move(sort_options));
    StringByteSource source(updates);
    StringByteSink sink(&sorted_updates);
    RETURN_IF_ERROR(sorter.Sort(&source, &sink));
  }

  // Step 2: one-pass merge with update semantics.
  MergeOptions merge_options;
  merge_options.order = options.order;
  merge_options.apply_update_ops = true;
  merge_options.op_attribute = options.op_attribute;
  merge_options.tracer = tracer;
  StringByteSource updates_source(sorted_updates);
  return StructuralMerge(base, &updates_source, output, merge_options, stats);
}

}  // namespace nexsort
