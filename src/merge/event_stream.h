// Shared machinery for the streaming merge/diff family: a one-event
// lookahead stream over a sorted document and the (key, tag) child identity
// both algorithms match on.
#pragma once

#include <string>

#include "core/order_spec.h"
#include "extmem/stream.h"
#include "util/status.h"
#include "xml/sax_parser.h"

namespace nexsort {
namespace merge_internal {

/// One-event-lookahead stream over a sorted document.
class EventStream {
 public:
  explicit EventStream(ByteSource* source) : parser_(source) {}

  [[nodiscard]] Status Advance() {
    ASSIGN_OR_RETURN(bool more, parser_.Next(&event_));
    done_ = !more;
    return Status::OK();
  }

  bool done() const { return done_; }
  const XmlEvent& current() const { return event_; }
  XmlEvent& current() { return event_; }

 private:
  SaxParser parser_;
  XmlEvent event_;
  bool done_ = false;
};

/// What the stream's current item is, within an element's child list.
enum class ItemType { kElement, kText, kEnd };

inline ItemType Classify(const EventStream& stream) {
  if (stream.done()) return ItemType::kEnd;
  switch (stream.current().type) {
    case XmlEventType::kStartElement: return ItemType::kElement;
    case XmlEventType::kText: return ItemType::kText;
    case XmlEventType::kEndElement: return ItemType::kEnd;
  }
  return ItemType::kEnd;
}

/// (key, tag) identity of a child element within one sibling list: equal
/// identity means "the same logical element". Comparison by key first
/// matches the sorted order of both inputs.
struct ChildId {
  std::string key;
  std::string tag;

  bool operator==(const ChildId&) const = default;
  bool operator<(const ChildId& other) const {
    if (key != other.key) return key < other.key;
    return tag < other.tag;
  }
};

inline ChildId IdOf(const OrderSpec& order, const XmlEvent& event) {
  return {order.KeyForStartTag(event.name, event.attributes), event.name};
}

}  // namespace merge_internal
}  // namespace nexsort
