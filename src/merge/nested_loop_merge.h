// The naive merge the paper's Example 1.1 warns about: "a naive approach
// corresponds to the nested-loop join method. For each employee element, we
// find the matching element in the other document by traversing through the
// matching region and branch elements... looking for a particular branch in
// a region requires scanning half of the region subtree on average."
//
// This baseline streams the left document once and, for every left element
// at the match level, rescans the right document from the beginning to
// locate the element with the same ancestor chain, merging its attributes
// and children in. The right document never needs to be sorted — that is
// the point: without sorting, matching costs a partial scan per element,
// and total I/O grows quadratically. Benchmarks read both documents through
// counted block devices to expose exactly that.
//
// Semantics are a *left* join (right-only elements are not emitted): the
// output is the left document enriched with matching right content, which
// is enough to contrast I/O patterns against StructuralMerge.
#pragma once

#include <cstdint>

#include "core/order_spec.h"
#include "extmem/block_device.h"
#include "extmem/memory_budget.h"
#include "extmem/stream.h"
#include "util/status.h"

namespace nexsort {

struct NestedLoopMergeOptions {
  /// Identifies elements: same tag + same key under matching ancestors.
  OrderSpec order;

  /// Document level at which matching happens (e.g. 4 for the employee
  /// elements of Figure 1). Left elements above this level are emitted
  /// as-is; elements below it travel with their match-level ancestor.
  int match_level = 2;
};

struct NestedLoopMergeStats {
  uint64_t probes = 0;          // match-level elements looked up
  uint64_t matches = 0;
  uint64_t right_bytes_scanned = 0;  // cumulative rescan volume
};

/// Merge `right_range` (on `right_device`) into the left document streamed
/// from `left`. Each probe re-reads the right document through the counted
/// device, so right_device->stats() records the quadratic blowup.
[[nodiscard]] Status NestedLoopMerge(ByteSource* left, BlockDevice* right_device,
                       MemoryBudget* budget, ByteRange right_range,
                       ByteSink* output,
                       const NestedLoopMergeOptions& options,
                       NestedLoopMergeStats* stats = nullptr);

}  // namespace nexsort
