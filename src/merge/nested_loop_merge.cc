#include "merge/nested_loop_merge.h"

#include <string>
#include <vector>

#include "xml/sax_parser.h"
#include "xml/writer.h"

namespace nexsort {

namespace {

struct PathStep {
  std::string tag;
  std::string key;
};

// Scan the right document from the top, descending through elements whose
// (tag, key) match `path` step by step; when the full path matches, copy
// the matched element's attributes and children out. Elements that do not
// match are parsed past (which is precisely the wasted I/O of the naive
// approach). Returns true if found.
class RightProbe {
 public:
  RightProbe(BlockDevice* device, MemoryBudget* budget, ByteRange range,
             const std::vector<PathStep>& path, const OrderSpec* spec)
      : reader_(device, budget, range, IoCategory::kInput),
        path_(path),
        spec_(spec) {}

  const Status& init_status() const { return reader_.init_status(); }

  StatusOr<bool> Find(std::vector<XmlAttribute>* attributes,
                      std::vector<XmlEvent>* content,
                      uint64_t* bytes_scanned) {
    SaxParser parser(&reader_);
    XmlEvent event;
    size_t matched = 0;  // how many path steps the current position matches
    int depth = 0;
    while (true) {
      ASSIGN_OR_RETURN(bool more, parser.Next(&event));
      if (!more) break;
      switch (event.type) {
        case XmlEventType::kStartElement: {
          ++depth;
          if (matched == static_cast<size_t>(depth) - 1 &&
              matched < path_.size() && event.name == path_[matched].tag &&
              KeyOf(event) == path_[matched].key) {
            ++matched;
            if (matched == path_.size()) {
              *attributes = event.attributes;
              RETURN_IF_ERROR(CaptureContent(&parser, content));
              *bytes_scanned = parser.bytes_consumed();
              return true;
            }
          }
          break;
        }
        case XmlEventType::kEndElement:
          if (matched == static_cast<size_t>(depth)) --matched;
          --depth;
          break;
        case XmlEventType::kText:
          break;
      }
    }
    *bytes_scanned = parser.bytes_consumed();
    return false;
  }

 private:
  // Identity comparison uses normalized keys so numeric specs match.
  std::string KeyOf(const XmlEvent& event) const {
    return spec_->KeyForStartTag(event.name, event.attributes);
  }

  BlockStreamReader reader_;
  const std::vector<PathStep>& path_;
  const OrderSpec* spec_;

  Status CaptureContent(SaxParser* parser, std::vector<XmlEvent>* content) {
    int depth = 1;
    XmlEvent event;
    while (depth > 0) {
      ASSIGN_OR_RETURN(bool more, parser->Next(&event));
      if (!more) return Status::ParseError("truncated right document");
      if (event.type == XmlEventType::kStartElement) ++depth;
      if (event.type == XmlEventType::kEndElement) --depth;
      if (depth > 0) content->push_back(event);
    }
    return Status::OK();
  }
};

}  // namespace

Status NestedLoopMerge(ByteSource* left, BlockDevice* right_device,
                       MemoryBudget* budget, ByteRange right_range,
                       ByteSink* output,
                       const NestedLoopMergeOptions& options,
                       NestedLoopMergeStats* stats) {
  NestedLoopMergeStats local;
  if (stats == nullptr) stats = &local;
  if (options.order.HasComplexRules()) {
    return Status::NotSupported("nested-loop merge needs start-tag keys");
  }

  SaxParser parser(left);
  XmlWriter writer(output);
  std::vector<PathStep> path;
  XmlEvent event;
  int depth = 0;
  while (true) {
    ASSIGN_OR_RETURN(bool more, parser.Next(&event));
    if (!more) break;
    switch (event.type) {
      case XmlEventType::kStartElement: {
        ++depth;
        path.push_back(
            {event.name,
             options.order.KeyForStartTag(event.name, event.attributes)});
        if (depth == options.match_level) {
          // Probe the right document for this element.
          ++stats->probes;
          std::vector<XmlAttribute> right_attrs;
          std::vector<XmlEvent> right_content;
          uint64_t scanned = 0;
          RightProbe probe(right_device, budget, right_range, path,
                           &options.order);
          RETURN_IF_ERROR(probe.init_status());
          ASSIGN_OR_RETURN(bool found,
                           probe.Find(&right_attrs, &right_content, &scanned));
          stats->right_bytes_scanned += scanned;

          std::vector<XmlAttribute> merged = event.attributes;
          if (found) {
            ++stats->matches;
            for (const XmlAttribute& attr : right_attrs) {
              bool present = false;
              for (const XmlAttribute& existing : merged) {
                if (existing.name == attr.name) {
                  present = true;
                  break;
                }
              }
              if (!present) merged.push_back(attr);
            }
          }
          RETURN_IF_ERROR(writer.StartElement(event.name, merged));
          // Copy the left element's own subtree...
          int sub_depth = 1;
          while (sub_depth > 0) {
            ASSIGN_OR_RETURN(bool inner, parser.Next(&event));
            if (!inner) return Status::ParseError("truncated left document");
            switch (event.type) {
              case XmlEventType::kStartElement:
                ++sub_depth;
                RETURN_IF_ERROR(
                    writer.StartElement(event.name, event.attributes));
                break;
              case XmlEventType::kEndElement:
                --sub_depth;
                if (sub_depth > 0) RETURN_IF_ERROR(writer.EndElement());
                break;
              case XmlEventType::kText:
                RETURN_IF_ERROR(writer.Text(event.text));
                break;
            }
          }
          // ...then the matched right content, then close.
          for (const XmlEvent& right_event : right_content) {
            RETURN_IF_ERROR(writer.Event(right_event));
          }
          RETURN_IF_ERROR(writer.EndElement());
          path.pop_back();
          --depth;
          break;
        }
        RETURN_IF_ERROR(writer.StartElement(event.name, event.attributes));
        break;
      }
      case XmlEventType::kEndElement:
        path.pop_back();
        --depth;
        RETURN_IF_ERROR(writer.EndElement());
        break;
      case XmlEventType::kText:
        RETURN_IF_ERROR(writer.Text(event.text));
        break;
    }
  }
  return writer.Finish();
}

}  // namespace nexsort
