// Structural diff: the inverse of batch updates. Given two documents fully
// sorted under the same OrderSpec, emits an *update batch* document — the
// format ApplyBatchUpdates consumes — such that applying the diff to the
// base reproduces the target:
//
//     ApplyBatchUpdates(base, StructuralDiff(base, target)) == target
//
// One simultaneous pass over both inputs, exactly like structural merge.
// This closes the paper's batch-update loop: sort once, then both compute
// and apply change sets with single passes.
#pragma once

#include <cstdint>

#include "core/order_spec.h"
#include "extmem/stream.h"
#include "util/status.h"

namespace nexsort {

struct DiffOptions {
  /// The spec both inputs are sorted under (simple rules only).
  OrderSpec order;

  /// Operation attribute emitted on update elements.
  std::string op_attribute = "op";

  /// Matched subtrees up to this size are buffered and compared bytewise
  /// (equal => omitted from the diff entirely; different => one compact
  /// op="replace"). Larger subtrees are recursed structurally.
  size_t buffer_limit = 64 * 1024;
};

struct DiffStats {
  uint64_t inserted = 0;
  uint64_t deleted = 0;
  uint64_t replaced = 0;
  uint64_t unchanged = 0;   // matched subtrees proven identical
  uint64_t descended = 0;   // matched subtrees recursed into
};

/// Diff sorted `base` against sorted `target` into an update batch on
/// `output`. The batch is itself sorted under the same spec (ready for a
/// one-pass ApplyBatchUpdates without re-sorting).
[[nodiscard]] Status StructuralDiff(ByteSource* base, ByteSource* target, ByteSink* output,
                      const DiffOptions& options, DiffStats* stats = nullptr);

}  // namespace nexsort
