#include "merge/structural_diff.h"

#include <memory>
#include <vector>

#include "merge/event_stream.h"
#include "xml/writer.h"

namespace nexsort {

namespace {

using merge_internal::ChildId;
using merge_internal::EventStream;

// Abstract event source so the structural path can splice a buffered
// prefix (read while probing a subtree's size) back in front of the live
// stream.
class Src {
 public:
  virtual ~Src() = default;
  virtual bool done() const = 0;
  virtual const XmlEvent& current() const = 0;
  virtual Status Advance() = 0;
};

class LiveSrc final : public Src {
 public:
  explicit LiveSrc(EventStream* stream) : stream_(stream) {}
  bool done() const override { return stream_->done(); }
  const XmlEvent& current() const override { return stream_->current(); }
  Status Advance() override { return stream_->Advance(); }

 private:
  EventStream* stream_;
};

// Puts a buffered event prefix back in front of any source — including
// another SpliceSrc, so nested oversized subtrees compose.
class SpliceSrc final : public Src {
 public:
  SpliceSrc(std::vector<XmlEvent> prefix, Src* tail)
      : prefix_(std::move(prefix)), tail_(tail) {}
  bool done() const override {
    return index_ >= prefix_.size() && tail_->done();
  }
  const XmlEvent& current() const override {
    return index_ < prefix_.size() ? prefix_[index_] : tail_->current();
  }
  Status Advance() override {
    if (index_ < prefix_.size()) {
      ++index_;
      return Status::OK();
    }
    return tail_->Advance();
  }

 private:
  std::vector<XmlEvent> prefix_;
  size_t index_ = 0;
  Src* tail_;
};

merge_internal::ItemType Classify(const Src& src) {
  if (src.done()) return merge_internal::ItemType::kEnd;
  switch (src.current().type) {
    case XmlEventType::kStartElement:
      return merge_internal::ItemType::kElement;
    case XmlEventType::kText:
      return merge_internal::ItemType::kText;
    case XmlEventType::kEndElement:
      return merge_internal::ItemType::kEnd;
  }
  return merge_internal::ItemType::kEnd;
}

size_t EventBytes(const XmlEvent& event) {
  size_t bytes = event.name.size() + event.text.size() + 4;
  for (const XmlAttribute& attr : event.attributes) {
    bytes += attr.name.size() + attr.value.size() + 4;
  }
  return bytes;
}

bool EventsEqual(const XmlEvent& a, const XmlEvent& b) {
  return a.type == b.type && a.name == b.name && a.text == b.text &&
         a.attributes == b.attributes;
}

class Differ {
 public:
  Differ(EventStream* base, EventStream* target, ByteSink* output,
         const DiffOptions& options, DiffStats* stats)
      : base_(base),
        target_(target),
        writer_(output),
        options_(options),
        stats_(stats) {}

  Status Run() {
    RETURN_IF_ERROR(base_->Advance());
    RETURN_IF_ERROR(target_->Advance());
    if (base_->done() || target_->done() ||
        base_->current().type != XmlEventType::kStartElement ||
        target_->current().type != XmlEventType::kStartElement ||
        base_->current().name != target_->current().name) {
      return Status::InvalidArgument("diff inputs must share a root tag");
    }
    if (base_->current().attributes != target_->current().attributes) {
      return Status::NotSupported(
          "root attribute changes cannot be expressed as a batch");
    }
    // The batch root is always present (an empty batch is a valid no-op).
    RETURN_IF_ERROR(writer_.StartElement(target_->current().name,
                                         target_->current().attributes));
    RETURN_IF_ERROR(base_->Advance());
    RETURN_IF_ERROR(target_->Advance());
    LiveSrc base_src(base_);
    LiveSrc target_src(target_);
    RETURN_IF_ERROR(DiffChildren(&base_src, &target_src));
    RETURN_IF_ERROR(writer_.EndElement());
    return writer_.Finish();
  }

 private:
  ChildId IdOf(const XmlEvent& event) const {
    return merge_internal::IdOf(options_.order, event);
  }

  // Copy the current element's subtree from `src` to the writer; with
  // `op` non-empty the root start tag gains op="<op>". With emit=false the
  // subtree is skipped instead.
  Status CopySubtree(Src* src, bool emit, std::string_view op = {}) {
    int depth = 0;
    bool first = true;
    do {
      const XmlEvent& event = src->current();
      switch (event.type) {
        case XmlEventType::kStartElement:
          if (emit) {
            if (first && !op.empty()) {
              std::vector<XmlAttribute> attrs = event.attributes;
              attrs.push_back(
                  {options_.op_attribute, std::string(op)});
              RETURN_IF_ERROR(writer_.StartElement(event.name, attrs));
            } else {
              RETURN_IF_ERROR(
                  writer_.StartElement(event.name, event.attributes));
            }
          }
          ++depth;
          break;
        case XmlEventType::kEndElement:
          if (emit) RETURN_IF_ERROR(writer_.EndElement());
          --depth;
          break;
        case XmlEventType::kText:
          if (emit) RETURN_IF_ERROR(writer_.Text(event.text));
          break;
      }
      first = false;
      RETURN_IF_ERROR(src->Advance());
    } while (depth > 0);
    return Status::OK();
  }

  // Read the current element's subtree into *events; stops early (leaving
  // the stream mid-subtree) once `limit` bytes are buffered. *complete
  // says whether the whole subtree was consumed.
  Status ProbeSubtree(Src* src, std::vector<XmlEvent>* events,
                      size_t limit, bool* complete) {
    int depth = 0;
    size_t bytes = 0;
    do {
      const XmlEvent& event = src->current();
      if (event.type == XmlEventType::kStartElement) ++depth;
      if (event.type == XmlEventType::kEndElement) --depth;
      bytes += EventBytes(event);
      events->push_back(event);
      RETURN_IF_ERROR(src->Advance());
      if (bytes > limit && depth > 0) {
        *complete = false;
        return Status::OK();
      }
    } while (depth > 0);
    *complete = true;
    return Status::OK();
  }

  Status ReplayEvents(const std::vector<XmlEvent>& events,
                      std::string_view op) {
    bool first = true;
    for (const XmlEvent& event : events) {
      if (first && !op.empty()) {
        std::vector<XmlAttribute> attrs = event.attributes;
        attrs.push_back({options_.op_attribute, std::string(op)});
        RETURN_IF_ERROR(writer_.StartElement(event.name, attrs));
        first = false;
        continue;
      }
      RETURN_IF_ERROR(writer_.Event(event));
      first = false;
    }
    return Status::OK();
  }

  // Lazily-opened wrapper bookkeeping: wrappers for matched ancestors are
  // emitted only once a real op needs them.
  struct PendingWrapper {
    std::string name;
    std::vector<XmlAttribute> attributes;
    bool opened = false;
  };

  Status EnsureOpened() {
    for (PendingWrapper& wrapper : pending_) {
      if (wrapper.opened) continue;
      RETURN_IF_ERROR(writer_.StartElement(wrapper.name, wrapper.attributes));
      wrapper.opened = true;
    }
    return Status::OK();
  }

  Status DiffMatched(Src* base, Src* target) {
    std::vector<XmlEvent> base_events;
    std::vector<XmlEvent> target_events;
    bool base_complete = false;
    bool target_complete = false;
    RETURN_IF_ERROR(ProbeSubtree(base, &base_events, options_.buffer_limit,
                                 &base_complete));
    RETURN_IF_ERROR(ProbeSubtree(target, &target_events,
                                 options_.buffer_limit, &target_complete));
    if (base_complete && target_complete) {
      bool equal = base_events.size() == target_events.size();
      for (size_t i = 0; equal && i < base_events.size(); ++i) {
        equal = EventsEqual(base_events[i], target_events[i]);
      }
      if (equal) {
        ++stats_->unchanged;
        return Status::OK();
      }
      ++stats_->replaced;
      RETURN_IF_ERROR(EnsureOpened());
      return ReplayEvents(target_events, "replace");
    }

    // Oversized: splice the probed prefixes back and recurse structurally.
    SpliceSrc base_spliced(std::move(base_events), base);
    SpliceSrc target_spliced(std::move(target_events), target);
    const XmlEvent& base_start = base_spliced.current();
    const XmlEvent& target_start = target_spliced.current();
    if (base_start.attributes != target_start.attributes) {
      ++stats_->replaced;
      RETURN_IF_ERROR(EnsureOpened());
      return  // copy target, skip base
          CopyBoth(&base_spliced, &target_spliced);
    }
    ++stats_->descended;
    pending_.push_back({target_start.name, target_start.attributes, false});
    RETURN_IF_ERROR(base_spliced.Advance());
    RETURN_IF_ERROR(target_spliced.Advance());
    Status st = DiffChildren(&base_spliced, &target_spliced);
    if (st.ok() && pending_.back().opened) {
      st = writer_.EndElement();
    }
    pending_.pop_back();
    return st;
  }

  Status CopyBoth(Src* base, Src* target) {
    RETURN_IF_ERROR(CopySubtree(base, /*emit=*/false));
    return CopySubtree(target, /*emit=*/true, "replace");
  }

  Status DiffChildren(Src* base, Src* target) {
    while (true) {
      auto tb = Classify(*base);
      auto tt = Classify(*target);

      if (tb == merge_internal::ItemType::kText ||
          tt == merge_internal::ItemType::kText) {
        // Direct text under an unbuffered subtree: only identical text in
        // identical positions is expressible.
        if (tb != tt || base->current().text != target->current().text) {
          return Status::NotSupported(
              "text change inside a subtree larger than the diff buffer");
        }
        RETURN_IF_ERROR(base->Advance());
        RETURN_IF_ERROR(target->Advance());
        continue;
      }
      if (tb == merge_internal::ItemType::kEnd &&
          tt == merge_internal::ItemType::kEnd) {
        if (!base->done()) RETURN_IF_ERROR(base->Advance());
        if (!target->done()) RETURN_IF_ERROR(target->Advance());
        return Status::OK();
      }

      bool take_base;
      bool match = false;
      if (tb == merge_internal::ItemType::kEnd) {
        take_base = false;
      } else if (tt == merge_internal::ItemType::kEnd) {
        take_base = true;
      } else {
        ChildId idb = IdOf(base->current());
        ChildId idt = IdOf(target->current());
        if (idb == idt) {
          match = true;
          take_base = true;
        } else {
          take_base = idb < idt;
        }
      }

      if (match) {
        RETURN_IF_ERROR(DiffMatched(base, target));
        continue;
      }
      if (take_base) {
        // Base-only: emit a deletion stub carrying the identity attributes.
        ++stats_->deleted;
        RETURN_IF_ERROR(EnsureOpened());
        std::vector<XmlAttribute> attrs = base->current().attributes;
        attrs.push_back({options_.op_attribute, "delete"});
        RETURN_IF_ERROR(writer_.StartElement(base->current().name, attrs));
        RETURN_IF_ERROR(writer_.EndElement());
        RETURN_IF_ERROR(CopySubtree(base, /*emit=*/false));
      } else {
        // Target-only: insert the subtree verbatim.
        ++stats_->inserted;
        RETURN_IF_ERROR(EnsureOpened());
        RETURN_IF_ERROR(CopySubtree(target, /*emit=*/true));
      }
    }
  }

  EventStream* base_;
  EventStream* target_;
  XmlWriter writer_;
  const DiffOptions& options_;
  DiffStats* stats_;
  std::vector<PendingWrapper> pending_;
};

}  // namespace

Status StructuralDiff(ByteSource* base, ByteSource* target, ByteSink* output,
                      const DiffOptions& options, DiffStats* stats) {
  if (options.order.HasComplexRules()) {
    return Status::NotSupported("diff needs keys available at start tags");
  }
  DiffStats local;
  EventStream base_stream(base);
  EventStream target_stream(target);
  Differ differ(&base_stream, &target_stream, output, options,
                stats != nullptr ? stats : &local);
  return differ.Run();
}

}  // namespace nexsort
