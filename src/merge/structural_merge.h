// Structural merge: the XML analogue of sort-merge join and the paper's
// motivating application (Example 1.1). Given two documents *fully sorted
// under the same OrderSpec*, merges them in a single pass over both:
// matching elements (same parent chain, same tag, same sort key) are
// unified — attributes unioned, children merged recursively — and
// non-matching elements are interleaved in key order (an outer join).
// Sorting first is what makes the single pass possible; NEXSORT provides
// the sort.
//
// The same engine applies sorted batch updates (the paper's second
// application): an updates document whose elements may carry an operation
// attribute (op="merge" | "replace" | "delete") is merged into the base
// document, deleting or replacing matched subtrees.
#pragma once

#include <cstdint>

#include "core/order_spec.h"
#include "extmem/stream.h"
#include "util/status.h"

namespace nexsort {

class Tracer;

struct MergeOptions {
  /// Must be the spec both inputs were sorted with; only simple rules
  /// (keys available on start tags) are supported.
  OrderSpec order;

  /// Optional telemetry sink (not owned; may be null): a span around the
  /// merge pass plus matched/emitted counters.
  Tracer* tracer = nullptr;

  /// What to do with text children of *matched* elements.
  enum class TextPolicy {
    kPreferLeft,  // keep the left document's text; right text only if the
                  // left element had none (Figure 1: <name>Smith</name>
                  // appears once in the merged employee)
    kConcat,      // keep both, left first
  };
  TextPolicy text_policy = TextPolicy::kPreferLeft;

  /// Interpret the right document as a batch of updates: elements carrying
  /// op_attribute control the merge (see above). The op attribute is
  /// stripped from the output.
  bool apply_update_ops = false;
  std::string op_attribute = "op";
};

struct MergeStats {
  uint64_t matched_elements = 0;
  uint64_t left_only = 0;
  uint64_t right_only = 0;
  uint64_t deleted = 0;   // update mode
  uint64_t replaced = 0;  // update mode
};

/// Merge sorted `left` and sorted `right` into `output` in one pass.
/// The two roots must have the same tag name.
[[nodiscard]] Status StructuralMerge(ByteSource* left, ByteSource* right, ByteSink* output,
                       const MergeOptions& options,
                       MergeStats* stats = nullptr);

/// N-way structural merge: combine any number of documents, all fully
/// sorted under options.order, in a single simultaneous pass — the shape
/// of the Nested Merge that Buneman et al.'s XML archiving builds on (see
/// the paper's related work): merging many versions of a document into one
/// archive costs one pass once everything is sorted. Matching elements
/// (same ancestors, tag, and key) are unified with attributes unioned
/// leftmost-wins; earlier inputs win text under kPreferLeft. Update
/// operations are a two-input concept and are rejected here.
[[nodiscard]] Status StructuralMergeMany(const std::vector<ByteSource*>& inputs,
                           ByteSink* output, const MergeOptions& options,
                           MergeStats* stats = nullptr);

}  // namespace nexsort
