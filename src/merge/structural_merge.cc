#include "merge/structural_merge.h"

#include <memory>
#include <string>
#include <vector>

#include "merge/event_stream.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "xml/writer.h"

namespace nexsort {

namespace {

using merge_internal::ChildId;
using merge_internal::EventStream;

class Merger {
 public:
  Merger(EventStream* left, EventStream* right, ByteSink* output,
         const MergeOptions& options, MergeStats* stats)
      : left_(left),
        right_(right),
        writer_(output),
        options_(options),
        stats_(stats) {}

  Status Run() {
    RETURN_IF_ERROR(left_->Advance());
    RETURN_IF_ERROR(right_->Advance());
    if (left_->done() || right_->done()) {
      return Status::InvalidArgument("empty merge input");
    }
    const XmlEvent& a = left_->current();
    const XmlEvent& b = right_->current();
    if (a.type != XmlEventType::kStartElement ||
        b.type != XmlEventType::kStartElement || a.name != b.name) {
      return Status::InvalidArgument("merge inputs must share a root tag");
    }
    RETURN_IF_ERROR(EmitMergedStart(a, b));
    RETURN_IF_ERROR(left_->Advance());
    RETURN_IF_ERROR(right_->Advance());
    RETURN_IF_ERROR(MergeChildren());
    RETURN_IF_ERROR(writer_.EndElement());
    return writer_.Finish();
  }

 private:
  enum class ItemType { kElement, kText, kEnd };

  ItemType Classify(const EventStream& stream) const {
    if (stream.done()) return ItemType::kEnd;
    switch (stream.current().type) {
      case XmlEventType::kStartElement: return ItemType::kElement;
      case XmlEventType::kText: return ItemType::kText;
      case XmlEventType::kEndElement: return ItemType::kEnd;
    }
    return ItemType::kEnd;
  }

  ChildId IdOf(const XmlEvent& event) const {
    return {options_.order.KeyForStartTag(event.name, event.attributes),
            event.name};
  }

  std::string UpdateOp(const XmlEvent& event) const {
    if (!options_.apply_update_ops) return {};
    const std::string* op = event.FindAttribute(options_.op_attribute);
    return op != nullptr ? *op : std::string();
  }

  // Emit a start tag with the union of both elements' attributes (left
  // wins conflicts); the update-op attribute never reaches the output.
  Status EmitMergedStart(const XmlEvent& a, const XmlEvent& b) {
    std::vector<XmlAttribute> merged = a.attributes;
    for (const XmlAttribute& attr : b.attributes) {
      if (options_.apply_update_ops && attr.name == options_.op_attribute) {
        continue;
      }
      bool present = false;
      for (const XmlAttribute& existing : merged) {
        if (existing.name == attr.name) {
          present = true;
          break;
        }
      }
      if (!present) merged.push_back(attr);
    }
    return writer_.StartElement(a.name, merged);
  }

  Status EmitStart(const XmlEvent& event) {
    if (!options_.apply_update_ops) {
      return writer_.StartElement(event.name, event.attributes);
    }
    std::vector<XmlAttribute> attrs;
    for (const XmlAttribute& attr : event.attributes) {
      if (attr.name != options_.op_attribute) attrs.push_back(attr);
    }
    return writer_.StartElement(event.name, attrs);
  }

  // Copy the element `stream` is positioned on (and its whole subtree) to
  // the output; `emit` false skips it instead. Leaves the stream on the
  // next sibling item.
  Status CopySubtree(EventStream* stream, bool emit) {
    int depth = 0;
    do {
      const XmlEvent& event = stream->current();
      switch (event.type) {
        case XmlEventType::kStartElement:
          if (emit) RETURN_IF_ERROR(EmitStart(event));
          ++depth;
          break;
        case XmlEventType::kEndElement:
          if (emit) RETURN_IF_ERROR(writer_.EndElement());
          --depth;
          break;
        case XmlEventType::kText:
          if (emit) RETURN_IF_ERROR(writer_.Text(event.text));
          break;
      }
      RETURN_IF_ERROR(stream->Advance());
    } while (depth > 0);
    return Status::OK();
  }

  // Both streams positioned on the first item inside a matched element;
  // merges until both hit the element's end, consuming the end events.
  Status MergeChildren() {
    bool left_had_text = false;
    while (true) {
      ItemType ta = Classify(*left_);
      ItemType tb = Classify(*right_);

      if (ta == ItemType::kText) {
        RETURN_IF_ERROR(writer_.Text(left_->current().text));
        left_had_text = true;
        RETURN_IF_ERROR(left_->Advance());
        continue;
      }
      if (tb == ItemType::kText) {
        bool keep = options_.text_policy == MergeOptions::TextPolicy::kConcat ||
                    !left_had_text;
        if (keep) RETURN_IF_ERROR(writer_.Text(right_->current().text));
        RETURN_IF_ERROR(right_->Advance());
        continue;
      }
      if (ta == ItemType::kEnd && tb == ItemType::kEnd) {
        if (!left_->done()) RETURN_IF_ERROR(left_->Advance());
        if (!right_->done()) RETURN_IF_ERROR(right_->Advance());
        return Status::OK();
      }

      bool take_left;
      bool match = false;
      if (ta == ItemType::kEnd) {
        take_left = false;
      } else if (tb == ItemType::kEnd) {
        take_left = true;
      } else {
        ChildId ida = IdOf(left_->current());
        ChildId idb = IdOf(right_->current());
        if (ida == idb) {
          match = true;
          take_left = true;
        } else {
          take_left = ida < idb;
        }
      }

      if (match) {
        std::string op = UpdateOp(right_->current());
        if (op == "delete") {
          ++stats_->deleted;
          RETURN_IF_ERROR(CopySubtree(left_, false));
          RETURN_IF_ERROR(CopySubtree(right_, false));
          continue;
        }
        if (op == "replace") {
          ++stats_->replaced;
          RETURN_IF_ERROR(CopySubtree(left_, false));
          RETURN_IF_ERROR(CopySubtree(right_, true));
          continue;
        }
        ++stats_->matched_elements;
        RETURN_IF_ERROR(
            EmitMergedStart(left_->current(), right_->current()));
        RETURN_IF_ERROR(left_->Advance());
        RETURN_IF_ERROR(right_->Advance());
        RETURN_IF_ERROR(MergeChildren());
        RETURN_IF_ERROR(writer_.EndElement());
        continue;
      }

      if (take_left) {
        ++stats_->left_only;
        RETURN_IF_ERROR(CopySubtree(left_, true));
      } else {
        std::string op = UpdateOp(right_->current());
        if (op == "delete") {
          // Deleting something absent from the base: drop it silently.
          ++stats_->deleted;
          RETURN_IF_ERROR(CopySubtree(right_, false));
        } else {
          ++stats_->right_only;
          RETURN_IF_ERROR(CopySubtree(right_, true));
        }
      }
    }
  }

  EventStream* left_;
  EventStream* right_;
  XmlWriter writer_;
  const MergeOptions& options_;
  MergeStats* stats_;
};

// N-way merger: the same recursive child-matching discipline as the
// two-way Merger, across any number of simultaneously scanned documents.
class NWayMerger {
 public:
  NWayMerger(std::vector<EventStream*> streams, ByteSink* output,
             const MergeOptions& options, MergeStats* stats)
      : streams_(std::move(streams)),
        writer_(output),
        options_(options),
        stats_(stats) {}

  Status Run() {
    for (EventStream* stream : streams_) RETURN_IF_ERROR(stream->Advance());
    const XmlEvent& first = streams_.front()->current();
    for (EventStream* stream : streams_) {
      if (stream->done() ||
          stream->current().type != XmlEventType::kStartElement ||
          stream->current().name != first.name) {
        return Status::InvalidArgument("merge inputs must share a root tag");
      }
    }
    RETURN_IF_ERROR(EmitUnionStart(streams_));
    for (EventStream* stream : streams_) RETURN_IF_ERROR(stream->Advance());
    RETURN_IF_ERROR(MergeChildren(streams_));
    RETURN_IF_ERROR(writer_.EndElement());
    return writer_.Finish();
  }

 private:
  enum class ItemType { kElement, kText, kEnd };

  ItemType Classify(const EventStream& stream) const {
    if (stream.done()) return ItemType::kEnd;
    switch (stream.current().type) {
      case XmlEventType::kStartElement: return ItemType::kElement;
      case XmlEventType::kText: return ItemType::kText;
      case XmlEventType::kEndElement: return ItemType::kEnd;
    }
    return ItemType::kEnd;
  }

  ChildId IdOf(const XmlEvent& event) const {
    return {options_.order.KeyForStartTag(event.name, event.attributes),
            event.name};
  }

  // Start tag with the union of the current start events' attributes,
  // leftmost input winning conflicts.
  Status EmitUnionStart(const std::vector<EventStream*>& matched) {
    std::vector<XmlAttribute> merged;
    for (EventStream* stream : matched) {
      for (const XmlAttribute& attr : stream->current().attributes) {
        bool present = false;
        for (const XmlAttribute& existing : merged) {
          if (existing.name == attr.name) {
            present = true;
            break;
          }
        }
        if (!present) merged.push_back(attr);
      }
    }
    return writer_.StartElement(matched.front()->current().name, merged);
  }

  Status CopySubtree(EventStream* stream) {
    int depth = 0;
    do {
      const XmlEvent& event = stream->current();
      switch (event.type) {
        case XmlEventType::kStartElement:
          RETURN_IF_ERROR(writer_.StartElement(event.name, event.attributes));
          ++depth;
          break;
        case XmlEventType::kEndElement:
          RETURN_IF_ERROR(writer_.EndElement());
          --depth;
          break;
        case XmlEventType::kText:
          RETURN_IF_ERROR(writer_.Text(event.text));
          break;
      }
      RETURN_IF_ERROR(stream->Advance());
    } while (depth > 0);
    return Status::OK();
  }

  // All streams in `active` positioned on the first item inside a matched
  // element; merge until every one reaches the element's end.
  Status MergeChildren(const std::vector<EventStream*>& active) {
    bool had_text = false;
    while (true) {
      // Texts first, leftmost input priority.
      bool emitted_text = false;
      for (EventStream* stream : active) {
        while (Classify(*stream) == ItemType::kText) {
          bool keep =
              options_.text_policy == MergeOptions::TextPolicy::kConcat ||
              !had_text;
          if (keep) {
            RETURN_IF_ERROR(writer_.Text(stream->current().text));
            had_text = true;
          }
          RETURN_IF_ERROR(stream->Advance());
          emitted_text = true;
        }
      }
      if (emitted_text) continue;  // texts may have exposed new items

      // Smallest current child across all streams.
      bool any_element = false;
      ChildId min_id;
      for (EventStream* stream : active) {
        if (Classify(*stream) != ItemType::kElement) continue;
        ChildId id = IdOf(stream->current());
        if (!any_element || id < min_id) {
          min_id = id;
          any_element = true;
        }
      }
      if (!any_element) {
        // Every stream is at the element's end: consume the end tags.
        for (EventStream* stream : active) {
          if (!stream->done()) RETURN_IF_ERROR(stream->Advance());
        }
        return Status::OK();
      }

      std::vector<EventStream*> matched;
      for (EventStream* stream : active) {
        if (Classify(*stream) == ItemType::kElement &&
            IdOf(stream->current()) == min_id) {
          matched.push_back(stream);
        }
      }
      if (matched.size() == 1) {
        ++stats_->left_only;  // present in exactly one input
        RETURN_IF_ERROR(CopySubtree(matched.front()));
        continue;
      }
      ++stats_->matched_elements;
      RETURN_IF_ERROR(EmitUnionStart(matched));
      for (EventStream* stream : matched) RETURN_IF_ERROR(stream->Advance());
      RETURN_IF_ERROR(MergeChildren(matched));
      RETURN_IF_ERROR(writer_.EndElement());
    }
  }

  std::vector<EventStream*> streams_;
  XmlWriter writer_;
  const MergeOptions& options_;
  MergeStats* stats_;
};

}  // namespace

Status StructuralMergeMany(const std::vector<ByteSource*>& inputs,
                           ByteSink* output, const MergeOptions& options,
                           MergeStats* stats) {
  if (options.order.HasComplexRules()) {
    return Status::NotSupported(
        "structural merge needs keys available at start tags");
  }
  if (options.apply_update_ops) {
    return Status::NotSupported("update operations are two-input only");
  }
  if (inputs.empty()) return Status::InvalidArgument("no merge inputs");
  MergeStats local;
  std::vector<std::unique_ptr<EventStream>> owned;
  std::vector<EventStream*> streams;
  for (ByteSource* input : inputs) {
    owned.push_back(std::make_unique<EventStream>(input));
    streams.push_back(owned.back().get());
  }
  NWayMerger merger(std::move(streams), output, options,
                    stats != nullptr ? stats : &local);
  ScopedSpan span(options.tracer, "structural_merge_many");
  Status status = merger.Run();
  span.End();
  if (options.tracer != nullptr) {
    MergeStats& used = stats != nullptr ? *stats : local;
    MetricsRegistry* metrics = options.tracer->metrics();
    metrics->GetCounter("merge_matched_elements")->Add(used.matched_elements);
    metrics->GetCounter("merge_left_only")->Add(used.left_only);
    metrics->GetCounter("merge_right_only")->Add(used.right_only);
  }
  return status;
}

Status StructuralMerge(ByteSource* left, ByteSource* right, ByteSink* output,
                       const MergeOptions& options, MergeStats* stats) {
  if (options.order.HasComplexRules()) {
    return Status::NotSupported(
        "structural merge needs keys available at start tags");
  }
  MergeStats local;
  EventStream left_stream(left);
  EventStream right_stream(right);
  Merger merger(&left_stream, &right_stream, output, options,
                stats != nullptr ? stats : &local);
  ScopedSpan span(options.tracer, "structural_merge");
  Status status = merger.Run();
  span.End();
  if (options.tracer != nullptr) {
    MergeStats& used = stats != nullptr ? *stats : local;
    MetricsRegistry* metrics = options.tracer->metrics();
    metrics->GetCounter("merge_matched_elements")->Add(used.matched_elements);
    metrics->GetCounter("merge_left_only")->Add(used.left_only);
    metrics->GetCounter("merge_right_only")->Add(used.right_only);
    metrics->GetCounter("merge_deleted")->Add(used.deleted);
    metrics->GetCounter("merge_replaced")->Add(used.replaced);
  }
  return status;
}

}  // namespace nexsort
