// SortEnv: the execution environment every sort/merge job runs in. One
// declarative SortEnvOptions (or the fluent SortEnvBuilder) describes the
// whole resource stack and SortEnv owns its composition:
//
//   MemoryBudget (M blocks, the paper's hard cap)
//     └─ base BlockDevice (in-RAM or file-backed working storage)
//          └─ optional wrapper layers (throttle, fault injection — see
//             extmem/device_wrappers.h), stacked bottom-up in declaration
//             order
//               └─ optional BufferPool block cache (CachedBlockDevice,
//                  frames charged to the budget)
//   WorkerPool (shared background threads when parallel.threads > 0)
//   Tracer (optional, not owned) wired to every component that reports
//
// Entry points (NexSorter, KeyPathXmlSorter, JsonSorter, ApplyBatchUpdates)
// consume a SortEnv instead of hand-assembled (BlockDevice*, MemoryBudget*)
// pairs, so "N concurrent sorts against one budget" is a configuration, not
// an accident of wiring: each job gets a cheap SortEnv::Session that owns
// the job-local state (its temp-run store and its parallel counters over
// the shared pool) while budget blocks, cache frames, and worker threads
// stay shared with exact accounting. See docs/ARCHITECTURE.md.
//
// Construction of MemoryBudget / BufferPool / WorkerPool outside this
// directory (and tests) is forbidden by the `env-construction` lint rule.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/buffer_pool.h"
#include "extmem/block_device.h"
#include "extmem/device_wrappers.h"
#include "extmem/memory_budget.h"
#include "extmem/run_store.h"
#include "obs/telemetry_hub.h"
#include "parallel/parallel.h"
#include "parallel/worker_pool.h"
#include "util/cancellation.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace nexsort {

class JsonWriter;
class Tracer;

/// Footprint of one SortEnv::Session: the job's own logical I/O (counted
/// by its per-session accounting device, so sums across sessions match
/// the env device's read/write/category totals exactly), its run volume,
/// and its wall-clock window. budget_peak_blocks is the *shared* budget's
/// high-water observed while the session ran — the budget has no
/// per-session ledger, so it is attribution by window, not by owner.
struct SessionStats {
  uint64_t id = 0;
  bool active = false;       // still running when snapshotted
  double start_seconds = 0;  // since the env's telemetry epoch
  double wall_seconds = 0;
  IoStats io;                // logical I/O through the session's device
  uint64_t runs_created = 0;
  uint64_t spilled_bytes = 0;  // payload bytes finished into runs
  uint64_t budget_peak_blocks = 0;

  /// One object of the `sessions` array in nexsort-stats-v1.
  void ToJson(JsonWriter* writer) const;
};

/// One wrapper layer in the device stack, applied bottom-up over the base
/// storage device (before the cache, which always sits on top).
struct DeviceLayer {
  enum class Kind {
    kThrottle,  // real wall-clock delay per access (overlap benchmarks)
    kFault,     // failure-injection point, armed via FailNextOps et al.
  };
  Kind kind = Kind::kThrottle;

  /// Delay model when kind == kThrottle; ignored for kFault.
  ThrottleModel throttle;

  static DeviceLayer Throttle(ThrottleModel model = {}) {
    return DeviceLayer{Kind::kThrottle, model};
  }
  static DeviceLayer Fault() { return DeviceLayer{Kind::kFault, {}}; }
};

/// Declarative description of the whole resource stack. Field-for-field
/// this replaces what every entry point used to assemble by hand; the
/// former NexSortOptions/KeyPathSortOptions `tracer`, `cache`, `parallel`,
/// and `sort_memory_blocks` fields live here now.
struct SortEnvOptions {
  /// Block size B of the working device, in bytes.
  size_t block_size = 4096;

  /// Memory budget M, in blocks — the hard cap shared by every job that
  /// runs in this env (stacks, sort buffers, cache frames, stream buffers).
  uint64_t memory_blocks = 32;

  /// Modeled-seconds cost model of the base device.
  DiskModel disk_model;

  /// Backing storage: empty = in-RAM device (tests/benchmarks); a path =
  /// file-backed working storage (CLI tools).
  std::string file_path;

  /// Wrapper layers stacked bottom-up over the base device, below the
  /// cache. Order matters and any order composes.
  std::vector<DeviceLayer> layers;

  /// Block cache on top of the device stack (frames > 0 enables it; the
  /// frames are charged against memory_blocks for the env's lifetime).
  CacheOptions cache;

  /// Compute/I-O overlap: threads > 0 starts one WorkerPool shared by
  /// every session; prefetch_depth needs cache.frames > 0.
  ParallelOptions parallel;

  /// Blocks of internal memory each sort may use; 0 sizes automatically
  /// from what the budget has left at sort time. Pin it to compare serial
  /// and parallel runs under identical run structure, or to give N
  /// concurrent jobs deterministic, identical grants.
  uint64_t sort_memory_blocks = 0;

  /// Optional telemetry sink (not owned; may be null; span recording is
  /// thread-safe but concurrent sessions sharing one tracer interleave
  /// their spans — see Session::set_tracer for per-job sinks).
  Tracer* tracer = nullptr;

  /// Live telemetry: > 0 gives the env a TelemetryHub and starts its
  /// background StatsSampler at this interval (milliseconds), snapshotting
  /// budget / cache / worker / run-store gauges and logical-vs-physical
  /// I/O into every attached TimelineSink. 0 (default) = no sampler, no
  /// hub, zero overhead.
  uint32_t sample_interval_ms = 0;
};

/// The composed, owned resource stack. Create one per working-storage
/// domain; run any number of jobs in it, serially or concurrently.
class SortEnv {
 public:
  /// Validates the options and composes the stack. Fails when the backing
  /// file cannot be opened, the budget cannot fund the cache frames, or
  /// the knobs are inconsistent (readahead/prefetch without cache frames).
  [[nodiscard]] static StatusOr<std::unique_ptr<SortEnv>> Create(
      SortEnvOptions options);

  ~SortEnv();

  SortEnv(const SortEnv&) = delete;
  SortEnv& operator=(const SortEnv&) = delete;

  /// Per-job handle: cheap to create, movable, one per sort/merge job.
  /// Owns the job's temp-run lifecycle (RunStore), its parallel counters
  /// (ParallelContext over the env's shared WorkerPool), and its
  /// accounting device — a thin forwarder over the env's device whose
  /// IoStats count exactly this job's logical I/O; shares everything else
  /// — device stack, cache frames, budget blocks — with every other
  /// session of the env, with exact accounting. The env tracks every
  /// session: a live one contributes to the sampler's run-store gauges,
  /// and a destroyed one leaves its final SessionStats behind for the
  /// `sessions` array.
  class Session {
   public:
    Session(Session&& other) noexcept;
    Session& operator=(Session&& other) noexcept;
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;
    ~Session();

    SortEnv* env() const { return env_; }

    /// This job's accounting device: forwards to the env's device (cache
    /// when enabled) while counting the job's own logical I/O.
    BlockDevice* device() const { return device_.get(); }
    BlockDevice* physical_device() const { return env_->physical_device(); }
    MemoryBudget* budget() const { return env_->budget(); }
    BufferPool* buffer_pool() const { return env_->buffer_pool(); }
    uint64_t sort_memory_blocks() const {
      return env_->options().sort_memory_blocks;
    }

    uint64_t id() const { return id_; }

    /// This job's run store (over the session's accounting device).
    RunStore* run_store() const { return run_store_.get(); }

    /// This job's parallel context; null when the env is fully serial.
    ParallelContext* parallel() const { return parallel_.get(); }

    /// This job's cancellation token. Sorters running in the session poll
    /// it at block-granular points and return Status::Cancelled; flip it
    /// from any thread via cancellation_handle()->Cancel(). Every session
    /// gets one (the cost is a single relaxed atomic load per poll).
    const CancellationToken* cancellation() const { return cancel_.get(); }

    /// Shared handle for the party requesting cancellation (a service's
    /// Cancel RPC, a signal handler) — may outlive the session.
    std::shared_ptr<CancellationToken> cancellation_handle() const {
      return cancel_;
    }

    /// The job's telemetry sink: the env's tracer unless overridden.
    /// Override (or null out) per session when several jobs run
    /// concurrently — spans would interleave in one shared tracer.
    Tracer* tracer() const { return tracer_; }
    void set_tracer(Tracer* tracer);

    /// Snapshot of this job's footprint so far. Thread-safe (atomics
    /// only); also taken automatically at destruction and retained by the
    /// env.
    SessionStats stats() const;

    /// Write back cached dirty blocks (surfacing deferred write-back
    /// failures); no-op without a cache.
    [[nodiscard]] Status Flush() { return env_->Flush(); }

   private:
    friend class SortEnv;
    explicit Session(SortEnv* env);

    SortEnv* env_;  // null after being moved from
    uint64_t id_ = 0;
    Tracer* tracer_;
    double start_seconds_ = 0;
    std::chrono::steady_clock::time_point start_;
    std::unique_ptr<BlockDevice> device_;  // per-session accounting wrapper
    std::unique_ptr<RunStore> run_store_;
    std::unique_ptr<ParallelContext> parallel_;
    std::shared_ptr<CancellationToken> cancel_;
  };

  Session NewSession() { return Session(this); }

  // -- Shared stack accessors ------------------------------------------

  size_t block_size() const { return options_.block_size; }
  const SortEnvOptions& options() const { return options_; }

  /// Top of the device stack — what jobs should do I/O through (the cache
  /// when enabled, else the topmost wrapper layer, else the base device).
  BlockDevice* device() {
    return cache_ != nullptr ? static_cast<BlockDevice*>(cache_.get())
                             : physical_;
  }

  /// Top *physical* device (just below the cache): its IoStats count real
  /// block transfers, which is what tracer spans and benchmarks snapshot.
  BlockDevice* physical_device() { return physical_; }

  /// Bottom storage device (below every wrapper layer).
  BlockDevice* base_device() { return base_.get(); }

  /// Wrapper layer `index` (bottom-up, matching options().layers) — e.g.
  /// to arm FailNextOps on a kFault layer. Null when out of range.
  BlockDevice* layer_device(size_t index) {
    return index < layers_.size() ? layers_[index].get() : nullptr;
  }

  MemoryBudget* budget() { return &budget_; }

  /// The block cache's pool; null when cache.frames == 0.
  BufferPool* buffer_pool() { return cache_ != nullptr ? cache_->pool() : nullptr; }

  /// The shared worker pool; null when parallel.threads == 0.
  WorkerPool* worker_pool() { return worker_pool_.get(); }

  Tracer* tracer() const { return options_.tracer; }

  /// The live-telemetry hub; null unless options.sample_interval_ms > 0.
  /// Attach TimelineSinks here (the sampler is already running).
  TelemetryHub* telemetry() { return hub_.get(); }

  /// Counters of the block cache; all zeros when caching is disabled.
  CacheStats cache_stats() const {
    return cache_ != nullptr ? cache_->pool()->stats() : CacheStats();
  }

  /// Every session's footprint: finished sessions first (in finish
  /// order), then still-active ones. Safe to call while jobs run.
  std::vector<SessionStats> session_stats() const;

  /// The `sessions` array of nexsort-stats-v1.
  void SessionsToJson(JsonWriter* writer) const;

  /// Write back every cached dirty block, surfacing any deferred
  /// write-back failure; OK when caching is off.
  [[nodiscard]] Status Flush() {
    return cache_ != nullptr ? cache_->Flush() : Status::OK();
  }

  /// Serialize the env's composition (block size, budget, device layers,
  /// cache/parallel knobs) as one JSON object — the `env` block of
  /// nexsort-stats-v1.
  void DescribeJson(JsonWriter* writer) const;

 private:
  explicit SortEnv(SortEnvOptions options);

  void RegisterSession(Session* session);
  void MoveSession(Session* from, Session* to);
  void UnregisterSession(Session* session);

  /// Sampler probe: fill one TelemetrySample with the env-wide gauges.
  /// Runs on the sampler thread (atomics and locked registries only).
  void SampleGauges(TelemetrySample* sample);

  SortEnvOptions options_;
  MemoryBudget budget_;
  std::unique_ptr<BlockDevice> base_;
  std::vector<std::unique_ptr<BlockDevice>> layers_;  // bottom-up wrappers
  BlockDevice* physical_ = nullptr;  // top of layers_, or base_
  std::unique_ptr<CachedBlockDevice> cache_;  // null when caching is off
  std::unique_ptr<WorkerPool> worker_pool_;   // null when serial

  mutable Mutex sessions_mutex_{"SortEnv::sessions_mutex_",
                                lock_rank::kSessionTable};
  std::vector<Session*> active_sessions_ NEXSORT_GUARDED_BY(sessions_mutex_);
  std::vector<SessionStats> finished_sessions_
      NEXSORT_GUARDED_BY(sessions_mutex_);
  uint64_t next_session_id_ NEXSORT_GUARDED_BY(sessions_mutex_) = 0;

  // Declared last on purpose: destroyed first, which stops the sampler
  // thread while every component it probes is still alive.
  std::unique_ptr<TelemetryHub> hub_;
};

/// Fluent construction for the common cases:
///
///   ASSIGN_OR_RETURN(auto env, SortEnvBuilder()
///                                  .BlockSize(4096)
///                                  .MemoryBlocks(64)
///                                  .Cache(32, /*readahead=*/4)
///                                  .Threads(2)
///                                  .Build());
class SortEnvBuilder {
 public:
  SortEnvBuilder& BlockSize(size_t bytes) {
    options_.block_size = bytes;
    return *this;
  }
  SortEnvBuilder& MemoryBlocks(uint64_t blocks) {
    options_.memory_blocks = blocks;
    return *this;
  }
  SortEnvBuilder& Disk(DiskModel model) {
    options_.disk_model = model;
    return *this;
  }
  SortEnvBuilder& File(std::string path) {
    options_.file_path = std::move(path);
    return *this;
  }
  SortEnvBuilder& Layer(DeviceLayer layer) {
    options_.layers.push_back(layer);
    return *this;
  }
  SortEnvBuilder& Throttle(ThrottleModel model = {}) {
    return Layer(DeviceLayer::Throttle(model));
  }
  SortEnvBuilder& FaultLayer() { return Layer(DeviceLayer::Fault()); }
  SortEnvBuilder& Cache(uint64_t frames, uint64_t readahead = 0) {
    options_.cache = CacheOptions{frames, readahead};
    return *this;
  }
  SortEnvBuilder& Threads(uint32_t threads) {
    options_.parallel.threads = threads;
    return *this;
  }
  SortEnvBuilder& PrefetchDepth(uint32_t depth) {
    options_.parallel.prefetch_depth = depth;
    return *this;
  }
  SortEnvBuilder& SortMemoryBlocks(uint64_t blocks) {
    options_.sort_memory_blocks = blocks;
    return *this;
  }
  SortEnvBuilder& Telemetry(Tracer* tracer) {
    options_.tracer = tracer;
    return *this;
  }
  SortEnvBuilder& SampleIntervalMs(uint32_t interval_ms) {
    options_.sample_interval_ms = interval_ms;
    return *this;
  }

  const SortEnvOptions& options() const { return options_; }

  [[nodiscard]] StatusOr<std::unique_ptr<SortEnv>> Build() {
    return SortEnv::Create(options_);
  }

 private:
  SortEnvOptions options_;
};

}  // namespace nexsort
