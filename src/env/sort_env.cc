#include "env/sort_env.h"

#include "obs/json_writer.h"
#include "obs/tracer.h"

namespace nexsort {

namespace {

const char* DeviceLayerName(DeviceLayer::Kind kind) {
  switch (kind) {
    case DeviceLayer::Kind::kThrottle:
      return "throttle";
    case DeviceLayer::Kind::kFault:
      return "fault";
  }
  return "unknown";
}

}  // namespace

SortEnv::SortEnv(SortEnvOptions options)
    : options_(std::move(options)), budget_(options_.memory_blocks) {}

SortEnv::~SortEnv() = default;

StatusOr<std::unique_ptr<SortEnv>> SortEnv::Create(SortEnvOptions options) {
  if (options.block_size == 0) {
    return Status::InvalidArgument("SortEnv: block_size must be > 0");
  }
  if (options.memory_blocks == 0) {
    return Status::InvalidArgument("SortEnv: memory_blocks must be >= 1");
  }
  if (options.cache.frames == 0 && options.cache.readahead > 0) {
    return Status::InvalidArgument(
        "SortEnv: cache.readahead needs cache.frames > 0");
  }
  if (options.cache.frames > 0 && options.cache.frames >= options.memory_blocks) {
    return Status::InvalidArgument(
        "SortEnv: cache.frames must leave budget blocks for the sort itself");
  }

  std::unique_ptr<SortEnv> env(new SortEnv(std::move(options)));
  const SortEnvOptions& opts = env->options_;

  if (opts.file_path.empty()) {
    env->base_ = NewMemoryBlockDevice(opts.block_size, opts.disk_model);
  } else {
    ASSIGN_OR_RETURN(env->base_, NewFileBlockDevice(opts.file_path,
                                                    opts.block_size,
                                                    opts.disk_model));
  }

  env->physical_ = env->base_.get();
  for (const DeviceLayer& layer : opts.layers) {
    switch (layer.kind) {
      case DeviceLayer::Kind::kThrottle:
        env->layers_.push_back(
            NewThrottledBlockDevice(env->physical_, layer.throttle));
        break;
      case DeviceLayer::Kind::kFault:
        env->layers_.push_back(NewFaultInjectionBlockDevice(env->physical_));
        break;
    }
    env->physical_ = env->layers_.back().get();
  }

  if (opts.cache.frames > 0) {
    env->cache_ = std::make_unique<CachedBlockDevice>(
        env->physical_, &env->budget_, opts.cache);
    RETURN_IF_ERROR(env->cache_->init_status());
    if (opts.tracer != nullptr) env->cache_->pool()->set_tracer(opts.tracer);
  }

  if (opts.parallel.threads > 0) {
    env->worker_pool_ = std::make_unique<WorkerPool>(opts.parallel.threads);
  }

  return env;
}

SortEnv::Session::Session(SortEnv* env)
    : env_(env),
      tracer_(env->tracer()),
      run_store_(std::make_unique<RunStore>(env->device(), env->budget())) {
  run_store_->set_tracer(tracer_);
  if (env->options().parallel.enabled()) {
    parallel_ = std::make_unique<ParallelContext>(env->options().parallel,
                                                  env->worker_pool());
  }
}

void SortEnv::Session::set_tracer(Tracer* tracer) {
  tracer_ = tracer;
  run_store_->set_tracer(tracer);
}

void SortEnv::DescribeJson(JsonWriter* writer) const {
  writer->BeginObject();
  writer->Key("block_size");
  writer->Uint(options_.block_size);
  writer->Key("memory_blocks");
  writer->Uint(options_.memory_blocks);
  writer->Key("device");
  writer->String(options_.file_path.empty() ? "memory" : "file");
  writer->Key("layers");
  writer->BeginArray();
  for (const DeviceLayer& layer : options_.layers) {
    writer->String(DeviceLayerName(layer.kind));
  }
  writer->EndArray();
  writer->Key("cache_frames");
  writer->Uint(options_.cache.frames);
  writer->Key("readahead");
  writer->Uint(options_.cache.readahead);
  writer->Key("threads");
  writer->Uint(options_.parallel.threads);
  writer->Key("prefetch_depth");
  writer->Uint(options_.parallel.prefetch_depth);
  writer->Key("sort_memory_blocks");
  writer->Uint(options_.sort_memory_blocks);
  writer->EndObject();
}

}  // namespace nexsort
