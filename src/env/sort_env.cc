#include "env/sort_env.h"

#include <algorithm>

#include "obs/json_writer.h"
#include "obs/tracer.h"

namespace nexsort {

namespace {

const char* DeviceLayerName(DeviceLayer::Kind kind) {
  switch (kind) {
    case DeviceLayer::Kind::kThrottle:
      return "throttle";
    case DeviceLayer::Kind::kFault:
      return "fault";
  }
  return "unknown";
}

/// Per-session forwarder over the env's shared device: its own IoStats
/// count exactly this session's logical accesses (sums across sessions
/// reproduce the shared device's read/write/category totals — though not
/// the sequentiality subsets or modeled seconds, which depend on how the
/// sessions' streams interleave at the shared layer). Allocation is
/// delegated wholesale to the inner device: with several wrappers beside
/// each other, only the inner device can hand out dense ids.
class SessionAccountingDevice final : public BlockDevice {
 public:
  SessionAccountingDevice(BlockDevice* inner, DiskModel model)
      : BlockDevice(inner->block_size(), model), inner_(inner) {
    SyncNumBlocks(inner->num_blocks());
  }

  Status Allocate(uint64_t count, uint64_t* first_id) override {
    RETURN_IF_ERROR(inner_->Allocate(count, first_id));
    // Adopt the inner count (>= our blocks) so bounds checks admit every
    // id this session was handed.
    SyncNumBlocks(inner_->num_blocks());
    return Status::OK();
  }

 protected:
  Status DoRead(uint64_t block_id, char* buf, IoCategory category) override {
    return inner_->Read(block_id, buf, category);
  }
  Status DoWrite(uint64_t block_id, const char* buf,
                 IoCategory category) override {
    return inner_->Write(block_id, buf, category);
  }
  Status DoAllocate(uint64_t /*count*/) override {
    return Status::InvalidArgument(
        "SessionAccountingDevice: allocation is forwarded via Allocate");
  }

 private:
  BlockDevice* inner_;
};

}  // namespace

void SessionStats::ToJson(JsonWriter* writer) const {
  writer->BeginObject();
  writer->Key("id");
  writer->Uint(id);
  writer->Key("active");
  writer->Bool(active);
  writer->Key("start_seconds");
  writer->Double(start_seconds);
  writer->Key("wall_seconds");
  writer->Double(wall_seconds);
  writer->Key("io");
  io.ToJson(writer);
  writer->Key("runs_created");
  writer->Uint(runs_created);
  writer->Key("spilled_bytes");
  writer->Uint(spilled_bytes);
  writer->Key("budget_peak_blocks");
  writer->Uint(budget_peak_blocks);
  writer->EndObject();
}

SortEnv::SortEnv(SortEnvOptions options)
    : options_(std::move(options)), budget_(options_.memory_blocks) {}

SortEnv::~SortEnv() = default;

StatusOr<std::unique_ptr<SortEnv>> SortEnv::Create(SortEnvOptions options) {
  if (options.block_size == 0) {
    return Status::InvalidArgument("SortEnv: block_size must be > 0");
  }
  if (options.memory_blocks == 0) {
    return Status::InvalidArgument("SortEnv: memory_blocks must be >= 1");
  }
  if (options.cache.frames == 0 && options.cache.readahead > 0) {
    return Status::InvalidArgument(
        "SortEnv: cache.readahead needs cache.frames > 0");
  }
  if (options.cache.frames > 0 && options.cache.frames >= options.memory_blocks) {
    return Status::InvalidArgument(
        "SortEnv: cache.frames must leave budget blocks for the sort itself");
  }

  std::unique_ptr<SortEnv> env(new SortEnv(std::move(options)));
  const SortEnvOptions& opts = env->options_;

  if (opts.file_path.empty()) {
    env->base_ = NewMemoryBlockDevice(opts.block_size, opts.disk_model);
  } else {
    ASSIGN_OR_RETURN(env->base_, NewFileBlockDevice(opts.file_path,
                                                    opts.block_size,
                                                    opts.disk_model));
  }

  env->physical_ = env->base_.get();
  for (const DeviceLayer& layer : opts.layers) {
    switch (layer.kind) {
      case DeviceLayer::Kind::kThrottle:
        env->layers_.push_back(
            NewThrottledBlockDevice(env->physical_, layer.throttle));
        break;
      case DeviceLayer::Kind::kFault:
        env->layers_.push_back(NewFaultInjectionBlockDevice(env->physical_));
        break;
    }
    env->physical_ = env->layers_.back().get();
  }

  if (opts.cache.frames > 0) {
    env->cache_ = std::make_unique<CachedBlockDevice>(
        env->physical_, &env->budget_, opts.cache);
    RETURN_IF_ERROR(env->cache_->init_status());
    if (opts.tracer != nullptr) env->cache_->pool()->set_tracer(opts.tracer);
  }

  if (opts.parallel.threads > 0) {
    env->worker_pool_ = std::make_unique<WorkerPool>(opts.parallel.threads);
  }

  if (opts.sample_interval_ms > 0) {
    env->hub_ = std::make_unique<TelemetryHub>();
    SortEnv* raw = env.get();
    env->hub_->StartSampler(
        [raw](TelemetrySample* sample) { raw->SampleGauges(sample); },
        opts.sample_interval_ms);
  }

  return env;
}

SortEnv::Session::Session(SortEnv* env)
    : env_(env),
      tracer_(env->tracer()),
      start_(std::chrono::steady_clock::now()),
      device_(std::make_unique<SessionAccountingDevice>(
          env->device(), env->options().disk_model)),
      run_store_(std::make_unique<RunStore>(device_.get(), env->budget())),
      cancel_(std::make_shared<CancellationToken>()) {
  run_store_->set_tracer(tracer_);
  if (env->options().parallel.enabled()) {
    parallel_ = std::make_unique<ParallelContext>(env->options().parallel,
                                                  env->worker_pool());
  }
  if (env_->hub_ != nullptr) start_seconds_ = env_->hub_->ElapsedSeconds();
  env_->RegisterSession(this);
}

SortEnv::Session::Session(Session&& other) noexcept
    : env_(other.env_),
      id_(other.id_),
      tracer_(other.tracer_),
      start_seconds_(other.start_seconds_),
      start_(other.start_),
      device_(std::move(other.device_)),
      run_store_(std::move(other.run_store_)),
      parallel_(std::move(other.parallel_)),
      cancel_(std::move(other.cancel_)) {
  other.env_ = nullptr;
  if (env_ != nullptr) env_->MoveSession(&other, this);
}

SortEnv::Session& SortEnv::Session::operator=(Session&& other) noexcept {
  if (this == &other) return *this;
  if (env_ != nullptr) env_->UnregisterSession(this);
  env_ = other.env_;
  id_ = other.id_;
  tracer_ = other.tracer_;
  start_seconds_ = other.start_seconds_;
  start_ = other.start_;
  device_ = std::move(other.device_);
  run_store_ = std::move(other.run_store_);
  parallel_ = std::move(other.parallel_);
  cancel_ = std::move(other.cancel_);
  other.env_ = nullptr;
  if (env_ != nullptr) env_->MoveSession(&other, this);
  return *this;
}

SortEnv::Session::~Session() {
  if (env_ != nullptr) env_->UnregisterSession(this);
}

void SortEnv::Session::set_tracer(Tracer* tracer) {
  tracer_ = tracer;
  run_store_->set_tracer(tracer);
}

SessionStats SortEnv::Session::stats() const {
  SessionStats stats;
  stats.id = id_;
  stats.active = true;
  stats.start_seconds = start_seconds_;
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  stats.io = device_->stats();
  stats.runs_created = run_store_->runs_created();
  stats.spilled_bytes = run_store_->finished_bytes();
  stats.budget_peak_blocks = env_->budget_.peak_blocks();
  return stats;
}

void SortEnv::RegisterSession(Session* session) {
  MutexLock lock(&sessions_mutex_);
  session->id_ = next_session_id_++;
  active_sessions_.push_back(session);
}

void SortEnv::MoveSession(Session* from, Session* to) {
  MutexLock lock(&sessions_mutex_);
  std::replace(active_sessions_.begin(), active_sessions_.end(), from, to);
}

void SortEnv::UnregisterSession(Session* session) {
  SessionStats final_stats = session->stats();
  final_stats.active = false;
  MutexLock lock(&sessions_mutex_);
  active_sessions_.erase(std::remove(active_sessions_.begin(),
                                     active_sessions_.end(), session),
                         active_sessions_.end());
  finished_sessions_.push_back(std::move(final_stats));
}

std::vector<SessionStats> SortEnv::session_stats() const {
  MutexLock lock(&sessions_mutex_);
  std::vector<SessionStats> all = finished_sessions_;
  for (const Session* session : active_sessions_) {
    all.push_back(session->stats());
  }
  return all;
}

void SortEnv::SessionsToJson(JsonWriter* writer) const {
  writer->BeginArray();
  for (const SessionStats& stats : session_stats()) {
    stats.ToJson(writer);
  }
  writer->EndArray();
}

void SortEnv::SampleGauges(TelemetrySample* sample) {
  auto gauge = [sample](const char* name, double value) {
    sample->gauges.emplace_back(name, value);
  };

  gauge("budget_used_blocks", budget_.used_blocks());
  gauge("budget_total_blocks", budget_.total_blocks());
  gauge("budget_peak_blocks", budget_.peak_blocks());

  // device() counts logical accesses (what jobs asked for); the physical
  // device below the cache counts real transfers. Identical without a
  // cache, and their gap is exactly the I/O the cache absorbed.
  const IoStats& logical = device()->stats();
  const IoStats& physical = physical_->stats();
  gauge("io_logical_reads", logical.reads.load(std::memory_order_relaxed));
  gauge("io_logical_writes", logical.writes.load(std::memory_order_relaxed));
  gauge("io_logical_total", logical.total());
  gauge("io_physical_reads", physical.reads.load(std::memory_order_relaxed));
  gauge("io_physical_writes",
        physical.writes.load(std::memory_order_relaxed));
  gauge("io_physical_total", physical.total());
  for (int i = 0; i < kNumIoCategories; ++i) {
    uint64_t reads = physical.category_reads[i].load(std::memory_order_relaxed);
    uint64_t writes =
        physical.category_writes[i].load(std::memory_order_relaxed);
    if (reads == 0 && writes == 0) continue;  // keep quiet categories out
    std::string name = IoCategoryName(static_cast<IoCategory>(i));
    sample->gauges.emplace_back("io_physical_" + name + "_reads",
                                static_cast<double>(reads));
    sample->gauges.emplace_back("io_physical_" + name + "_writes",
                                static_cast<double>(writes));
  }

  if (cache_ != nullptr) {
    BufferPool* pool = cache_->pool();
    CacheStats stats = pool->stats();
    gauge("cache_hits", stats.hits);
    gauge("cache_misses", stats.misses);
    gauge("cache_pinned_frames", pool->pinned_frames());
    gauge("cache_dirty_frames", pool->dirty_frames());
    // Same absence convention as the stats block: no accesses, no gauge.
    if (stats.hits + stats.misses > 0) {
      gauge("cache_hit_rate_pct", stats.hit_rate() * 100.0);
    }
  }

  if (worker_pool_ != nullptr) {
    gauge("workers_total", worker_pool_->size());
    gauge("workers_busy", worker_pool_->busy_workers());
    gauge("workers_queue_depth", worker_pool_->queue_depth());
  }

  {
    MutexLock lock(&sessions_mutex_);
    uint64_t live_runs = 0, live_bytes = 0;
    uint64_t created = 0, spilled = 0;
    for (const Session* session : active_sessions_) {
      live_runs += session->run_store()->live_runs();
      live_bytes += session->run_store()->live_bytes();
      created += session->run_store()->runs_created();
      spilled += session->run_store()->finished_bytes();
    }
    for (const SessionStats& finished : finished_sessions_) {
      created += finished.runs_created;
      spilled += finished.spilled_bytes;
    }
    gauge("sessions_active", active_sessions_.size());
    gauge("runs_live", live_runs);
    gauge("run_live_bytes", live_bytes);
    gauge("runs_created", created);
    gauge("run_spilled_bytes", spilled);
  }
}

void SortEnv::DescribeJson(JsonWriter* writer) const {
  writer->BeginObject();
  writer->Key("block_size");
  writer->Uint(options_.block_size);
  writer->Key("memory_blocks");
  writer->Uint(options_.memory_blocks);
  writer->Key("device");
  writer->String(options_.file_path.empty() ? "memory" : "file");
  writer->Key("layers");
  writer->BeginArray();
  for (const DeviceLayer& layer : options_.layers) {
    writer->String(DeviceLayerName(layer.kind));
  }
  writer->EndArray();
  writer->Key("cache_frames");
  writer->Uint(options_.cache.frames);
  writer->Key("readahead");
  writer->Uint(options_.cache.readahead);
  writer->Key("threads");
  writer->Uint(options_.parallel.threads);
  writer->Key("prefetch_depth");
  writer->Uint(options_.parallel.prefetch_depth);
  writer->Key("sort_memory_blocks");
  writer->Uint(options_.sort_memory_blocks);
  writer->Key("sample_interval_ms");
  writer->Uint(options_.sample_interval_ms);
  writer->EndObject();
}

}  // namespace nexsort
