#include "xml/escape.h"

#include <cstdlib>

namespace nexsort {

void AppendEscapedText(std::string* out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '&': out->append("&amp;"); break;
      case '<': out->append("&lt;"); break;
      case '>': out->append("&gt;"); break;
      default: out->push_back(c);
    }
  }
}

void AppendEscapedAttribute(std::string* out, std::string_view value) {
  for (char c : value) {
    switch (c) {
      case '&': out->append("&amp;"); break;
      case '<': out->append("&lt;"); break;
      case '>': out->append("&gt;"); break;
      case '"': out->append("&quot;"); break;
      default: out->push_back(c);
    }
  }
}

namespace {

// Append the UTF-8 encoding of `cp` to *out.
void AppendUtf8(std::string* out, uint32_t cp) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

}  // namespace

Status AppendUnescaped(
    std::string* out, std::string_view input,
    const std::unordered_map<std::string, std::string>* custom) {
  size_t i = 0;
  while (i < input.size()) {
    char c = input[i];
    if (c != '&') {
      out->push_back(c);
      ++i;
      continue;
    }
    size_t end = input.find(';', i + 1);
    if (end == std::string_view::npos || end == i + 1) {
      return Status::ParseError("malformed entity reference");
    }
    std::string_view entity = input.substr(i + 1, end - i - 1);
    if (entity == "amp") {
      out->push_back('&');
    } else if (entity == "lt") {
      out->push_back('<');
    } else if (entity == "gt") {
      out->push_back('>');
    } else if (entity == "apos") {
      out->push_back('\'');
    } else if (entity == "quot") {
      out->push_back('"');
    } else if (entity.size() > 1 && entity[0] == '#') {
      std::string digits(entity.substr(1));
      char* endp = nullptr;
      long cp;
      if (digits[0] == 'x' || digits[0] == 'X') {
        cp = std::strtol(digits.c_str() + 1, &endp, 16);
      } else {
        cp = std::strtol(digits.c_str(), &endp, 10);
      }
      if (endp == nullptr || *endp != '\0' || cp <= 0 || cp > 0x10FFFF) {
        return Status::ParseError("malformed character reference: &" +
                                  std::string(entity) + ";");
      }
      AppendUtf8(out, static_cast<uint32_t>(cp));
    } else {
      if (custom != nullptr) {
        auto it = custom->find(std::string(entity));
        if (it != custom->end()) {
          out->append(it->second);
          i = end + 1;
          continue;
        }
      }
      return Status::ParseError("unknown entity: &" + std::string(entity) +
                                ";");
    }
    i = end + 1;
  }
  return Status::OK();
}

}  // namespace nexsort
