// Streaming XML serializer: the inverse of SaxParser. NEXSORT's output
// phase drives one of these against a block stream, so writing the final
// sorted document costs exactly the O(N/B) "writing the output" I/Os.
#pragma once

#include <string>
#include <vector>

#include "extmem/stream.h"
#include "util/status.h"
#include "xml/token.h"

namespace nexsort {

struct XmlWriterOptions {
  /// Indent with two spaces per level and newlines between elements.
  bool pretty = false;

  /// Emit an <?xml version="1.0"?> declaration before the root.
  bool declaration = false;
};

/// Push-based writer with automatic escaping and end-tag bookkeeping.
class XmlWriter {
 public:
  XmlWriter(ByteSink* sink, XmlWriterOptions options = {});

  [[nodiscard]] Status StartElement(std::string_view name,
                      const std::vector<XmlAttribute>& attributes = {});
  [[nodiscard]] Status EndElement();
  [[nodiscard]] Status Text(std::string_view text);

  /// Replay a parse event (convenience for copy-through pipelines).
  [[nodiscard]] Status Event(const XmlEvent& event);

  /// Close any elements still open and flush buffered bytes to the sink.
  [[nodiscard]] Status Finish();

  int depth() const { return static_cast<int>(open_.size()); }

 private:
  [[nodiscard]] Status FlushIfLarge();
  void Indent();

  ByteSink* sink_;
  XmlWriterOptions options_;
  std::string buffer_;
  std::vector<std::string> open_;
  bool wrote_declaration_ = false;
  bool just_opened_ = false;  // suppress newline for <a>text</a> shapes
  bool has_text_ = false;
};

/// Serialize a single event stream element-by-element into a string.
std::string EventToString(const XmlEvent& event);

}  // namespace nexsort
