// Event-based (SAX-style) pull parser, the scanner behind line 3 of the
// paper's Figure 4. It reads from any ByteSource — an in-memory string or a
// block stream on a device, in which case the scan incurs exactly the
// O(N/B) "reading the input" I/Os of the paper's cost breakdown.
//
// Supported XML subset: elements, attributes (single- or double-quoted),
// character data with the predefined entities, numeric character
// references, and custom entities declared in a DOCTYPE internal subset,
// CDATA sections, comments, processing instructions, and the XML
// declaration. This covers everything the paper's workloads (data-centric
// XML) use.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "extmem/stream.h"
#include "util/status.h"
#include "xml/token.h"

namespace nexsort {

struct SaxOptions {
  /// Drop text events that are entirely whitespace (inter-element
  /// indentation). Data-centric sorting treats such nodes as formatting.
  bool skip_whitespace_text = true;

  /// Verify that end tags match their start tags. Costs memory proportional
  /// to document depth; with it off only nesting depth is tracked.
  bool check_tag_names = true;
};

/// Streaming pull parser producing XmlEvents.
class SaxParser {
 public:
  explicit SaxParser(ByteSource* source, SaxOptions options = {});

  /// Produce the next event. Returns false at clean end of input (all
  /// elements closed), true if *event was filled. ParseError on malformed
  /// input, or any Status the underlying source fails with.
  [[nodiscard]] StatusOr<bool> Next(XmlEvent* event);

  /// Nesting depth after the last event (root start tag => 1).
  int depth() const { return depth_; }

  /// Bytes consumed from the source so far.
  uint64_t bytes_consumed() const { return consumed_; }

 private:
  // Buffer management --------------------------------------------------
  [[nodiscard]] Status Fill();                  // read another chunk from the source
  [[nodiscard]] Status Ensure(size_t n);        // buffer at least n bytes or hit EOF
  bool AtEof();                   // no buffered bytes and source drained
  char PeekChar() const { return buffer_[pos_]; }
  size_t Available() const { return buffer_.size() - pos_; }
  void Advance(size_t n) { pos_ += n; consumed_ += n; }
  // Find `needle` in the buffered data starting at pos_, filling as needed;
  // returns its offset relative to pos_ or NotFound at EOF.
  [[nodiscard]] StatusOr<size_t> FindInBuffer(std::string_view needle);

  // Grammar productions -------------------------------------------------
  [[nodiscard]] Status SkipWhitespace();
  [[nodiscard]] Status ParseMarkup(XmlEvent* event, bool* produced);
  [[nodiscard]] Status ParseStartTag(XmlEvent* event);
  [[nodiscard]] Status ParseEndTag(XmlEvent* event);
  [[nodiscard]] Status ParseComment();
  [[nodiscard]] Status ParseProcessingInstruction();
  [[nodiscard]] Status ParseDoctype();
  [[nodiscard]] Status ParseCdata(XmlEvent* event);
  [[nodiscard]] Status ParseText(XmlEvent* event, bool* produced);
  [[nodiscard]] Status ParseName(std::string* name);
  [[nodiscard]] Status ParseAttributes(XmlEvent* event, bool* self_closing);

  ByteSource* source_;
  SaxOptions options_;
  std::string buffer_;
  size_t pos_ = 0;
  bool source_eof_ = false;
  uint64_t consumed_ = 0;

  int depth_ = 0;
  bool seen_root_ = false;
  std::vector<std::string> open_tags_;  // only if check_tag_names
  bool pending_end_ = false;            // self-closing tag: emit end next
  std::string pending_end_name_;
  std::unordered_map<std::string, std::string> entities_;  // DOCTYPE subset
};

}  // namespace nexsort
