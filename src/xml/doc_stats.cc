#include "xml/doc_stats.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "util/string_util.h"
#include "xml/sax_parser.h"

namespace nexsort {

double DocStats::AverageFanout() const {
  uint64_t parents = 0;
  uint64_t children = 0;
  for (const LevelStats& level : levels) {
    parents += level.elements;
    children += level.total_children;
  }
  // Only elements with children count as parents in the paper's sense of
  // shaping subtree sorts; keep it simple: children per element.
  return parents == 0 ? 0.0
                      : static_cast<double>(children) /
                            static_cast<double>(parents);
}

std::string DocStats::ToString(size_t block_size) const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "elements (N): %s, text nodes: %s, attributes: %s\n",
                WithCommas(elements).c_str(), WithCommas(text_nodes).c_str(),
                WithCommas(attributes).c_str());
  out += line;
  std::snprintf(line, sizeof(line),
                "max fan-out (k): %s, height: %d, names: %s\n",
                WithCommas(max_fanout).c_str(), height,
                WithCommas(distinct_names).c_str());
  out += line;
  std::snprintf(line, sizeof(line),
                "size: %s (avg element %.1f bytes, text %s)\n",
                HumanBytes(bytes).c_str(), AverageElementBytes(),
                HumanBytes(text_bytes).c_str());
  out += line;
  out += "per level: level | elements | text | max fan-out | avg fan-out\n";
  for (size_t l = 1; l < levels.size(); ++l) {
    const LevelStats& level = levels[l];
    double avg = level.elements == 0
                     ? 0.0
                     : static_cast<double>(level.total_children) /
                           static_cast<double>(level.elements);
    std::snprintf(line, sizeof(line), "  %5zu | %8s | %4s | %11s | %11.1f\n",
                  l, WithCommas(level.elements).c_str(),
                  WithCommas(level.text_nodes).c_str(),
                  WithCommas(level.max_fanout).c_str(), avg);
    out += line;
  }
  // The paper's parameter guidance.
  uint64_t threshold = 2 * block_size;
  std::snprintf(line, sizeof(line),
                "suggested sort threshold t = %s (2 blocks of %s); worst "
                "subtree sort ~ k*t = %s\n",
                HumanBytes(threshold).c_str(), HumanBytes(block_size).c_str(),
                HumanBytes(max_fanout * threshold).c_str());
  out += line;
  return out;
}

StatusOr<DocStats> ProfileDocument(ByteSource* input) {
  SaxParser parser(input);
  DocStats stats;
  std::unordered_set<std::string> names;
  std::vector<uint64_t> open_children;  // per open element

  XmlEvent event;
  while (true) {
    ASSIGN_OR_RETURN(bool more, parser.Next(&event));
    if (!more) break;
    switch (event.type) {
      case XmlEventType::kStartElement: {
        int level = parser.depth();
        if (stats.levels.size() <= static_cast<size_t>(level)) {
          stats.levels.resize(level + 1);
        }
        ++stats.elements;
        ++stats.levels[level].elements;
        stats.height = std::max(stats.height, level);
        names.insert(event.name);
        stats.attributes += event.attributes.size();
        for (const XmlAttribute& attr : event.attributes) {
          names.insert(attr.name);
        }
        if (!open_children.empty()) {
          ++open_children.back();
          uint64_t fanout = open_children.back();
          stats.max_fanout = std::max(stats.max_fanout, fanout);
          size_t parent_level = open_children.size();
          stats.levels[parent_level].max_fanout =
              std::max(stats.levels[parent_level].max_fanout, fanout);
          ++stats.levels[parent_level].total_children;
        }
        open_children.push_back(0);
        break;
      }
      case XmlEventType::kEndElement:
        open_children.pop_back();
        break;
      case XmlEventType::kText: {
        int level = parser.depth() + 1;
        if (stats.levels.size() <= static_cast<size_t>(level)) {
          stats.levels.resize(level + 1);
        }
        ++stats.text_nodes;
        ++stats.levels[level].text_nodes;
        stats.text_bytes += event.text.size();
        if (!open_children.empty()) {
          ++open_children.back();
          uint64_t fanout = open_children.back();
          stats.max_fanout = std::max(stats.max_fanout, fanout);
          size_t parent_level = open_children.size();
          stats.levels[parent_level].max_fanout =
              std::max(stats.levels[parent_level].max_fanout, fanout);
          ++stats.levels[parent_level].total_children;
        }
        break;
      }
    }
  }
  stats.bytes = parser.bytes_consumed();
  stats.distinct_names = names.size();
  return stats;
}

StatusOr<DocStats> ProfileDocument(std::string_view xml) {
  StringByteSource source(xml);
  return ProfileDocument(&source);
}

}  // namespace nexsort
