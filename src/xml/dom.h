// Minimal in-memory document tree. The library's external algorithms never
// require a DOM; it exists for (a) the paper's "internal-memory recursive
// sort" baseline, (b) reference implementations that property tests compare
// against, and (c) convenient construction of small documents in examples.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "extmem/stream.h"
#include "util/status.h"
#include "xml/token.h"

namespace nexsort {

/// One node: an element (with name/attributes/children) or a text leaf.
struct XmlNode {
  bool is_text = false;
  std::string name;                      // elements
  std::vector<XmlAttribute> attributes;  // elements
  std::string text;                      // text leaves
  std::vector<std::unique_ptr<XmlNode>> children;

  static std::unique_ptr<XmlNode> Element(std::string_view name) {
    auto node = std::make_unique<XmlNode>();
    node->name = name;
    return node;
  }
  static std::unique_ptr<XmlNode> TextNode(std::string_view text) {
    auto node = std::make_unique<XmlNode>();
    node->is_text = true;
    node->text = text;
    return node;
  }

  XmlNode* AddChild(std::unique_ptr<XmlNode> child) {
    children.push_back(std::move(child));
    return children.back().get();
  }
  XmlNode* AddElement(std::string_view child_name) {
    return AddChild(Element(child_name));
  }
  XmlNode* AddText(std::string_view value) {
    return AddChild(TextNode(value));
  }
  void SetAttribute(std::string_view attr_name, std::string_view value) {
    for (XmlAttribute& attr : attributes) {
      if (attr.name == attr_name) {
        attr.value = value;
        return;
      }
    }
    attributes.push_back({std::string(attr_name), std::string(value)});
  }
  const std::string* FindAttribute(std::string_view attr_name) const {
    for (const XmlAttribute& attr : attributes) {
      if (attr.name == attr_name) return &attr.value;
    }
    return nullptr;
  }

  /// Total node count of this subtree (elements + text leaves).
  uint64_t SubtreeSize() const;

  /// Maximum fan-out (the paper's k) over this subtree.
  uint64_t MaxFanout() const;

  /// Height of this subtree (a leaf has height 1).
  int Height() const;

  /// Deep structural equality.
  bool Equals(const XmlNode& other) const;

  /// Deep copy.
  std::unique_ptr<XmlNode> Clone() const;
};

/// Parse a whole document from `source` into a tree; the document must have
/// a single root element.
[[nodiscard]] StatusOr<std::unique_ptr<XmlNode>> ParseDom(ByteSource* source);

/// Convenience overload for in-memory text.
[[nodiscard]] StatusOr<std::unique_ptr<XmlNode>> ParseDom(std::string_view text);

/// Serialize `root` (compact, no added whitespace).
std::string SerializeDom(const XmlNode& root, bool pretty = false);

}  // namespace nexsort
