#include "xml/dom.h"

#include <algorithm>

#include "xml/sax_parser.h"
#include "xml/writer.h"

namespace nexsort {

uint64_t XmlNode::SubtreeSize() const {
  uint64_t total = 1;
  for (const auto& child : children) total += child->SubtreeSize();
  return total;
}

uint64_t XmlNode::MaxFanout() const {
  uint64_t best = children.size();
  for (const auto& child : children) {
    best = std::max(best, child->MaxFanout());
  }
  return best;
}

int XmlNode::Height() const {
  int best = 0;
  for (const auto& child : children) {
    if (!child->is_text) best = std::max(best, child->Height());
  }
  return best + 1;
}

bool XmlNode::Equals(const XmlNode& other) const {
  if (is_text != other.is_text || name != other.name || text != other.text ||
      attributes != other.attributes ||
      children.size() != other.children.size()) {
    return false;
  }
  for (size_t i = 0; i < children.size(); ++i) {
    if (!children[i]->Equals(*other.children[i])) return false;
  }
  return true;
}

std::unique_ptr<XmlNode> XmlNode::Clone() const {
  auto copy = std::make_unique<XmlNode>();
  copy->is_text = is_text;
  copy->name = name;
  copy->attributes = attributes;
  copy->text = text;
  copy->children.reserve(children.size());
  for (const auto& child : children) copy->children.push_back(child->Clone());
  return copy;
}

StatusOr<std::unique_ptr<XmlNode>> ParseDom(ByteSource* source) {
  SaxParser parser(source);
  std::unique_ptr<XmlNode> root;
  std::vector<XmlNode*> stack;
  XmlEvent event;
  while (true) {
    ASSIGN_OR_RETURN(bool more, parser.Next(&event));
    if (!more) break;
    switch (event.type) {
      case XmlEventType::kStartElement: {
        auto node = XmlNode::Element(event.name);
        node->attributes = std::move(event.attributes);
        XmlNode* raw = node.get();
        if (stack.empty()) {
          root = std::move(node);
        } else {
          stack.back()->AddChild(std::move(node));
        }
        stack.push_back(raw);
        break;
      }
      case XmlEventType::kEndElement:
        stack.pop_back();
        break;
      case XmlEventType::kText:
        if (stack.empty()) return Status::ParseError("text outside root");
        stack.back()->AddText(event.text);
        break;
    }
  }
  if (root == nullptr) return Status::ParseError("no root element");
  return root;
}

StatusOr<std::unique_ptr<XmlNode>> ParseDom(std::string_view text) {
  StringByteSource source(text);
  return ParseDom(&source);
}

namespace {

Status SerializeNode(const XmlNode& node, XmlWriter* writer) {
  if (node.is_text) return writer->Text(node.text);
  RETURN_IF_ERROR(writer->StartElement(node.name, node.attributes));
  for (const auto& child : node.children) {
    RETURN_IF_ERROR(SerializeNode(*child, writer));
  }
  return writer->EndElement();
}

}  // namespace

std::string SerializeDom(const XmlNode& root, bool pretty) {
  std::string out;
  StringByteSink sink(&out);
  XmlWriterOptions options;
  options.pretty = pretty;
  XmlWriter writer(&sink, options);
  Status st = SerializeNode(root, &writer);
  if (st.ok()) st = writer.Finish();
  (void)st;  // serialization of a well-formed tree cannot fail
  return out;
}

}  // namespace nexsort
