#include "xml/dictionary.h"

namespace nexsort {

uint32_t NameDictionary::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

StatusOr<std::string_view> NameDictionary::Lookup(uint32_t id) const {
  if (id >= names_.size()) {
    return Status::Corruption("dictionary id out of range: " +
                              std::to_string(id));
  }
  return std::string_view(names_[id]);
}

size_t NameDictionary::MemoryBytes() const {
  size_t total = names_.capacity() * sizeof(std::string);
  for (const std::string& name : names_) total += name.capacity();
  total += index_.size() * (sizeof(std::string) + sizeof(uint32_t) + 16);
  return total;
}

}  // namespace nexsort
