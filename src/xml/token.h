// Event model for XML scanning: the "unit of XML data (a start tag, an end
// tag, or a piece of text)" read on line 3 of the paper's Figure 4.
#pragma once

#include <string>
#include <vector>

namespace nexsort {

/// One attribute of a start tag.
struct XmlAttribute {
  std::string name;
  std::string value;

  bool operator==(const XmlAttribute&) const = default;
};

enum class XmlEventType {
  kStartElement,
  kEndElement,
  kText,
};

/// One parse event.
struct XmlEvent {
  XmlEventType type = XmlEventType::kText;
  std::string name;                      // start/end tag name
  std::vector<XmlAttribute> attributes;  // start tags only
  std::string text;                      // kText only

  /// Value of attribute `attr_name`, or nullptr if absent.
  const std::string* FindAttribute(std::string_view attr_name) const {
    for (const XmlAttribute& attr : attributes) {
      if (attr.name == attr_name) return &attr.value;
    }
    return nullptr;
  }
};

}  // namespace nexsort
