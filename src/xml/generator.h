// Workload generators reproducing the paper's two test-data sources
// (Section 5): the IBM alphaWorks XML Generator ("allows us to specify
// height and maximum fan-out... the fan-out of each element is a random
// number between 1 and the specified maximum") and the authors' custom
// generator ("allows us to specify the exact fan-out for each level").
// Both emit elements averaging ~150 bytes, matching the paper's data, and
// stream their output so arbitrarily large documents never need RAM.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "extmem/stream.h"
#include "util/status.h"

namespace nexsort {

/// Shared knobs for both generators.
struct GeneratorOptions {
  uint64_t seed = 42;

  /// Approximate serialized size of one element (start tag + end tag),
  /// reached by padding an attribute. The paper's data averages ~150 bytes.
  size_t element_bytes = 150;

  /// Upper bound for random integer sort keys (attribute "id").
  uint64_t key_space = 1000000000;

  /// Give leaf elements a short text payload.
  bool leaf_text = true;
};

/// Totals observed while generating, for workload reports.
struct GeneratorStats {
  uint64_t elements = 0;       // element count (excluding text nodes)
  uint64_t text_nodes = 0;
  uint64_t max_fanout = 0;     // the paper's k
  uint64_t bytes = 0;
  int height = 0;
};

/// IBM-alphaWorks-style generator: depth `height`, per-element fan-out
/// uniform in [1, max_fanout] (leaves at the bottom level).
class RandomTreeGenerator {
 public:
  RandomTreeGenerator(int height, uint64_t max_fanout,
                      GeneratorOptions options = {});

  [[nodiscard]] Status Generate(ByteSink* sink);

  /// Convenience: generate into a string.
  [[nodiscard]] StatusOr<std::string> GenerateString();

  const GeneratorStats& stats() const { return stats_; }

 private:
  const int height_;
  const uint64_t max_fanout_;
  const GeneratorOptions options_;
  GeneratorStats stats_;
};

/// The authors' custom generator: exact fan-out per level. fanouts[i] is
/// the fan-out of every element at level i+1 (the root is level 1), so the
/// document has fanouts.size()+1 levels, matching Table 2 of the paper.
class ShapeGenerator {
 public:
  ShapeGenerator(std::vector<uint64_t> fanouts, GeneratorOptions options = {});

  [[nodiscard]] Status Generate(ByteSink* sink);
  [[nodiscard]] StatusOr<std::string> GenerateString();

  /// Element count the shape will produce: 1 + f1 + f1*f2 + ...
  uint64_t ExpectedElements() const;

  const GeneratorStats& stats() const { return stats_; }

 private:
  const std::vector<uint64_t> fanouts_;
  const GeneratorOptions options_;
  GeneratorStats stats_;
};

}  // namespace nexsort
