#include "xml/dtd.h"

#include <cctype>

#include "xml/sax_parser.h"

namespace nexsort {

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.' || c == ':';
}

// Minimal token walker over DTD text.
class DtdScanner {
 public:
  explicit DtdScanner(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  bool Consume(std::string_view token) {
    SkipSpace();
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  StatusOr<std::string> Name() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    if (pos_ == start) {
      return Status::ParseError("DTD: expected a name at offset " +
                                std::to_string(start));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  /// Everything up to the closing '>', honouring quotes.
  StatusOr<std::string_view> UntilDeclEnd() {
    size_t start = pos_;
    char quote = 0;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (quote != 0) {
        if (c == quote) quote = 0;
      } else if (c == '"' || c == '\'') {
        quote = c;
      } else if (c == '>') {
        std::string_view body = text_.substr(start, pos_ - start);
        ++pos_;
        return body;
      }
      ++pos_;
    }
    return Status::ParseError("DTD: unterminated declaration");
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

// Parse a content model body: EMPTY | ANY | (...) with names extracted.
Status ParseContentModel(std::string_view body, DtdElementDecl* decl) {
  // Trim.
  while (!body.empty() &&
         std::isspace(static_cast<unsigned char>(body.front()))) {
    body.remove_prefix(1);
  }
  while (!body.empty() &&
         std::isspace(static_cast<unsigned char>(body.back()))) {
    body.remove_suffix(1);
  }
  if (body == "EMPTY") {
    decl->content = DtdElementDecl::Content::kEmpty;
    return Status::OK();
  }
  if (body == "ANY") {
    decl->content = DtdElementDecl::Content::kAny;
    return Status::OK();
  }
  if (body.empty() || body.front() != '(') {
    return Status::ParseError("DTD: bad content model for " + decl->name);
  }
  bool mixed = body.find("#PCDATA") != std::string_view::npos;
  decl->content = mixed ? DtdElementDecl::Content::kMixed
                        : DtdElementDecl::Content::kChildren;
  // Harvest child names (ordering/cardinality accepted but not enforced).
  size_t i = 0;
  while (i < body.size()) {
    char c = body[i];
    if (IsNameChar(c) && c != '#') {
      size_t start = i;
      while (i < body.size() && IsNameChar(body[i])) ++i;
      std::string name(body.substr(start, i - start));
      bool seen = false;
      for (const std::string& existing : decl->allowed_children) {
        if (existing == name) {
          seen = true;
          break;
        }
      }
      if (!seen) decl->allowed_children.push_back(std::move(name));
    } else {
      ++i;
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<Dtd> Dtd::Parse(std::string_view text) {
  Dtd dtd;
  DtdScanner scanner(text);
  while (!scanner.AtEnd()) {
    if (scanner.Consume("<!ELEMENT")) {
      DtdElementDecl decl;
      ASSIGN_OR_RETURN(decl.name, scanner.Name());
      ASSIGN_OR_RETURN(std::string_view body, scanner.UntilDeclEnd());
      RETURN_IF_ERROR(ParseContentModel(body, &decl));
      if (dtd.element_index_.count(decl.name) != 0) {
        return Status::ParseError("DTD: duplicate element declaration " +
                                  decl.name);
      }
      dtd.element_index_[decl.name] = dtd.elements_.size();
      dtd.elements_.push_back(std::move(decl));
    } else if (scanner.Consume("<!ATTLIST")) {
      std::string element;
      ASSIGN_OR_RETURN(element, scanner.Name());
      ASSIGN_OR_RETURN(std::string_view body, scanner.UntilDeclEnd());
      // body := (attr type default)* — parse greedily.
      DtdScanner attrs(body);
      while (!attrs.AtEnd()) {
        DtdAttributeDecl decl;
        decl.element = element;
        ASSIGN_OR_RETURN(decl.name, attrs.Name());
        // Type: a name or an enumeration "(a|b|c)".
        attrs.SkipSpace();
        if (attrs.Consume("(")) {
          decl.type = "(";
          while (true) {
            auto value = attrs.Name();
            if (value.ok()) decl.type += *value;
            if (attrs.Consume(")")) {
              decl.type += ")";
              break;
            }
            if (attrs.Consume("|")) {
              decl.type += "|";
              continue;
            }
            return Status::ParseError("DTD: bad enumeration for @" +
                                      decl.name);
          }
        } else {
          ASSIGN_OR_RETURN(decl.type, attrs.Name());
        }
        if (attrs.Consume("#REQUIRED")) {
          decl.required = true;
        } else if (attrs.Consume("#IMPLIED")) {
          // optional, no default
        } else {
          attrs.Consume("#FIXED");
          attrs.SkipSpace();
          if (attrs.Consume("\"")) {
            // Read to the closing quote.
            std::string value;
            // DtdScanner has no raw-char API; re-implement inline.
            // (Defaults are informational only.)
            // Consume name-ish and punctuation until '"'.
            while (!attrs.Consume("\"")) {
              auto piece = attrs.Name();
              if (!piece.ok()) {
                return Status::ParseError("DTD: unterminated default value");
              }
              if (!value.empty()) value += " ";
              value += *piece;
            }
            decl.default_value = value;
          }
        }
        dtd.attributes_.push_back(std::move(decl));
      }
    } else {
      return Status::ParseError("DTD: expected <!ELEMENT or <!ATTLIST");
    }
  }
  return dtd;
}

const DtdElementDecl* Dtd::FindElement(std::string_view name) const {
  auto it = element_index_.find(std::string(name));
  if (it == element_index_.end()) return nullptr;
  return &elements_[it->second];
}

void Dtd::SeedDictionary(NameDictionary* dictionary) const {
  for (const DtdElementDecl& decl : elements_) {
    dictionary->Intern(decl.name);
  }
  for (const DtdAttributeDecl& decl : attributes_) {
    dictionary->Intern(decl.name);
  }
}

StatusOr<DtdValidationReport> Dtd::Validate(ByteSource* document) const {
  SaxParser parser(document);
  DtdValidationReport report;
  std::vector<const DtdElementDecl*> open;

  auto fail = [&](std::string message) {
    if (report.valid) {
      report.valid = false;
      report.violation = std::move(message);
    }
  };

  XmlEvent event;
  while (true) {
    ASSIGN_OR_RETURN(bool more, parser.Next(&event));
    if (!more) break;
    switch (event.type) {
      case XmlEventType::kStartElement: {
        ++report.elements_checked;
        const DtdElementDecl* decl = FindElement(event.name);
        if (decl == nullptr) {
          fail("undeclared element <" + event.name + ">");
        }
        if (!open.empty() && open.back() != nullptr) {
          const DtdElementDecl* parent = open.back();
          switch (parent->content) {
            case DtdElementDecl::Content::kEmpty:
              fail("element <" + event.name + "> inside EMPTY <" +
                   parent->name + ">");
              break;
            case DtdElementDecl::Content::kAny:
              break;
            case DtdElementDecl::Content::kMixed:
            case DtdElementDecl::Content::kChildren: {
              bool allowed = false;
              for (const std::string& child : parent->allowed_children) {
                if (child == event.name) {
                  allowed = true;
                  break;
                }
              }
              if (!allowed) {
                fail("<" + event.name + "> not allowed inside <" +
                     parent->name + ">");
              }
              break;
            }
          }
        }
        // Required attributes.
        for (const DtdAttributeDecl& attr : attributes_) {
          if (!attr.required || attr.element != event.name) continue;
          if (event.FindAttribute(attr.name) == nullptr) {
            fail("<" + event.name + "> missing required attribute " +
                 attr.name);
          }
        }
        open.push_back(decl);
        break;
      }
      case XmlEventType::kEndElement:
        open.pop_back();
        break;
      case XmlEventType::kText:
        if (!open.empty() && open.back() != nullptr) {
          const DtdElementDecl* parent = open.back();
          if (parent->content == DtdElementDecl::Content::kEmpty ||
              parent->content == DtdElementDecl::Content::kChildren) {
            fail("text not allowed inside <" + parent->name + ">");
          }
        }
        break;
    }
  }
  return report;
}

StatusOr<DtdValidationReport> Dtd::Validate(std::string_view xml) const {
  StringByteSource source(xml);
  return Validate(&source);
}

}  // namespace nexsort
