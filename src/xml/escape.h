// XML text/attribute escaping and entity decoding.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>

#include "util/status.h"

namespace nexsort {

/// Append `text` to *out with &, <, > escaped (element content).
void AppendEscapedText(std::string* out, std::string_view text);

/// Append `value` to *out with &, <, >, " escaped (attribute values, which
/// the writer always double-quotes).
void AppendEscapedAttribute(std::string* out, std::string_view value);

/// Decode the five predefined entities and decimal/hex character references
/// in `input`, appending to *out. ParseError on an unknown or malformed
/// entity. `custom` optionally supplies user-defined entities (from a
/// DOCTYPE internal subset); values are substituted verbatim.
[[nodiscard]] Status AppendUnescaped(
    std::string* out, std::string_view input,
    const std::unordered_map<std::string, std::string>* custom = nullptr);

}  // namespace nexsort
