#include "xml/sax_parser.h"

#include <cctype>

#include "xml/escape.h"

namespace nexsort {

namespace {
constexpr size_t kChunkSize = 16 * 1024;

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}
bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}
}  // namespace

SaxParser::SaxParser(ByteSource* source, SaxOptions options)
    : source_(source), options_(options) {}

Status SaxParser::Fill() {
  if (source_eof_) return Status::OK();
  // Compact consumed prefix so the buffer stays bounded.
  if (pos_ > kChunkSize) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  size_t old_size = buffer_.size();
  buffer_.resize(old_size + kChunkSize);
  size_t got = 0;
  Status st = source_->Read(buffer_.data() + old_size, kChunkSize, &got);
  buffer_.resize(old_size + got);
  if (!st.ok()) return st;
  if (got == 0) source_eof_ = true;
  return Status::OK();
}

Status SaxParser::Ensure(size_t n) {
  while (Available() < n && !source_eof_) RETURN_IF_ERROR(Fill());
  return Status::OK();
}

bool SaxParser::AtEof() { return Available() == 0 && source_eof_; }

StatusOr<size_t> SaxParser::FindInBuffer(std::string_view needle) {
  // Track the search start relative to pos_, since Fill() may compact the
  // buffer and shift absolute offsets.
  size_t rel_from = 0;
  while (true) {
    size_t found = buffer_.find(needle, pos_ + rel_from);
    if (found != std::string::npos) return found - pos_;
    if (source_eof_) return Status::NotFound("delimiter not found");
    // Keep a needle-sized overlap so matches spanning chunk edges are seen.
    rel_from = Available() > needle.size() ? Available() - needle.size() : 0;
    RETURN_IF_ERROR(Fill());
  }
}

Status SaxParser::SkipWhitespace() {
  while (true) {
    RETURN_IF_ERROR(Ensure(1));
    if (AtEof() || !IsSpace(PeekChar())) return Status::OK();
    Advance(1);
  }
}

StatusOr<bool> SaxParser::Next(XmlEvent* event) {
  if (pending_end_) {
    pending_end_ = false;
    event->type = XmlEventType::kEndElement;
    event->name = std::move(pending_end_name_);
    event->attributes.clear();
    event->text.clear();
    --depth_;
    return true;
  }
  while (true) {
    if (depth_ == 0) {
      // Between/outside root elements only whitespace and markup allowed.
      RETURN_IF_ERROR(SkipWhitespace());
    } else {
      RETURN_IF_ERROR(Ensure(1));
    }
    if (AtEof()) {
      if (depth_ != 0) return Status::ParseError("unexpected end of input");
      if (!seen_root_) return Status::ParseError("empty document");
      return false;
    }
    bool produced = false;
    if (PeekChar() == '<') {
      RETURN_IF_ERROR(ParseMarkup(event, &produced));
    } else {
      if (depth_ == 0) {
        return Status::ParseError("text outside the root element");
      }
      RETURN_IF_ERROR(ParseText(event, &produced));
    }
    if (produced) return true;
  }
}

Status SaxParser::ParseMarkup(XmlEvent* event, bool* produced) {
  RETURN_IF_ERROR(Ensure(2));
  if (Available() < 2) return Status::ParseError("truncated markup");
  char c = buffer_[pos_ + 1];
  if (c == '/') {
    RETURN_IF_ERROR(ParseEndTag(event));
    *produced = true;
    return Status::OK();
  }
  if (c == '?') return ParseProcessingInstruction();
  if (c == '!') {
    RETURN_IF_ERROR(Ensure(9));
    std::string_view view(buffer_.data() + pos_,
                          std::min<size_t>(Available(), 9));
    if (view.substr(0, 4) == "<!--") return ParseComment();
    if (view.substr(0, 9) == "<![CDATA[") {
      RETURN_IF_ERROR(ParseCdata(event));
      *produced = true;
      return Status::OK();
    }
    if (view.substr(0, 2) == "<!") return ParseDoctype();
    return Status::ParseError("malformed markup declaration");
  }
  if (!IsNameStartChar(c)) {
    return Status::ParseError("malformed tag");
  }
  if (depth_ == 0 && seen_root_) {
    return Status::ParseError("multiple root elements");
  }
  RETURN_IF_ERROR(ParseStartTag(event));
  *produced = true;
  return Status::OK();
}

Status SaxParser::ParseName(std::string* name) {
  name->clear();
  RETURN_IF_ERROR(Ensure(1));
  if (AtEof() || !IsNameStartChar(PeekChar())) {
    return Status::ParseError("expected name");
  }
  while (true) {
    RETURN_IF_ERROR(Ensure(1));
    if (AtEof() || !IsNameChar(PeekChar())) return Status::OK();
    name->push_back(PeekChar());
    Advance(1);
  }
}

Status SaxParser::ParseAttributes(XmlEvent* event, bool* self_closing) {
  *self_closing = false;
  while (true) {
    RETURN_IF_ERROR(SkipWhitespace());
    RETURN_IF_ERROR(Ensure(2));
    if (AtEof()) return Status::ParseError("truncated start tag");
    char c = PeekChar();
    if (c == '>') {
      Advance(1);
      return Status::OK();
    }
    if (c == '/') {
      if (Available() < 2 || buffer_[pos_ + 1] != '>') {
        return Status::ParseError("malformed self-closing tag");
      }
      Advance(2);
      *self_closing = true;
      return Status::OK();
    }
    XmlAttribute attr;
    RETURN_IF_ERROR(ParseName(&attr.name));
    RETURN_IF_ERROR(SkipWhitespace());
    RETURN_IF_ERROR(Ensure(1));
    if (AtEof() || PeekChar() != '=') {
      return Status::ParseError("expected '=' after attribute name");
    }
    Advance(1);
    RETURN_IF_ERROR(SkipWhitespace());
    RETURN_IF_ERROR(Ensure(1));
    if (AtEof() || (PeekChar() != '"' && PeekChar() != '\'')) {
      return Status::ParseError("expected quoted attribute value");
    }
    char quote = PeekChar();
    Advance(1);
    auto found = FindInBuffer(std::string_view(&quote, 1));
    if (!found.ok()) {
      return Status::ParseError("unterminated attribute value");
    }
    size_t offset = found.value();
    std::string_view raw(buffer_.data() + pos_, offset);
    RETURN_IF_ERROR(AppendUnescaped(&attr.value, raw, &entities_));
    Advance(offset + 1);
    event->attributes.push_back(std::move(attr));
  }
}

Status SaxParser::ParseStartTag(XmlEvent* event) {
  Advance(1);  // '<'
  event->type = XmlEventType::kStartElement;
  event->attributes.clear();
  event->text.clear();
  RETURN_IF_ERROR(ParseName(&event->name));
  bool self_closing = false;
  RETURN_IF_ERROR(ParseAttributes(event, &self_closing));
  seen_root_ = true;
  ++depth_;
  if (self_closing) {
    pending_end_ = true;
    pending_end_name_ = event->name;
  } else if (options_.check_tag_names) {
    open_tags_.push_back(event->name);
  }
  return Status::OK();
}

Status SaxParser::ParseEndTag(XmlEvent* event) {
  Advance(2);  // '</'
  event->type = XmlEventType::kEndElement;
  event->attributes.clear();
  event->text.clear();
  RETURN_IF_ERROR(ParseName(&event->name));
  RETURN_IF_ERROR(SkipWhitespace());
  RETURN_IF_ERROR(Ensure(1));
  if (AtEof() || PeekChar() != '>') {
    return Status::ParseError("malformed end tag </" + event->name);
  }
  Advance(1);
  if (depth_ == 0) return Status::ParseError("end tag with no open element");
  if (options_.check_tag_names) {
    if (open_tags_.back() != event->name) {
      return Status::ParseError("mismatched end tag </" + event->name +
                                ">, expected </" + open_tags_.back() + ">");
    }
    open_tags_.pop_back();
  }
  --depth_;
  return Status::OK();
}

Status SaxParser::ParseComment() {
  Advance(4);  // '<!--'
  auto found = FindInBuffer("-->");
  if (!found.ok()) return Status::ParseError("unterminated comment");
  Advance(found.value() + 3);
  return Status::OK();
}

Status SaxParser::ParseProcessingInstruction() {
  Advance(2);  // '<?'
  auto found = FindInBuffer("?>");
  if (!found.ok()) {
    return Status::ParseError("unterminated processing instruction");
  }
  Advance(found.value() + 2);
  return Status::OK();
}

Status SaxParser::ParseDoctype() {
  // Scan to the closing '>', honouring one level of internal-subset
  // brackets: <!DOCTYPE name [ ... ]>. The subset's <!ENTITY name "value">
  // declarations are harvested so the document may reference them.
  Advance(2);  // '<!'
  std::string body;
  int bracket_depth = 0;
  while (true) {
    RETURN_IF_ERROR(Ensure(1));
    if (AtEof()) return Status::ParseError("unterminated DOCTYPE");
    char c = PeekChar();
    Advance(1);
    if (c == '[') ++bracket_depth;
    if (c == ']') --bracket_depth;
    if (c == '>' && bracket_depth == 0) break;
    if (body.size() < 1 << 20) body.push_back(c);
  }
  // Harvest entity declarations.
  size_t at = 0;
  while ((at = body.find("<!ENTITY", at)) != std::string::npos) {
    at += 8;
    while (at < body.size() && IsSpace(body[at])) ++at;
    size_t name_start = at;
    while (at < body.size() && IsNameChar(body[at])) ++at;
    std::string name = body.substr(name_start, at - name_start);
    while (at < body.size() && IsSpace(body[at])) ++at;
    if (name.empty() || at >= body.size() ||
        (body[at] != '"' && body[at] != '\'')) {
      continue;  // parameter/external entities: skipped, not supported
    }
    char quote = body[at++];
    size_t value_end = body.find(quote, at);
    if (value_end == std::string::npos) {
      return Status::ParseError("unterminated entity value");
    }
    std::string raw = body.substr(at, value_end - at);
    at = value_end + 1;
    // Entity values may themselves use character references.
    std::string value;
    RETURN_IF_ERROR(AppendUnescaped(&value, raw, &entities_));
    entities_[name] = std::move(value);
  }
  return Status::OK();
}

Status SaxParser::ParseCdata(XmlEvent* event) {
  Advance(9);  // '<![CDATA['
  auto found = FindInBuffer("]]>");
  if (!found.ok()) return Status::ParseError("unterminated CDATA section");
  event->type = XmlEventType::kText;
  event->name.clear();
  event->attributes.clear();
  event->text.assign(buffer_.data() + pos_, found.value());
  Advance(found.value() + 3);
  return Status::OK();
}

Status SaxParser::ParseText(XmlEvent* event, bool* produced) {
  std::string raw;
  bool all_space = true;
  while (true) {
    RETURN_IF_ERROR(Ensure(1));
    if (AtEof() || PeekChar() == '<') break;
    char c = PeekChar();
    raw.push_back(c);
    if (!IsSpace(c)) all_space = false;
    Advance(1);
  }
  if (all_space && options_.skip_whitespace_text) {
    *produced = false;
    return Status::OK();
  }
  event->type = XmlEventType::kText;
  event->name.clear();
  event->attributes.clear();
  event->text.clear();
  RETURN_IF_ERROR(AppendUnescaped(&event->text, raw, &entities_));
  *produced = true;
  return Status::OK();
}

}  // namespace nexsort
