// Tag/attribute-name dictionary implementing the paper's XML compaction
// technique (Section 3.2): "each unique string can be converted to an
// integer before sorting and back during output". NEXSORT interns tag and
// attribute names while scanning and stores 1-2 byte ids in element units
// instead of repeated strings.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace nexsort {

/// Bidirectional string <-> dense id map. Ids are assigned in first-seen
/// order, so they are small varints for the handful of distinct names a
/// typical document has.
class NameDictionary {
 public:
  /// Id for `name`, interning it if new.
  uint32_t Intern(std::string_view name);

  /// Name for `id`; Corruption if out of range.
  [[nodiscard]] StatusOr<std::string_view> Lookup(uint32_t id) const;

  size_t size() const { return names_.size(); }

  /// Approximate heap footprint, for memory accounting reports.
  size_t MemoryBytes() const;

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> names_;
};

}  // namespace nexsort
