// DTD support (paper Section 3.2: "the availability of a DTD can greatly
// simplify this conversion" — the tag/attribute vocabulary is known up
// front). This module parses a practical DTD subset, pre-seeds the
// compaction dictionary from the declared vocabulary so every name gets a
// stable small id before scanning begins, and validates documents
// structurally against the declarations.
//
// Supported declarations:
//   <!ELEMENT name EMPTY | ANY | (#PCDATA|a|b)* | (a, b?, c*) ...>
//     Content models are interpreted as a *child-name set* plus a
//     text-allowed flag; ordering and cardinality operators are accepted
//     syntactically but not enforced (documented subset).
//   <!ATTLIST element attr TYPE #REQUIRED|#IMPLIED|#FIXED "v"|"default">
//     Types are accepted verbatim; #REQUIRED is enforced by validation.
// Comments and parameter entities are not supported.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "extmem/stream.h"
#include "util/status.h"
#include "xml/dictionary.h"

namespace nexsort {

struct DtdElementDecl {
  enum class Content { kEmpty, kAny, kMixed, kChildren };
  std::string name;
  Content content = Content::kAny;
  std::vector<std::string> allowed_children;  // kMixed/kChildren
};

struct DtdAttributeDecl {
  std::string element;
  std::string name;
  std::string type;           // CDATA, ID, IDREF, NMTOKEN, enumerations...
  bool required = false;      // #REQUIRED
  std::string default_value;  // for defaults / #FIXED
};

struct DtdValidationReport {
  bool valid = true;
  std::string violation;  // first problem found
  uint64_t elements_checked = 0;
};

/// A parsed DTD.
class Dtd {
 public:
  /// Parse DTD text (the content of a .dtd file, or an internal subset
  /// without the surrounding <!DOCTYPE ... [ ]>).
  [[nodiscard]] static StatusOr<Dtd> Parse(std::string_view text);

  const DtdElementDecl* FindElement(std::string_view name) const;
  const std::vector<DtdAttributeDecl>& attributes() const {
    return attributes_;
  }
  size_t element_count() const { return elements_.size(); }

  /// Intern every declared tag and attribute name (paper Section 3.2: the
  /// DTD makes the string -> integer conversion trivial and stable).
  void SeedDictionary(NameDictionary* dictionary) const;

  /// Streaming structural validation: every element declared, children
  /// allowed by the parent's content model, text only under mixed/ANY
  /// content, required attributes present.
  [[nodiscard]] StatusOr<DtdValidationReport> Validate(ByteSource* document) const;
  [[nodiscard]] StatusOr<DtdValidationReport> Validate(std::string_view xml) const;

 private:
  std::vector<DtdElementDecl> elements_;
  std::unordered_map<std::string, size_t> element_index_;
  std::vector<DtdAttributeDecl> attributes_;
};

}  // namespace nexsort
