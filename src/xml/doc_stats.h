// Streaming document profiler: one pass over an XML document collects the
// quantities the paper's analysis is parameterized by — N (elements), k
// (maximum fan-out), height, element-size distribution — plus per-level
// breakdowns. Used to choose NEXSORT parameters (B, M, t) for a workload
// and by the xmlstat tool.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "extmem/stream.h"
#include "util/status.h"

namespace nexsort {

struct LevelStats {
  uint64_t elements = 0;
  uint64_t text_nodes = 0;
  uint64_t max_fanout = 0;   // among elements at this level
  uint64_t total_children = 0;
};

struct DocStats {
  uint64_t elements = 0;      // the paper's N
  uint64_t text_nodes = 0;
  uint64_t attributes = 0;
  uint64_t max_fanout = 0;    // the paper's k
  int height = 0;
  uint64_t bytes = 0;         // serialized input size
  uint64_t text_bytes = 0;
  uint64_t distinct_names = 0;  // tag + attribute vocabulary
  std::vector<LevelStats> levels;  // index 0 unused; root at 1

  double AverageElementBytes() const {
    return elements == 0 ? 0.0
                         : static_cast<double>(bytes) /
                               static_cast<double>(elements);
  }
  double AverageFanout() const;

  /// Multi-line report, including a suggested sort threshold for a given
  /// block size per the paper's guidance (t ~ 2 blocks, and subtree sizes
  /// worth inspecting per level).
  std::string ToString(size_t block_size) const;
};

/// Profile the document streamed from `input`.
[[nodiscard]] StatusOr<DocStats> ProfileDocument(ByteSource* input);

/// Convenience overload for in-memory text.
[[nodiscard]] StatusOr<DocStats> ProfileDocument(std::string_view xml);

}  // namespace nexsort
