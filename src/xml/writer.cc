#include "xml/writer.h"

#include "xml/escape.h"

namespace nexsort {

namespace {
constexpr size_t kFlushThreshold = 64 * 1024;
}

XmlWriter::XmlWriter(ByteSink* sink, XmlWriterOptions options)
    : sink_(sink), options_(options) {}

Status XmlWriter::FlushIfLarge() {
  if (buffer_.size() >= kFlushThreshold) {
    RETURN_IF_ERROR(sink_->Append(buffer_));
    buffer_.clear();
  }
  return Status::OK();
}

void XmlWriter::Indent() {
  if (!options_.pretty) return;
  if (!buffer_.empty() || wrote_declaration_) buffer_.push_back('\n');
  buffer_.append(open_.size() * 2, ' ');
}

Status XmlWriter::StartElement(std::string_view name,
                               const std::vector<XmlAttribute>& attributes) {
  if (options_.declaration && !wrote_declaration_ && open_.empty()) {
    buffer_.append("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    wrote_declaration_ = true;
  }
  Indent();
  buffer_.push_back('<');
  buffer_.append(name);
  for (const XmlAttribute& attr : attributes) {
    buffer_.push_back(' ');
    buffer_.append(attr.name);
    buffer_.append("=\"");
    AppendEscapedAttribute(&buffer_, attr.value);
    buffer_.push_back('"');
  }
  buffer_.push_back('>');
  open_.emplace_back(name);
  just_opened_ = true;
  has_text_ = false;
  return FlushIfLarge();
}

Status XmlWriter::EndElement() {
  if (open_.empty()) {
    return Status::InvalidArgument("EndElement with no open element");
  }
  std::string name = std::move(open_.back());
  open_.pop_back();
  if (options_.pretty && !just_opened_ && !has_text_) {
    buffer_.push_back('\n');
    buffer_.append(open_.size() * 2, ' ');
  }
  buffer_.append("</");
  buffer_.append(name);
  buffer_.push_back('>');
  just_opened_ = false;
  has_text_ = false;
  return FlushIfLarge();
}

Status XmlWriter::Text(std::string_view text) {
  if (open_.empty()) {
    return Status::InvalidArgument("text outside the root element");
  }
  AppendEscapedText(&buffer_, text);
  has_text_ = true;
  return FlushIfLarge();
}

Status XmlWriter::Event(const XmlEvent& event) {
  switch (event.type) {
    case XmlEventType::kStartElement:
      return StartElement(event.name, event.attributes);
    case XmlEventType::kEndElement:
      return EndElement();
    case XmlEventType::kText:
      return Text(event.text);
  }
  return Status::InvalidArgument("unknown event type");
}

Status XmlWriter::Finish() {
  while (!open_.empty()) RETURN_IF_ERROR(EndElement());
  if (!buffer_.empty()) {
    RETURN_IF_ERROR(sink_->Append(buffer_));
    buffer_.clear();
  }
  return Status::OK();
}

std::string EventToString(const XmlEvent& event) {
  std::string out;
  switch (event.type) {
    case XmlEventType::kStartElement:
      out.push_back('<');
      out.append(event.name);
      for (const XmlAttribute& attr : event.attributes) {
        out.push_back(' ');
        out.append(attr.name);
        out.append("=\"");
        AppendEscapedAttribute(&out, attr.value);
        out.push_back('"');
      }
      out.push_back('>');
      break;
    case XmlEventType::kEndElement:
      out.append("</");
      out.append(event.name);
      out.push_back('>');
      break;
    case XmlEventType::kText:
      AppendEscapedText(&out, event.text);
      break;
  }
  return out;
}

}  // namespace nexsort
