#include "xml/generator.h"

#include <algorithm>

#include "util/random.h"
#include "xml/writer.h"

namespace nexsort {

namespace {

// Emits one element's start tag with a random sort key and size padding,
// recursing to `fanout(level)` children until `height` is reached.
class TreeEmitter {
 public:
  TreeEmitter(XmlWriter* writer, Random* rng, const GeneratorOptions& options,
              GeneratorStats* stats)
      : writer_(writer), rng_(rng), options_(options), stats_(stats) {}

  // fanout_fn(level) -> number of children for an element at `level`
  // (root is level 1); 0 means leaf.
  template <typename FanoutFn>
  Status Emit(int level, const FanoutFn& fanout_fn) {
    uint64_t fanout = fanout_fn(level);
    RETURN_IF_ERROR(StartElement(level, fanout == 0));
    stats_->max_fanout = std::max(stats_->max_fanout, fanout);
    stats_->height = std::max(stats_->height, level);
    for (uint64_t i = 0; i < fanout; ++i) {
      RETURN_IF_ERROR(Emit(level + 1, fanout_fn));
    }
    return writer_->EndElement();
  }

 private:
  Status StartElement(int level, bool leaf) {
    ++stats_->elements;
    std::string tag = "n" + std::to_string(level);
    std::vector<XmlAttribute> attributes;
    attributes.push_back(
        {"id", std::to_string(rng_->Uniform(options_.key_space))});
    // Pad the element's serialized footprint (start + end tag) up to
    // element_bytes, approximating the paper's ~150-byte elements.
    size_t base = 2 * tag.size() + 5 /* <></> */ + 4 + attributes[0].value.size()
                  + 7 /* id="" + space + pad=" " */;
    if (options_.element_bytes > base + 8) {
      attributes.push_back(
          {"pad", std::string(options_.element_bytes - base - 8, 'x')});
    }
    RETURN_IF_ERROR(writer_->StartElement(tag, attributes));
    if (leaf && options_.leaf_text) {
      ++stats_->text_nodes;
      RETURN_IF_ERROR(writer_->Text("v" + rng_->Identifier(6)));
    }
    return Status::OK();
  }

  XmlWriter* writer_;
  Random* rng_;
  const GeneratorOptions& options_;
  GeneratorStats* stats_;
};

// ByteSink wrapper that counts bytes on the way through.
class CountingSink final : public ByteSink {
 public:
  CountingSink(ByteSink* inner, uint64_t* counter)
      : inner_(inner), counter_(counter) {}
  Status Append(std::string_view data) override {
    *counter_ += data.size();
    return inner_->Append(data);
  }

 private:
  ByteSink* inner_;
  uint64_t* counter_;
};

}  // namespace

RandomTreeGenerator::RandomTreeGenerator(int height, uint64_t max_fanout,
                                         GeneratorOptions options)
    : height_(height), max_fanout_(max_fanout), options_(options) {}

Status RandomTreeGenerator::Generate(ByteSink* sink) {
  stats_ = GeneratorStats();
  CountingSink counting(sink, &stats_.bytes);
  XmlWriter writer(&counting);
  Random rng(options_.seed);
  TreeEmitter emitter(&writer, &rng, options_, &stats_);
  auto fanout_fn = [&](int level) -> uint64_t {
    if (level >= height_) return 0;
    return rng.UniformRange(1, max_fanout_);
  };
  RETURN_IF_ERROR(emitter.Emit(1, fanout_fn));
  return writer.Finish();
}

StatusOr<std::string> RandomTreeGenerator::GenerateString() {
  std::string out;
  StringByteSink sink(&out);
  RETURN_IF_ERROR(Generate(&sink));
  return out;
}

ShapeGenerator::ShapeGenerator(std::vector<uint64_t> fanouts,
                               GeneratorOptions options)
    : fanouts_(std::move(fanouts)), options_(options) {}

uint64_t ShapeGenerator::ExpectedElements() const {
  uint64_t total = 1;
  uint64_t level_width = 1;
  for (uint64_t fanout : fanouts_) {
    level_width *= fanout;
    total += level_width;
  }
  return total;
}

Status ShapeGenerator::Generate(ByteSink* sink) {
  stats_ = GeneratorStats();
  CountingSink counting(sink, &stats_.bytes);
  XmlWriter writer(&counting);
  Random rng(options_.seed);
  TreeEmitter emitter(&writer, &rng, options_, &stats_);
  auto fanout_fn = [&](int level) -> uint64_t {
    size_t index = static_cast<size_t>(level) - 1;
    return index < fanouts_.size() ? fanouts_[index] : 0;
  };
  RETURN_IF_ERROR(emitter.Emit(1, fanout_fn));
  return writer.Finish();
}

StatusOr<std::string> ShapeGenerator::GenerateString() {
  std::string out;
  StringByteSink sink(&out);
  RETURN_IF_ERROR(Generate(&sink));
  return out;
}

}  // namespace nexsort
