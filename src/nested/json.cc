#include "nested/json.h"

#include <cctype>
#include <vector>

#include "extmem/block_device.h"

#include "util/string_util.h"
#include "xml/sax_parser.h"
#include "xml/writer.h"

namespace nexsort {

namespace {

// ---------------------------------------------------------------------
// JSON tokenizer
// ---------------------------------------------------------------------

struct Token {
  enum class Type {
    kLBrace, kRBrace, kLBracket, kRBracket, kComma, kColon,
    kString,   // text = decoded value
    kNumber,   // text = raw lexeme
    kTrue, kFalse, kNull,
    kEnd,
  };
  Type type = Type::kEnd;
  std::string text;
};

class Tokenizer {
 public:
  explicit Tokenizer(ByteSource* source) : source_(source) {}

  Status Next(Token* token) {
    RETURN_IF_ERROR(SkipWhitespace());
    if (AtEof()) {
      token->type = Token::Type::kEnd;
      token->text.clear();
      return Status::OK();
    }
    char c = PeekChar();
    switch (c) {
      case '{': Advance(1); token->type = Token::Type::kLBrace; return Status::OK();
      case '}': Advance(1); token->type = Token::Type::kRBrace; return Status::OK();
      case '[': Advance(1); token->type = Token::Type::kLBracket; return Status::OK();
      case ']': Advance(1); token->type = Token::Type::kRBracket; return Status::OK();
      case ',': Advance(1); token->type = Token::Type::kComma; return Status::OK();
      case ':': Advance(1); token->type = Token::Type::kColon; return Status::OK();
      case '"': return ParseString(token);
      case 't': return ParseKeyword("true", Token::Type::kTrue, token);
      case 'f': return ParseKeyword("false", Token::Type::kFalse, token);
      case 'n': return ParseKeyword("null", Token::Type::kNull, token);
      default:
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
          return ParseNumberToken(token);
        }
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' in JSON");
    }
  }

 private:
  Status Fill() {
    if (eof_) return Status::OK();
    if (pos_ > 8192) {
      buffer_.erase(0, pos_);
      pos_ = 0;
    }
    size_t old_size = buffer_.size();
    buffer_.resize(old_size + 8192);
    size_t got = 0;
    Status st = source_->Read(buffer_.data() + old_size, 8192, &got);
    buffer_.resize(old_size + got);
    if (!st.ok()) return st;
    if (got == 0) eof_ = true;
    return Status::OK();
  }
  Status Ensure(size_t n) {
    while (buffer_.size() - pos_ < n && !eof_) RETURN_IF_ERROR(Fill());
    return Status::OK();
  }
  bool AtEof() { return pos_ >= buffer_.size() && eof_; }
  char PeekChar() const { return buffer_[pos_]; }
  void Advance(size_t n) { pos_ += n; }

  Status SkipWhitespace() {
    while (true) {
      RETURN_IF_ERROR(Ensure(1));
      if (AtEof()) return Status::OK();
      char c = PeekChar();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return Status::OK();
      Advance(1);
    }
  }

  Status ParseKeyword(std::string_view word, Token::Type type, Token* token) {
    RETURN_IF_ERROR(Ensure(word.size()));
    if (buffer_.size() - pos_ < word.size() ||
        std::string_view(buffer_.data() + pos_, word.size()) != word) {
      return Status::ParseError("malformed JSON keyword");
    }
    Advance(word.size());
    token->type = type;
    token->text.clear();
    return Status::OK();
  }

  Status ParseNumberToken(Token* token) {
    token->type = Token::Type::kNumber;
    token->text.clear();
    while (true) {
      RETURN_IF_ERROR(Ensure(1));
      if (AtEof()) break;
      char c = PeekChar();
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
          c == '+' || c == '.' || c == 'e' || c == 'E') {
        token->text.push_back(c);
        Advance(1);
      } else {
        break;
      }
    }
    double value = 0;
    if (!ParseNumber(token->text, &value)) {
      return Status::ParseError("malformed JSON number: " + token->text);
    }
    return Status::OK();
  }

  Status ParseString(Token* token) {
    Advance(1);  // opening quote
    token->type = Token::Type::kString;
    token->text.clear();
    while (true) {
      RETURN_IF_ERROR(Ensure(1));
      if (AtEof()) return Status::ParseError("unterminated JSON string");
      char c = PeekChar();
      Advance(1);
      if (c == '"') return Status::OK();
      if (c != '\\') {
        token->text.push_back(c);
        continue;
      }
      RETURN_IF_ERROR(Ensure(1));
      if (AtEof()) return Status::ParseError("truncated escape");
      char esc = PeekChar();
      Advance(1);
      switch (esc) {
        case '"': token->text.push_back('"'); break;
        case '\\': token->text.push_back('\\'); break;
        case '/': token->text.push_back('/'); break;
        case 'b': token->text.push_back('\b'); break;
        case 'f': token->text.push_back('\f'); break;
        case 'n': token->text.push_back('\n'); break;
        case 'r': token->text.push_back('\r'); break;
        case 't': token->text.push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          RETURN_IF_ERROR(ReadHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair.
            RETURN_IF_ERROR(Ensure(2));
            if (buffer_.size() - pos_ < 2 || buffer_[pos_] != '\\' ||
                buffer_[pos_ + 1] != 'u') {
              return Status::ParseError("unpaired surrogate");
            }
            Advance(2);
            uint32_t low = 0;
            RETURN_IF_ERROR(ReadHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Status::ParseError("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          }
          AppendUtf8(&token->text, cp);
          break;
        }
        default:
          return Status::ParseError("unknown JSON escape");
      }
    }
  }

  Status ReadHex4(uint32_t* out) {
    RETURN_IF_ERROR(Ensure(4));
    if (buffer_.size() - pos_ < 4) {
      return Status::ParseError("truncated \\u escape");
    }
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = buffer_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= c - '0';
      else if (c >= 'a' && c <= 'f') value |= c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') value |= c - 'A' + 10;
      else return Status::ParseError("bad hex digit in \\u escape");
    }
    Advance(4);
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  ByteSource* source_;
  std::string buffer_;
  size_t pos_ = 0;
  bool eof_ = false;
};

// One-token-lookahead cursor over either the live tokenizer or a buffered
// token vector (used to replay array items after key extraction).
class TokenCursor {
 public:
  virtual ~TokenCursor() = default;
  virtual Status Next(Token* token) = 0;

  Status Peek(Token* token) {
    if (!has_pending_) {
      RETURN_IF_ERROR(Next(&pending_));
      has_pending_ = true;
    }
    *token = pending_;
    return Status::OK();
  }
  Status Take(Token* token) {
    if (has_pending_) {
      *token = std::move(pending_);
      has_pending_ = false;
      return Status::OK();
    }
    return Next(token);
  }

 private:
  Token pending_;
  bool has_pending_ = false;
};

class LiveCursor final : public TokenCursor {
 public:
  explicit LiveCursor(Tokenizer* tokenizer) : tokenizer_(tokenizer) {}
  Status Next(Token* token) override { return tokenizer_->Next(token); }

 private:
  Tokenizer* tokenizer_;
};

class ReplayCursor final : public TokenCursor {
 public:
  explicit ReplayCursor(const std::vector<Token>* tokens)
      : tokens_(tokens) {}
  Status Next(Token* token) override {
    if (index_ >= tokens_->size()) {
      token->type = Token::Type::kEnd;
      return Status::OK();
    }
    *token = (*tokens_)[index_++];
    return Status::OK();
  }

 private:
  const std::vector<Token>* tokens_;
  size_t index_ = 0;
};

// ---------------------------------------------------------------------
// JSON -> element tree
// ---------------------------------------------------------------------

class JsonToXmlTranslator {
 public:
  JsonToXmlTranslator(const JsonSortOptions& options, XmlWriter* writer,
                      JsonSortStats* stats)
      : options_(options), writer_(writer), stats_(stats) {
    for (std::string_view part : Split(options.sort_arrays_by, '/')) {
      if (!part.empty()) key_path_.emplace_back(part);
    }
  }

  Status TranslateDocument(TokenCursor* cursor) {
    RETURN_IF_ERROR(EmitValue(cursor, /*nxk=*/nullptr));
    Token token;
    RETURN_IF_ERROR(cursor->Take(&token));
    if (token.type != Token::Type::kEnd) {
      return Status::ParseError("trailing data after JSON document");
    }
    return Status::OK();
  }

 private:
  bool ArrayKeyingEnabled() const {
    return !key_path_.empty() || options_.sort_arrays_by_value;
  }

  Status EmitValue(TokenCursor* cursor, const std::string* nxk) {
    Token token;
    RETURN_IF_ERROR(cursor->Take(&token));
    ++stats_->values;
    std::vector<XmlAttribute> attrs;
    if (nxk != nullptr) attrs.push_back({"nxk", *nxk});
    switch (token.type) {
      case Token::Type::kLBrace: {
        ++stats_->objects;
        RETURN_IF_ERROR(writer_->StartElement("o", attrs));
        RETURN_IF_ERROR(EmitMembers(cursor));
        return writer_->EndElement();
      }
      case Token::Type::kLBracket: {
        ++stats_->arrays;
        RETURN_IF_ERROR(writer_->StartElement("a", attrs));
        RETURN_IF_ERROR(EmitItems(cursor));
        return writer_->EndElement();
      }
      case Token::Type::kString:
        attrs.push_back({"v", std::move(token.text)});
        RETURN_IF_ERROR(writer_->StartElement("s", attrs));
        return writer_->EndElement();
      case Token::Type::kNumber:
        attrs.push_back({"v", std::move(token.text)});
        RETURN_IF_ERROR(writer_->StartElement("n", attrs));
        return writer_->EndElement();
      case Token::Type::kTrue:
      case Token::Type::kFalse:
        attrs.push_back(
            {"v", token.type == Token::Type::kTrue ? "true" : "false"});
        RETURN_IF_ERROR(writer_->StartElement("b", attrs));
        return writer_->EndElement();
      case Token::Type::kNull:
        RETURN_IF_ERROR(writer_->StartElement("z", attrs));
        return writer_->EndElement();
      default:
        return Status::ParseError("unexpected token in JSON value");
    }
  }

  Status EmitMembers(TokenCursor* cursor) {
    Token token;
    RETURN_IF_ERROR(cursor->Peek(&token));
    if (token.type == Token::Type::kRBrace) return cursor->Take(&token);
    while (true) {
      RETURN_IF_ERROR(cursor->Take(&token));
      if (token.type != Token::Type::kString) {
        return Status::ParseError("expected member name");
      }
      std::string name = std::move(token.text);
      RETURN_IF_ERROR(cursor->Take(&token));
      if (token.type != Token::Type::kColon) {
        return Status::ParseError("expected ':' after member name");
      }
      RETURN_IF_ERROR(writer_->StartElement("m", {{"k", name}}));
      RETURN_IF_ERROR(EmitValue(cursor, nullptr));
      RETURN_IF_ERROR(writer_->EndElement());
      RETURN_IF_ERROR(cursor->Take(&token));
      if (token.type == Token::Type::kRBrace) return Status::OK();
      if (token.type != Token::Type::kComma) {
        return Status::ParseError("expected ',' or '}' in object");
      }
    }
  }

  Status EmitItems(TokenCursor* cursor) {
    Token token;
    RETURN_IF_ERROR(cursor->Peek(&token));
    if (token.type == Token::Type::kRBracket) return cursor->Take(&token);
    while (true) {
      if (ArrayKeyingEnabled()) {
        // Buffer the item's tokens to extract its sort key; the value
        // element's start tag must already carry it. Items therefore need
        // to fit in translation memory (documents do not).
        std::vector<Token> item;
        RETURN_IF_ERROR(BufferValue(cursor, &item));
        std::string key;
        bool has_key = ExtractKey(item, &key);
        ReplayCursor replay(&item);
        RETURN_IF_ERROR(EmitValue(&replay, has_key ? &key : nullptr));
      } else {
        RETURN_IF_ERROR(EmitValue(cursor, nullptr));
      }
      RETURN_IF_ERROR(cursor->Take(&token));
      if (token.type == Token::Type::kRBracket) return Status::OK();
      if (token.type != Token::Type::kComma) {
        return Status::ParseError("expected ',' or ']' in array");
      }
    }
  }

  // Copy one complete value's tokens from the cursor.
  Status BufferValue(TokenCursor* cursor, std::vector<Token>* out) {
    int depth = 0;
    do {
      Token token;
      RETURN_IF_ERROR(cursor->Take(&token));
      switch (token.type) {
        case Token::Type::kLBrace:
        case Token::Type::kLBracket:
          ++depth;
          break;
        case Token::Type::kRBrace:
        case Token::Type::kRBracket:
          --depth;
          break;
        case Token::Type::kEnd:
          return Status::ParseError("truncated JSON value");
        default:
          break;
      }
      out->push_back(std::move(token));
    } while (depth > 0);
    return Status::OK();
  }

  // Scalar value at key_path_ inside a buffered item (or the item itself
  // for scalar arrays). Returns false when absent.
  bool ExtractKey(const std::vector<Token>& item, std::string* key) const {
    size_t pos = 0;
    for (const std::string& component : key_path_) {
      if (pos >= item.size() || item[pos].type != Token::Type::kLBrace) {
        return false;
      }
      ++pos;  // into the object
      bool found = false;
      while (pos < item.size()) {
        if (item[pos].type == Token::Type::kRBrace) break;
        if (item[pos].type == Token::Type::kComma) {
          ++pos;
          continue;
        }
        // member: String Colon value
        if (item[pos].type != Token::Type::kString) return false;
        bool match = item[pos].text == component;
        pos += 2;  // skip name + colon
        if (match) {
          found = true;
          break;
        }
        pos = SkipValue(item, pos);
      }
      if (!found) return false;
    }
    if (key_path_.empty() && !options_.sort_arrays_by_value) return false;
    if (pos >= item.size()) return false;
    const Token& token = item[pos];
    switch (token.type) {
      case Token::Type::kString:
      case Token::Type::kNumber:
        *key = token.text;
        return true;
      case Token::Type::kTrue: *key = "true"; return true;
      case Token::Type::kFalse: *key = "false"; return true;
      default:
        return false;  // containers and null do not key
    }
  }

  static size_t SkipValue(const std::vector<Token>& tokens, size_t pos) {
    int depth = 0;
    do {
      if (pos >= tokens.size()) return pos;
      switch (tokens[pos].type) {
        case Token::Type::kLBrace:
        case Token::Type::kLBracket: ++depth; break;
        case Token::Type::kRBrace:
        case Token::Type::kRBracket: --depth; break;
        default: break;
      }
      ++pos;
    } while (depth > 0);
    return pos;
  }

  const JsonSortOptions& options_;
  XmlWriter* writer_;
  JsonSortStats* stats_;
  std::vector<std::string> key_path_;
};

// ---------------------------------------------------------------------
// element tree -> JSON
// ---------------------------------------------------------------------

void AppendJsonString(std::string* out, std::string_view text) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

OrderSpec JsonOrderSpec(const JsonSortOptions& options) {
  OrderSpec spec;
  if (options.sort_object_members) {
    OrderRule member;
    member.element = "m";
    member.source = KeySource::kAttribute;
    member.argument = "k";
    spec.AddRule(member);
  }
  if (!options.sort_arrays_by.empty() || options.sort_arrays_by_value) {
    for (const char* tag : {"o", "a", "s", "n", "b", "z"}) {
      OrderRule item;
      item.element = tag;
      item.source = KeySource::kAttribute;
      item.argument = "nxk";
      item.numeric = options.numeric_array_keys;
      spec.AddRule(item);
    }
  }
  return spec;
}

Status JsonToXml(ByteSource* input, ByteSink* output,
                 const JsonSortOptions& options, JsonSortStats* stats) {
  JsonSortStats local;
  if (stats == nullptr) stats = &local;
  Tokenizer tokenizer(input);
  LiveCursor cursor(&tokenizer);
  XmlWriter writer(output);
  JsonToXmlTranslator translator(options, &writer, stats);
  RETURN_IF_ERROR(translator.TranslateDocument(&cursor));
  return writer.Finish();
}

Status XmlToJson(ByteSource* input, ByteSink* output) {
  SaxParser parser(input);
  std::string buffer;
  // Per open container: does the next child need a comma?
  struct Frame {
    char kind;  // 'o', 'a', or 'm'
    bool has_child = false;
  };
  std::vector<Frame> frames;

  auto before_child = [&]() {
    if (frames.empty()) return;
    Frame& top = frames.back();
    if (top.kind != 'm' && top.has_child) buffer.push_back(',');
    top.has_child = true;
  };
  auto flush_if_large = [&]() -> Status {
    if (buffer.size() >= 64 * 1024) {
      RETURN_IF_ERROR(output->Append(buffer));
      buffer.clear();
    }
    return Status::OK();
  };

  XmlEvent event;
  while (true) {
    ASSIGN_OR_RETURN(bool more, parser.Next(&event));
    if (!more) break;
    if (event.type == XmlEventType::kText) {
      return Status::Corruption("unexpected text in JSON encoding");
    }
    if (event.type == XmlEventType::kEndElement) {
      if (event.name == "o") {
        buffer.push_back('}');
        frames.pop_back();
      } else if (event.name == "a") {
        buffer.push_back(']');
        frames.pop_back();
      } else if (event.name == "m") {
        frames.pop_back();
      }
      RETURN_IF_ERROR(flush_if_large());
      continue;
    }
    const std::string* v = event.FindAttribute("v");
    if (event.name == "o") {
      before_child();
      buffer.push_back('{');
      frames.push_back({'o'});
    } else if (event.name == "a") {
      before_child();
      buffer.push_back('[');
      frames.push_back({'a'});
    } else if (event.name == "m") {
      const std::string* k = event.FindAttribute("k");
      if (k == nullptr) return Status::Corruption("member without a name");
      before_child();
      AppendJsonString(&buffer, *k);
      buffer.push_back(':');
      frames.push_back({'m'});
    } else if (event.name == "s") {
      before_child();
      AppendJsonString(&buffer, v != nullptr ? *v : "");
    } else if (event.name == "n" || event.name == "b") {
      if (v == nullptr) return Status::Corruption("value element without v");
      before_child();
      buffer.append(*v);
    } else if (event.name == "z") {
      before_child();
      buffer.append("null");
    } else {
      return Status::Corruption("unknown tag in JSON encoding: " +
                                event.name);
    }
    RETURN_IF_ERROR(flush_if_large());
  }
  if (!buffer.empty()) RETURN_IF_ERROR(output->Append(buffer));
  return Status::OK();
}

JsonSorter::JsonSorter(SortEnv* env, JsonSortOptions options)
    : env_(env),
      device_(env->device()),
      budget_(env->budget()),
      options_(std::move(options)) {}

Status JsonSorter::Sort(ByteSource* input, ByteSink* output) {
  if (used_) return Status::InvalidArgument("JsonSorter is single-use");
  used_ = true;

  // Stage 1: translate JSON into the element encoding, device-resident.
  ByteRange encoded;
  {
    BlockStreamWriter writer(device_, budget_, IoCategory::kOther);
    RETURN_IF_ERROR(writer.init_status());
    RETURN_IF_ERROR(JsonToXml(input, &writer, options_, &stats_));
    RETURN_IF_ERROR(writer.Finish(&encoded));
  }

  // Stage 2: NEXSORT the encoded document.
  ByteRange sorted;
  {
    NexSortOptions sort_options;
    sort_options.order = JsonOrderSpec(options_);
    NexSorter sorter(env_, std::move(sort_options));
    BlockStreamReader reader(device_, budget_, encoded, IoCategory::kInput);
    RETURN_IF_ERROR(reader.init_status());
    BlockStreamWriter writer(device_, budget_, IoCategory::kOutput);
    RETURN_IF_ERROR(writer.init_status());
    RETURN_IF_ERROR(sorter.Sort(&reader, &writer));
    RETURN_IF_ERROR(writer.Finish(&sorted));
    stats_.sort = sorter.stats();
  }

  // Stage 3: translate back to JSON text.
  BlockStreamReader reader(device_, budget_, sorted, IoCategory::kInput);
  RETURN_IF_ERROR(reader.init_status());
  return XmlToJson(&reader, output);
}

}  // namespace nexsort
