// Nested data beyond XML (paper Section 6: "while discussed in the context
// of XML, our results apply to any type of nested data in general").
// This module lets NEXSORT sort JSON documents in external memory by
// translating JSON to an equivalent element tree, sorting it with the
// unchanged NEXSORT engine, and translating back.
//
// Mapping (attribute-only, so values survive whitespace normalization):
//   object            <o> ... </o>        members as <m k="name">value</m>
//   array             <a> ... </a>        item values as direct children
//   string "s"        <s v="s"/>
//   number 1.5        <n v="1.5"/>        (lexeme preserved verbatim)
//   true/false        <b v="true"/>
//   null              <z/>
// Array items additionally carry a synthesized attribute nxk holding their
// sort key (extracted during translation from the configured member path),
// which is stripped on the way back.
#pragma once

#include <string>

#include "core/nexsort.h"
#include "env/sort_env.h"
#include "extmem/block_device.h"
#include "extmem/memory_budget.h"
#include "extmem/stream.h"
#include "util/status.h"

namespace nexsort {

struct JsonSortOptions {
  /// Order every object's members by member name.
  bool sort_object_members = true;

  /// Order array items by the scalar at this '/'-separated member path
  /// inside each item (e.g. "id" or "meta/id"); an empty path with
  /// sort_arrays_by_value sorts scalar arrays by their own values. Items
  /// lacking the key keep document order ahead of keyed items.
  std::string sort_arrays_by;

  /// Sort arrays of scalars by the scalar values themselves.
  bool sort_arrays_by_value = false;

  /// Compare array keys numerically.
  bool numeric_array_keys = false;
};

/// Totals from one JSON sort.
struct JsonSortStats {
  uint64_t values = 0;   // scalar + container count
  uint64_t objects = 0;
  uint64_t arrays = 0;
  NexSortStats sort;     // the underlying NEXSORT run
};

/// External-memory JSON sorter: translate, NEXSORT, translate back. The
/// translated document lives on the env's device (counted like everything
/// else); the budget is shared with the sort.
class JsonSorter {
 public:
  /// `env` is not owned and must outlive the sorter.
  JsonSorter(SortEnv* env, JsonSortOptions options);

  /// Sort JSON text from `input` into `output`. Single use.
  [[nodiscard]] Status Sort(ByteSource* input, ByteSink* output);

  const JsonSortStats& stats() const { return stats_; }

 private:
  SortEnv* env_;
  BlockDevice* device_;
  MemoryBudget* budget_;
  JsonSortOptions options_;
  JsonSortStats stats_;
  bool used_ = false;
};

/// Translate JSON text to its element-tree encoding (exposed for tests and
/// for building custom pipelines). `options` drives nxk key extraction.
[[nodiscard]] Status JsonToXml(ByteSource* input, ByteSink* output,
                 const JsonSortOptions& options, JsonSortStats* stats);

/// Translate the element-tree encoding back to compact JSON text.
[[nodiscard]] Status XmlToJson(ByteSource* input, ByteSink* output);

/// The OrderSpec matching the encoding and `options`.
OrderSpec JsonOrderSpec(const JsonSortOptions& options);

}  // namespace nexsort
