// External-memory stacks, the bookkeeping structures of Figure 4 in the
// paper. Both follow the paper's paging rules (Section 3.1): they are backed
// by a BlockDevice, keep only a fixed number of tail blocks resident in
// internal memory, and use a *no-prefetch* policy — a block is paged in only
// when a pop needs it. The worst-case paging analysis of Lemmas 4.10 and
// 4.11 assumes 1 resident block for the data and output-location stacks and
// 2 for the path stack; callers pass those counts.
//
// ExtStack<T>   — LIFO stack of fixed-size trivially-copyable records
//                 (path stack, output location stack).
// ExtByteStack  — byte stack supporting region pops (the data stack: NEXSORT
//                 never pops single units from it, it pops whole subtrees as
//                 a contiguous byte region and truncates).
#pragma once

#include <cstring>
#include <deque>
#include <string>
#include <type_traits>
#include <vector>

#include "extmem/block_device.h"
#include "extmem/memory_budget.h"
#include "extmem/stream.h"
#include "util/dcheck.h"
#include "util/status.h"

namespace nexsort {

/// External stack of fixed-size records.
template <typename T>
class ExtStack {
  static_assert(std::is_trivially_copyable_v<T>,
                "ExtStack records are raw-copied to disk blocks");

 public:
  /// The stack keeps at most `resident_blocks` tail blocks in memory,
  /// reserved from `budget` for the stack's lifetime.
  ExtStack(BlockDevice* device, MemoryBudget* budget, int resident_blocks,
           IoCategory category)
      : device_(device),
        category_(category),
        records_per_block_(device->block_size() / sizeof(T)),
        resident_blocks_(resident_blocks) {
    NEXSORT_DCHECK_MSG(records_per_block_ > 0,
                       "record larger than a device block");
    init_status_ = reservation_.Acquire(budget, resident_blocks);
  }

  /// Status of the construction-time budget reservation; check before use.
  const Status& init_status() const { return init_status_; }

  bool empty() const { return size_ == 0; }
  uint64_t size() const { return size_; }

  [[nodiscard]] Status Push(const T& record) {
    uint64_t resident_count = size_ - resident_start_;
    if (resident_count ==
        static_cast<uint64_t>(resident_blocks_) * records_per_block_) {
      RETURN_IF_ERROR(EvictOldest());
    }
    resident_.push_back(record);
    ++size_;
    DcheckBalanced();
    return Status::OK();
  }

  [[nodiscard]] Status Pop(T* record) {
    if (size_ == 0) return Status::InvalidArgument("pop from empty stack");
    if (resident_.empty()) RETURN_IF_ERROR(PageInTail());
    *record = resident_.back();
    resident_.pop_back();
    --size_;
    DcheckBalanced();
    return Status::OK();
  }

  [[nodiscard]] Status Top(T* record) {
    if (size_ == 0) return Status::InvalidArgument("top of empty stack");
    if (resident_.empty()) RETURN_IF_ERROR(PageInTail());
    *record = resident_.back();
    return Status::OK();
  }

  /// Overwrite the top record in place (used to update the bookkeeping of
  /// the innermost open element after a fragmentation step).
  [[nodiscard]] Status ReplaceTop(const T& record) {
    if (size_ == 0) return Status::InvalidArgument("replace on empty stack");
    if (resident_.empty()) RETURN_IF_ERROR(PageInTail());
    resident_.back() = record;
    return Status::OK();
  }

 private:
  // Write the oldest resident block out and drop it from memory.
  [[nodiscard]] Status EvictOldest() {
    uint64_t block_index = resident_start_ / records_per_block_;
    if (block_index >= spine_.size()) {
      NEXSORT_DCHECK_EQ(block_index, spine_.size());
      uint64_t id = 0;
      RETURN_IF_ERROR(device_->Allocate(1, &id));
      spine_.push_back(id);
    }
    std::string buf(device_->block_size(), '\0');
    std::memcpy(buf.data(), resident_.data(),
                records_per_block_ * sizeof(T));
    RETURN_IF_ERROR(device_->Write(spine_[block_index], buf.data(), category_));
    resident_.erase(resident_.begin(),
                    resident_.begin() + records_per_block_);
    resident_start_ += records_per_block_;
    DcheckBalanced();
    return Status::OK();
  }

  // Page the block just below the resident window back in (no-prefetch:
  // called only when a pop/top needs it).
  [[nodiscard]] Status PageInTail() {
    NEXSORT_DCHECK(resident_start_ > 0);
    NEXSORT_DCHECK_EQ(resident_start_ % records_per_block_, 0);
    uint64_t block_index = resident_start_ / records_per_block_ - 1;
    std::string buf(device_->block_size(), '\0');
    RETURN_IF_ERROR(device_->Read(spine_[block_index], buf.data(), category_));
    resident_.resize(records_per_block_);
    std::memcpy(resident_.data(), buf.data(),
                records_per_block_ * sizeof(T));
    resident_start_ -= records_per_block_;
    DcheckBalanced();
    return Status::OK();
  }

  // Paging-window balance (Section 3.1): the resident vector holds exactly
  // the records [resident_start_, size_), the window starts on a block
  // boundary, and the spine covers every block at or below it.
  void DcheckBalanced() const {
    NEXSORT_DCHECK_EQ(resident_.size(), size_ - resident_start_);
    NEXSORT_DCHECK_EQ(resident_start_ % records_per_block_, 0);
    NEXSORT_DCHECK_GE(spine_.size() * records_per_block_, resident_start_);
    NEXSORT_DCHECK_LE(size_ - resident_start_,
                      static_cast<uint64_t>(resident_blocks_) *
                          records_per_block_);
  }

  BlockDevice* device_;
  const IoCategory category_;
  const uint64_t records_per_block_;
  const int resident_blocks_;
  BudgetReservation reservation_;
  Status init_status_;

  uint64_t size_ = 0;            // total records on the stack
  uint64_t resident_start_ = 0;  // index of first resident record
  std::vector<T> resident_;      // records [resident_start_, size_)
  std::vector<uint64_t> spine_;  // device block of each full stack block
};

/// Byte stack with region pops: the data stack of Figure 4.
class ExtByteStack {
 public:
  ExtByteStack(BlockDevice* device, MemoryBudget* budget, int resident_blocks,
               IoCategory category);

  const Status& init_status() const { return init_status_; }

  /// Current top-of-stack byte offset; used as the element "location"
  /// recorded on the path stack.
  uint64_t size() const { return size_; }

  /// Append bytes at the top of the stack.
  [[nodiscard]] Status Append(std::string_view data);

  /// Read bytes [from, size()) into *out and truncate the stack to `from`.
  /// This is the "pop the subtree starting from location l" step (Figure 4
  /// line 10); I/Os incurred reading non-resident blocks are the data-stack
  /// paging cost analyzed in Lemma 4.10.
  [[nodiscard]] Status PopRegion(uint64_t from, std::string* out);

  /// Streaming variant for regions larger than internal memory: the bytes
  /// go to `sink` (typically a temp-run writer) block by block instead of
  /// into a string.
  [[nodiscard]] Status PopRegionTo(uint64_t from, ByteSink* sink);

 private:
  [[nodiscard]] Status EvictOldest();

  // Byte-granular mirror of ExtStack::DcheckBalanced.
  void DcheckBalanced() const;

  BlockDevice* device_;
  const IoCategory category_;
  const size_t block_size_;
  const uint64_t resident_capacity_;  // bytes
  BudgetReservation reservation_;
  Status init_status_;

  uint64_t size_ = 0;            // total bytes
  uint64_t resident_start_ = 0;  // first resident byte (block aligned)
  std::string resident_;         // bytes [resident_start_, size_)
  std::vector<uint64_t> spine_;  // device block of each full stack block
  std::vector<uint64_t> free_blocks_;
};

}  // namespace nexsort
