#include "extmem/ext_stack.h"

#include "util/dcheck.h"

namespace nexsort {

ExtByteStack::ExtByteStack(BlockDevice* device, MemoryBudget* budget,
                           int resident_blocks, IoCategory category)
    : device_(device),
      category_(category),
      block_size_(device->block_size()),
      resident_capacity_(static_cast<uint64_t>(resident_blocks) *
                         device->block_size()) {
  init_status_ = reservation_.Acquire(budget, resident_blocks);
}

Status ExtByteStack::EvictOldest() {
  uint64_t block_index = resident_start_ / block_size_;
  while (block_index >= spine_.size()) {
    if (!free_blocks_.empty()) {
      spine_.push_back(free_blocks_.back());
      free_blocks_.pop_back();
    } else {
      uint64_t id = 0;
      RETURN_IF_ERROR(device_->Allocate(1, &id));
      spine_.push_back(id);
    }
  }
  RETURN_IF_ERROR(
      device_->Write(spine_[block_index], resident_.data(), category_));
  resident_.erase(0, block_size_);
  resident_start_ += block_size_;
  DcheckBalanced();
  return Status::OK();
}

void ExtByteStack::DcheckBalanced() const {
  NEXSORT_DCHECK_EQ(resident_.size(), size_ - resident_start_);
  NEXSORT_DCHECK_EQ(resident_start_ % block_size_, 0);
  NEXSORT_DCHECK_GE(spine_.size() * block_size_, resident_start_);
  NEXSORT_DCHECK_LE(size_ - resident_start_, resident_capacity_);
}

Status ExtByteStack::Append(std::string_view data) {
  size_t pos = 0;
  while (pos < data.size()) {
    uint64_t resident_bytes = size_ - resident_start_;
    if (resident_bytes == resident_capacity_) {
      RETURN_IF_ERROR(EvictOldest());
      resident_bytes -= block_size_;
    }
    size_t room = static_cast<size_t>(resident_capacity_ - resident_bytes);
    size_t take = std::min(room, data.size() - pos);
    resident_.append(data.data() + pos, take);
    pos += take;
    size_ += take;
  }
  DcheckBalanced();
  return Status::OK();
}

Status ExtByteStack::PopRegion(uint64_t from, std::string* out) {
  out->clear();
  out->reserve(static_cast<size_t>(size_ > from ? size_ - from : 0));
  StringByteSink sink(out);
  return PopRegionTo(from, &sink);
}

Status ExtByteStack::PopRegionTo(uint64_t from, ByteSink* out) {
  if (from > size_) {
    return Status::InvalidArgument("PopRegion past top of stack");
  }
  // Bytes below the resident window live in full blocks on the device. The
  // first block read is the boundary block containing `from`; its prefix
  // [block start, from) becomes the new resident tail after truncation, so
  // keep it rather than re-reading.
  uint64_t cursor = from;
  std::string buf(block_size_, '\0');
  std::string boundary_prefix;
  while (cursor < resident_start_) {
    uint64_t block_index = cursor / block_size_;
    RETURN_IF_ERROR(device_->Read(spine_[block_index], buf.data(), category_));
    uint64_t block_start = block_index * block_size_;
    uint64_t offset = cursor - block_start;
    if (cursor == from && offset > 0) {
      boundary_prefix.assign(buf.data(), static_cast<size_t>(offset));
    }
    uint64_t take = std::min(block_size_ - offset, resident_start_ - cursor);
    RETURN_IF_ERROR(out->Append(
        std::string_view(buf.data() + offset, static_cast<size_t>(take))));
    cursor += take;
  }
  if (cursor < size_) {
    RETURN_IF_ERROR(out->Append(
        std::string_view(resident_.data() + (cursor - resident_start_),
                         static_cast<size_t>(size_ - cursor))));
  }

  // Truncate to `from`. The block containing `from` becomes the (partial)
  // resident tail.
  uint64_t new_resident_start = from / block_size_ * block_size_;
  if (new_resident_start < resident_start_) {
    resident_ = std::move(boundary_prefix);
  } else {
    resident_.resize(static_cast<size_t>(from - resident_start_));
    new_resident_start = resident_start_;
  }
  resident_start_ = new_resident_start;
  size_ = from;

  // Recycle device blocks wholly above the new top.
  uint64_t keep_blocks = (from + block_size_ - 1) / block_size_;
  // Only blocks that were actually evicted are on the spine.
  while (spine_.size() > keep_blocks) {
    free_blocks_.push_back(spine_.back());
    spine_.pop_back();
  }
  DcheckBalanced();
  return Status::OK();
}

}  // namespace nexsort
