// Block-device abstraction: the substrate standing in for TPIE (Arge et al.)
// from the paper's evaluation. All external-memory I/O in the library goes
// through a BlockDevice, which counts every block transfer (the paper's
// primary metric), attributes it to a category matching the I/O breakdown in
// Section 4.2 of the paper, and models elapsed disk time so benchmarks can
// report a seconds-shaped series alongside raw I/O counts.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace nexsort {

/// Purpose tags for I/O accounting, mirroring the cost breakdown the paper
/// analyzes in Section 4.2 (input scan, subtree sorts, stack paging, run
/// reads, output writing).
enum class IoCategory {
  kInput = 0,     // reading the source document
  kOutput,        // writing the final sorted document
  kDataStack,     // paging the data stack
  kPathStack,     // paging the path stack
  kOutputStack,   // paging the output location stack
  kRunWrite,      // writing sorted runs
  kRunRead,       // reading sorted runs back (output phase / merges)
  kSortTemp,      // external merge sort scratch (run formation + merge)
  kOther,         // keep last: kNumIoCategories is derived from it
};
inline constexpr int kNumIoCategories = static_cast<int>(IoCategory::kOther) + 1;
static_assert(kNumIoCategories == 9,
              "IoCategory changed: update IoCategoryName and every "
              "category-indexed table before adjusting this count");

/// Simple rotating-disk cost model: a random access pays a seek, a strictly
/// sequential access (block id == previous id + 1 on the same device) pays
/// transfer time only. Defaults approximate the paper's 2003-era IDE disk.
struct DiskModel {
  double seek_ms = 8.0;
  double transfer_mb_per_s = 40.0;

  /// Cost in seconds of one block access.
  double AccessSeconds(size_t block_size, bool sequential) const {
    double transfer =
        static_cast<double>(block_size) / (transfer_mb_per_s * 1e6);
    return sequential ? transfer : transfer + seek_ms / 1e3;
  }
};

/// Counters maintained by every BlockDevice. Fields are atomics so
/// background spill/prefetch threads can account I/O concurrently with the
/// foreground; copies take a relaxed per-field snapshot (fields are mutually
/// consistent only when the device is quiescent, which is when benchmarks
/// and stats exporters read them).
struct IoStats {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> sequential_reads{0};   // subset of `reads`
  std::atomic<uint64_t> sequential_writes{0};  // subset of `writes`
  std::atomic<uint64_t> category_reads[kNumIoCategories] = {};
  std::atomic<uint64_t> category_writes[kNumIoCategories] = {};
  std::atomic<double> modeled_seconds{0.0};

  IoStats() = default;
  IoStats(const IoStats& other) { CopyFrom(other); }
  IoStats& operator=(const IoStats& other) {
    CopyFrom(other);
    return *this;
  }

  uint64_t total() const {
    return reads.load(std::memory_order_relaxed) +
           writes.load(std::memory_order_relaxed);
  }
  void Clear() { *this = IoStats(); }

  /// Multi-line human-readable report of all counters.
  std::string ToString(size_t block_size) const;

  /// Serialize all counters as one JSON object (telemetry schema: totals,
  /// sequential subsets, modeled seconds, and a "categories" object keyed
  /// by IoCategoryName with per-category reads/writes).
  void ToJson(class JsonWriter* writer) const;
  std::string ToJsonString() const;

 private:
  void CopyFrom(const IoStats& other);
};

/// Name of an IoCategory for reports.
const char* IoCategoryName(IoCategory category);

/// Abstract array of fixed-size blocks with allocation, accounting, and a
/// disk-time model. Subclasses provide the storage (RAM or a real file).
///
/// Thread-safe: counters are atomic and the sequentiality/failure-injection
/// state sits behind a small mutex that is never held across the actual
/// storage transfer, so concurrent I/O from background spill and prefetch
/// threads overlaps. The category *scope* (SetCategory/IoCategoryScope) is
/// still a single-threaded convenience — concurrent threads must use the
/// explicit-category Read/Write overloads so attribution cannot race.
class BlockDevice {
 public:
  /// `mutex_rank` places this device's bookkeeping mutex in the lock
  /// hierarchy. Allocate holds it across the virtual DoAllocate, which
  /// wrapping devices forward to the device they wrap — so every wrapper
  /// passes `inner->mutex_rank() - 1` and the stack stays strictly
  /// ordered (see lock_rank::kBlockDevice).
  BlockDevice(size_t block_size, DiskModel model,
              int mutex_rank = lock_rank::kBlockDevice);
  virtual ~BlockDevice();

  BlockDevice(const BlockDevice&) = delete;
  BlockDevice& operator=(const BlockDevice&) = delete;

  size_t block_size() const { return block_size_; }

  /// Rank of this device's bookkeeping mutex; wrapping devices construct
  /// their own mutex at `mutex_rank() - 1` of the device they wrap.
  [[nodiscard]] int mutex_rank() const { return mutex_.rank(); }

  /// Number of blocks allocated so far.
  uint64_t num_blocks() const {
    return num_blocks_.load(std::memory_order_acquire);
  }

  /// Extend the device by `count` blocks; *first_id receives the id of the
  /// first new block. Ids are dense and increasing. Virtual so a
  /// forwarding wrapper shared *beside* other wrappers of one inner
  /// device (the per-session accounting device) can delegate id
  /// assignment to the inner device instead of its own stale counter.
  [[nodiscard]] virtual Status Allocate(uint64_t count, uint64_t* first_id);

  /// Read block `block_id` into `buf` (block_size bytes), with accounting
  /// attributed to the current scope category.
  [[nodiscard]] Status Read(uint64_t block_id, char* buf);

  /// Write block `block_id` from `buf` (block_size bytes), with accounting
  /// attributed to the current scope category.
  [[nodiscard]] Status Write(uint64_t block_id, const char* buf);

  /// Explicit-category variants: attribution travels with the call instead
  /// of through SetCategory, so background threads account correctly no
  /// matter what scope the foreground has installed.
  [[nodiscard]] Status Read(uint64_t block_id, char* buf, IoCategory category);
  [[nodiscard]] Status Write(uint64_t block_id, const char* buf, IoCategory category);

  /// Set the category future I/Os are attributed to; returns the previous
  /// category so callers can restore it (see IoCategoryScope).
  IoCategory SetCategory(IoCategory category);

  const IoStats& stats() const { return stats_; }
  IoStats* mutable_stats() { return &stats_; }

  /// Which operations a failure injection applies to. Operations outside
  /// the filter succeed and do not consume the injection budget, so e.g.
  /// kWrites makes exactly the next `count` *writes* fail no matter how
  /// many reads interleave — the knob that makes deferred write-back
  /// error paths (cache eviction, Flush) testable in isolation.
  enum class FailOps {
    kAll = 0,
    kReads,
    kWrites,
  };

  /// Inject a failure: the next `count` I/O operations matching `ops`
  /// return IOError. Used by failure-injection tests.
  void FailNextOps(int count, FailOps ops = FailOps::kAll)
      NEXSORT_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    fail_skip_ = 0;
    fail_ops_ = count;
    fail_filter_ = ops;
  }

  /// Let `skip` more matching operations succeed, then fail `count`.
  void FailAfterOps(uint64_t skip, int count, FailOps ops = FailOps::kAll)
      NEXSORT_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    fail_skip_ = skip;
    fail_ops_ = count;
    fail_filter_ = ops;
  }

 protected:
  /// Storage hooks. `category` is the attribution the public entry point
  /// resolved for this access; plain storage devices ignore it, wrapping
  /// devices (cache, throttle) forward it so attribution survives the hop.
  [[nodiscard]] virtual Status DoRead(uint64_t block_id, char* buf, IoCategory category) = 0;
  [[nodiscard]] virtual Status DoWrite(uint64_t block_id, const char* buf,
                         IoCategory category) = 0;
  [[nodiscard]] virtual Status DoAllocate(uint64_t count) = 0;

  /// Category currently attributed to scope-based I/O (for wrapping devices
  /// that must forward the caller's attribution).
  IoCategory category() const {
    return category_.load(std::memory_order_relaxed);
  }

  /// For wrapping devices: adopt the wrapped device's block count so block
  /// ids stay aligned across the two layers.
  void SyncNumBlocks(uint64_t num_blocks) {
    num_blocks_.store(num_blocks, std::memory_order_release);
  }

 private:
  void Account(uint64_t block_id, bool is_write, IoCategory category);

  const size_t block_size_;
  const DiskModel model_;
  std::atomic<uint64_t> num_blocks_{0};
  IoStats stats_;
  std::atomic<IoCategory> category_{IoCategory::kOther};
  /// Guards the cross-operation state below (sequentiality detector and
  /// failure injection). Never held during DoRead/DoWrite, so slow storage
  /// (file I/O, modeled throttle sleeps) does not serialize callers — but
  /// it IS held across DoAllocate, which is why wrapper ranks descend.
  Mutex mutex_;
  /// For sequentiality detection.
  uint64_t last_accessed_ NEXSORT_GUARDED_BY(mutex_) = UINT64_MAX - 1;
  uint64_t fail_skip_ NEXSORT_GUARDED_BY(mutex_) = 0;
  int fail_ops_ NEXSORT_GUARDED_BY(mutex_) = 0;
  FailOps fail_filter_ NEXSORT_GUARDED_BY(mutex_) = FailOps::kAll;

  /// True when this operation should fail now (consumes the injection).
  [[nodiscard]] bool ShouldFail(bool is_write) NEXSORT_REQUIRES(mutex_);
};

/// RAII guard that attributes all I/O on `device` to `category` while alive.
/// Foreground-thread convenience only; concurrent threads pass the category
/// explicitly to Read/Write instead.
class IoCategoryScope {
 public:
  IoCategoryScope(BlockDevice* device, IoCategory category)
      : device_(device), previous_(device->SetCategory(category)) {}
  ~IoCategoryScope() { device_->SetCategory(previous_); }

  IoCategoryScope(const IoCategoryScope&) = delete;
  IoCategoryScope& operator=(const IoCategoryScope&) = delete;

 private:
  BlockDevice* device_;
  IoCategory previous_;
};

/// In-RAM block device for tests and benchmarks (I/O counts are identical to
/// a real disk's; only wall-clock differs, which the DiskModel supplies).
std::unique_ptr<BlockDevice> NewMemoryBlockDevice(size_t block_size,
                                                  DiskModel model = {});

/// File-backed block device using a single backing file.
[[nodiscard]] StatusOr<std::unique_ptr<BlockDevice>> NewFileBlockDevice(
    const std::string& path, size_t block_size, DiskModel model = {});

}  // namespace nexsort
