// Buffered sequential byte streams over a BlockDevice, used to store and
// scan XML documents in external memory. A document occupies a ByteRange
// (a contiguous block extent); reading it through BlockStreamReader counts
// one I/O per block, which is the paper's "reading the input" cost O(N/B).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "extmem/block_device.h"
#include "extmem/memory_budget.h"
#include "util/status.h"

namespace nexsort {

/// Contiguous extent of bytes on a device, starting at a block boundary.
struct ByteRange {
  uint64_t first_block = 0;
  uint64_t byte_size = 0;
};

/// Minimal pull-based byte source; implemented by stream/run readers and by
/// in-memory strings so parsers are storage-agnostic.
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  /// Read up to `n` bytes into `buf`; *out receives the count (0 at EOF).
  [[nodiscard]] virtual Status Read(char* buf, size_t n, size_t* out) = 0;
};

/// ByteSource over an in-memory string (no I/O accounting).
class StringByteSource final : public ByteSource {
 public:
  explicit StringByteSource(std::string_view data) : data_(data) {}

  [[nodiscard]] Status Read(char* buf, size_t n, size_t* out) override;

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Minimal push-based byte sink; implemented by stream/run writers and by
/// in-memory strings so serializers are storage-agnostic.
class ByteSink {
 public:
  virtual ~ByteSink() = default;
  [[nodiscard]] virtual Status Append(std::string_view data) = 0;
};

/// ByteSink appending to an in-memory string.
class StringByteSink final : public ByteSink {
 public:
  explicit StringByteSink(std::string* out) : out_(out) {}

  [[nodiscard]] Status Append(std::string_view data) override {
    out_->append(data);
    return Status::OK();
  }

 private:
  std::string* out_;
};

/// Appends bytes to a fresh extent on a device; one block buffered.
class BlockStreamWriter final : public ByteSink {
 public:
  BlockStreamWriter(BlockDevice* device, MemoryBudget* budget,
                    IoCategory category);

  const Status& init_status() const { return init_status_; }

  [[nodiscard]] Status Append(std::string_view data) override;

  /// Flush the final partial block and return the written extent.
  [[nodiscard]] Status Finish(ByteRange* range);

  uint64_t bytes_written() const { return byte_size_; }

 private:
  BlockDevice* device_;
  const IoCategory category_;
  BudgetReservation reservation_;
  Status init_status_;

  bool started_ = false;
  bool finished_ = false;
  uint64_t first_block_ = 0;
  uint64_t next_block_ = 0;
  uint64_t byte_size_ = 0;
  std::string buffer_;
};

/// Reads a ByteRange sequentially; one block buffered.
class BlockStreamReader final : public ByteSource {
 public:
  BlockStreamReader(BlockDevice* device, MemoryBudget* budget, ByteRange range,
                    IoCategory category);

  const Status& init_status() const { return init_status_; }

  [[nodiscard]] Status Read(char* buf, size_t n, size_t* out) override;

  uint64_t bytes_remaining() const { return range_.byte_size - position_; }

 private:
  BlockDevice* device_;
  const IoCategory category_;
  const ByteRange range_;
  BudgetReservation reservation_;
  Status init_status_;

  uint64_t position_ = 0;   // bytes consumed
  std::string buffer_;      // current block contents
  uint64_t buffer_start_ = UINT64_MAX;  // byte offset buffer_ begins at
};

/// Convenience: copy a whole string into a fresh extent on `device`.
[[nodiscard]] StatusOr<ByteRange> StoreBytes(BlockDevice* device, MemoryBudget* budget,
                               std::string_view data,
                               IoCategory category = IoCategory::kOther);

/// Convenience: read a whole extent back into a string.
[[nodiscard]] StatusOr<std::string> LoadBytes(BlockDevice* device, MemoryBudget* budget,
                                ByteRange range,
                                IoCategory category = IoCategory::kOther);

}  // namespace nexsort
