#include "extmem/run_store.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "obs/tracer.h"
#include "util/dcheck.h"
#include "util/status.h"

namespace nexsort {

RunStore::RunStore(BlockDevice* device, MemoryBudget* budget)
    : device_(device), budget_(budget) {}

void RunStore::DcheckBalancedLocked() const {
#if NEXSORT_DCHECK_ENABLED
  uint64_t total = 0;
  for (const std::vector<uint64_t>& blocks : run_blocks_) {
    total += blocks.size();
  }
  NEXSORT_DCHECK_EQ(live_blocks_.load(std::memory_order_relaxed), total);
#endif
}

Status RunStore::AllocateBlock(uint64_t* id) {
  {
    MutexLock lock(&mutex_);
    if (!free_blocks_.empty()) {
      *id = free_blocks_.back();
      free_blocks_.pop_back();
      return Status::OK();
    }
  }
  return device_->Allocate(1, id);
}

Status RunStore::AllocateExtent(uint64_t count, std::vector<uint64_t>* out) {
  out->clear();
  {
    MutexLock lock(&mutex_);
    if (free_blocks_.size() >= count) {
      // Prefer a consecutive chunk of freed blocks: a long-lived store
      // (nexsortd) must not grow the device forever just because its runs
      // are placed. The free list is unsorted (LIFO scratch reuse), so
      // scan a sorted copy for a long-enough ascending chunk.
      std::vector<uint64_t> sorted = free_blocks_;
      std::sort(sorted.begin(), sorted.end());
      size_t chunk_start = 0;
      for (size_t i = 1; i <= sorted.size(); ++i) {
        if (i < sorted.size() && sorted[i] == sorted[i - 1] + 1) continue;
        if (i - chunk_start >= count) {
          out->assign(sorted.begin() + chunk_start,
                      sorted.begin() + chunk_start + count);
          break;
        }
        chunk_start = i;
      }
      if (!out->empty()) {
        const uint64_t lo = out->front();
        const uint64_t hi = out->back();
        free_blocks_.erase(
            std::remove_if(free_blocks_.begin(), free_blocks_.end(),
                           [lo, hi](uint64_t id) {
                             return id >= lo && id <= hi;
                           }),
            free_blocks_.end());
        return Status::OK();
      }
    }
  }
  uint64_t first = 0;
  RETURN_IF_ERROR(device_->Allocate(count, &first));
  out->resize(count);
  for (uint64_t i = 0; i < count; ++i) (*out)[i] = first + i;
  return Status::OK();
}

void RunStore::ReleaseBlocks(const uint64_t* ids, size_t count) {
  if (count == 0) return;
  MutexLock lock(&mutex_);
  free_blocks_.insert(free_blocks_.end(), ids, ids + count);
}

RunWriter RunStore::NewRun(IoCategory category, PlacementHint hint) {
  return RunWriter(this, category, hint);
}

RunReader RunStore::OpenRun(RunHandle handle, uint64_t offset,
                            IoCategory category) {
  TraceRunEvent(tracer_, RunEventKind::kReadBack, category, handle.byte_size,
                handle.id);
  return RunReader(this, handle, offset, category);
}

Status RunStore::SnapshotBlocks(RunHandle handle,
                                std::vector<uint64_t>* blocks) {
  MutexLock lock(&mutex_);
  if (!handle.valid() || handle.id >= run_blocks_.size()) {
    return Status::InvalidArgument("invalid run handle");
  }
  *blocks = run_blocks_[handle.id];
  return Status::OK();
}

Status RunStore::RelocateSequential(RunHandle* handle, IoCategory category) {
  std::vector<uint64_t> old_blocks;
  RETURN_IF_ERROR(SnapshotBlocks(*handle, &old_blocks));
  if (old_blocks.empty()) return Status::OK();
  bool already_sequential = true;
  for (size_t i = 1; i < old_blocks.size(); ++i) {
    if (old_blocks[i] != old_blocks[i - 1] + 1) {
      already_sequential = false;
      break;
    }
  }
  if (already_sequential) return Status::OK();
  // One block of copy buffer, charged like any reader's.
  BudgetReservation copy_buffer;
  RETURN_IF_ERROR(copy_buffer.Acquire(budget_, 1));
  // A fresh device extent is contiguous ascending by construction; the
  // whole point here is perfect sequentiality, so do not compromise with
  // scattered free-list blocks.
  uint64_t first = 0;
  RETURN_IF_ERROR(device_->Allocate(old_blocks.size(), &first));
  std::string buffer(device_->block_size(), '\0');
  for (size_t i = 0; i < old_blocks.size(); ++i) {
    RETURN_IF_ERROR(device_->Read(old_blocks[i], buffer.data(), category));
    RETURN_IF_ERROR(device_->Write(first + i, buffer.data(), category));
  }
  {
    MutexLock lock(&mutex_);
    std::vector<uint64_t>& blocks = run_blocks_[handle->id];
    if (blocks.size() != old_blocks.size()) {
      return Status::InvalidArgument(
          "run changed during relocation (concurrent free?)");
    }
    for (size_t i = 0; i < blocks.size(); ++i) blocks[i] = first + i;
    free_blocks_.insert(free_blocks_.end(), old_blocks.begin(),
                        old_blocks.end());
    DcheckBalancedLocked();
  }
  return Status::OK();
}

Status RunStore::FreeRun(RunHandle handle) {
  {
    MutexLock lock(&mutex_);
    if (!handle.valid() || handle.id >= run_blocks_.size()) {
      return Status::InvalidArgument("invalid run handle");
    }
    std::vector<uint64_t>& blocks = run_blocks_[handle.id];
    live_blocks_.fetch_sub(blocks.size(), std::memory_order_relaxed);
    free_blocks_.insert(free_blocks_.end(), blocks.begin(), blocks.end());
    blocks.clear();
    run_bytes_[handle.id] = 0;
    runs_freed_.fetch_add(1, std::memory_order_relaxed);
    live_bytes_.fetch_sub(handle.byte_size, std::memory_order_relaxed);
    DcheckBalancedLocked();
  }
  TraceRunEvent(tracer_, RunEventKind::kFreed, IoCategory::kOther,
                handle.byte_size, handle.id);
  return Status::OK();
}

RunWriter::RunWriter(RunStore* store, IoCategory category, PlacementHint hint)
    : store_(store), category_(category), hint_(hint) {
  init_status_ = reservation_.Acquire(store->budget_, 1);
  buffer_.reserve(store->device_->block_size());
}

Status RunWriter::NextBlock(uint64_t* id) {
  if (hint_ == PlacementHint::kScratch) return store_->AllocateBlock(id);
  if (extent_used_ == extent_.size()) {
    RETURN_IF_ERROR(
        store_->AllocateExtent(RunStore::kPlacementExtentBlocks, &extent_));
    extent_used_ = 0;
  }
  *id = extent_[extent_used_++];
  return Status::OK();
}

Status RunWriter::Append(std::string_view data) {
  if (finished_) return Status::InvalidArgument("run writer finished");
  const size_t block_size = store_->device_->block_size();
  size_t pos = 0;
  while (pos < data.size()) {
    size_t take = std::min(block_size - buffer_.size(), data.size() - pos);
    buffer_.append(data.data() + pos, take);
    pos += take;
    byte_size_ += take;
    if (buffer_.size() == block_size) {
      uint64_t id = 0;
      RETURN_IF_ERROR(NextBlock(&id));
      RETURN_IF_ERROR(store_->device_->Write(id, buffer_.data(), category_));
      blocks_.push_back(id);
      buffer_.clear();
    }
  }
  return Status::OK();
}

Status RunWriter::Finish(RunHandle* handle) {
  if (finished_) return Status::InvalidArgument("run writer finished");
  finished_ = true;
  if (!buffer_.empty()) {
    buffer_.resize(store_->device_->block_size(), '\0');
    uint64_t id = 0;
    RETURN_IF_ERROR(NextBlock(&id));
    RETURN_IF_ERROR(store_->device_->Write(id, buffer_.data(), category_));
    blocks_.push_back(id);
    buffer_.clear();
  }
  if (extent_used_ < extent_.size()) {
    // Unused tail of the last placed extent goes back to the free list.
    store_->ReleaseBlocks(extent_.data() + extent_used_,
                          extent_.size() - extent_used_);
  }
  extent_.clear();
  extent_used_ = 0;
  {
    MutexLock lock(&store_->mutex_);
    handle->id = static_cast<uint32_t>(store_->run_blocks_.size());
    handle->byte_size = byte_size_;
    store_->live_blocks_.fetch_add(blocks_.size(),
                                   std::memory_order_relaxed);
    store_->run_blocks_.push_back(std::move(blocks_));
    store_->run_bytes_.push_back(byte_size_);
    store_->runs_created_.fetch_add(1, std::memory_order_relaxed);
    store_->finished_bytes_.fetch_add(byte_size_, std::memory_order_relaxed);
    store_->live_bytes_.fetch_add(byte_size_, std::memory_order_relaxed);
    store_->DcheckBalancedLocked();
  }
  reservation_.Reset();
  if (!suppress_trace_) {
    TraceRunEvent(store_->tracer_, RunEventKind::kCreated, category_,
                  byte_size_, handle->id);
  }
  return Status::OK();
}

RunReader::RunReader(RunStore* store, RunHandle handle, uint64_t offset,
                     IoCategory category)
    : store_(store), handle_(handle), category_(category), position_(offset) {
  init_status_ = reservation_.Acquire(store->budget_, 1);
  if (init_status_.ok()) {
    init_status_ = store_->SnapshotBlocks(handle, &blocks_);
    if (init_status_.ok() && offset > handle.byte_size) {
      init_status_ = Status::InvalidArgument("run offset past end");
    }
  }
}

Status RunReader::Read(char* buf, size_t n, size_t* out) {
  const size_t block_size = store_->device_->block_size();
  size_t done = 0;
  while (done < n && position_ < handle_.byte_size) {
    uint64_t block_index = position_ / block_size;
    if (block_index != buffer_index_) {
      buffer_.resize(block_size);
      RETURN_IF_ERROR(store_->device_->Read(blocks_[block_index],
                                            buffer_.data(), category_));
      buffer_index_ = block_index;
    }
    uint64_t in_block = position_ - block_index * block_size;
    uint64_t take = std::min<uint64_t>(
        {n - done, block_size - in_block, handle_.byte_size - position_});
    std::memcpy(buf + done, buffer_.data() + in_block,
                static_cast<size_t>(take));
    done += static_cast<size_t>(take);
    position_ += take;
  }
  *out = done;
  return Status::OK();
}

Status RunReader::ReadExact(char* buf, size_t n) {
  size_t got = 0;
  RETURN_IF_ERROR(Read(buf, n, &got));
  if (got != n) return Status::Corruption("short run read");
  return Status::OK();
}

namespace {

/// "<prefix>." if `name` is a scratch file of `prefix`; extracts its
/// instance field. Tolerates any seq/label content between the dots.
bool ParseScratchInstance(std::string_view name, std::string_view prefix,
                          uint64_t* instance) {
  constexpr std::string_view kSuffix = ".scratch";
  if (name.size() <= prefix.size() + 1 + kSuffix.size()) return false;
  if (name.substr(0, prefix.size()) != prefix) return false;
  if (name[prefix.size()] != '.') return false;
  if (name.substr(name.size() - kSuffix.size()) != kSuffix) return false;
  std::string_view rest = name.substr(prefix.size() + 1);
  size_t dot = rest.find('.');
  if (dot == std::string_view::npos || dot == 0) return false;
  uint64_t value = 0;
  for (char c : rest.substr(0, dot)) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *instance = value;
  return true;
}

}  // namespace

ScratchNamespace::ScratchNamespace(std::string directory, std::string prefix,
                                   uint64_t instance)
    : directory_(std::move(directory)),
      prefix_(std::move(prefix)),
      instance_(instance) {
  NEXSORT_DCHECK_MSG(!prefix_.empty() &&
                         prefix_.find('.') == std::string::npos,
                     "scratch prefix must be non-empty and dot-free");
}

ScratchNamespace::~ScratchNamespace() { RemoveAll(); }

std::string ScratchNamespace::NewPath(std::string_view label) {
  std::string clean;
  clean.reserve(label.size());
  for (char c : label) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '-' || c == '_';
    clean.push_back(ok ? c : '_');
  }
  if (clean.empty()) clean = "tmp";
  MutexLock lock(&mutex_);
  std::string path = directory_ + "/" + prefix_ + "." +
                     std::to_string(instance_) + "." +
                     std::to_string(next_seq_++) + "." + clean + ".scratch";
  issued_.push_back(path);
  return path;
}

Status ScratchNamespace::Remove(const std::string& path) {
  {
    MutexLock lock(&mutex_);
    auto it = std::find(issued_.begin(), issued_.end(), path);
    if (it == issued_.end()) {
      return Status::NotFound("not a path issued by this scratch namespace");
    }
    issued_.erase(it);
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);  // absent file: remove() is a no-op
  if (ec) return Status::IOError("removing scratch file: " + ec.message());
  return Status::OK();
}

void ScratchNamespace::RemoveAll() {
  MutexLock lock(&mutex_);
  for (const std::string& path : issued_) {
    std::error_code ec;
    std::filesystem::remove(path, ec);  // best-effort; destructor path
  }
  issued_.clear();
}

uint64_t ScratchNamespace::live_paths() const {
  MutexLock lock(&mutex_);
  return issued_.size();
}

StatusOr<uint64_t> ScratchNamespace::SweepOrphans(const std::string& directory,
                                                  std::string_view prefix,
                                                  uint64_t exclude_instance) {
  std::error_code ec;
  std::filesystem::directory_iterator it(directory, ec);
  if (ec) {
    if (ec == std::errc::no_such_file_or_directory) return uint64_t{0};
    return Status::IOError("scanning scratch directory: " + ec.message());
  }
  uint64_t swept = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    uint64_t instance = 0;
    if (!ParseScratchInstance(entry.path().filename().string(), prefix,
                              &instance)) {
      continue;
    }
    if (instance == exclude_instance) continue;  // the live process's own
    std::error_code remove_ec;
    if (std::filesystem::remove(entry.path(), remove_ec) && !remove_ec) {
      ++swept;
    }
  }
  return swept;
}

}  // namespace nexsort
