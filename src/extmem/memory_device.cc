#include <cstring>
#include <vector>

#include "extmem/block_device.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace nexsort {

namespace {

/// Block device backed by heap memory. Blocks are allocated lazily so large
/// sparse devices are cheap in tests. A SharedMutex lets concurrent reads
/// and writes to distinct, already-allocated blocks proceed in parallel
/// while Allocate (which may reallocate the vector) is exclusive. Writers
/// take the shared lock too: they touch only their own block's string, and
/// the framework guarantees distinct threads never race on one block.
class MemoryBlockDevice final : public BlockDevice {
 public:
  MemoryBlockDevice(size_t block_size, DiskModel model)
      : BlockDevice(block_size, model) {}

 protected:
  Status DoRead(uint64_t block_id, char* buf, IoCategory) override {
    ReaderMutexLock lock(&mutex_);
    const std::string& block = blocks_[block_id];
    if (block.empty()) {
      std::memset(buf, 0, block_size());
    } else {
      std::memcpy(buf, block.data(), block_size());
    }
    return Status::OK();
  }

  Status DoWrite(uint64_t block_id, const char* buf, IoCategory) override {
    ReaderMutexLock lock(&mutex_);
    blocks_[block_id].assign(buf, block_size());
    return Status::OK();
  }

  Status DoAllocate(uint64_t count) override {
    WriterMutexLock lock(&mutex_);
    blocks_.resize(blocks_.size() + count);
    return Status::OK();
  }

 private:
  /// blocks_ carries no NEXSORT_GUARDED_BY: reads AND writes hold the
  /// capability shared (distinct threads never touch one block), only
  /// Allocate's resize is exclusive. // lint-ok: guarded-by
  SharedMutex mutex_{"MemoryBlockDevice::storage",
                     lock_rank::kDeviceStorage};
  std::vector<std::string> blocks_;
};

}  // namespace

std::unique_ptr<BlockDevice> NewMemoryBlockDevice(size_t block_size,
                                                  DiskModel model) {
  return std::make_unique<MemoryBlockDevice>(block_size, model);
}

}  // namespace nexsort
