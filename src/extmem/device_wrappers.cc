#include "extmem/device_wrappers.h"

#include <chrono>
#include <memory>
#include <thread>

#include "extmem/block_device.h"
#include "util/dcheck.h"
#include "util/status.h"

namespace nexsort {

namespace {

/// Wrapper that charges a real wall-clock delay per access before
/// forwarding to the base device. The sleep happens with no lock held (the
/// BlockDevice accounting mutex is released around DoRead/DoWrite), so N
/// concurrent accesses overlap their waits like requests queued on an SSD.
/// This is what lets the overlap benchmarks demonstrate wall-clock wins on
/// a single-core host: the background spiller's I/O waits run concurrently
/// with foreground parsing/encoding.
class ThrottledBlockDevice final : public BlockDevice {
 public:
  ThrottledBlockDevice(BlockDevice* base, ThrottleModel model)
      : BlockDevice(base->block_size(), DiskModel{}, base->mutex_rank() - 1),
        base_(base),
        model_(model) {
    SyncNumBlocks(base_->num_blocks());
  }

 protected:
  Status DoRead(uint64_t block_id, char* buf, IoCategory category) override {
    Delay();
    return base_->Read(block_id, buf, category);
  }

  Status DoWrite(uint64_t block_id, const char* buf,
                 IoCategory category) override {
    Delay();
    return base_->Write(block_id, buf, category);
  }

  Status DoAllocate(uint64_t count) override {
    uint64_t first = 0;
    RETURN_IF_ERROR(base_->Allocate(count, &first));
    // Wrapper and base must agree on ids; nothing else may allocate on the
    // base while it is wrapped.
    NEXSORT_DCHECK_EQ(first, num_blocks());
    (void)first;
    return Status::OK();
  }

 private:
  void Delay() const {
    std::this_thread::sleep_for(std::chrono::duration<double>(
        model_.AccessSeconds(block_size())));
  }

  BlockDevice* const base_;
  const ThrottleModel model_;
};

/// Transparent forwarder: no behavior of its own beyond the failure
/// injection every BlockDevice carries. Arming FailNextOps/FailAfterOps on
/// the wrapper fails operations at this layer — the base device (and any
/// layer below) never sees them — so fault placement composes with the
/// cache and the throttle in any stacking order.
class FaultInjectionBlockDevice final : public BlockDevice {
 public:
  explicit FaultInjectionBlockDevice(BlockDevice* base)
      : BlockDevice(base->block_size(), DiskModel{}, base->mutex_rank() - 1),
        base_(base) {
    SyncNumBlocks(base_->num_blocks());
  }

 protected:
  Status DoRead(uint64_t block_id, char* buf, IoCategory category) override {
    return base_->Read(block_id, buf, category);
  }

  Status DoWrite(uint64_t block_id, const char* buf,
                 IoCategory category) override {
    return base_->Write(block_id, buf, category);
  }

  Status DoAllocate(uint64_t count) override {
    uint64_t first = 0;
    RETURN_IF_ERROR(base_->Allocate(count, &first));
    // Wrapper and base must agree on ids; nothing else may allocate on the
    // base while it is wrapped.
    NEXSORT_DCHECK_EQ(first, num_blocks());
    (void)first;
    return Status::OK();
  }

 private:
  BlockDevice* const base_;
};

}  // namespace

std::unique_ptr<BlockDevice> NewThrottledBlockDevice(BlockDevice* base,
                                                     ThrottleModel model) {
  return std::make_unique<ThrottledBlockDevice>(base, model);
}

std::unique_ptr<BlockDevice> NewFaultInjectionBlockDevice(BlockDevice* base) {
  return std::make_unique<FaultInjectionBlockDevice>(base);
}

}  // namespace nexsort
