// MemoryBudget caps the internal memory available to an algorithm at M
// blocks, reproducing TPIE's adjustable application-memory limit that the
// paper's experiments rely on ("We use TPIE to set the application memory to
// be smaller than this amount in all experiments"). Every component that
// holds block-sized buffers resident (stacks, sort buffers, merge inputs)
// acquires them from the budget and releases them when done.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace nexsort {

/// Tracks block-granular memory use against a hard cap of M blocks.
///
/// Thread-safe: Acquire's check-then-add is one critical section (the
/// paper's hard cap must hold exactly even when a background spiller and
/// the foreground reserve concurrently), while the accessors read atomic
/// mirrors without taking the lock.
class MemoryBudget {
 public:
  /// `total_blocks` is M in the paper's notation.
  explicit MemoryBudget(uint64_t total_blocks);

  /// Debug builds verify every reservation was returned: blocks still in
  /// use at destruction mean some component leaked part of the M-block cap.
  ~MemoryBudget();

  /// Reserve `count` blocks; OutOfMemory if that would exceed the cap.
  [[nodiscard]] Status Acquire(uint64_t count);

  /// Return `count` previously acquired blocks. Releasing more than is in
  /// use is a caller bug: instead of wrapping `used_blocks_` (which would
  /// silently disable the cap), the release is clamped to what is in use,
  /// the incident is logged once, and release_underflows() records it.
  void Release(uint64_t count);

  /// Number of Release() calls that tried to return more blocks than were
  /// in use (0 in a correct program; asserted on by tests).
  uint64_t release_underflows() const {
    return release_underflows_.load(std::memory_order_relaxed);
  }

  uint64_t total_blocks() const { return total_blocks_; }
  uint64_t used_blocks() const {
    return used_blocks_.load(std::memory_order_relaxed);
  }
  uint64_t available_blocks() const { return total_blocks_ - used_blocks(); }

  /// High-water mark of blocks in use, for tests asserting an algorithm
  /// stayed inside its budget.
  uint64_t peak_blocks() const {
    return peak_blocks_.load(std::memory_order_relaxed);
  }

 private:
  const uint64_t total_blocks_;
  /// Serializes Acquire's check-then-add and Release's clamp; the fields
  /// below stay atomics (not NEXSORT_GUARDED_BY) because the accessors
  /// deliberately read them lock-free. // lint-ok: guarded-by
  Mutex mutex_{"MemoryBudget::mutex_", lock_rank::kMemoryBudget};
  std::atomic<uint64_t> used_blocks_{0};
  std::atomic<uint64_t> peak_blocks_{0};
  std::atomic<uint64_t> release_underflows_{0};
};

/// RAII reservation of budget blocks.
class BudgetReservation {
 public:
  BudgetReservation() = default;
  ~BudgetReservation() { Reset(); }

  BudgetReservation(const BudgetReservation&) = delete;
  BudgetReservation& operator=(const BudgetReservation&) = delete;
  BudgetReservation(BudgetReservation&& other) noexcept { *this = std::move(other); }
  BudgetReservation& operator=(BudgetReservation&& other) noexcept {
    if (this != &other) {
      Reset();
      budget_ = other.budget_;
      count_ = other.count_;
      other.budget_ = nullptr;
      other.count_ = 0;
    }
    return *this;
  }

  [[nodiscard]] Status Acquire(MemoryBudget* budget, uint64_t count) {
    Reset();
    RETURN_IF_ERROR(budget->Acquire(count));
    budget_ = budget;
    count_ = count;
    return Status::OK();
  }

  void Reset() {
    if (budget_ != nullptr) budget_->Release(count_);
    budget_ = nullptr;
    count_ = 0;
  }

  uint64_t count() const { return count_; }

 private:
  MemoryBudget* budget_ = nullptr;
  uint64_t count_ = 0;
};

}  // namespace nexsort
