#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "extmem/block_device.h"
#include "util/status.h"

namespace nexsort {

namespace {

/// Block device backed by a single file, addressed with pread/pwrite.
class FileBlockDevice final : public BlockDevice {
 public:
  FileBlockDevice(int fd, size_t block_size, DiskModel model)
      : BlockDevice(block_size, model), fd_(fd) {}

  ~FileBlockDevice() override {
    if (fd_ >= 0) ::close(fd_);
  }

 protected:
  Status DoRead(uint64_t block_id, char* buf, IoCategory) override {
    size_t want = block_size();
    off_t offset = static_cast<off_t>(block_id * want);
    size_t done = 0;
    while (done < want) {
      ssize_t n = ::pread(fd_, buf + done, want - done, offset + done);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("pread: ") + std::strerror(errno));
      }
      if (n == 0) {
        // Allocated-but-never-written tail of the file reads as zeros.
        std::memset(buf + done, 0, want - done);
        break;
      }
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status DoWrite(uint64_t block_id, const char* buf, IoCategory) override {
    size_t want = block_size();
    off_t offset = static_cast<off_t>(block_id * want);
    size_t done = 0;
    while (done < want) {
      ssize_t n = ::pwrite(fd_, buf + done, want - done, offset + done);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("pwrite: ") + std::strerror(errno));
      }
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status DoAllocate(uint64_t /*count*/) override {
    // The file grows on demand via pwrite; nothing to reserve.
    return Status::OK();
  }

 private:
  int fd_;
};

}  // namespace

StatusOr<std::unique_ptr<BlockDevice>> NewFileBlockDevice(
    const std::string& path, size_t block_size, DiskModel model) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  return std::unique_ptr<BlockDevice>(
      new FileBlockDevice(fd, block_size, model));
}

}  // namespace nexsort
