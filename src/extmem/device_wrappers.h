// Composable BlockDevice wrapper layers. Each wrapper forwards every
// Read/Write (with the caller's IoCategory attribution) to a base device it
// does not own, so layers stack in any order between the storage device at
// the bottom and the BufferPool cache at the top: throttle-under-cache
// measures physical-I/O wait, fault-under-cache exercises deferred
// write-back error paths, and so on. SortEnvOptions::layers (src/env/)
// registers these declaratively; benches and tests may also stack them by
// hand.
#pragma once

#include <memory>

#include "extmem/block_device.h"

namespace nexsort {

/// Wall-clock delay model for NewThrottledBlockDevice: every access sleeps
/// for the fixed per-operation latency plus block_size/throughput. Unlike
/// the DiskModel (which only accumulates *modeled* seconds), these delays
/// are real, so overlap benchmarks observe genuine I/O wait on any storage.
struct ThrottleModel {
  double access_latency_us = 150.0;
  double throughput_mb_per_s = 250.0;

  double AccessSeconds(size_t block_size) const {
    return access_latency_us / 1e6 +
           static_cast<double>(block_size) / (throughput_mb_per_s * 1e6);
  }
};

/// Wrap `base` (not owned; must outlive the wrapper) so every read and
/// write pays a real sleep per ThrottleModel before reaching the base
/// device. The sleep happens outside any lock, so concurrent accesses
/// overlap — the wrapper behaves like an SSD with queue depth, which is
/// what makes compute/I/O overlap measurable on a single-core benchmark
/// host. Accounting happens at both layers with identical counts.
std::unique_ptr<BlockDevice> NewThrottledBlockDevice(BlockDevice* base,
                                                     ThrottleModel model = {});

/// Wrap `base` (not owned; must outlive the wrapper) in a fault-injection
/// layer: a transparent forwarder whose inherited FailNextOps/FailAfterOps
/// knobs (including the FailOps read/write filter) arm failures at *this*
/// layer instead of the storage device. Stacked under the cache it makes
/// deferred write-back failures reproducible; stacked above another
/// wrapper it fails operations before they pay that wrapper's cost.
std::unique_ptr<BlockDevice> NewFaultInjectionBlockDevice(BlockDevice* base);

}  // namespace nexsort
