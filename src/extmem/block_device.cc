#include "extmem/block_device.h"

#include <cstdio>

#include "obs/json_writer.h"
#include "util/string_util.h"

namespace nexsort {

const char* IoCategoryName(IoCategory category) {
  switch (category) {
    case IoCategory::kInput: return "input";
    case IoCategory::kOutput: return "output";
    case IoCategory::kDataStack: return "data-stack";
    case IoCategory::kPathStack: return "path-stack";
    case IoCategory::kOutputStack: return "output-stack";
    case IoCategory::kRunWrite: return "run-write";
    case IoCategory::kRunRead: return "run-read";
    case IoCategory::kSortTemp: return "sort-temp";
    case IoCategory::kOther: return "other";
  }
  return "unknown";
}

void IoStats::CopyFrom(const IoStats& other) {
  reads.store(other.reads.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  writes.store(other.writes.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  sequential_reads.store(
      other.sequential_reads.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  sequential_writes.store(
      other.sequential_writes.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  for (int i = 0; i < kNumIoCategories; ++i) {
    category_reads[i].store(
        other.category_reads[i].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    category_writes[i].store(
        other.category_writes[i].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  modeled_seconds.store(other.modeled_seconds.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
}

std::string IoStats::ToString(size_t block_size) const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "total I/Os: %llu (reads %llu, writes %llu), "
                "sequential %llu, data %s, modeled %.3f s\n",
                static_cast<unsigned long long>(total()),
                static_cast<unsigned long long>(reads.load()),
                static_cast<unsigned long long>(writes.load()),
                static_cast<unsigned long long>(sequential_reads.load() +
                                                sequential_writes.load()),
                HumanBytes(total() * block_size).c_str(),
                modeled_seconds.load());
  out += line;
  for (int i = 0; i < kNumIoCategories; ++i) {
    if (category_reads[i].load() == 0 && category_writes[i].load() == 0) {
      continue;
    }
    std::snprintf(line, sizeof(line), "  %-12s reads %-10llu writes %llu\n",
                  IoCategoryName(static_cast<IoCategory>(i)),
                  static_cast<unsigned long long>(category_reads[i].load()),
                  static_cast<unsigned long long>(category_writes[i].load()));
    out += line;
  }
  return out;
}

void IoStats::ToJson(JsonWriter* writer) const {
  writer->BeginObject();
  writer->Key("reads");
  writer->Uint(reads.load());
  writer->Key("writes");
  writer->Uint(writes.load());
  writer->Key("total");
  writer->Uint(total());
  writer->Key("sequential_reads");
  writer->Uint(sequential_reads.load());
  writer->Key("sequential_writes");
  writer->Uint(sequential_writes.load());
  writer->Key("modeled_seconds");
  writer->Double(modeled_seconds.load());
  writer->Key("categories");
  writer->BeginObject();
  for (int i = 0; i < kNumIoCategories; ++i) {
    writer->Key(IoCategoryName(static_cast<IoCategory>(i)));
    writer->BeginObject();
    writer->Key("reads");
    writer->Uint(category_reads[i].load());
    writer->Key("writes");
    writer->Uint(category_writes[i].load());
    writer->EndObject();
  }
  writer->EndObject();
  writer->EndObject();
}

std::string IoStats::ToJsonString() const {
  JsonWriter writer;
  ToJson(&writer);
  return std::move(writer).Take();
}

BlockDevice::BlockDevice(size_t block_size, DiskModel model, int mutex_rank)
    : block_size_(block_size),
      model_(model),
      mutex_("BlockDevice::mutex_", mutex_rank) {}

BlockDevice::~BlockDevice() = default;

Status BlockDevice::Allocate(uint64_t count, uint64_t* first_id) {
  MutexLock lock(&mutex_);
  RETURN_IF_ERROR(DoAllocate(count));
  *first_id = num_blocks_.load(std::memory_order_relaxed);
  num_blocks_.fetch_add(count, std::memory_order_acq_rel);
  return Status::OK();
}

IoCategory BlockDevice::SetCategory(IoCategory category) {
  return category_.exchange(category, std::memory_order_relaxed);
}

void BlockDevice::Account(uint64_t block_id, bool is_write,
                          IoCategory category) {
  bool sequential;
  {
    MutexLock lock(&mutex_);
    sequential = block_id == last_accessed_ + 1;
    last_accessed_ = block_id;
  }
  int cat = static_cast<int>(category);
  if (is_write) {
    stats_.writes.fetch_add(1, std::memory_order_relaxed);
    stats_.category_writes[cat].fetch_add(1, std::memory_order_relaxed);
    if (sequential) {
      stats_.sequential_writes.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    stats_.reads.fetch_add(1, std::memory_order_relaxed);
    stats_.category_reads[cat].fetch_add(1, std::memory_order_relaxed);
    if (sequential) {
      stats_.sequential_reads.fetch_add(1, std::memory_order_relaxed);
    }
  }
  stats_.modeled_seconds.fetch_add(
      model_.AccessSeconds(block_size_, sequential),
      std::memory_order_relaxed);
}

bool BlockDevice::ShouldFail(bool is_write) {
  if (fail_ops_ <= 0) return false;
  if (fail_filter_ == FailOps::kReads && is_write) return false;
  if (fail_filter_ == FailOps::kWrites && !is_write) return false;
  if (fail_skip_ > 0) {
    --fail_skip_;
    return false;
  }
  --fail_ops_;
  return true;
}

Status BlockDevice::Read(uint64_t block_id, char* buf) {
  return Read(block_id, buf, category());
}

Status BlockDevice::Write(uint64_t block_id, const char* buf) {
  return Write(block_id, buf, category());
}

Status BlockDevice::Read(uint64_t block_id, char* buf, IoCategory category) {
  if (block_id >= num_blocks()) {
    return Status::InvalidArgument("read past end of device");
  }
  {
    MutexLock lock(&mutex_);
    if (ShouldFail(/*is_write=*/false)) {
      return Status::IOError("injected read failure");
    }
  }
  RETURN_IF_ERROR(DoRead(block_id, buf, category));
  Account(block_id, /*is_write=*/false, category);
  return Status::OK();
}

Status BlockDevice::Write(uint64_t block_id, const char* buf,
                          IoCategory category) {
  if (block_id >= num_blocks()) {
    return Status::InvalidArgument("write past end of device");
  }
  {
    MutexLock lock(&mutex_);
    if (ShouldFail(/*is_write=*/true)) {
      return Status::IOError("injected write failure");
    }
  }
  RETURN_IF_ERROR(DoWrite(block_id, buf, category));
  Account(block_id, /*is_write=*/true, category);
  return Status::OK();
}

}  // namespace nexsort
