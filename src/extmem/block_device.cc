#include "extmem/block_device.h"

#include <cstdio>

#include "obs/json_writer.h"
#include "util/string_util.h"

namespace nexsort {

const char* IoCategoryName(IoCategory category) {
  switch (category) {
    case IoCategory::kInput: return "input";
    case IoCategory::kOutput: return "output";
    case IoCategory::kDataStack: return "data-stack";
    case IoCategory::kPathStack: return "path-stack";
    case IoCategory::kOutputStack: return "output-stack";
    case IoCategory::kRunWrite: return "run-write";
    case IoCategory::kRunRead: return "run-read";
    case IoCategory::kSortTemp: return "sort-temp";
    case IoCategory::kOther: return "other";
  }
  return "unknown";
}

std::string IoStats::ToString(size_t block_size) const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "total I/Os: %llu (reads %llu, writes %llu), "
                "sequential %llu, data %s, modeled %.3f s\n",
                static_cast<unsigned long long>(total()),
                static_cast<unsigned long long>(reads),
                static_cast<unsigned long long>(writes),
                static_cast<unsigned long long>(sequential_reads +
                                                sequential_writes),
                HumanBytes(total() * block_size).c_str(), modeled_seconds);
  out += line;
  for (int i = 0; i < kNumIoCategories; ++i) {
    if (category_reads[i] == 0 && category_writes[i] == 0) continue;
    std::snprintf(line, sizeof(line), "  %-12s reads %-10llu writes %llu\n",
                  IoCategoryName(static_cast<IoCategory>(i)),
                  static_cast<unsigned long long>(category_reads[i]),
                  static_cast<unsigned long long>(category_writes[i]));
    out += line;
  }
  return out;
}

void IoStats::ToJson(JsonWriter* writer) const {
  writer->BeginObject();
  writer->Key("reads");
  writer->Uint(reads);
  writer->Key("writes");
  writer->Uint(writes);
  writer->Key("total");
  writer->Uint(total());
  writer->Key("sequential_reads");
  writer->Uint(sequential_reads);
  writer->Key("sequential_writes");
  writer->Uint(sequential_writes);
  writer->Key("modeled_seconds");
  writer->Double(modeled_seconds);
  writer->Key("categories");
  writer->BeginObject();
  for (int i = 0; i < kNumIoCategories; ++i) {
    writer->Key(IoCategoryName(static_cast<IoCategory>(i)));
    writer->BeginObject();
    writer->Key("reads");
    writer->Uint(category_reads[i]);
    writer->Key("writes");
    writer->Uint(category_writes[i]);
    writer->EndObject();
  }
  writer->EndObject();
  writer->EndObject();
}

std::string IoStats::ToJsonString() const {
  JsonWriter writer;
  ToJson(&writer);
  return std::move(writer).Take();
}

BlockDevice::BlockDevice(size_t block_size, DiskModel model)
    : block_size_(block_size), model_(model) {}

BlockDevice::~BlockDevice() = default;

Status BlockDevice::Allocate(uint64_t count, uint64_t* first_id) {
  RETURN_IF_ERROR(DoAllocate(count));
  *first_id = num_blocks_;
  num_blocks_ += count;
  return Status::OK();
}

IoCategory BlockDevice::SetCategory(IoCategory category) {
  IoCategory previous = category_;
  category_ = category;
  return previous;
}

void BlockDevice::Account(uint64_t block_id, bool is_write) {
  bool sequential = block_id == last_accessed_ + 1;
  last_accessed_ = block_id;
  int cat = static_cast<int>(category_);
  if (is_write) {
    ++stats_.writes;
    ++stats_.category_writes[cat];
    if (sequential) ++stats_.sequential_writes;
  } else {
    ++stats_.reads;
    ++stats_.category_reads[cat];
    if (sequential) ++stats_.sequential_reads;
  }
  stats_.modeled_seconds += model_.AccessSeconds(block_size_, sequential);
}

bool BlockDevice::ShouldFail(bool is_write) {
  if (fail_ops_ <= 0) return false;
  if (fail_filter_ == FailOps::kReads && is_write) return false;
  if (fail_filter_ == FailOps::kWrites && !is_write) return false;
  if (fail_skip_ > 0) {
    --fail_skip_;
    return false;
  }
  --fail_ops_;
  return true;
}

Status BlockDevice::Read(uint64_t block_id, char* buf) {
  if (block_id >= num_blocks_) {
    return Status::InvalidArgument("read past end of device");
  }
  if (ShouldFail(/*is_write=*/false)) {
    return Status::IOError("injected read failure");
  }
  RETURN_IF_ERROR(DoRead(block_id, buf));
  Account(block_id, /*is_write=*/false);
  return Status::OK();
}

Status BlockDevice::Write(uint64_t block_id, const char* buf) {
  if (block_id >= num_blocks_) {
    return Status::InvalidArgument("write past end of device");
  }
  if (ShouldFail(/*is_write=*/true)) {
    return Status::IOError("injected write failure");
  }
  RETURN_IF_ERROR(DoWrite(block_id, buf));
  Account(block_id, /*is_write=*/true);
  return Status::OK();
}

}  // namespace nexsort
