// RunStore manages sorted runs: variable-length byte sequences on a
// BlockDevice, each identified by a small RunHandle that NEXSORT embeds in
// collapsed elements (Figure 2/3 of the paper: a sorted subtree is replaced
// by its root plus "a pointer to the disk location of the sorted run").
//
// Each run's block index is kept as in-memory substrate metadata — the
// analogue of the file-system block mapping TPIE streams got from the OS for
// free. Block payloads themselves always live on the device, and every
// access is counted. Freed runs return their blocks to a free list so
// multi-pass external sorts have bounded device footprint.
//
// Thread-safety: the run table and free list sit behind a mutex, so a
// background spiller can finish runs while the foreground opens or frees
// others. A run is immutable once Finished; RunReader therefore snapshots
// its block index at open so reads never chase the growing run table.
// Trace events still go to the single-threaded Tracer — writers running on
// background threads must set_suppress_trace() and let the foreground emit
// the created-event after it observes completion.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "extmem/block_device.h"
#include "extmem/memory_budget.h"
#include "extmem/stream.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace nexsort {

/// Identifier of a run within its RunStore. Trivially copyable so it can be
/// serialized into element units on the data stack.
struct RunHandle {
  uint32_t id = UINT32_MAX;
  uint64_t byte_size = 0;

  bool valid() const { return id != UINT32_MAX; }
};

class RunWriter;
class RunReader;
class Tracer;

/// Where a new run's blocks should land (ROADMAP item 4 / Demaine–Iacono–
/// Langerman tree layout, docs/MERGE_PLANNING.md). Placement never changes
/// a run's contents or its logical I/O count — only which device block ids
/// carry it, i.e. how much of the read-back is sequential.
enum class PlacementHint {
  /// Recycle freed blocks LIFO (the historical behaviour): hot reuse and a
  /// minimal device footprint, but merge-temp churn scatters a run's
  /// blocks, so reading it back seeks.
  kScratch = 0,
  /// The run will be read back sequentially long after it is written (a
  /// final merged run, a collapsed subtree the output DFS re-reads): lay
  /// it in ascending contiguous extents so the read-back streams.
  kSequentialOutput,
};

/// Owner of all runs on one device.
class RunStore {
 public:
  /// Blocks per extent claimed for kSequentialOutput runs. Unused tail
  /// blocks of the last extent return to the free list at Finish.
  static constexpr uint64_t kPlacementExtentBlocks = 16;

  RunStore(BlockDevice* device, MemoryBudget* budget);

  /// Attach a tracer (may be null; not owned): the store then records a
  /// run-lifecycle event for every run finished, opened, and freed.
  /// Foreground-thread only.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

  /// Begin a new run. Only the returned writer may add blocks to it.
  /// `hint` selects the block-placement policy (see PlacementHint).
  RunWriter NewRun(IoCategory category = IoCategory::kRunWrite,
                   PlacementHint hint = PlacementHint::kScratch);

  /// Open `handle` for sequential reading starting at byte `offset`.
  RunReader OpenRun(RunHandle handle, uint64_t offset = 0,
                    IoCategory category = IoCategory::kRunRead);

  /// Recycle a finished run's blocks.
  [[nodiscard]] Status FreeRun(RunHandle handle);

  /// Copy `handle`'s device-block index into *blocks (runs are immutable
  /// once finished, so the copy stays valid). For merge prefetchers that
  /// need block ids without holding a reader.
  [[nodiscard]] Status SnapshotBlocks(RunHandle handle, std::vector<uint64_t>* blocks);

  /// Rewrite `handle`'s payload into freshly allocated ascending contiguous
  /// blocks and retarget its block index (the handle itself — id and byte
  /// size — is unchanged; the old blocks join the free list). Costs one
  /// read + one write per block plus a one-block budget reservation, so it
  /// only pays off for runs that will be re-read several times; the merge
  /// path instead writes final runs placed from the start
  /// (PlacementHint::kSequentialOutput). The caller must guarantee no
  /// concurrent reader holds a snapshot of this run — a reader opened
  /// before relocation would read recycled blocks.
  [[nodiscard]] Status RelocateSequential(
      RunHandle* handle, IoCategory category = IoCategory::kRunWrite);

  /// Total blocks currently owned by live runs.
  uint64_t live_blocks() const {
    return live_blocks_.load(std::memory_order_relaxed);
  }

  /// Lifetime/live run accounting (atomics: safe from the telemetry
  /// sampler and the session-stats scope while a background spiller is
  /// still finishing runs).
  uint64_t runs_created() const {
    return runs_created_.load(std::memory_order_relaxed);
  }
  uint64_t runs_freed() const {
    return runs_freed_.load(std::memory_order_relaxed);
  }
  uint64_t live_runs() const { return runs_created() - runs_freed(); }
  /// Total payload bytes ever written into finished runs (the job's
  /// spilled-byte volume; never decremented on free).
  uint64_t finished_bytes() const {
    return finished_bytes_.load(std::memory_order_relaxed);
  }
  /// Payload bytes currently held by live (finished, not freed) runs.
  uint64_t live_bytes() const {
    return live_bytes_.load(std::memory_order_relaxed);
  }

  BlockDevice* device() const { return device_; }
  MemoryBudget* budget() const { return budget_; }

 private:
  friend class RunWriter;
  friend class RunReader;

  [[nodiscard]] Status AllocateBlock(uint64_t* id);

  /// Claim `count` consecutive ascending block ids for a placed writer:
  /// first a consecutive chunk of the free list (so long-lived stores keep
  /// a bounded footprint), else a fresh device extent.
  [[nodiscard]] Status AllocateExtent(uint64_t count,
                                      std::vector<uint64_t>* out);

  /// Return writer-held blocks (never registered in any run) to the free
  /// list — the unused tail of a placed writer's last extent.
  void ReleaseBlocks(const uint64_t* ids, size_t count);

  /// Run-table balance audit: live_blocks_ must equal the sum of the block
  /// indexes of every (non-freed) run. Caller holds mutex_.
  void DcheckBalancedLocked() const NEXSORT_REQUIRES(mutex_);

  BlockDevice* device_;
  MemoryBudget* budget_;
  Tracer* tracer_ = nullptr;
  mutable Mutex mutex_{"RunStore::mutex_", lock_rank::kRunStore};
  std::vector<std::vector<uint64_t>> run_blocks_
      NEXSORT_GUARDED_BY(mutex_);  // index per run id
  std::vector<uint64_t> run_bytes_ NEXSORT_GUARDED_BY(mutex_);
  std::vector<uint64_t> free_blocks_ NEXSORT_GUARDED_BY(mutex_);
  std::atomic<uint64_t> live_blocks_{0};
  std::atomic<uint64_t> runs_created_{0};
  std::atomic<uint64_t> runs_freed_{0};
  std::atomic<uint64_t> finished_bytes_{0};
  std::atomic<uint64_t> live_bytes_{0};
};

/// Sequential writer for one run; holds one block buffer from the budget.
class RunWriter final : public ByteSink {
 public:
  const Status& init_status() const { return init_status_; }

  [[nodiscard]] Status Append(std::string_view data) override;

  /// Flush and obtain the handle. The writer is unusable afterwards.
  [[nodiscard]] Status Finish(RunHandle* handle);

  uint64_t bytes_written() const { return byte_size_; }

  /// Skip the kCreated trace event in Finish. Required when Finish runs on
  /// a background thread (the Tracer is single-threaded); the owner emits
  /// the event from the foreground once it observes the handle.
  void set_suppress_trace(bool suppress) { suppress_trace_ = suppress; }

 private:
  friend class RunStore;
  RunWriter(RunStore* store, IoCategory category, PlacementHint hint);

  /// Block id for the next full block: free-list/device for kScratch, the
  /// current pre-claimed extent (refilled on exhaustion) for
  /// kSequentialOutput.
  [[nodiscard]] Status NextBlock(uint64_t* id);

  RunStore* store_;
  IoCategory category_;
  PlacementHint hint_;
  BudgetReservation reservation_;
  Status init_status_;
  std::vector<uint64_t> blocks_;
  std::vector<uint64_t> extent_;  // pre-claimed placed blocks
  size_t extent_used_ = 0;
  uint64_t byte_size_ = 0;
  std::string buffer_;
  bool finished_ = false;
  bool suppress_trace_ = false;
};

/// Crash-safe scratch-file hygiene for long-lived processes (nexsortd,
/// see docs/SERVICE.md). Runs themselves live on a BlockDevice and die
/// with it, but a daemon also creates real files — the env's file-backed
/// working storage, per-job output staging files — that a crash would
/// orphan on disk. A ScratchNamespace scopes every such file under one
/// recognizable name,
///
///   <prefix>.<instance>.<seq>.<label>.scratch
///
/// inside one directory ("instance" is the owning process's id, "seq" a
/// per-namespace counter). Destruction removes everything the instance
/// issued (best-effort; a crash skips it by definition), and the next
/// daemon start reclaims whatever a dead instance left behind via
/// SweepOrphans — scoped by prefix so unrelated files and the live
/// instance's own scratch are never touched.
class ScratchNamespace {
 public:
  /// `prefix` must be non-empty and dot-free (dots delimit the name's
  /// fields); `instance` should uniquely identify this process (its pid).
  ScratchNamespace(std::string directory, std::string prefix,
                   uint64_t instance);
  ~ScratchNamespace();

  ScratchNamespace(const ScratchNamespace&) = delete;
  ScratchNamespace& operator=(const ScratchNamespace&) = delete;

  /// Reserve a fresh scratch path tagged `label` (sanitized into the
  /// filename). No file is created; the path is tracked and removed by
  /// Remove/RemoveAll/destruction whether or not it ever materializes.
  [[nodiscard]] std::string NewPath(std::string_view label);

  /// Delete one issued path now and stop tracking it. A path that never
  /// materialized (or is already gone) is fine.
  [[nodiscard]] Status Remove(const std::string& path);

  /// Delete every issued path. Idempotent; called by the destructor.
  void RemoveAll();

  /// Paths issued and not yet removed.
  [[nodiscard]] uint64_t live_paths() const;

  const std::string& directory() const { return directory_; }
  const std::string& prefix() const { return prefix_; }
  uint64_t instance() const { return instance_; }

  /// Delete every `<prefix>.*.scratch` file in `directory` whose instance
  /// field differs from `exclude_instance` — the leftovers of crashed
  /// prior processes. Returns the number of files removed. A missing
  /// directory sweeps zero files successfully.
  [[nodiscard]] static StatusOr<uint64_t> SweepOrphans(
      const std::string& directory, std::string_view prefix,
      uint64_t exclude_instance);

 private:
  std::string directory_;
  std::string prefix_;
  uint64_t instance_;
  /// Jobs issue staging paths concurrently.
  mutable Mutex mutex_{"ScratchNamespace::mutex_",
                       lock_rank::kScratchNamespace};
  uint64_t next_seq_ NEXSORT_GUARDED_BY(mutex_) = 0;
  std::vector<std::string> issued_ NEXSORT_GUARDED_BY(mutex_);
};

/// Sequential, seek-once reader over one run; holds one block buffer.
/// Re-fetching a block after reopening at an offset is counted again,
/// matching the 1 + p(b) access accounting of Lemma 4.12.
class RunReader final : public ByteSource {
 public:
  const Status& init_status() const { return init_status_; }

  [[nodiscard]] Status Read(char* buf, size_t n, size_t* out) override;

  /// Read exactly n bytes or fail with Corruption.
  [[nodiscard]] Status ReadExact(char* buf, size_t n);

  uint64_t offset() const { return position_; }
  uint64_t bytes_remaining() const { return handle_.byte_size - position_; }

 private:
  friend class RunStore;
  RunReader(RunStore* store, RunHandle handle, uint64_t offset,
            IoCategory category);

  RunStore* store_;
  RunHandle handle_;
  IoCategory category_;
  BudgetReservation reservation_;
  Status init_status_;
  std::vector<uint64_t> blocks_;  // snapshot of the run's block index
  uint64_t position_ = 0;
  std::string buffer_;
  uint64_t buffer_index_ = UINT64_MAX;  // run-block index buffered
};

}  // namespace nexsort
