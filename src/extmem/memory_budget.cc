#include "extmem/memory_budget.h"

#include <algorithm>
#include <cassert>

namespace nexsort {

MemoryBudget::MemoryBudget(uint64_t total_blocks)
    : total_blocks_(total_blocks) {}

Status MemoryBudget::Acquire(uint64_t count) {
  if (used_blocks_ + count > total_blocks_) {
    return Status::OutOfMemory(
        "memory budget exhausted: want " + std::to_string(count) +
        " blocks, " + std::to_string(available_blocks()) + " of " +
        std::to_string(total_blocks_) + " available");
  }
  used_blocks_ += count;
  peak_blocks_ = std::max(peak_blocks_, used_blocks_);
  return Status::OK();
}

void MemoryBudget::Release(uint64_t count) {
  assert(count <= used_blocks_);
  used_blocks_ -= count;
}

}  // namespace nexsort
