#include "extmem/memory_budget.h"

#include <algorithm>
#include <cstdio>

#include "util/dcheck.h"

namespace nexsort {

MemoryBudget::MemoryBudget(uint64_t total_blocks)
    : total_blocks_(total_blocks) {}

MemoryBudget::~MemoryBudget() {
  // Skip the balance check when an underflow already corrupted the
  // accounting: that bug has its own counter (and is deliberately
  // exercised by tests).
  NEXSORT_DCHECK_MSG(release_underflows() != 0 || used_blocks() == 0,
                     "MemoryBudget destroyed with blocks still reserved "
                     "(leaked reservation)");
}

Status MemoryBudget::Acquire(uint64_t count) {
  MutexLock lock(&mutex_);
  uint64_t used = used_blocks_.load(std::memory_order_relaxed);
  if (used + count > total_blocks_) {
    return Status::OutOfMemory(
        "memory budget exhausted: requested " + std::to_string(count) +
        " blocks with " + std::to_string(used) + " of " +
        std::to_string(total_blocks_) + " in use (" +
        std::to_string(total_blocks_ - used) + " available)");
  }
  used += count;
  NEXSORT_DCHECK_LE(used, total_blocks_);
  used_blocks_.store(used, std::memory_order_relaxed);
  peak_blocks_.store(
      std::max(peak_blocks_.load(std::memory_order_relaxed), used),
      std::memory_order_relaxed);
  return Status::OK();
}

void MemoryBudget::Release(uint64_t count) {
  MutexLock lock(&mutex_);
  uint64_t used = used_blocks_.load(std::memory_order_relaxed);
  if (count > used) {
    // Caller bug (double release or mismatched count). Clamp rather than
    // wrap: a wrapped used_blocks_ would make every later Acquire fail —
    // or worse, succeed past the cap.
    if (release_underflows_.load(std::memory_order_relaxed) == 0) {
      std::fprintf(stderr,
                   "MemoryBudget::Release underflow: releasing %llu blocks "
                   "with only %llu in use (clamped)\n",
                   static_cast<unsigned long long>(count),
                   static_cast<unsigned long long>(used));
    }
    release_underflows_.fetch_add(1, std::memory_order_relaxed);
    used_blocks_.store(0, std::memory_order_relaxed);
    return;
  }
  used_blocks_.store(used - count, std::memory_order_relaxed);
}

}  // namespace nexsort
