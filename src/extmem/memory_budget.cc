#include "extmem/memory_budget.h"

#include <algorithm>
#include <cstdio>

namespace nexsort {

MemoryBudget::MemoryBudget(uint64_t total_blocks)
    : total_blocks_(total_blocks) {}

Status MemoryBudget::Acquire(uint64_t count) {
  if (used_blocks_ + count > total_blocks_) {
    return Status::OutOfMemory(
        "memory budget exhausted: requested " + std::to_string(count) +
        " blocks with " + std::to_string(used_blocks_) + " of " +
        std::to_string(total_blocks_) + " in use (" +
        std::to_string(available_blocks()) + " available)");
  }
  used_blocks_ += count;
  peak_blocks_ = std::max(peak_blocks_, used_blocks_);
  return Status::OK();
}

void MemoryBudget::Release(uint64_t count) {
  if (count > used_blocks_) {
    // Caller bug (double release or mismatched count). Clamp rather than
    // wrap: a wrapped used_blocks_ would make every later Acquire fail —
    // or worse, succeed past the cap.
    if (release_underflows_ == 0) {
      std::fprintf(stderr,
                   "MemoryBudget::Release underflow: releasing %llu blocks "
                   "with only %llu in use (clamped)\n",
                   static_cast<unsigned long long>(count),
                   static_cast<unsigned long long>(used_blocks_));
    }
    ++release_underflows_;
    used_blocks_ = 0;
    return;
  }
  used_blocks_ -= count;
}

}  // namespace nexsort
