#include "extmem/stream.h"

#include <algorithm>
#include <cstring>

#include "util/status.h"

namespace nexsort {

Status StringByteSource::Read(char* buf, size_t n, size_t* out) {
  size_t take = std::min(n, data_.size() - pos_);
  std::memcpy(buf, data_.data() + pos_, take);
  pos_ += take;
  *out = take;
  return Status::OK();
}

BlockStreamWriter::BlockStreamWriter(BlockDevice* device, MemoryBudget* budget,
                                     IoCategory category)
    : device_(device), category_(category) {
  init_status_ = reservation_.Acquire(budget, 1);
  buffer_.reserve(device->block_size());
}

Status BlockStreamWriter::Append(std::string_view data) {
  if (finished_) return Status::InvalidArgument("writer already finished");
  const size_t block_size = device_->block_size();
  size_t pos = 0;
  while (pos < data.size()) {
    size_t take = std::min(block_size - buffer_.size(), data.size() - pos);
    buffer_.append(data.data() + pos, take);
    pos += take;
    byte_size_ += take;
    if (buffer_.size() == block_size) {
      uint64_t id = 0;
      RETURN_IF_ERROR(device_->Allocate(1, &id));
      if (!started_) {
        first_block_ = id;
        started_ = true;
      }
      RETURN_IF_ERROR(device_->Write(id, buffer_.data(), category_));
      next_block_ = id + 1;
      buffer_.clear();
    }
  }
  return Status::OK();
}

Status BlockStreamWriter::Finish(ByteRange* range) {
  if (finished_) return Status::InvalidArgument("writer already finished");
  finished_ = true;
  if (!buffer_.empty()) {
    buffer_.resize(device_->block_size(), '\0');
    uint64_t id = 0;
    RETURN_IF_ERROR(device_->Allocate(1, &id));
    if (!started_) {
      first_block_ = id;
      started_ = true;
    }
    RETURN_IF_ERROR(device_->Write(id, buffer_.data(), category_));
    buffer_.clear();
  }
  range->first_block = started_ ? first_block_ : 0;
  range->byte_size = byte_size_;
  reservation_.Reset();
  return Status::OK();
}

BlockStreamReader::BlockStreamReader(BlockDevice* device, MemoryBudget* budget,
                                     ByteRange range, IoCategory category)
    : device_(device), category_(category), range_(range) {
  init_status_ = reservation_.Acquire(budget, 1);
}

Status BlockStreamReader::Read(char* buf, size_t n, size_t* out) {
  const size_t block_size = device_->block_size();
  size_t done = 0;
  while (done < n && position_ < range_.byte_size) {
    uint64_t block_offset = position_ / block_size * block_size;
    if (block_offset != buffer_start_) {
      buffer_.resize(block_size);
      RETURN_IF_ERROR(device_->Read(range_.first_block + position_ / block_size,
                                    buffer_.data(), category_));
      buffer_start_ = block_offset;
    }
    uint64_t in_block = position_ - block_offset;
    uint64_t take = std::min<uint64_t>(
        {n - done, block_size - in_block, range_.byte_size - position_});
    std::memcpy(buf + done, buffer_.data() + in_block,
                static_cast<size_t>(take));
    done += static_cast<size_t>(take);
    position_ += take;
  }
  *out = done;
  return Status::OK();
}

StatusOr<ByteRange> StoreBytes(BlockDevice* device, MemoryBudget* budget,
                               std::string_view data, IoCategory category) {
  BlockStreamWriter writer(device, budget, category);
  RETURN_IF_ERROR(writer.init_status());
  RETURN_IF_ERROR(writer.Append(data));
  ByteRange range;
  RETURN_IF_ERROR(writer.Finish(&range));
  return range;
}

StatusOr<std::string> LoadBytes(BlockDevice* device, MemoryBudget* budget,
                                ByteRange range, IoCategory category) {
  BlockStreamReader reader(device, budget, range, category);
  RETURN_IF_ERROR(reader.init_status());
  std::string out(range.byte_size, '\0');
  size_t got = 0;
  RETURN_IF_ERROR(reader.Read(out.data(), out.size(), &got));
  if (got != out.size()) return Status::Corruption("short extent read");
  return out;
}

}  // namespace nexsort
