#include "cache/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "util/dcheck.h"

namespace nexsort {

namespace {
/// Sentinel from AcquireFrame: a racing thread loaded the block while the
/// lock was dropped for a victim write-back; the caller must re-resolve.
constexpr size_t kRetryFrame = SIZE_MAX;
}  // namespace

void CacheStats::ToJson(JsonWriter* writer) const {
  writer->BeginObject();
  writer->Key("hits");
  writer->Uint(hits);
  writer->Key("misses");
  writer->Uint(misses);
  // Convention (asserted by check_telemetry_schema.py): hit_rate is
  // *absent* when there were no accesses — 0.0 would read as "everything
  // missed" and NaN is not JSON.
  if (hits + misses > 0) {
    writer->Key("hit_rate");
    writer->Double(hit_rate());
  }
  writer->Key("evictions");
  writer->Uint(evictions);
  writer->Key("writebacks");
  writer->Uint(writebacks);
  writer->Key("writeback_failures");
  writer->Uint(writeback_failures);
  writer->Key("prefetches");
  writer->Uint(prefetches);
  writer->EndObject();
}

BufferPool::BufferPool(BlockDevice* base, MemoryBudget* budget,
                       CacheOptions options)
    : base_(base), options_(options) {
  if (options_.frames == 0) {
    init_status_ = Status::InvalidArgument("BufferPool needs >= 1 frame");
    return;
  }
  init_status_ = reservation_.Acquire(budget, options_.frames);
  if (!init_status_.ok()) return;
  frames_.resize(options_.frames);
  data_.resize(options_.frames * base_->block_size());
  resident_.reserve(options_.frames * 2);
}

BufferPool::~BufferPool() {
  // A pinned frame at destruction means a Pin was never matched by an
  // Unpin — the caller holds a pointer into data_ that is about to die.
  NEXSORT_DCHECK_MSG(pinned_frames() == 0,
                     "BufferPool destroyed with pinned frames "
                     "(pin/unpin imbalance)");
  // Best-effort: errors here are unreportable; callers that care flush
  // explicitly first (the sorters do).
  Status flushed = Flush();
  // Flushed-or-empty dirty set: a successful flush may not leave any frame
  // dirty. (A failed flush legitimately does — the write-back error keeps
  // the frame's bytes for a retry that will never come.)
  NEXSORT_DCHECK_MSG(!flushed.ok() || AllFramesClean(),
                     "BufferPool flush reported success but left a frame "
                     "dirty");
}

bool BufferPool::AllFramesClean() const {
  MutexLock lock(&mutex_);
  for (const Frame& frame : frames_) {
    if (frame.dirty) return false;
  }
  return true;
}

void BufferPool::set_tracer(Tracer* tracer) {
  if (tracer == nullptr) {
    hits_counter_ = misses_counter_ = evictions_counter_ = nullptr;
    writebacks_counter_ = prefetches_counter_ = nullptr;
    hit_rate_gauge_ = nullptr;
    metrics_ = nullptr;
    return;
  }
  MetricsRegistry* metrics = tracer->metrics();
  metrics_ = metrics;
  hits_counter_ = metrics->GetCounter("cache_hits");
  misses_counter_ = metrics->GetCounter("cache_misses");
  evictions_counter_ = metrics->GetCounter("cache_evictions");
  writebacks_counter_ = metrics->GetCounter("cache_writebacks");
  prefetches_counter_ = metrics->GetCounter("cache_prefetches");
  // cache_hit_rate_pct is deliberately NOT created here: the gauge
  // materializes on the first access (UpdateHitRateGauge), so "no gauge"
  // means "zero accesses" — the same absence convention as the stats
  // block's hit_rate. Registry lookup is thread-safe, so the first access
  // may come from a background prefetch.
}

void BufferPool::CountHit() {
  ++stats_.hits;
  if (hits_counter_ != nullptr) hits_counter_->Add();
  UpdateHitRateGauge();
}

void BufferPool::CountMiss() {
  ++stats_.misses;
  if (misses_counter_ != nullptr) misses_counter_->Add();
  UpdateHitRateGauge();
}

void BufferPool::UpdateHitRateGauge() {
  if (metrics_ == nullptr) return;
  uint64_t accesses = stats_.hits + stats_.misses;
  if (accesses == 0) return;
  if (hit_rate_gauge_ == nullptr) {
    hit_rate_gauge_ = metrics_->GetGauge("cache_hit_rate_pct");
  }
  hit_rate_gauge_->Set(stats_.hits * 100 / accesses);
}

Status BufferPool::WriteBack(Frame* frame, size_t index) {
  // Busy protects the frame for the unlocked transfer: the sweep skips it,
  // Pin waits on it, so nobody recycles or rewrites the bytes mid-write.
  frame->busy = true;
  uint64_t block = frame->block_id;
  IoCategory category = frame->category;
  char* data = DataOf(index);
  mutex_.Unlock();
  Status st = base_->Write(block, data, category);
  mutex_.Lock();
  frame->busy = false;
  busy_done_.SignalAll();
  if (!st.ok()) {
    ++stats_.writeback_failures;
    return st;
  }
  frame->dirty = false;
  ++stats_.writebacks;
  if (writebacks_counter_ != nullptr) writebacks_counter_->Add();
  return Status::OK();
}

StatusOr<size_t> BufferPool::AcquireFrame(uint64_t block_id) {
  // CLOCK sweep. Free frames have no second chance to burn, so they fall
  // out of the first rotation; a full rotation clears every referenced
  // bit, so two rotations suffice when any frame is evictable. Dirty
  // victims whose write-back fails stay dirty and are skipped (the
  // failure is deferred to Flush()), and busy frames are skipped outright,
  // so allow extra rotations before giving up.
  size_t sweeps = frames_.size() * 4;
  for (size_t step = 0; step < sweeps; ++step) {
    size_t index = clock_hand_;
    Frame& frame = frames_[index];
    clock_hand_ = (clock_hand_ + 1) % frames_.size();
    if (frame.pins > 0 || frame.busy) continue;
    if (frame.referenced) {
      frame.referenced = false;  // second chance
      continue;
    }
    if (frame.dirty) {
      Status st = WriteBack(&frame, index);
      if (!st.ok()) {
        // Defer: keep the data, pick another victim. Flush() surfaces it.
        if (deferred_writeback_.ok()) deferred_writeback_ = st;
        continue;
      }
      // The lock was dropped during the write: the frame may have been
      // pinned or re-dirtied, and the wanted block may have been loaded
      // by a racer. Re-evaluate both before claiming.
      if (frame.pins > 0 || frame.busy || frame.dirty) continue;
    }
    if (resident_.find(block_id) != resident_.end()) return kRetryFrame;
    if (frame.block_id != kNoBlock) {
      resident_.erase(frame.block_id);
      ++stats_.evictions;
      if (evictions_counter_ != nullptr) evictions_counter_->Add();
    }
    frame.block_id = block_id;
    frame.dirty = false;
    frame.referenced = false;
    frame.category = IoCategory::kOther;
    resident_.emplace(block_id, index);
    return index;
  }
  if (!deferred_writeback_.ok()) return deferred_writeback_;
  return Status::OutOfMemory("buffer pool: all frames pinned, cannot evict");
}

StatusOr<size_t> BufferPool::PinLocked(uint64_t block_id, IoCategory category,
                                       bool load, bool as_prefetch) {
  for (;;) {
    auto it = resident_.find(block_id);
    if (it != resident_.end()) {
      size_t index = it->second;
      Frame& frame = frames_[index];
      if (frame.busy) {
        // A load or write-back is in flight on this frame; the data is
        // not ours to touch until it settles.
        busy_done_.Wait(&mutex_);
        continue;
      }
      if (as_prefetch) return index;  // already resident: nothing to do
      CountHit();
      if (frame.pins == 0) ++pinned_frames_;
      ++frame.pins;
      frame.referenced = true;
      return index;
    }
    size_t index;
    ASSIGN_OR_RETURN(index, AcquireFrame(block_id));
    if (index == kRetryFrame) continue;  // racer resolved it; re-find
    Frame& frame = frames_[index];
    if (load) {
      frame.busy = true;
      char* data = DataOf(index);
      mutex_.Unlock();
      Status st = base_->Read(block_id, data, category);
      mutex_.Lock();
      frame.busy = false;
      busy_done_.SignalAll();
      if (!st.ok()) {
        // The frame holds no valid data; return it to the free state.
        resident_.erase(block_id);
        frame.block_id = kNoBlock;
        return st;
      }
    }
    if (as_prefetch) {
      // Prefetched frames get a normal reference bit: without it the
      // CLOCK evicts exactly the blocks just fetched (every resident
      // frame the scan touched is referenced, so the unreferenced
      // newcomers lose) before the scan reaches them. If the scan never
      // arrives they age out after one rotation like any other block.
      frame.referenced = true;
      ++stats_.prefetches;
      if (prefetches_counter_ != nullptr) prefetches_counter_->Add();
      return index;
    }
    CountMiss();
    if (frame.pins == 0) ++pinned_frames_;
    ++frame.pins;
    frame.referenced = true;
    return index;
  }
}

void BufferPool::UnpinLocked(size_t frame, bool mark_dirty,
                             IoCategory category) {
  Frame& f = frames_[frame];
  NEXSORT_DCHECK_MSG(f.pins > 0, "Unpin without a matching Pin");
  if (mark_dirty) {
    f.dirty = true;
    f.category = category;
  }
  --f.pins;
  if (f.pins == 0) --pinned_frames_;
}

StatusOr<size_t> BufferPool::Pin(uint64_t block_id, IoCategory category,
                                 bool load) {
  MutexLock lock(&mutex_);
  return PinLocked(block_id, category, load, /*as_prefetch=*/false);
}

void BufferPool::Unpin(size_t frame, bool mark_dirty, IoCategory category) {
  MutexLock lock(&mutex_);
  UnpinLocked(frame, mark_dirty, category);
}

char* BufferPool::FrameData(size_t frame) { return DataOf(frame); }

void BufferPool::ReadAhead(uint64_t block_id, IoCategory category) {
  // Cap the window at half the pool: a prefetch burst must not flush the
  // working set (and needs at least one frame left for the caller).
  uint64_t window = std::min(options_.readahead,
                             std::max<uint64_t>(frames_.size() / 2, 1));
  uint64_t limit = base_->num_blocks();
  for (uint64_t ahead = 1; ahead <= window; ++ahead) {
    uint64_t next = block_id + ahead;
    if (next >= limit) return;
    auto loaded = PinLocked(next, category, /*load=*/true,
                            /*as_prefetch=*/true);
    if (!loaded.ok()) return;  // pool too pinned/dirty; abandon quietly
  }
}

void BufferPool::AdviseReadSequence(std::vector<uint64_t> blocks) {
  MutexLock lock(&mutex_);
  if (options_.readahead == 0) return;  // advice could never be acted on
  advice_ = std::move(blocks);
  advice_pos_.clear();
  advice_pos_.reserve(advice_.size());
  for (size_t i = 0; i < advice_.size(); ++i) {
    advice_pos_.emplace(advice_[i], i);
  }
}

void BufferPool::ClearReadAdvice() {
  MutexLock lock(&mutex_);
  advice_.clear();
  advice_pos_.clear();
}

void BufferPool::ReadAheadAdvised(size_t position, IoCategory category) {
  // Same window cap as ReadAhead: never flush the working set.
  uint64_t window = std::min(options_.readahead,
                             std::max<uint64_t>(frames_.size() / 2, 1));
  uint64_t limit = base_->num_blocks();
  for (uint64_t ahead = 1; ahead <= window; ++ahead) {
    size_t next_pos = position + ahead;
    if (next_pos >= advice_.size()) return;
    uint64_t next = advice_[next_pos];
    if (next >= limit) continue;  // stale advice; skip, keep walking
    auto loaded = PinLocked(next, category, /*load=*/true,
                            /*as_prefetch=*/true);
    if (!loaded.ok()) return;  // pool too pinned/dirty; abandon quietly
  }
}

void BufferPool::Prefetch(uint64_t block_id, IoCategory category) {
  MutexLock lock(&mutex_);
  if (block_id >= base_->num_blocks()) return;
  // Best-effort: a failed claim or load is swallowed; the consuming read
  // re-encounters the error where it can be reported.
  (void)PinLocked(block_id, category, /*load=*/true, /*as_prefetch=*/true);
}

Status BufferPool::ReadBlock(uint64_t block_id, char* buf,
                             IoCategory category) {
  MutexLock lock(&mutex_);
  size_t index;
  ASSIGN_OR_RETURN(index, PinLocked(block_id, category, /*load=*/true,
                                    /*as_prefetch=*/false));
  std::memcpy(buf, DataOf(index), base_->block_size());
  UnpinLocked(index, /*mark_dirty=*/false, IoCategory::kOther);

  sequential_run_ = (last_read_block_ != kNoBlock &&
                     block_id == last_read_block_ + 1)
                        ? sequential_run_ + 1
                        : 1;
  last_read_block_ = block_id;
  if (options_.readahead > 0) {
    // Advised position wins over the id-adjacency detector: the advice
    // knows the traversal order even where run placement left a seam.
    auto advised = advice_pos_.find(block_id);
    if (advised != advice_pos_.end()) {
      ReadAheadAdvised(advised->second, category);
    } else if (sequential_run_ >= 2) {
      ReadAhead(block_id, category);
    }
  }
  return Status::OK();
}

Status BufferPool::WriteBlock(uint64_t block_id, const char* buf,
                              IoCategory category) {
  MutexLock lock(&mutex_);
  // Whole-block overwrite: no need to load the old contents on a miss.
  size_t index;
  ASSIGN_OR_RETURN(index, PinLocked(block_id, category, /*load=*/false,
                                    /*as_prefetch=*/false));
  std::memcpy(DataOf(index), buf, base_->block_size());
  UnpinLocked(index, /*mark_dirty=*/true, category);
  return Status::OK();
}

Status BufferPool::Flush() {
  MutexLock lock(&mutex_);
  Status result = deferred_writeback_;
  deferred_writeback_ = Status::OK();  // surfaced exactly once
  for (size_t i = 0; i < frames_.size(); ++i) {
    while (frames_[i].busy) busy_done_.Wait(&mutex_);
    Frame& frame = frames_[i];
    if (frame.block_id == kNoBlock || !frame.dirty) continue;
    Status st = WriteBack(&frame, i);
    if (!st.ok() && result.ok()) result = st;
  }
  return result;
}

CacheStats BufferPool::stats() const {
  MutexLock lock(&mutex_);
  return stats_;
}

uint64_t BufferPool::pinned_frames() const {
  MutexLock lock(&mutex_);
  return pinned_frames_;
}

uint64_t BufferPool::dirty_frames() const {
  MutexLock lock(&mutex_);
  uint64_t dirty = 0;
  for (const Frame& frame : frames_) {
    if (frame.dirty) ++dirty;
  }
  return dirty;
}

CachedBlockDevice::CachedBlockDevice(BlockDevice* base, MemoryBudget* budget,
                                     CacheOptions options, DiskModel model)
    : BlockDevice(base->block_size(), model, base->mutex_rank() - 1),
      pool_(base, budget, options) {
  // Adopt the wrapped device's block count so ids allocated before the
  // wrapper existed stay addressable and future ids stay aligned.
  SyncNumBlocks(base->num_blocks());
}

CachedBlockDevice::~CachedBlockDevice() = default;

Status CachedBlockDevice::DoAllocate(uint64_t count) {
  uint64_t first = 0;
  RETURN_IF_ERROR(pool_.base()->Allocate(count, &first));
  NEXSORT_DCHECK_MSG(
      first == num_blocks(),
      "blocks allocated on the wrapped device bypassing the wrapper");
  (void)first;
  return Status::OK();
}

}  // namespace nexsort
