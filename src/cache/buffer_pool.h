// Buffer-pool subsystem: a shared, budget-charged block cache under the
// extmem layer. The paper's cost model charges one I/O per block transfer
// against a hard M-block memory budget, but the BlockDevice callers
// (streams, external stacks, RunStore, merge inputs) each hold private
// single-block buffers and re-read hot blocks. A database-style buffer
// manager closes that gap: BufferPool owns a fixed set of block-sized
// frames acquired from the MemoryBudget, serves repeated accesses from
// memory, defers writes until eviction, and prefetches ahead of detected
// sequential scans.
//
// Two layers:
//
//  * BufferPool — the frame table: pin/unpin reference counting, CLOCK
//    (second-chance) eviction of unpinned frames, dirty-frame write-back
//    (on eviction, on Flush(), and best-effort on destruction), and
//    sequential read-ahead plus an explicit Prefetch() entry point for the
//    merge-input RunPrefetcher.
//  * CachedBlockDevice — a transparent BlockDevice wrapper over a pool:
//    the same interface every extmem component already speaks, so streams,
//    external stacks, the run store, and the external merge sort gain
//    caching without interface churn. Its own IoStats count *logical*
//    block accesses (what the computation asked for); the wrapped device's
//    IoStats keep counting *physical* transfers, so `logical - physical`
//    is exactly the I/O the cache saved.
//
// Accounting is category-preserving: a miss loads the block under the
// caller's category, and a dirty frame remembers the category of its last
// writer so the eventual write-back is attributed to the same paper cost
// component that produced the data.
//
// Write-back failures discovered while evicting on behalf of an unrelated
// operation are *deferred*, not swallowed: the frame stays dirty, another
// victim is chosen, and the sticky failure is surfaced by the next Flush()
// (which also retries the write). See docs/CACHING.md.
//
// Thread-safe: one pool mutex guards the frame table, but base-device
// transfers (miss loads, write-backs, prefetch loads) happen with the
// mutex *released* and the frame marked busy — busy frames are never
// evicted and Pin waits for them — so a background prefetcher's reads
// genuinely overlap foreground work. Pinned-frame invariants are
// unchanged: a pinned or busy frame is never recycled.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "extmem/block_device.h"
#include "extmem/memory_budget.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace nexsort {

class JsonWriter;
class Tracer;

/// Caching knobs threaded through NexSortOptions / KeyPathSortOptions and
/// the xmlsort CLI (--cache-blocks, --readahead).
struct CacheOptions {
  /// Frames (blocks of internal memory) the pool holds, charged against
  /// the MemoryBudget for the pool's lifetime. 0 disables caching: the
  /// sorters then talk to the device directly and nothing is reserved.
  uint64_t frames = 0;

  /// Blocks prefetched beyond the current one once an ascending block scan
  /// is detected (two consecutive reads of adjacent ids). 0 disables
  /// read-ahead. The effective window is capped at half the pool so a
  /// prefetch burst can never flush the whole working set.
  uint64_t readahead = 0;
};

/// Counters describing one pool's lifetime; exported into the `cache`
/// block of nexsort-stats-v1 and mirrored as cache_* metrics in
/// nexsort-telemetry-v1 when a tracer is attached.
struct CacheStats {
  uint64_t hits = 0;         // logical accesses served from a frame
  uint64_t misses = 0;       // logical accesses that went to the device
  uint64_t evictions = 0;    // valid frames recycled for another block
  uint64_t writebacks = 0;   // dirty frames written to the device
  uint64_t writeback_failures = 0;  // failed write-back attempts
  uint64_t prefetches = 0;   // blocks loaded ahead of consumption

  /// Hits / (hits + misses); 0 when nothing was accessed — but note the
  /// export convention: ToJson omits hit_rate entirely at zero accesses,
  /// and the cache_hit_rate_pct gauge is likewise absent until the first
  /// access, so consumers can tell "no traffic" from "all misses".
  double hit_rate() const {
    uint64_t accesses = hits + misses;
    return accesses == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(accesses);
  }

  /// One JSON object with every counter plus the derived hit_rate (absent
  /// when hits + misses == 0).
  void ToJson(JsonWriter* writer) const;
};

/// Fixed set of block frames over a backing device. Frames are acquired
/// from the budget at construction (check init_status()) and released on
/// destruction.
class BufferPool {
 public:
  static constexpr uint64_t kNoBlock = UINT64_MAX;

  /// `base` and `budget` are not owned and must outlive the pool.
  /// options.frames must be >= 1.
  BufferPool(BlockDevice* base, MemoryBudget* budget, CacheOptions options);

  /// Flushes dirty frames best-effort; call Flush() first to see errors.
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Status of the construction-time budget reservation.
  const Status& init_status() const { return init_status_; }

  /// Attach a tracer (may be null; not owned): the pool then mirrors its
  /// counters into cache_* metrics and keeps a cache_hit_rate_pct gauge
  /// that materializes lazily on the first access (absent gauge == zero
  /// accesses). Foreground-thread only (instrument pointers are installed
  /// before any background thread runs; the instruments themselves are
  /// atomic and registry lookup is thread-safe).
  void set_tracer(Tracer* tracer);

  /// Read `block_id` through the cache into `buf` (block_size bytes). The
  /// physical load on a miss — and any read-ahead it triggers — is
  /// attributed to `category`.
  [[nodiscard]] Status ReadBlock(uint64_t block_id, char* buf, IoCategory category);

  /// Write `block_id` through the cache from `buf`: the frame is dirtied
  /// and the physical write deferred until eviction or Flush(). A write
  /// miss claims a frame without loading the old contents (whole-block
  /// overwrite). `category` is remembered for the eventual write-back.
  [[nodiscard]] Status WriteBlock(uint64_t block_id, const char* buf, IoCategory category);

  /// Load `block_id` into a frame ahead of consumption (RunPrefetcher
  /// entry point; counted as a prefetch, not a miss). No-op when already
  /// resident. Best-effort: errors are swallowed — the consuming read
  /// will hit them for real.
  void Prefetch(uint64_t block_id, IoCategory category);

  /// Advisory traversal order (ROADMAP item 4, docs/MERGE_PLANNING.md):
  /// the caller announces the exact block sequence an upcoming scan will
  /// read — e.g. the output DFS over placed runs — and ReadBlock then
  /// prefetches *along that sequence* instead of relying on the id+1
  /// sequential detector, which only fires once placement has already made
  /// the ids adjacent. Purely a performance hint: stale or wrong advice
  /// costs wasted prefetches, never correctness. A new call replaces any
  /// previous advice (the pool keeps one sequence; concurrent scans fall
  /// back to the sequential detector). No-op when readahead is disabled.
  void AdviseReadSequence(std::vector<uint64_t> blocks);

  /// Drop the current advice. Callers clear when their scan ends so
  /// recycled block ids cannot trigger bogus prefetches for a later job.
  void ClearReadAdvice();

  /// Pin the frame holding `block_id`, loading it from the device first
  /// when `load` is true and the block is not resident. Pinned frames are
  /// never evicted; every Pin must be matched by an Unpin. Returns the
  /// frame index for Unpin/FrameData.
  [[nodiscard]] StatusOr<size_t> Pin(uint64_t block_id, IoCategory category, bool load);

  /// Release one pin; `mark_dirty` records a modification (and `category`
  /// as its write-back attribution).
  void Unpin(size_t frame, bool mark_dirty,
             IoCategory category = IoCategory::kOther);

  /// Block-size byte window of a pinned frame.
  char* FrameData(size_t frame);

  /// Write back every dirty frame. Returns the first error — including a
  /// sticky deferred write-back failure from an earlier eviction, which
  /// this call surfaces (exactly once) and retries.
  [[nodiscard]] Status Flush();

  /// Snapshot of the pool counters (copied under the pool lock).
  CacheStats stats() const;
  const CacheOptions& options() const { return options_; }
  BlockDevice* base() const { return base_; }

  /// Number of currently pinned frames (tests and invariant checks).
  uint64_t pinned_frames() const;

  /// Number of frames holding modifications not yet written back (the
  /// telemetry sampler's dirty-frame gauge).
  uint64_t dirty_frames() const;

 private:
  struct Frame {
    uint64_t block_id = kNoBlock;
    uint32_t pins = 0;
    bool dirty = false;
    bool busy = false;  // base-device I/O in flight; do not touch
    bool referenced = false;              // CLOCK second-chance bit
    IoCategory category = IoCategory::kOther;  // last writer, for write-back
  };

  char* DataOf(size_t frame) {
    return data_.data() + frame * base_->block_size();
  }

  /// Write frame's block to the device under its remembered category,
  /// releasing the lock (frame marked busy) around the transfer.
  /// On return the lock is re-held.
  [[nodiscard]] Status WriteBack(Frame* frame, size_t index)
      NEXSORT_REQUIRES(mutex_);

  /// Claim a frame for `block_id`: a free frame if any, else a CLOCK
  /// victim (never pinned or busy; dirty victims are written back first,
  /// lock released around the write). The returned frame is mapped to
  /// `block_id` but not loaded.
  [[nodiscard]] StatusOr<size_t> AcquireFrame(uint64_t block_id)
      NEXSORT_REQUIRES(mutex_);

  /// Resolve `block_id` to a pinned frame (the common Pin/ReadBlock/
  /// WriteBlock core): waits out busy frames, claims + optionally loads on
  /// a miss (lock released around the load), counts hit/miss/prefetch.
  [[nodiscard]] StatusOr<size_t> PinLocked(uint64_t block_id,
                                           IoCategory category, bool load,
                                           bool as_prefetch)
      NEXSORT_REQUIRES(mutex_);

  void UnpinLocked(size_t frame, bool mark_dirty, IoCategory category)
      NEXSORT_REQUIRES(mutex_);

  /// Destructor invariant probe: no frame left dirty (takes the lock).
  bool AllFramesClean() const NEXSORT_EXCLUDES(mutex_);

  /// Load blocks [block_id+1, block_id+window] that are not yet resident.
  /// Best-effort: a failed load abandons the rest of the window.
  void ReadAhead(uint64_t block_id, IoCategory category)
      NEXSORT_REQUIRES(mutex_);

  /// Advisory-order read-ahead: load the next window of blocks *after
  /// `position` in the advised sequence*, regardless of their ids.
  void ReadAheadAdvised(size_t position, IoCategory category)
      NEXSORT_REQUIRES(mutex_);

  void CountHit() NEXSORT_REQUIRES(mutex_);
  void CountMiss() NEXSORT_REQUIRES(mutex_);
  void UpdateHitRateGauge() NEXSORT_REQUIRES(mutex_);

  BlockDevice* base_;
  const CacheOptions options_;
  BudgetReservation reservation_;
  Status init_status_;

  mutable Mutex mutex_{"BufferPool::mutex_", lock_rank::kBufferPool};
  CondVar busy_done_;  // signaled when a frame's busy clears

  std::vector<Frame> frames_ NEXSORT_GUARDED_BY(mutex_);
  /// frames * block_size bytes. Not NEXSORT_GUARDED_BY(mutex_): frame
  /// payloads are protected by the pin/busy protocol, not the table lock —
  /// FrameData hands out windows of pinned frames to callers holding no
  /// lock, and transfers run on busy frames with the lock released.
  std::string data_;
  std::unordered_map<uint64_t, size_t> resident_
      NEXSORT_GUARDED_BY(mutex_);  // block id -> frame
  size_t clock_hand_ NEXSORT_GUARDED_BY(mutex_) = 0;
  uint64_t pinned_frames_ NEXSORT_GUARDED_BY(mutex_) = 0;

  // Sequential-scan detector for read-ahead.
  uint64_t last_read_block_ NEXSORT_GUARDED_BY(mutex_) = kNoBlock;
  uint64_t sequential_run_ NEXSORT_GUARDED_BY(mutex_) = 0;

  // Advisory read order: the announced sequence plus each block's first
  // position in it (a run's blocks are distinct, so first-wins is exact).
  std::vector<uint64_t> advice_ NEXSORT_GUARDED_BY(mutex_);
  std::unordered_map<uint64_t, size_t> advice_pos_ NEXSORT_GUARDED_BY(mutex_);

  /// Sticky failure surfaced by Flush().
  Status deferred_writeback_ NEXSORT_GUARDED_BY(mutex_);

  CacheStats stats_ NEXSORT_GUARDED_BY(mutex_);
  // Tracer mirrors (null when no tracer attached).
  class MetricsRegistry* metrics_ = nullptr;
  class Counter* hits_counter_ = nullptr;
  class Counter* misses_counter_ = nullptr;
  class Counter* evictions_counter_ = nullptr;
  class Counter* writebacks_counter_ = nullptr;
  class Counter* prefetches_counter_ = nullptr;
  class Gauge* hit_rate_gauge_ = nullptr;
};

/// BlockDevice facade over a BufferPool: same interface, same accounting
/// hooks, so existing extmem components cache transparently. All block
/// allocation must flow through the wrapper once it exists (ids are kept
/// aligned with the wrapped device by adopting its block count at
/// construction).
class CachedBlockDevice final : public BlockDevice {
 public:
  /// `base` and `budget` are not owned and must outlive the wrapper.
  CachedBlockDevice(BlockDevice* base, MemoryBudget* budget,
                    CacheOptions options, DiskModel model = {});

  /// Flushes best-effort; call Flush() first to observe errors.
  ~CachedBlockDevice() override;

  /// Status of the pool's construction-time budget reservation.
  const Status& init_status() const { return pool_.init_status(); }

  /// Write back all dirty frames, surfacing any deferred write-back
  /// failure an eviction recorded earlier.
  [[nodiscard]] Status Flush() { return pool_.Flush(); }

  BufferPool* pool() { return &pool_; }
  const BufferPool& pool() const { return pool_; }

  /// The wrapped (physical) device.
  BlockDevice* base() const { return pool_.base(); }

 protected:
  [[nodiscard]] Status DoRead(uint64_t block_id, char* buf, IoCategory category) override {
    return pool_.ReadBlock(block_id, buf, category);
  }
  [[nodiscard]] Status DoWrite(uint64_t block_id, const char* buf,
                 IoCategory category) override {
    return pool_.WriteBlock(block_id, buf, category);
  }
  [[nodiscard]] Status DoAllocate(uint64_t count) override;

 private:
  BufferPool pool_;
};

}  // namespace nexsort
