#include "core/subtree_sorter.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "core/order_spec.h"
#include "extmem/block_device.h"
#include "extmem/memory_budget.h"
#include "extmem/run_store.h"
#include "extmem/stream.h"
#include "sort/external_merge_sort.h"
#include "sort/key_path.h"

namespace nexsort {

namespace {

// ---------------------------------------------------------------------
// In-memory tree representation of a parsed unit sequence.
// ---------------------------------------------------------------------

struct ParsedForest {
  std::vector<ElementUnit> nodes;
  std::vector<std::vector<int>> children;
  std::vector<int> roots;                 // top-level nodes, document order
  std::vector<RunHandle> fragments;       // kFragment units found at top level
  uint32_t top_level = 0;                 // level of the roots
};

// Parse `units` into a forest. kEnd units donate their keys to the matching
// start and are dropped. kFragment units may only appear at the top level.
Status ParseForest(const SubtreeSortContext& ctx, std::string_view units,
                   ParsedForest* forest) {
  std::vector<int> stack;  // indices of open kStart nodes
  bool first = true;
  while (!units.empty()) {
    ElementUnit unit;
    RETURN_IF_ERROR(ParseUnit(&units, &unit, ctx.format, ctx.dictionary));
    if (first) {
      forest->top_level = unit.level;
      first = false;
    }
    if (unit.type == UnitType::kEnd) {
      while (!stack.empty() &&
             forest->nodes[stack.back()].level > unit.level) {
        stack.pop_back();
      }
      if (!stack.empty() &&
          forest->nodes[stack.back()].level == unit.level) {
        if (!unit.key.empty()) forest->nodes[stack.back()].key = unit.key;
        stack.pop_back();
      }
      continue;
    }
    while (!stack.empty() && forest->nodes[stack.back()].level >= unit.level) {
      stack.pop_back();
    }
    if (unit.type == UnitType::kFragment) {
      // Fragments are children of the element they were created under: the
      // region root in a subtree sort (stack = [root]) or the enclosing open
      // element in a forest sort (stack empty).
      if (stack.size() > 1 ||
          (stack.size() == 1 && stack[0] != forest->roots.front())) {
        return Status::Corruption("fragment unit below the top level");
      }
      forest->fragments.push_back(unit.run);
      continue;
    }
    int index = static_cast<int>(forest->nodes.size());
    bool is_start = unit.type == UnitType::kStart;
    forest->nodes.push_back(std::move(unit));
    forest->children.emplace_back();
    if (stack.empty()) {
      forest->roots.push_back(index);
    } else {
      forest->children[stack.back()].push_back(index);
    }
    if (is_start) stack.push_back(index);
  }
  return Status::OK();
}

bool TagInScope(const SubtreeSortContext& ctx, const std::string& tag) {
  if (ctx.scope_tags == nullptr || ctx.scope_tags->empty()) return true;
  for (const std::string& scoped : *ctx.scope_tags) {
    if (scoped == tag) return true;
  }
  return false;
}

// Sort every children list reachable in the forest, honouring depth_limit
// (children of an element at level L are sorted iff L <= depth_limit, or no
// limit) and the XSort-style tag scope. Root lists in a *forest* belong to
// the enclosing open element at top_level - 1.
void SortForestLists(const SubtreeSortContext& ctx, ParsedForest* forest,
                     bool sort_roots) {
  auto by_key = [forest](int a, int b) {
    const ElementUnit& ua = forest->nodes[a];
    const ElementUnit& ub = forest->nodes[b];
    return KeySeqLess(ua.key, ua.seq, ub.key, ub.seq);
  };
  if (sort_roots) {
    uint32_t parent_level = forest->top_level - 1;
    if (ctx.depth_limit == 0 ||
        parent_level <= static_cast<uint32_t>(ctx.depth_limit)) {
      std::stable_sort(forest->roots.begin(), forest->roots.end(), by_key);
    }
  }
  for (size_t i = 0; i < forest->nodes.size(); ++i) {
    if (forest->children[i].empty()) continue;
    uint32_t level = forest->nodes[i].level;
    if (ctx.depth_limit != 0 &&
        level > static_cast<uint32_t>(ctx.depth_limit)) {
      continue;  // below the sorting depth: keep document order
    }
    if (!TagInScope(ctx, forest->nodes[i].name)) continue;
    std::stable_sort(forest->children[i].begin(), forest->children[i].end(),
                     by_key);
  }
}

// Serialize node `root_index` and its subtree depth-first into *out.
// Iterative so pathological chain documents cannot overflow the C++ stack.
void SerializeSubtree(const SubtreeSortContext& ctx,
                      const ParsedForest& forest, int root_index,
                      std::string* out) {
  struct Frame {
    int node;
    size_t next_child;
  };
  std::vector<Frame> stack;
  stack.push_back({root_index, 0});
  AppendUnit(out, forest.nodes[root_index], ctx.format, ctx.dictionary);
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const auto& child_list = forest.children[frame.node];
    if (frame.next_child >= child_list.size()) {
      stack.pop_back();
      continue;
    }
    int child = child_list[frame.next_child++];
    AppendUnit(out, forest.nodes[child], ctx.format, ctx.dictionary);
    stack.push_back({child, 0});
  }
}

// ---------------------------------------------------------------------
// Sibling-subtree streams for merging incomplete runs.
// ---------------------------------------------------------------------

// A stream of sorted sibling subtrees at a fixed level; the merge engine for
// incomplete sorted runs ("incomplete sorted runs for the same subtree must
// be merged to produce a regular, complete sorted run", Section 3.2).
class SubtreeStream {
 public:
  virtual ~SubtreeStream() = default;
  virtual bool exhausted() const = 0;
  // Key/seq of the current subtree's root.
  virtual std::string_view key() const = 0;
  virtual uint64_t seq() const = 0;
  // Append the current subtree's units to `out` and advance.
  virtual Status CopySubtree(ByteSink* out) = 0;
};

// Stream over the in-memory sorted forest.
class MemoryForestStream final : public SubtreeStream {
 public:
  MemoryForestStream(const SubtreeSortContext& ctx, const ParsedForest& forest)
      : ctx_(ctx), forest_(forest) {}

  bool exhausted() const override {
    return cursor_ >= forest_.roots.size();
  }
  std::string_view key() const override {
    return forest_.nodes[forest_.roots[cursor_]].key;
  }
  uint64_t seq() const override {
    return forest_.nodes[forest_.roots[cursor_]].seq;
  }
  Status CopySubtree(ByteSink* out) override {
    scratch_.clear();
    SerializeSubtree(ctx_, forest_, forest_.roots[cursor_], &scratch_);
    ++cursor_;
    return out->Append(scratch_);
  }

 private:
  const SubtreeSortContext& ctx_;
  const ParsedForest& forest_;
  size_t cursor_ = 0;
  std::string scratch_;
};

// Stream over an incomplete sorted run on disk.
class FragmentStream final : public SubtreeStream {
 public:
  FragmentStream(const SubtreeSortContext& ctx, RunHandle handle)
      : ctx_(ctx),
        reader_(ctx.store, handle, 0, ctx.format, ctx.dictionary) {}

  Status Open() {
    RETURN_IF_ERROR(reader_.init_status());
    ASSIGN_OR_RETURN(bool more, reader_.Next(&pending_));
    exhausted_ = !more;
    if (!exhausted_) top_level_ = pending_.level;
    return Status::OK();
  }

  bool exhausted() const override { return exhausted_; }
  std::string_view key() const override { return pending_.key; }
  uint64_t seq() const override { return pending_.seq; }

  Status CopySubtree(ByteSink* out) override {
    // Emit units until the next unit at the top level (the next sibling
    // root) or end of run.
    scratch_.clear();
    AppendUnit(&scratch_, pending_, ctx_.format, ctx_.dictionary);
    while (true) {
      ASSIGN_OR_RETURN(bool more, reader_.Next(&pending_));
      if (!more) {
        exhausted_ = true;
        break;
      }
      if (pending_.level <= top_level_) break;  // next sibling
      AppendUnit(&scratch_, pending_, ctx_.format, ctx_.dictionary);
      if (scratch_.size() >= 64 * 1024) {
        RETURN_IF_ERROR(out->Append(scratch_));
        scratch_.clear();
      }
    }
    return out->Append(scratch_);
  }

 private:
  const SubtreeSortContext& ctx_;
  RunUnitReader reader_;
  ElementUnit pending_;
  uint32_t top_level_ = 0;
  bool exhausted_ = false;
  std::string scratch_;
};

// Merge sibling-subtree streams into `out` by (key, seq). Linear min-scan:
// the cost per *subtree* (not per unit) is O(#streams), negligible next to
// the copying itself.
Status MergeSubtreeStreams(std::vector<SubtreeStream*>& streams,
                           ByteSink* out) {
  while (true) {
    SubtreeStream* best = nullptr;
    for (SubtreeStream* stream : streams) {
      if (stream->exhausted()) continue;
      if (best == nullptr ||
          KeySeqLess(stream->key(), stream->seq(), best->key(), best->seq())) {
        best = stream;
      }
    }
    if (best == nullptr) return Status::OK();
    RETURN_IF_ERROR(best->CopySubtree(out));
  }
}

// Merge fragment runs (plus optionally the in-memory forest) into a new
// run, multi-pass when the count exceeds the merge fan-in.
Status MergeFragments(const SubtreeSortContext& ctx,
                      std::vector<RunHandle> fragments,
                      MemoryForestStream* memory_stream, RunWriter* out,
                      SubtreeSortStats* stats) {
  // Fan-in from what the ledger has left right now (the caller holds the
  // region buffer and the output writer), keeping one spare block and a
  // floor of a 2-way merge.
  uint64_t available = ctx.store->budget()->available_blocks();
  size_t fan_in =
      available > 3 ? static_cast<size_t>(available - 1) : 2;
  // Pre-merge passes until everything fits in one final merge (the memory
  // stream occupies one final-merge slot).
  while (fragments.size() + 1 > fan_in) {
    ++stats->fragment_premerge_passes;
    std::vector<RunHandle> next;
    for (size_t group = 0; group < fragments.size(); group += fan_in) {
      size_t end = std::min(fragments.size(), group + fan_in);
      if (end - group == 1) {
        next.push_back(fragments[group]);
        continue;
      }
      std::vector<std::unique_ptr<FragmentStream>> owned;
      std::vector<SubtreeStream*> streams;
      for (size_t i = group; i < end; ++i) {
        owned.push_back(std::make_unique<FragmentStream>(ctx, fragments[i]));
        RETURN_IF_ERROR(owned.back()->Open());
        streams.push_back(owned.back().get());
      }
      RunWriter writer = ctx.store->NewRun();
      RETURN_IF_ERROR(writer.init_status());
      RETURN_IF_ERROR(MergeSubtreeStreams(streams, &writer));
      RunHandle merged;
      RETURN_IF_ERROR(writer.Finish(&merged));
      ++stats->fragment_merges;
      owned.clear();
      for (size_t i = group; i < end; ++i) {
        RETURN_IF_ERROR(ctx.store->FreeRun(fragments[i]));
      }
      next.push_back(merged);
    }
    fragments = std::move(next);
  }
  std::vector<std::unique_ptr<FragmentStream>> owned;
  std::vector<SubtreeStream*> streams;
  for (RunHandle handle : fragments) {
    owned.push_back(std::make_unique<FragmentStream>(ctx, handle));
    RETURN_IF_ERROR(owned.back()->Open());
    streams.push_back(owned.back().get());
  }
  if (memory_stream != nullptr) streams.push_back(memory_stream);
  RETURN_IF_ERROR(MergeSubtreeStreams(streams, out));
  ++stats->fragment_merges;
  owned.clear();
  for (RunHandle handle : fragments) {
    RETURN_IF_ERROR(ctx.store->FreeRun(handle));
  }
  return Status::OK();
}

}  // namespace

// Charge the budget for a region held in memory during an internal sort,
// so peak-use accounting reflects what is actually resident. Best-effort:
// a region can legitimately exceed what the ledger can express by a little
// (fragment-pointer lists, threshold slack), in which case we charge
// everything that is left rather than fail a sort that will succeed.
Status ReserveRegion(const SubtreeSortContext& ctx, size_t bytes,
                     BudgetReservation* reservation) {
  size_t block_size = ctx.store->device()->block_size();
  uint64_t blocks = (bytes + block_size - 1) / block_size;
  if (blocks == 0) blocks = 1;
  uint64_t available = ctx.store->budget()->available_blocks();
  if (available == 0) return Status::OK();
  return reservation->Acquire(ctx.store->budget(),
                              std::min(blocks, available));
}

StatusOr<RunHandle> SortSubtreeInMemory(const SubtreeSortContext& ctx,
                                        std::string_view units,
                                        ElementUnit* root_out,
                                        SubtreeSortStats* stats) {
  ++stats->internal_sorts;
  stats->largest_subtree_bytes =
      std::max<uint64_t>(stats->largest_subtree_bytes, units.size());
  // Charge the budget for the region while it is parsed and sorted (the
  // memory-dominant phase); the write/merge phase that follows charges its
  // own writer and reader blocks instead.
  BudgetReservation region_reservation;
  RETURN_IF_ERROR(ReserveRegion(ctx, units.size(), &region_reservation));
  ParsedForest forest;
  RETURN_IF_ERROR(ParseForest(ctx, units, &forest));
  if (forest.roots.size() != 1) {
    return Status::Corruption("subtree region does not have a single root");
  }
  if (forest.nodes[forest.roots[0]].type != UnitType::kStart) {
    return Status::Corruption("subtree root is not a start unit");
  }
  SortForestLists(ctx, &forest, /*sort_roots=*/false);
  *root_out = forest.nodes[forest.roots[0]];
  region_reservation.Reset();

  // This run is re-read by the output DFS long after later subtree sorts
  // have churned the free list: place it so that read-back is sequential.
  RunWriter writer = ctx.store->NewRun(
      IoCategory::kRunWrite, ctx.dfs_placement
                                 ? PlacementHint::kSequentialOutput
                                 : PlacementHint::kScratch);
  RETURN_IF_ERROR(writer.init_status());
  if (forest.fragments.empty()) {
    std::string buffer;
    SerializeSubtree(ctx, forest, forest.roots[0], &buffer);
    RETURN_IF_ERROR(writer.Append(buffer));
  } else {
    // Fragments are forests of the root's children: emit the root start
    // unit, then merge the in-memory children with the fragment streams.
    std::string root_unit;
    AppendUnit(&root_unit, forest.nodes[forest.roots[0]], ctx.format,
               ctx.dictionary);
    RETURN_IF_ERROR(writer.Append(root_unit));
    // Re-parent: the memory stream iterates the root's (sorted) children.
    ParsedForest child_forest;
    child_forest.nodes = std::move(forest.nodes);
    child_forest.children = std::move(forest.children);
    child_forest.roots = child_forest.children[forest.roots[0]];
    child_forest.top_level = forest.top_level + 1;
    MemoryForestStream memory_stream(ctx, child_forest);
    RETURN_IF_ERROR(MergeFragments(ctx, std::move(forest.fragments),
                                   &memory_stream, &writer, stats));
  }
  RunHandle handle;
  RETURN_IF_ERROR(writer.Finish(&handle));
  return handle;
}

StatusOr<RunHandle> SortForestInMemory(const SubtreeSortContext& ctx,
                                       std::string_view units,
                                       SubtreeSortStats* stats) {
  stats->largest_subtree_bytes =
      std::max<uint64_t>(stats->largest_subtree_bytes, units.size());
  BudgetReservation region_reservation;
  RETURN_IF_ERROR(ReserveRegion(ctx, units.size(), &region_reservation));
  ParsedForest forest;
  RETURN_IF_ERROR(ParseForest(ctx, units, &forest));
  if (!forest.fragments.empty()) {
    return Status::Corruption("nested fragments in forest sort");
  }
  SortForestLists(ctx, &forest, /*sort_roots=*/true);
  region_reservation.Reset();

  RunWriter writer = ctx.store->NewRun();
  RETURN_IF_ERROR(writer.init_status());
  std::string buffer;
  for (int root : forest.roots) {
    buffer.clear();
    SerializeSubtree(ctx, forest, root, &buffer);
    RETURN_IF_ERROR(writer.Append(buffer));
    if (buffer.size() > 256 * 1024) buffer.shrink_to_fit();
  }
  RunHandle handle;
  RETURN_IF_ERROR(writer.Finish(&handle));
  return handle;
}

ExternalSubtreeSorter::ExternalSubtreeSorter(const SubtreeSortContext& ctx,
                                             SubtreeSortStats* stats)
    : ctx_(ctx), stats_(stats), sink_(this) {
  if (ctx.memory_blocks < 4) {
    status_ = Status::InvalidArgument("external subtree sort needs >= 4 blocks");
    return;
  }
  ExtSortOptions sort_options;
  sort_options.memory_blocks = ctx.memory_blocks;
  sort_options.tracer = ctx.tracer;
  sort_options.parallel = ctx.parallel;
  sort_options.buffer_pool = ctx.buffer_pool;
  sort_options.cancel = ctx.cancel;
  sort_options.run_formation = ctx.run_formation;
  sort_options.merge_policy = ctx.merge_policy;
  sort_options.dfs_placement = ctx.dfs_placement;
  sorter_ = std::make_unique<ExternalMergeSorter>(ctx.store, sort_options);
  status_ = sorter_->init_status();
}

ExternalSubtreeSorter::~ExternalSubtreeSorter() = default;

const Status& ExternalSubtreeSorter::init_status() const { return status_; }

Status ExternalSubtreeSorter::UnitSink::Append(std::string_view data) {
  ExternalSubtreeSorter* owner = owner_;
  if (!owner->status_.ok()) return owner->status_;
  owner->pending_.append(data);
  // Parse as many complete units as the buffer holds; a parse failure with
  // a short buffer means "wait for more bytes" (our own writer produced
  // this stream, so genuine corruption only surfaces at Finish).
  std::string_view view = owner->pending_;
  size_t consumed = 0;
  ElementUnit unit;
  while (!view.empty()) {
    std::string_view cursor = view;
    Status st = ParseUnit(&cursor, &unit, owner->ctx_.format,
                          owner->ctx_.dictionary);
    if (!st.ok()) break;
    std::string_view serialized = view.substr(0, view.size() - cursor.size());
    RETURN_IF_ERROR(owner->FeedUnit(unit, serialized));
    consumed += serialized.size();
    view = cursor;
  }
  owner->pending_.erase(0, consumed);
  return Status::OK();
}

Status ExternalSubtreeSorter::FeedUnit(const ElementUnit& unit,
                                       std::string_view serialized) {
  bytes_fed_ += serialized.size();
  if (unit.type == UnitType::kEnd) return Status::OK();  // levels suffice
  if (unit.type == UnitType::kFragment) {
    return Status::NotSupported(
        "incomplete runs cannot participate in an external subtree sort");
  }
  if (!have_root_) {
    if (unit.type != UnitType::kStart) {
      return Status::Corruption("subtree root is not a start unit");
    }
    root_level_ = unit.level;
    root_ = unit;
    have_root_ = true;
  }
  // Key path: the (key, seq) components of the unit's open ancestors
  // within the subtree, root first, plus its own.
  uint32_t rel = unit.level - root_level_;  // 0 for the root itself
  if (rel < path_ends_.size()) {
    path_.resize(rel == 0 ? 0 : path_ends_[rel - 1]);
    path_ends_.resize(rel);
    open_names_.resize(rel);
  }
  // A unit is reordered among its siblings only when its parent's list is
  // sorted at all: the parent must be within the depth limit and (for
  // XSort-style scoped sorting) have an in-scope tag. Otherwise encode an
  // empty key so the sequence number alone — document order — rules.
  bool parent_sorted =
      rel == 0 ||
      ((ctx_.depth_limit == 0 ||
        unit.level - 1 <= static_cast<uint32_t>(ctx_.depth_limit)) &&
       TagInScope(ctx_, open_names_.back()));
  std::string composite = path_;
  AppendKeyPathComponent(&composite, parent_sorted ? unit.key : "",
                         unit.seq);
  if (unit.type == UnitType::kStart) {
    path_ = composite;
    path_ends_.push_back(path_.size());
    open_names_.push_back(unit.name);
  }
  return sorter_->Add(composite, serialized);
}

StatusOr<RunHandle> ExternalSubtreeSorter::Finish(ElementUnit* root_out) {
  RETURN_IF_ERROR(status_);
  if (!pending_.empty()) {
    return Status::Corruption("trailing partial unit in subtree stream");
  }
  if (!have_root_) return Status::Corruption("empty subtree stream");
  ++stats_->external_sorts;
  stats_->largest_subtree_bytes =
      std::max<uint64_t>(stats_->largest_subtree_bytes, bytes_fed_);
  *root_out = root_;
  RETURN_IF_ERROR(sorter_->Finish());

  // Like the in-memory path's output run: the DFS re-reads this later, so
  // place it sequentially when asked.
  RunWriter writer = ctx_.store->NewRun(
      IoCategory::kRunWrite, ctx_.dfs_placement
                                 ? PlacementHint::kSequentialOutput
                                 : PlacementHint::kScratch);
  RETURN_IF_ERROR(writer.init_status());
  std::string key;
  std::string value;
  while (true) {
    ASSIGN_OR_RETURN(bool more, sorter_->Next(&key, &value));
    if (!more) break;
    RETURN_IF_ERROR(writer.Append(value));
  }
  stats_->run_formation.MergeFrom(sorter_->stats().runs);
  stats_->merge_passes += sorter_->stats().merge_passes;
  stats_->merge_plan.MergeFrom(sorter_->stats().plan);
  RunHandle handle;
  RETURN_IF_ERROR(writer.Finish(&handle));
  return handle;
}

StatusOr<RunHandle> SortSubtreeExternal(const SubtreeSortContext& ctx,
                                        RunHandle input,
                                        ElementUnit* root_out,
                                        SubtreeSortStats* stats) {
  // Convenience wrapper over the streaming sorter for callers whose units
  // already live in a run (tests; NEXSORT itself streams straight off the
  // data stack).
  SubtreeSortContext reduced = ctx;
  if (reduced.memory_blocks > 4) --reduced.memory_blocks;  // input reader
  ExternalSubtreeSorter external(reduced, stats);
  RETURN_IF_ERROR(external.init_status());
  {
    RunReader reader = ctx.store->OpenRun(input, 0, IoCategory::kSortTemp);
    RETURN_IF_ERROR(reader.init_status());
    std::string buffer(4096, '\0');
    while (reader.bytes_remaining() > 0) {
      size_t got = 0;
      RETURN_IF_ERROR(reader.Read(buffer.data(), buffer.size(), &got));
      RETURN_IF_ERROR(external.sink()->Append(
          std::string_view(buffer.data(), got)));
    }
  }
  RETURN_IF_ERROR(ctx.store->FreeRun(input));
  return external.Finish(root_out);
}

}  // namespace nexsort
