#include "core/sorted_check.h"

#include <vector>

#include "core/unit_scanner.h"

namespace nexsort {

namespace {

struct LevelState {
  bool has_prev = false;
  std::string prev_key;
  uint64_t prev_seq = 0;
};

std::string Describe(uint32_t level, uint64_t seq) {
  return "sibling out of order at level " + std::to_string(level) +
         ", document position " + std::to_string(seq);
}

}  // namespace

StatusOr<SortednessReport> CheckSorted(ByteSource* input,
                                       const OrderSpec& spec,
                                       int depth_limit) {
  UnitScanner scanner(input, &spec);
  SortednessReport report;

  // levels[l] tracks the last finalized child key of the currently open
  // element at level l (children live at level l+1 but are compared within
  // their parent's list, indexed here by the child level).
  std::vector<LevelState> levels;
  std::vector<std::string> start_keys;  // per open element

  auto finalize = [&](uint32_t level, const std::string& key, uint64_t seq)
      -> bool {
    // Children of elements beyond the depth limit are exempt.
    if (depth_limit != 0 &&
        level > static_cast<uint32_t>(depth_limit) + 1) {
      return true;
    }
    if (levels.size() < level + 1) levels.resize(level + 1);
    LevelState& state = levels[level];
    if (state.has_prev &&
        KeySeqLess(key, seq, state.prev_key, state.prev_seq)) {
      if (report.sorted) {
        report.sorted = false;
        report.violation = Describe(level, seq);
      }
      return false;
    }
    state.has_prev = true;
    state.prev_key = key;
    state.prev_seq = seq;
    report.depth_checked =
        std::max(report.depth_checked, static_cast<int>(level));
    return true;
  };

  ScanEvent event;
  while (true) {
    ASSIGN_OR_RETURN(bool more, scanner.Next(&event));
    if (!more) break;
    const ElementUnit& unit = event.unit;
    switch (event.kind) {
      case ScanEvent::Kind::kStart:
        ++report.elements;
        start_keys.push_back(unit.key);
        // A new open element resets its children's list state.
        if (levels.size() < unit.level + 2) levels.resize(unit.level + 2);
        levels[unit.level + 1] = LevelState();
        break;
      case ScanEvent::Kind::kText:
        finalize(unit.level, unit.key, unit.seq);
        break;
      case ScanEvent::Kind::kEnd: {
        // The element's final key: complex rules resolve on the end event,
        // simple rules were known at the start tag.
        std::string key =
            !unit.key.empty() ? unit.key : std::move(start_keys.back());
        start_keys.pop_back();
        finalize(unit.level, key, unit.seq);
        break;
      }
    }
  }
  return report;
}

StatusOr<SortednessReport> CheckSorted(std::string_view xml,
                                       const OrderSpec& spec,
                                       int depth_limit) {
  StringByteSource source(xml);
  return CheckSorted(&source, spec, depth_limit);
}

}  // namespace nexsort
