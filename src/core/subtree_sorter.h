// Subtree sorting: line 11 of the paper's Figure 4 ("Sort this subtree and
// write the result in a sorted run"). Depending on the subtree's size this
// uses either an internal-memory recursive sort or, exactly as the paper
// prescribes, "an external-memory algorithm, e.g. ... key-path external
// merge sort". Also implements the merging of incomplete sorted runs that
// powers the graceful-degeneration-into-merge-sort optimization of
// Section 3.2.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/element_unit.h"
#include "extmem/run_store.h"
#include "extmem/stream.h"
#include "sort/merge_plan.h"
#include "sort/run_formation.h"
#include "util/status.h"

namespace nexsort {

struct SubtreeSortContext {
  RunStore* store = nullptr;
  NameDictionary* dictionary = nullptr;
  UnitFormat format;

  /// Sort children of elements at levels [1, depth_limit]; 0 = every level
  /// (head-to-toe). Levels are absolute document levels, root = 1.
  int depth_limit = 0;

  /// XSort-style scoped sorting (cf. the paper's related work): when
  /// non-null and non-empty, only children of elements whose tag is listed
  /// here are reordered; every other sibling list keeps document order.
  const std::vector<std::string>* scope_tags = nullptr;

  /// Blocks of internal memory one subtree sort may use.
  uint64_t memory_blocks = 8;

  /// Optional telemetry sink (not owned; may be null), forwarded to the
  /// external merge sorts run for oversized subtrees.
  class Tracer* tracer = nullptr;

  /// Shared parallel state (not owned; may be null = serial), forwarded to
  /// the external merge sorts so every subtree sort shares one worker pool
  /// and one set of parallel counters. See src/parallel/.
  class ParallelContext* parallel = nullptr;

  /// The block cache's pool (not owned; may be null), forwarded so merge
  /// passes can prefetch their input runs.
  class BufferPool* buffer_pool = nullptr;

  /// Cooperative cancellation (not owned; may be null), forwarded to the
  /// external merge sorts so an oversized-subtree sort stops at the next
  /// spill or merged record. See util/cancellation.h.
  const class CancellationToken* cancel = nullptr;

  /// Run-formation policy (docs/RUN_FORMATION.md), forwarded to the
  /// external merge sorts run for oversized subtrees.
  RunFormationPolicy run_formation = RunFormationPolicy::kQuicksortChunks;

  /// Merge-scheduling policy (docs/MERGE_PLANNING.md), forwarded to the
  /// external merge sorts run for oversized subtrees.
  MergePolicy merge_policy = MergePolicy::kPlanned;

  /// Place output runs — the sorted-subtree runs the output DFS re-reads —
  /// in ascending contiguous extents (PlacementHint::kSequentialOutput).
  bool dfs_placement = true;
};

/// Statistics accumulated across the subtree sorts of one NEXSORT run.
struct SubtreeSortStats {
  uint64_t internal_sorts = 0;
  uint64_t external_sorts = 0;
  uint64_t fragment_merges = 0;      // incomplete-run merge steps
  uint64_t fragment_premerge_passes = 0;
  uint64_t largest_subtree_bytes = 0;
  /// Run-length accounting aggregated over the external merge sorts (the
  /// "sort" block of nexsort-stats-v1; see docs/OBSERVABILITY.md).
  RunFormationStats run_formation;
  uint64_t merge_passes = 0;  // merge passes across those external sorts
  /// Merge-schedule accounting aggregated over those external sorts (the
  /// "merge_plan" block of nexsort-stats-v1).
  MergePlanStats merge_plan;
};

/// Sort a complete subtree whose serialized units are in memory. `units`
/// must start with the root's kStart unit; it may contain kPointer units
/// (already-collapsed descendants), kFragment units (incomplete sorted runs
/// that must be direct children of the root), and kEnd units (dropped after
/// harvesting complex-criteria keys). Writes the fully sorted subtree as a
/// new run; *root_out receives the parsed root start unit.
[[nodiscard]] StatusOr<RunHandle> SortSubtreeInMemory(const SubtreeSortContext& ctx,
                                        std::string_view units,
                                        ElementUnit* root_out,
                                        SubtreeSortStats* stats);

/// Same contract for a subtree too large for memory: units live in run
/// `input` (consumed and freed). Uses key-path external merge sort.
/// Complex ordering criteria and kFragment units are not supported on this
/// path (see DESIGN.md).
[[nodiscard]] StatusOr<RunHandle> SortSubtreeExternal(const SubtreeSortContext& ctx,
                                        RunHandle input,
                                        ElementUnit* root_out,
                                        SubtreeSortStats* stats);

/// Streaming external subtree sort: serialized units are pushed through
/// sink() — typically directly from ExtByteStack::PopRegionTo, so the
/// oversized region never makes an extra round trip through a temp run —
/// and Finish() completes the key-path external merge sort into a new run.
class ExternalSubtreeSorter {
 public:
  ExternalSubtreeSorter(const SubtreeSortContext& ctx,
                        SubtreeSortStats* stats);
  ~ExternalSubtreeSorter();

  const Status& init_status() const;

  /// Sink accepting the subtree's serialized unit bytes in document order.
  ByteSink* sink() { return &sink_; }

  /// Run the merge passes and write the sorted run. *root_out receives the
  /// parsed root start unit.
  [[nodiscard]] StatusOr<RunHandle> Finish(ElementUnit* root_out);

 private:
  class UnitSink final : public ByteSink {
   public:
    explicit UnitSink(ExternalSubtreeSorter* owner) : owner_(owner) {}
    [[nodiscard]] Status Append(std::string_view data) override;

   private:
    ExternalSubtreeSorter* owner_;
  };

  [[nodiscard]] Status FeedUnit(const ElementUnit& unit, std::string_view serialized);

  const SubtreeSortContext& ctx_;
  SubtreeSortStats* stats_;
  std::unique_ptr<class ExternalMergeSorter> sorter_;
  UnitSink sink_;
  Status status_;

  std::string pending_;               // partial unit bytes across Appends
  std::vector<size_t> path_ends_;     // key-path prefix length per ancestor
  std::vector<std::string> open_names_;  // tags of open ancestors
  std::string path_;
  uint32_t root_level_ = 0;
  bool have_root_ = false;
  ElementUnit root_;
  uint64_t bytes_fed_ = 0;
};

/// Sort a *forest* of complete sibling subtrees (serialized units, all
/// descendants of one open element) into an incomplete sorted run: the run
/// formation step of graceful degeneration. The forest must contain no
/// kFragment units (earlier incomplete runs stay on the data stack and are
/// merged at the element's eventual subtree sort).
[[nodiscard]] StatusOr<RunHandle> SortForestInMemory(const SubtreeSortContext& ctx,
                                       std::string_view units,
                                       SubtreeSortStats* stats);

}  // namespace nexsort
