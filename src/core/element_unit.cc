#include "core/element_unit.h"

#include "extmem/block_device.h"
#include "util/varint.h"

namespace nexsort {

size_t ElementUnit::EncodedSize(const UnitFormat& format) const {
  // Exact computation is not needed — threshold comparisons tolerate a few
  // bytes of slack — but this stays within one varint of exact.
  size_t size = 1 + VarintLength(level) + VarintLength(seq);
  switch (type) {
    case UnitType::kStart:
      size += format.use_dictionary ? 2 : VarintLength(name.size()) + name.size();
      size += VarintLength(attributes.size());
      for (const XmlAttribute& attr : attributes) {
        size += format.use_dictionary
                    ? 2
                    : VarintLength(attr.name.size()) + attr.name.size();
        size += VarintLength(attr.value.size()) + attr.value.size();
      }
      size += VarintLength(key.size()) + key.size();
      break;
    case UnitType::kText:
      size += VarintLength(text.size()) + text.size();
      break;
    case UnitType::kEnd:
      size += VarintLength(key.size()) + key.size();
      break;
    case UnitType::kPointer:
      size += VarintLength(key.size()) + key.size();
      size += VarintLength(run.id) + VarintLength(run.byte_size);
      break;
    case UnitType::kFragment:
      size += VarintLength(run.id) + VarintLength(run.byte_size);
      break;
  }
  return size;
}

void AppendUnit(std::string* dst, const ElementUnit& unit,
                const UnitFormat& format, NameDictionary* dictionary) {
  dst->push_back(static_cast<char>(unit.type));
  PutVarint32(dst, unit.level);
  PutVarint64(dst, unit.seq);
  switch (unit.type) {
    case UnitType::kStart:
      if (format.use_dictionary) {
        PutVarint32(dst, dictionary->Intern(unit.name));
      } else {
        PutLengthPrefixed(dst, unit.name);
      }
      PutVarint64(dst, unit.attributes.size());
      for (const XmlAttribute& attr : unit.attributes) {
        if (format.use_dictionary) {
          PutVarint32(dst, dictionary->Intern(attr.name));
        } else {
          PutLengthPrefixed(dst, attr.name);
        }
        PutLengthPrefixed(dst, attr.value);
      }
      PutLengthPrefixed(dst, unit.key);
      break;
    case UnitType::kText:
      PutLengthPrefixed(dst, unit.text);
      break;
    case UnitType::kEnd:
      PutLengthPrefixed(dst, unit.key);
      break;
    case UnitType::kPointer:
      PutLengthPrefixed(dst, unit.key);
      PutVarint32(dst, unit.run.id);
      PutVarint64(dst, unit.run.byte_size);
      break;
    case UnitType::kFragment:
      PutVarint32(dst, unit.run.id);
      PutVarint64(dst, unit.run.byte_size);
      break;
  }
}

namespace {

Status ParseName(std::string_view* input, const UnitFormat& format,
                 const NameDictionary* dictionary, std::string* name) {
  if (format.use_dictionary) {
    uint32_t id = 0;
    RETURN_IF_ERROR(GetVarint32(input, &id));
    ASSIGN_OR_RETURN(std::string_view resolved, dictionary->Lookup(id));
    name->assign(resolved);
  } else {
    std::string_view raw;
    RETURN_IF_ERROR(GetLengthPrefixed(input, &raw));
    name->assign(raw);
  }
  return Status::OK();
}

}  // namespace

Status ParseUnit(std::string_view* input, ElementUnit* unit,
                 const UnitFormat& format, const NameDictionary* dictionary) {
  if (input->empty()) return Status::Corruption("empty unit");
  uint8_t type_byte = static_cast<uint8_t>(input->front());
  input->remove_prefix(1);
  if (type_byte < 1 || type_byte > 5) {
    return Status::Corruption("bad unit type " + std::to_string(type_byte));
  }
  unit->type = static_cast<UnitType>(type_byte);
  unit->key.clear();
  unit->name.clear();
  unit->attributes.clear();
  unit->text.clear();
  unit->run = RunHandle();
  RETURN_IF_ERROR(GetVarint32(input, &unit->level));
  RETURN_IF_ERROR(GetVarint64(input, &unit->seq));
  std::string_view view;
  switch (unit->type) {
    case UnitType::kStart: {
      RETURN_IF_ERROR(ParseName(input, format, dictionary, &unit->name));
      uint64_t attr_count = 0;
      RETURN_IF_ERROR(GetVarint64(input, &attr_count));
      if (attr_count > input->size()) {
        return Status::Corruption("implausible attribute count");
      }
      unit->attributes.resize(attr_count);
      for (XmlAttribute& attr : unit->attributes) {
        RETURN_IF_ERROR(ParseName(input, format, dictionary, &attr.name));
        RETURN_IF_ERROR(GetLengthPrefixed(input, &view));
        attr.value.assign(view);
      }
      RETURN_IF_ERROR(GetLengthPrefixed(input, &view));
      unit->key.assign(view);
      break;
    }
    case UnitType::kText:
      RETURN_IF_ERROR(GetLengthPrefixed(input, &view));
      unit->text.assign(view);
      break;
    case UnitType::kEnd:
      RETURN_IF_ERROR(GetLengthPrefixed(input, &view));
      unit->key.assign(view);
      break;
    case UnitType::kPointer:
      RETURN_IF_ERROR(GetLengthPrefixed(input, &view));
      unit->key.assign(view);
      RETURN_IF_ERROR(GetVarint32(input, &unit->run.id));
      RETURN_IF_ERROR(GetVarint64(input, &unit->run.byte_size));
      break;
    case UnitType::kFragment:
      RETURN_IF_ERROR(GetVarint32(input, &unit->run.id));
      RETURN_IF_ERROR(GetVarint64(input, &unit->run.byte_size));
      break;
  }
  return Status::OK();
}

RunUnitReader::RunUnitReader(RunStore* store, RunHandle handle,
                             uint64_t offset, const UnitFormat& format,
                             const NameDictionary* dictionary,
                             IoCategory category)
    : reader_(store->OpenRun(handle, offset, category)),
      handle_(handle),
      format_(format),
      dictionary_(dictionary),
      logical_offset_(offset) {
  init_status_ = reader_.init_status();
}

StatusOr<bool> RunUnitReader::Next(ElementUnit* unit) {
  // Refill so that either a whole unit is buffered or the run is drained.
  // Units written by this library are far smaller than one refill chunk, so
  // a parse failure with bytes still available means "need more", and a
  // failure at true end of run means corruption.
  constexpr size_t kRefill = 4096;
  while (true) {
    std::string_view view(buffer_.data() + buffer_pos_,
                          buffer_.size() - buffer_pos_);
    if (!view.empty()) {
      std::string_view cursor = view;
      Status st = ParseUnit(&cursor, unit, format_, dictionary_);
      if (st.ok()) {
        size_t consumed = view.size() - cursor.size();
        buffer_pos_ += consumed;
        logical_offset_ += consumed;
        return true;
      }
      if (reader_.bytes_remaining() == 0) return st;
    } else if (reader_.bytes_remaining() == 0) {
      return false;
    }
    // Compact and refill.
    buffer_.erase(0, buffer_pos_);
    buffer_pos_ = 0;
    size_t old_size = buffer_.size();
    buffer_.resize(old_size + kRefill);
    size_t got = 0;
    RETURN_IF_ERROR(reader_.Read(buffer_.data() + old_size, kRefill, &got));
    buffer_.resize(old_size + got);
  }
}

}  // namespace nexsort
