// Ordering criteria for XML sorting. A fully sorted document orders every
// element's children by a user-supplied criterion (paper Section 1); an
// OrderSpec is a list of per-tag rules saying where each element's sort key
// comes from — its tag name, an attribute ("order employee by ID"), its own
// text content, or the text of a descendant reached by a path ("order
// employee elements by personalInfo/name/lastName", the paper's complex
// ordering criteria of Section 3.2).
//
// Keys are *normalized* at extraction into an order-preserving byte string,
// so every comparison downstream — sibling sorts, key-path merge sort,
// structural merge — is a plain bytewise comparison:
//   * string ascending: the raw bytes;
//   * numeric: 9-byte monotone encoding of the double value;
//   * descending: escape-and-complement transform of the above.
// Elements with no applicable rule or a missing key get the empty key, which
// sorts first; ties are always broken by document order (sequence number),
// making every sort stable, and unique as the paper requires ("we can make
// it unique by appending the element's location in the input").
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "xml/token.h"

namespace nexsort {

struct XmlNode;

enum class KeySource {
  kTagName,      // the element's tag name
  kAttribute,    // value of attribute `argument`
  kTextContent,  // the element's first direct text child
  kChildText,    // first text of the descendant at path `argument`
};

/// One ordering rule; applies to elements whose tag equals `element`
/// ("*" matches any tag). Rule "#text" applies to text nodes.
///
/// `then_by` appends secondary sort keys ("order employee by dept, then by
/// ID"): each entry contributes another normalized component, joined with
/// the same order-preserving framing the key-path encoding uses, so the
/// composite still compares bytewise. Secondary parts must use simple
/// sources (kTagName/kAttribute); their `element` field is ignored.
struct OrderRule {
  std::string element = "*";
  KeySource source = KeySource::kAttribute;
  std::string argument;  // attribute name, or '/'-separated descendant path
  bool numeric = false;
  bool descending = false;
  std::vector<OrderRule> then_by;
};

/// An ordered list of rules; the first matching rule wins.
class OrderSpec {
 public:
  OrderSpec() = default;

  /// Everything ordered by attribute `name` (the common case; e.g. the
  /// paper's Figure 1 orders region and branch by name, employee by ID).
  static OrderSpec ByAttribute(std::string_view name, bool numeric = false);

  /// Everything ordered by tag name.
  static OrderSpec ByTagName();

  OrderSpec& AddRule(OrderRule rule);

  const std::vector<OrderRule>& rules() const { return rules_; }

  /// First rule matching `tag`, or nullptr (document order).
  const OrderRule* RuleFor(std::string_view tag) const;

  /// True if any rule needs subtree context (kTextContent/kChildText), in
  /// which case keys resolve at end tags (paper Section 3.2).
  bool HasComplexRules() const;

  /// Normalized key for a start tag. Empty if no rule applies, the key is
  /// missing, or the rule is complex (resolved later by the scanner).
  std::string KeyForStartTag(std::string_view tag,
                             const std::vector<XmlAttribute>& attributes) const;

  /// Normalized key for a text node.
  std::string KeyForText(std::string_view text) const;

  /// Normalized key for a DOM node, resolving complex rules directly
  /// against the subtree (reference implementations).
  std::string KeyForNode(const XmlNode& node) const;

  /// Apply a rule's normalization (numeric/descending transforms) to a raw
  /// key value.
  static std::string NormalizeKey(const OrderRule& rule, std::string_view raw);

 private:
  std::vector<OrderRule> rules_;
};

/// Normalized-key + document-order comparison used by every sibling sort:
/// bytewise on keys, sequence number as the tiebreak.
inline bool KeySeqLess(std::string_view key_a, uint64_t seq_a,
                       std::string_view key_b, uint64_t seq_b) {
  if (key_a != key_b) return key_a < key_b;
  return seq_a < seq_b;
}

}  // namespace nexsort
