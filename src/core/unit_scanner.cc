#include "core/unit_scanner.h"

#include <algorithm>

#include "extmem/run_store.h"
#include "extmem/stream.h"
#include "util/string_util.h"

namespace nexsort {

UnitScanner::UnitScanner(ByteSource* input, const OrderSpec* spec)
    : parser_(input), spec_(spec) {
  rule_paths_.resize(spec_->rules().size());
  for (size_t i = 0; i < spec_->rules().size(); ++i) {
    const OrderRule& rule = spec_->rules()[i];
    if (rule.source == KeySource::kChildText) {
      for (std::string_view part : Split(rule.argument, '/')) {
        if (!part.empty()) rule_paths_[i].emplace_back(part);
      }
    }
    // kTextContent keeps an empty path: capture the element's own text.
  }
  for (const auto& path : rule_paths_) {
    max_path_len_ = std::max(max_path_len_, static_cast<int>(path.size()));
  }
}

const std::vector<std::string>& UnitScanner::PathFor(const OrderRule* rule) {
  size_t index = static_cast<size_t>(rule - spec_->rules().data());
  return rule_paths_[index];
}

void UnitScanner::FeedStart(std::string_view tag, int depth) {
  // Evaluators are stacked by element depth; walking from the top, `rel`
  // only grows, and evaluators more than a path length above the event can
  // no longer react, so the walk is bounded by the longest rule path.
  for (auto it = evaluators_.rbegin(); it != evaluators_.rend(); ++it) {
    Evaluator& ev = *it;
    int rel = depth - ev.element_depth;
    if (rel > max_path_len_) break;
    if (rel < 1) continue;
    const auto& path = PathFor(ev.rule);
    if (static_cast<size_t>(rel) > path.size()) continue;
    if (!ev.captured && ev.matched == rel - 1 && path[rel - 1] == tag) {
      ev.matched = rel;
    }
  }
}

void UnitScanner::FeedText(std::string_view text, int depth) {
  // Text inside the element at `depth`.
  for (auto it = evaluators_.rbegin(); it != evaluators_.rend(); ++it) {
    Evaluator& ev = *it;
    int rel = depth - ev.element_depth;
    if (rel > max_path_len_) break;
    if (rel < 0) continue;
    const auto& path = PathFor(ev.rule);
    if (!ev.captured && static_cast<size_t>(ev.matched) == path.size() &&
        static_cast<size_t>(rel) == path.size()) {
      ev.captured = true;
      ev.raw.assign(text);
    }
  }
}

void UnitScanner::FeedEnd(int depth) {
  // The element at `depth` closed; retract any match that reached it.
  for (auto it = evaluators_.rbegin(); it != evaluators_.rend(); ++it) {
    Evaluator& ev = *it;
    int rel = depth - ev.element_depth;
    if (rel > max_path_len_) break;
    if (rel < 1) continue;
    const auto& path = PathFor(ev.rule);
    if (static_cast<size_t>(rel) <= path.size() && ev.matched == rel) {
      ev.matched = rel - 1;
    }
  }
}

StatusOr<bool> UnitScanner::Next(ScanEvent* event) {
  XmlEvent xml;
  ASSIGN_OR_RETURN(bool more, parser_.Next(&xml));
  if (!more) return false;

  ElementUnit& unit = event->unit;
  unit.key.clear();
  unit.name.clear();
  unit.attributes.clear();
  unit.text.clear();
  unit.run = RunHandle();
  event->children = 0;
  ++stats_.units;

  switch (xml.type) {
    case XmlEventType::kStartElement: {
      int depth = parser_.depth();  // depth after the start tag
      if (!open_.empty()) {
        ++open_.back().children;
        stats_.max_fanout =
            std::max(stats_.max_fanout, open_.back().children);
      }
      ++stats_.elements;
      stats_.max_depth = std::max<uint64_t>(stats_.max_depth, depth);

      event->kind = ScanEvent::Kind::kStart;
      unit.type = UnitType::kStart;
      unit.level = depth;
      unit.seq = next_seq_++;
      unit.key = spec_->KeyForStartTag(xml.name, xml.attributes);
      unit.name = std::move(xml.name);
      unit.attributes = std::move(xml.attributes);

      open_.push_back({unit.seq, 0});
      const OrderRule* rule = spec_->RuleFor(unit.name);
      if (rule != nullptr && (rule->source == KeySource::kTextContent ||
                              rule->source == KeySource::kChildText)) {
        Evaluator ev;
        ev.element_depth = depth;
        ev.rule = rule;
        evaluators_.push_back(std::move(ev));
      }
      FeedStart(unit.name, depth);
      return true;
    }
    case XmlEventType::kText: {
      int depth = parser_.depth();
      ++stats_.text_nodes;
      if (!open_.empty()) {
        ++open_.back().children;
        stats_.max_fanout =
            std::max(stats_.max_fanout, open_.back().children);
      }
      event->kind = ScanEvent::Kind::kText;
      unit.type = UnitType::kText;
      unit.level = depth + 1;  // text nodes are children
      unit.seq = next_seq_++;
      unit.key = spec_->KeyForText(xml.text);
      FeedText(xml.text, depth);
      unit.text = std::move(xml.text);
      return true;
    }
    case XmlEventType::kEndElement: {
      int depth = parser_.depth() + 1;  // depth of the element that closed
      event->kind = ScanEvent::Kind::kEnd;
      unit.type = UnitType::kEnd;
      unit.level = depth;
      unit.seq = open_.back().seq;
      event->children = open_.back().children;
      if (!evaluators_.empty() &&
          evaluators_.back().element_depth == depth) {
        Evaluator& ev = evaluators_.back();
        if (ev.captured) {
          unit.key = OrderSpec::NormalizeKey(*ev.rule, ev.raw);
        }
        evaluators_.pop_back();
      }
      open_.pop_back();
      FeedEnd(depth);
      return true;
    }
  }
  return Status::Corruption("unknown XML event");
}

}  // namespace nexsort
