// UnitScanner turns the SAX event stream into ElementUnits with normalized
// sort keys attached — the front half of the paper's Figure 4 loop ("read a
// unit of XML data"). It implements the complex-ordering-criteria extension
// of Section 3.2: for rules whose key comes from an element's subtree
// (kTextContent/kChildText), the scanner runs a constant-space evaluator per
// open element and delivers the resolved key with the element's end event,
// exactly as the paper describes ("this result can be pushed onto the data
// stack with the end tag and used for sorting").
//
// Evaluator states live beside the parser's open-tag bookkeeping (O(depth)
// internal memory); the paper instead augments the external path stack, but
// the states only ever mutate within a rule-path length of the top, so they
// would stay inside the path stack's resident blocks either way.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/element_unit.h"
#include "core/order_spec.h"
#include "extmem/stream.h"
#include "util/status.h"
#include "xml/sax_parser.h"

namespace nexsort {

/// One scanner step.
struct ScanEvent {
  enum class Kind { kStart, kText, kEnd };
  Kind kind = Kind::kStart;

  /// For kStart/kText: a fully-formed unit ready for the data stack (the
  /// key may be empty when a complex rule resolves later). For kEnd: type
  /// kEnd with level, seq of the element's start, and the resolved key.
  ElementUnit unit;

  /// For kEnd: the closed element's child count (elements + text nodes) —
  /// the per-element fan-out feeding telemetry's fan-out histogram.
  uint64_t children = 0;
};

/// Totals observed during one scan (the workload's N, k, height).
struct ScanStats {
  uint64_t elements = 0;
  uint64_t text_nodes = 0;
  uint64_t units = 0;
  uint64_t max_fanout = 0;  // the paper's k
  uint64_t max_depth = 0;
};

class UnitScanner {
 public:
  UnitScanner(ByteSource* input, const OrderSpec* spec);

  /// Next scan event; false at clean end of document.
  [[nodiscard]] StatusOr<bool> Next(ScanEvent* event);

  const ScanStats& stats() const { return stats_; }

  /// Raw XML bytes consumed so far.
  uint64_t bytes_consumed() const { return parser_.bytes_consumed(); }

 private:
  struct Evaluator {
    int element_depth = 0;           // depth of the element being keyed
    const OrderRule* rule = nullptr;
    int matched = 0;                 // path components matched so far
    bool captured = false;
    std::string raw;                 // captured raw key text
  };

  struct OpenElement {
    uint64_t seq = 0;      // of the start unit
    uint64_t children = 0; // fan-out accounting
  };

  const std::vector<std::string>& PathFor(const OrderRule* rule);
  void FeedStart(std::string_view tag, int depth);
  void FeedText(std::string_view text, int depth);
  void FeedEnd(int depth);

  SaxParser parser_;
  const OrderSpec* spec_;
  uint64_t next_seq_ = 0;
  ScanStats stats_;

  std::vector<OpenElement> open_;
  std::vector<Evaluator> evaluators_;  // sparse stack, by element_depth
  std::vector<std::vector<std::string>> rule_paths_;  // per spec rule index
  int max_path_len_ = 0;
};

}  // namespace nexsort
