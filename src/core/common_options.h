// CommonSortOptions: algorithm-level knobs shared by every sorting entry
// point (NexSortOptions, KeyPathSortOptions inherit it). Deliberately small:
// resource plumbing — tracer, cache, parallelism, sort memory — is NOT here;
// it lives in SortEnvOptions (src/env/sort_env.h), which describes the
// execution environment a job runs in rather than what the job computes.
#pragma once

#include "core/order_spec.h"
#include "sort/merge_plan.h"
#include "sort/run_formation.h"

namespace nexsort {

struct CommonSortOptions {
  /// Ordering criterion for every sibling list.
  OrderSpec order;

  /// Run-formation strategy for every external sort this job performs.
  /// Output bytes are identical under either policy; only run boundaries
  /// (and therefore merge-pass I/O) change.
  RunFormationPolicy run_formation = RunFormationPolicy::kQuicksortChunks;

  /// Merge-scheduling policy for every external sort this job performs
  /// (docs/MERGE_PLANNING.md). Output bytes are identical under either
  /// policy; kPlanned never runs more passes or moves more bytes than
  /// kGreedy, which is kept for A/B comparisons.
  MergePolicy merge_policy = MergePolicy::kPlanned;

  /// Lay final/output runs in ascending contiguous extents so the output
  /// DFS reads them sequentially (ROADMAP item 4). Affects only which
  /// device blocks carry a run — never output bytes or logical I/O.
  bool dfs_placement = true;

  /// Depth-limited sorting (paper Section 3.2): sort children of elements
  /// at levels [1, depth_limit] only; 0 sorts head-to-toe.
  int depth_limit = 0;

  /// Compaction (Section 3.2): intern tag/attribute names as integers.
  bool use_dictionary = true;
};

}  // namespace nexsort
