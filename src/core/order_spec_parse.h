// Textual OrderSpec syntax, for command-line tools and config files:
//
//   spec   := rule (';' rule)*
//   rule   := element ':' part (',' part)*      -- later parts = then-by
//   part   := source ['(' argument ')'] flag*
//   source := 'attr' | 'tag' | 'text' | 'child'
//   flag   := 'n' (numeric) | 'd' (descending)
//
// Examples:
//   "*:attr(id)n"                         everything by numeric id
//   "employee:attr(dept),attr(ID)n;*:attr(name)"
//                                         employees by dept then numeric ID,
//                                         everything else by name
//   "person:child(info/name)"             complex: descendant text
//   "#text:text"                          order text nodes by content
//
// Subtree sources (text/child) are only valid as a rule's single part.
#pragma once

#include <string_view>

#include "core/order_spec.h"
#include "util/status.h"

namespace nexsort {

/// Parse `text` into an OrderSpec; InvalidArgument with a precise message
/// on malformed input.
[[nodiscard]] StatusOr<OrderSpec> ParseOrderSpec(std::string_view text);

}  // namespace nexsort
