// NEXSORT (Nested data and XML Sorting), the paper's contribution: an
// I/O-efficient, structure-aware external-memory sort of XML documents.
//
// Sorting phase (paper Figure 4, lines 1-12): scan the document depth-first
// pushing units onto an external data stack; the external path stack records
// where each open element's subtree begins. When an element closes and its
// subtree is at least the sort threshold t (or it is the root), pop the
// subtree region, sort it (internally if it fits in memory, else with a
// key-path external merge sort), write it as a sorted run, and push back a
// single pointer unit — collapsing the subtree as in Figure 2. Optional
// extensions from Section 3.2 are all implemented: graceful degeneration
// into external merge sort (incomplete sorted runs for open elements that
// fill memory), depth-limited sorting, complex ordering criteria, and the
// XML compaction techniques (name dictionary, end-tag elimination).
//
// Output phase (lines 13-21): depth-first traversal of the tree of sorted
// runs driven by the external output-location stack, reconstructing end
// tags from level transitions with an external open-tag stack.
//
// Worst-case I/O (Theorem 4.5): O(N/B + (N/B) log_{M/B} (min{kt,N}/B)).
#pragma once

#include <memory>

#include "cache/buffer_pool.h"
#include "core/common_options.h"
#include "core/element_unit.h"
#include "core/order_spec.h"
#include "core/subtree_sorter.h"
#include "core/unit_scanner.h"
#include "env/sort_env.h"
#include "extmem/block_device.h"
#include "extmem/ext_stack.h"
#include "extmem/memory_budget.h"
#include "extmem/run_store.h"
#include "extmem/stream.h"
#include "parallel/parallel.h"
#include "sort/sorted_stream.h"
#include "util/status.h"
#include "xml/dtd.h"

namespace nexsort {

class Tracer;

/// Algorithm knobs only: `order`, `depth_limit`, and `use_dictionary` come
/// from CommonSortOptions. Resource plumbing (tracer, cache, parallelism,
/// sort memory) lives in SortEnvOptions — describe the environment once,
/// run any number of jobs in it.
struct NexSortOptions : CommonSortOptions {
  /// The sort threshold t, in bytes: a complete subtree is sorted into a
  /// run once it reaches this size. 0 picks the paper's recommended value
  /// of twice the block size ("we set the threshold to be roughly twice the
  /// block size, which works well for most inputs", Section 5).
  uint64_t sort_threshold = 0;

  /// Graceful degeneration into external merge sort (Section 3.2): when an
  /// incomplete subtree fills internal memory, sort what is there into an
  /// incomplete run instead of letting the region spill to disk. The
  /// paper's own evaluation ran with this OFF; benchmarks show both.
  bool graceful_degeneration = false;

  /// Compaction ablation: also push end-tag units onto the data stack (the
  /// paper's non-compacted representation). Forced on internally when the
  /// OrderSpec has complex rules, which deliver keys on end tags.
  bool keep_end_units = false;

  /// Preserving the original document order (paper Section 1): when
  /// non-empty, every output element gains this attribute holding its
  /// original document-order sequence number, so "performing a final sort
  /// according to this sequence number" restores the original order.
  /// Exact restoration holds for element children; text children keep
  /// their relative order but regroup before element siblings.
  std::string record_order_attribute;

  /// Remove this attribute from every element on output (after sort keys
  /// are extracted) — the restoration side of record_order_attribute.
  std::string strip_attribute;

  /// Indent the output document (two spaces per level). Off by default:
  /// compact output is canonical and what the tests compare.
  bool pretty_output = false;

  /// Optional DTD (not owned; must outlive the sorter): its declared
  /// vocabulary pre-seeds the compaction dictionary with stable small ids
  /// (paper Section 3.2 — "the availability of a DTD can greatly simplify
  /// this conversion"). Validation is separate; see Dtd::Validate.
  const Dtd* dtd = nullptr;

  /// XSort-style scoped sorting (related work, Section 2): when non-empty,
  /// only children of elements with these tags are reordered; every other
  /// sibling list keeps document order. Solves XSort's simpler problem —
  /// "XSort traverses the document tree to some user-specified elements
  /// and then sorts their children; the child subtrees are not sorted
  /// recursively" — within the NEXSORT engine. Not combinable with
  /// graceful degeneration or complex ordering criteria.
  std::vector<std::string> sort_scope_tags;
};

struct NexSortStats {
  ScanStats scan;           // N, k, height observed in the input
  SubtreeSortStats sorts;
  uint64_t subtree_sorts = 0;    // complete-subtree sorts (paper's x)
  uint64_t fragment_runs = 0;    // incomplete runs (graceful degeneration)
  uint64_t pointer_units = 0;
  uint64_t input_bytes = 0;
  uint64_t output_bytes = 0;
  uint64_t data_stack_peak = 0;  // bytes
  uint64_t path_stack_peak = 0;  // entries

  /// Serialize every counter (including the nested scan and subtree-sort
  /// stats) as one JSON object in the telemetry schema.
  void ToJson(class JsonWriter* writer) const;
  std::string ToJsonString() const;
};

/// One-document sorter running inside a SortEnv. The env supplies working
/// storage (stacks + sorted runs) and caps internal memory at M blocks.
/// Requires M >= 8 available blocks (3 for the stacks, the rest for
/// subtree sorts) on top of whatever the env's cache has reserved.
class NexSorter {
 public:
  /// Run in a fresh session of `env` (not owned; must outlive the sorter).
  NexSorter(SortEnv* env, NexSortOptions options);

  /// Run in a caller-made session — the multi-job form: create one env,
  /// hand each concurrent sorter its own session (with a per-job tracer,
  /// or none).
  NexSorter(SortEnv::Session session, NexSortOptions options);

  /// Sort `input` (XML text) into `output` (XML text). Single use.
  /// Implemented as SortStream + drain, so eager and streaming output are
  /// byte-identical by construction.
  [[nodiscard]] Status Sort(ByteSource* input, ByteSink* output);

  /// Streaming form: runs the sorting phase eagerly (no sorted byte exists
  /// before the run tree does), then returns a SortedStream whose Next()
  /// drives the output-phase DFS (paper Figure 4 lines 13-21)
  /// incrementally. Completion work — final flush, metrics — happens inside
  /// the Next() that returns false; dropping the stream early unwinds every
  /// stack and run via RAII. Single use, mutually exclusive with Sort.
  [[nodiscard]] StatusOr<std::unique_ptr<SortedStream>> SortStream(
      ByteSource* input);

  const NexSortStats& stats() const { return stats_; }

  /// Counters of the env's block cache; all zeros when caching is disabled.
  /// Shared across every job of the env.
  CacheStats cache_stats() const { return session_.env()->cache_stats(); }

  /// Counters of this job's parallel pipeline; all zeros when disabled.
  ParallelStats parallel_stats() const {
    return session_.parallel() != nullptr ? session_.parallel()->stats()
                                          : ParallelStats();
  }

 private:
  class OutputStream;  // SortedStream over the output-phase DFS

  struct PathEntry {
    uint64_t start_offset = 0;    // data-stack location of the start unit
    uint64_t content_offset = 0;  // after the start unit / last fragment
    uint64_t flags = 0;           // kHasFragments
  };
  static constexpr uint64_t kHasFragments = 1;

  [[nodiscard]] Status SortingPhase(ByteSource* input, RunHandle* root_run);
  [[nodiscard]] Status SortRegion(ExtByteStack* data, const PathEntry& entry,
                    std::string_view resolved_key, uint32_t level,
                    uint64_t seq, RunHandle* run, ElementUnit* pointer);
  [[nodiscard]] Status MaybeFragment(ExtByteStack* data, ExtStack<PathEntry>* path);

  SortEnv::Session session_;
  NexSortOptions options_;
  Tracer* tracer_;       // session_'s sink (may be null)
  BlockDevice* device_;  // session_'s top-of-stack device
  MemoryBudget* budget_;
  RunStore* store_;      // session_'s run store
  NameDictionary dictionary_;
  UnitFormat format_;
  SubtreeSortContext sort_context_;

  uint64_t threshold_ = 0;       // t in bytes
  uint64_t sort_capacity_ = 0;   // max region bytes sorted internally
  uint64_t frag_threshold_ = 0;  // graceful-degeneration trigger
  bool push_end_units_ = false;
  bool used_ = false;

  NexSortStats stats_;
};

}  // namespace nexsort
