#include "core/order_spec_parse.h"

#include <cctype>

#include "util/string_util.h"

namespace nexsort {

namespace {

Status MakeError(std::string_view what, std::string_view at) {
  return Status::InvalidArgument("order spec: " + std::string(what) +
                                 " near '" + std::string(at) + "'");
}

// part := source ['(' argument ')'] flag*
Status ParsePart(std::string_view text, OrderRule* part) {
  size_t paren = text.find('(');
  std::string_view source = text.substr(0, paren);
  std::string_view rest;
  if (paren != std::string_view::npos) {
    size_t close = text.find(')', paren);
    if (close == std::string_view::npos) {
      return MakeError("missing ')'", text);
    }
    part->argument = std::string(text.substr(paren + 1, close - paren - 1));
    rest = text.substr(close + 1);
  } else {
    // No argument: flags may trail the bare source word.
    size_t word_end = 0;
    while (word_end < text.size() &&
           std::isalpha(static_cast<unsigned char>(text[word_end]))) {
      ++word_end;
    }
    // Split the trailing single-letter flags off the source word.
    std::string_view word = text.substr(0, word_end);
    for (std::string_view candidate : {"attr", "tag", "text", "child"}) {
      if (word.substr(0, candidate.size()) == candidate) {
        source = candidate;
        rest = text.substr(candidate.size());
        break;
      }
    }
    if (source.empty() || (source != "attr" && source != "tag" &&
                           source != "text" && source != "child")) {
      source = word;
      rest = text.substr(word_end);
    }
  }

  if (source == "attr") {
    part->source = KeySource::kAttribute;
    if (part->argument.empty()) {
      return MakeError("attr needs an attribute name", text);
    }
  } else if (source == "tag") {
    part->source = KeySource::kTagName;
  } else if (source == "text") {
    part->source = KeySource::kTextContent;
  } else if (source == "child") {
    part->source = KeySource::kChildText;
    if (part->argument.empty()) {
      return MakeError("child needs a path", text);
    }
  } else {
    return MakeError("unknown key source", text);
  }

  for (char flag : rest) {
    switch (flag) {
      case 'n': part->numeric = true; break;
      case 'd': part->descending = true; break;
      default:
        return MakeError("unknown flag", text);
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<OrderSpec> ParseOrderSpec(std::string_view text) {
  OrderSpec spec;
  if (text.empty()) return MakeError("empty spec", text);
  for (std::string_view rule_text : Split(text, ';')) {
    if (rule_text.empty()) continue;
    size_t colon = rule_text.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return MakeError("expected 'element:part'", rule_text);
    }
    OrderRule rule;
    rule.element = std::string(rule_text.substr(0, colon));
    std::string_view parts_text = rule_text.substr(colon + 1);

    bool first = true;
    for (std::string_view part_text : Split(parts_text, ',')) {
      if (part_text.empty()) {
        return MakeError("empty key part", rule_text);
      }
      OrderRule part;
      RETURN_IF_ERROR(ParsePart(part_text, &part));
      bool complex_part = part.source == KeySource::kTextContent ||
                          part.source == KeySource::kChildText;
      if (first) {
        part.element = rule.element;
        rule = std::move(part);
        first = false;
      } else {
        if (complex_part) {
          return MakeError("subtree sources cannot be secondary keys",
                           part_text);
        }
        rule.then_by.push_back(std::move(part));
      }
    }
    if (first) return MakeError("rule has no key parts", rule_text);
    if (!rule.then_by.empty() &&
        (rule.source == KeySource::kTextContent ||
         rule.source == KeySource::kChildText)) {
      return MakeError("subtree sources cannot be composite", rule_text);
    }
    spec.AddRule(std::move(rule));
  }
  if (spec.rules().empty()) return MakeError("no rules", text);
  return spec;
}

}  // namespace nexsort
