// The paper's external-merge-sort baseline (Section 1): convert the
// document to its key-path representation (Table 1) and sort it with the
// well-known external merge-sort algorithm. Structure-oblivious, so its
// pass count carries the flat-file log_{M/B}(N/B) factor that NEXSORT's
// log_{M/B}(min{kt,N}/B) beats whenever the document is not nearly flat.
#pragma once

#include <memory>

#include "cache/buffer_pool.h"
#include "core/common_options.h"
#include "core/element_unit.h"
#include "core/order_spec.h"
#include "core/unit_scanner.h"
#include "env/sort_env.h"
#include "extmem/block_device.h"
#include "extmem/memory_budget.h"
#include "extmem/run_store.h"
#include "extmem/stream.h"
#include "obs/tracer.h"
#include "sort/external_merge_sort.h"
#include "sort/sorted_stream.h"
#include "util/status.h"

namespace nexsort {

/// Algorithm knobs only (all inherited: `order`, `depth_limit` — levels
/// beyond the limit keep document order — and `use_dictionary` for
/// compaction parity with NEXSORT, so the comparison is apples-to-apples).
/// Resource plumbing — tracer, cache, parallelism, sort memory — lives in
/// SortEnvOptions.
struct KeyPathSortOptions : CommonSortOptions {};

struct KeyPathSortStats {
  ScanStats scan;
  ExtSortStats sort;        // initial runs + merge passes
  uint64_t key_path_bytes = 0;  // total encoded key-path bytes (the paper's
                                // "may consume many times more space" cost)
  uint64_t output_bytes = 0;
};

/// One-document sorter running inside a SortEnv, like NexSorter. Complex
/// ordering criteria are not supported: the streaming key-path conversion
/// requires every ancestor's key to be known at its start tag.
class KeyPathXmlSorter {
 public:
  /// Run in a fresh session of `env` (not owned; must outlive the sorter).
  KeyPathXmlSorter(SortEnv* env, KeyPathSortOptions options);

  /// Run in a caller-made session (multi-job sharing of one env).
  KeyPathXmlSorter(SortEnv::Session session, KeyPathSortOptions options);

  /// Sort `input` (XML text) into `output` (XML text). Single use.
  /// Implemented as SortStream + drain, so eager and streaming output are
  /// byte-identical by construction.
  [[nodiscard]] Status Sort(ByteSource* input, ByteSink* output);

  /// Streaming form: runs conversion and run formation/merge eagerly, then
  /// returns a SortedStream whose Next() pulls the final merge one record
  /// at a time through the XML emitter. Completion work happens inside the
  /// Next() that returns false. Single use, mutually exclusive with Sort.
  [[nodiscard]] StatusOr<std::unique_ptr<SortedStream>> SortStream(
      ByteSource* input);

  const KeyPathSortStats& stats() const { return stats_; }

  /// Counters of the env's block cache; all zeros when caching is disabled.
  CacheStats cache_stats() const { return session_.env()->cache_stats(); }

  /// Counters of this job's parallel pipeline; all zeros when disabled.
  ParallelStats parallel_stats() const {
    return session_.parallel() != nullptr ? session_.parallel()->stats()
                                          : ParallelStats();
  }

 private:
  class OutputStream;  // SortedStream over the final-merge pull loop

  SortEnv::Session session_;
  KeyPathSortOptions options_;
  Tracer* tracer_;       // session_'s sink (may be null)
  BlockDevice* device_;  // session_'s top-of-stack device
  MemoryBudget* budget_;
  RunStore* store_;      // session_'s run store
  NameDictionary dictionary_;
  UnitFormat format_;
  bool used_ = false;
  KeyPathSortStats stats_;
};

}  // namespace nexsort
