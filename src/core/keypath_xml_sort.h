// The paper's external-merge-sort baseline (Section 1): convert the
// document to its key-path representation (Table 1) and sort it with the
// well-known external merge-sort algorithm. Structure-oblivious, so its
// pass count carries the flat-file log_{M/B}(N/B) factor that NEXSORT's
// log_{M/B}(min{kt,N}/B) beats whenever the document is not nearly flat.
#pragma once

#include <memory>

#include "cache/buffer_pool.h"
#include "core/element_unit.h"
#include "core/order_spec.h"
#include "core/unit_scanner.h"
#include "extmem/block_device.h"
#include "extmem/memory_budget.h"
#include "extmem/run_store.h"
#include "extmem/stream.h"
#include "obs/tracer.h"
#include "sort/external_merge_sort.h"
#include "util/status.h"

namespace nexsort {

struct KeyPathSortOptions {
  OrderSpec order;

  /// Same depth-limit semantics as NexSortOptions (levels beyond the limit
  /// keep document order).
  int depth_limit = 0;

  /// Compaction parity with NEXSORT (name dictionary in the record format),
  /// so the comparison is apples-to-apples.
  bool use_dictionary = true;

  /// Optional telemetry sink (not owned; may be null): spans for the
  /// key-path conversion, the merge sort, and the output pass.
  Tracer* tracer = nullptr;

  /// Buffer-pool caching of the working device, same semantics as
  /// NexSortOptions::cache (frames come out of the shared budget; see
  /// docs/CACHING.md).
  CacheOptions cache;

  /// Compute/I-O overlap, same semantics as NexSortOptions::parallel (see
  /// docs/PARALLELISM.md). Defaults are fully serial.
  ParallelOptions parallel;

  /// Blocks of internal memory the merge sort may use; 0 (the default)
  /// takes everything the budget has left — halved when double buffering
  /// so the second sort buffer fits. Must be >= 4 when set.
  uint64_t sort_memory_blocks = 0;
};

struct KeyPathSortStats {
  ScanStats scan;
  ExtSortStats sort;        // initial runs + merge passes
  uint64_t key_path_bytes = 0;  // total encoded key-path bytes (the paper's
                                // "may consume many times more space" cost)
  uint64_t output_bytes = 0;
};

/// One-document sorter over a device + budget, like NexSorter. Complex
/// ordering criteria are not supported: the streaming key-path conversion
/// requires every ancestor's key to be known at its start tag.
class KeyPathXmlSorter {
 public:
  KeyPathXmlSorter(BlockDevice* device, MemoryBudget* budget,
                   KeyPathSortOptions options);

  [[nodiscard]] Status Sort(ByteSource* input, ByteSink* output);

  const KeyPathSortStats& stats() const { return stats_; }

  /// Counters of the block cache; all zeros when caching is disabled.
  CacheStats cache_stats() const {
    return cache_ != nullptr ? cache_->pool()->stats() : CacheStats();
  }

  /// Counters of the parallel pipeline; all zeros when it is disabled.
  ParallelStats parallel_stats() const {
    return parallel_context_ != nullptr ? parallel_context_->stats()
                                        : ParallelStats();
  }

 private:
  BlockDevice* base_device_;  // what the caller handed us (physical I/O)
  MemoryBudget* budget_;
  KeyPathSortOptions options_;
  std::unique_ptr<CachedBlockDevice> cache_;  // null when caching is off
  BlockDevice* device_;  // cache_ when enabled, else base_device_
  std::unique_ptr<ParallelContext> parallel_context_;  // null when serial
  RunStore store_;
  NameDictionary dictionary_;
  UnitFormat format_;
  bool used_ = false;
  KeyPathSortStats stats_;
};

}  // namespace nexsort
