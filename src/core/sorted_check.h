// Streaming verification that a document is fully sorted under an
// OrderSpec: every sibling list must be ordered by (normalized key,
// document order). Used by tests as an independent oracle, and by the
// xmlsort CLI's --check flag. Constant memory per document level.
#pragma once

#include <string>

#include "core/order_spec.h"
#include "extmem/stream.h"
#include "util/status.h"

namespace nexsort {

struct SortednessReport {
  bool sorted = true;
  /// Human-readable description of the first violation (empty if sorted).
  std::string violation;
  uint64_t elements = 0;
  int depth_checked = 0;  // deepest level with a multi-child list
};

/// Scan `input` and verify every sibling list is ordered under `spec`.
/// With depth_limit > 0, lists below the limit are exempt (the
/// depth-limited sorting contract). Complex rules are supported: keys are
/// resolved exactly as the sorter resolves them.
[[nodiscard]] StatusOr<SortednessReport> CheckSorted(ByteSource* input,
                                       const OrderSpec& spec,
                                       int depth_limit = 0);

/// Convenience overload for in-memory text.
[[nodiscard]] StatusOr<SortednessReport> CheckSorted(std::string_view xml,
                                       const OrderSpec& spec,
                                       int depth_limit = 0);

}  // namespace nexsort
