// The paper's other baseline (Section 1): internal-memory recursive sort.
// "To sort a subtree rooted at an element, we first recursively sort the
// subtree rooted at every child element. Then, we sort the list of
// children, which simply involves reordering the pointers to them." Only
// viable when the whole document fits in memory; the library uses it as the
// correctness oracle for property tests and as NEXSORT's conceptual model
// for in-memory subtree sorts.
#pragma once

#include <string>
#include <string_view>

#include "core/order_spec.h"
#include "util/status.h"
#include "xml/dom.h"

namespace nexsort {

/// Recursively sort every sibling list of `root` in place by `spec`
/// (stable: equal keys keep document order). With depth_limit > 0, only
/// children of elements at levels [1, depth_limit] are reordered; `root` is
/// at level `root_level`. With a non-empty `scope_tags`, only children of
/// elements with those tags are reordered (XSort-style scoped sorting).
void SortDomRecursive(XmlNode* root, const OrderSpec& spec,
                      int depth_limit = 0, int root_level = 1,
                      const std::vector<std::string>* scope_tags = nullptr);

/// Convenience oracle: parse, sort, reserialize (compact form).
[[nodiscard]] StatusOr<std::string> SortXmlStringInMemory(
    std::string_view xml, const OrderSpec& spec, int depth_limit = 0,
    const std::vector<std::string>* scope_tags = nullptr);

}  // namespace nexsort
