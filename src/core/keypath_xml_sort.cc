#include "core/keypath_xml_sort.h"

#include <algorithm>

#include "core/unit_emitter.h"
#include "extmem/stream.h"
#include "obs/tracer.h"
#include "sort/key_path.h"

namespace nexsort {

KeyPathXmlSorter::KeyPathXmlSorter(BlockDevice* device, MemoryBudget* budget,
                                   KeyPathSortOptions options)
    : base_device_(device),
      budget_(budget),
      options_(std::move(options)),
      cache_(options_.cache.frames > 0
                 ? std::make_unique<CachedBlockDevice>(device, budget,
                                                       options_.cache)
                 : nullptr),
      device_(cache_ != nullptr ? cache_.get() : device),
      parallel_context_(options_.parallel.enabled()
                            ? std::make_unique<ParallelContext>(
                                  options_.parallel)
                            : nullptr),
      store_(device_, budget) {
  format_.use_dictionary = options_.use_dictionary;
}

Status KeyPathXmlSorter::Sort(ByteSource* input, ByteSink* output) {
  if (used_) return Status::InvalidArgument("KeyPathXmlSorter is single-use");
  used_ = true;
  if (options_.order.HasComplexRules()) {
    return Status::NotSupported(
        "the key-path baseline needs keys available at start tags");
  }
  if (cache_ != nullptr) RETURN_IF_ERROR(cache_->init_status());
  // Cache frames are already reserved, so the merge sort gets what is left.
  if (budget_->available_blocks() < 4) {
    std::string msg = "key-path sort needs >= 4 blocks";
    if (cache_ != nullptr) {
      msg += " after the " + std::to_string(options_.cache.frames) +
             " cache frames";
    }
    return Status::InvalidArgument(msg);
  }

  if (options_.tracer != nullptr) {
    // Spans snapshot the *physical* device: with caching on, their I/O
    // deltas are real transfers, not logical accesses.
    options_.tracer->AttachDevice(base_device_);
    options_.tracer->AttachBudget(budget_);
    store_.set_tracer(options_.tracer);
    if (cache_ != nullptr) cache_->pool()->set_tracer(options_.tracer);
  }
  ScopedSpan sort_span(options_.tracer, "keypath_sort");

  UnitScanner scanner(input, &options_.order);
  ExtSortOptions sort_options;
  uint64_t sort_blocks = budget_->available_blocks();
  if (options_.sort_memory_blocks != 0) {
    if (options_.sort_memory_blocks < 4 ||
        options_.sort_memory_blocks > sort_blocks) {
      return Status::InvalidArgument(
          "sort_memory_blocks must be in [4, available blocks]");
    }
    sort_blocks = options_.sort_memory_blocks;
  } else if (options_.parallel.threads > 0 && options_.parallel.double_buffer) {
    // Auto mode with double buffering: grant roughly half the remaining
    // budget so the second sort buffer (and its spill writer) actually fit
    // and overlap engages instead of being declined.
    sort_blocks = std::max<uint64_t>(4, (sort_blocks + 1) / 2);
  }
  sort_options.memory_blocks = sort_blocks;
  sort_options.tracer = options_.tracer;
  sort_options.parallel = parallel_context_.get();
  sort_options.buffer_pool = cache_ != nullptr ? cache_->pool() : nullptr;
  ExternalMergeSorter sorter(&store_, sort_options);
  RETURN_IF_ERROR(sorter.init_status());

  // Pass 1: generate the key-path representation. Each record's key is the
  // concatenated (sort key, sequence) components of the element's ancestors
  // plus its own — explicitly materialized per record, which is exactly the
  // space overhead the paper attributes to this baseline.
  {
    ScopedSpan span(options_.tracer, "keypath_convert");
    std::vector<size_t> path_ends;
    std::string path;
    std::string serialized;
    ScanEvent event;
    while (true) {
      ASSIGN_OR_RETURN(bool more, scanner.Next(&event));
      if (!more) break;
      if (event.kind == ScanEvent::Kind::kEnd) continue;
      ElementUnit& unit = event.unit;
      uint32_t rel = unit.level - 1;  // root element is level 1
      if (rel < path_ends.size()) {
        path.resize(rel == 0 ? 0 : path_ends[rel - 1]);
        path_ends.resize(rel);
      }
      std::string composite = path;
      // Below the sorting depth, an empty key leaves document order (the
      // sequence number) in charge.
      bool sortable = options_.depth_limit == 0 ||
                      unit.level <= static_cast<uint32_t>(options_.depth_limit) + 1;
      AppendKeyPathComponent(&composite, sortable ? unit.key : "", unit.seq);
      if (event.kind == ScanEvent::Kind::kStart) {
        path = composite;
        path_ends.push_back(path.size());
      }
      serialized.clear();
      AppendUnit(&serialized, unit, format_, &dictionary_);
      stats_.key_path_bytes += composite.size();
      RETURN_IF_ERROR(sorter.Add(composite, serialized));
    }
  }
  stats_.scan = scanner.stats();
  {
    ScopedSpan span(options_.tracer, "keypath_merge");
    RETURN_IF_ERROR(sorter.Finish());
  }

  // Pass 2: key-path order is depth-first document order of the sorted
  // tree; emit it as XML directly.
  ScopedSpan output_span(options_.tracer, "keypath_output");
  UnitXmlEmitter emitter(device_, budget_, &dictionary_, output);
  RETURN_IF_ERROR(emitter.init_status());
  std::string key;
  std::string value;
  ElementUnit unit;
  while (true) {
    ASSIGN_OR_RETURN(bool more, sorter.Next(&key, &value));
    if (!more) break;
    std::string_view view = value;
    RETURN_IF_ERROR(ParseUnit(&view, &unit, format_, &dictionary_));
    RETURN_IF_ERROR(emitter.Emit(unit));
  }
  RETURN_IF_ERROR(emitter.Finish());
  stats_.sort = sorter.stats();
  stats_.output_bytes = emitter.output_bytes();
  if (parallel_context_ != nullptr) {
    parallel_context_->PublishMetrics(options_.tracer);
  }
  // Push deferred writes to the physical device and surface any write-back
  // failure an eviction deferred mid-sort.
  if (cache_ != nullptr) RETURN_IF_ERROR(cache_->Flush());
  return Status::OK();
}

}  // namespace nexsort
