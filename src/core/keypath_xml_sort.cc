#include "core/keypath_xml_sort.h"

#include <algorithm>

#include "core/unit_emitter.h"
#include "extmem/stream.h"
#include "obs/tracer.h"
#include "sort/key_path.h"

namespace nexsort {

KeyPathXmlSorter::KeyPathXmlSorter(SortEnv* env, KeyPathSortOptions options)
    : KeyPathXmlSorter(env->NewSession(), std::move(options)) {}

KeyPathXmlSorter::KeyPathXmlSorter(SortEnv::Session session,
                                   KeyPathSortOptions options)
    : session_(std::move(session)),
      options_(std::move(options)),
      tracer_(session_.tracer()),
      device_(session_.device()),
      budget_(session_.budget()),
      store_(session_.run_store()) {
  format_.use_dictionary = options_.use_dictionary;
}

Status KeyPathXmlSorter::Sort(ByteSource* input, ByteSink* output) {
  if (used_) return Status::InvalidArgument("KeyPathXmlSorter is single-use");
  used_ = true;
  if (options_.order.HasComplexRules()) {
    return Status::NotSupported(
        "the key-path baseline needs keys available at start tags");
  }
  const SortEnvOptions& env_options = session_.env()->options();
  // The env's cache frames are already reserved, so the merge sort gets
  // what is left.
  if (budget_->available_blocks() < 4) {
    std::string msg = "key-path sort needs >= 4 blocks";
    if (env_options.cache.frames > 0) {
      msg += " after the " + std::to_string(env_options.cache.frames) +
             " cache frames";
    }
    return Status::InvalidArgument(msg);
  }

  if (tracer_ != nullptr) {
    // Spans snapshot the *physical* device: with caching on, their I/O
    // deltas are real transfers, not logical accesses.
    tracer_->AttachDevice(session_.physical_device());
    tracer_->AttachBudget(budget_);
  }
  ScopedSpan sort_span(tracer_, "keypath_sort");

  UnitScanner scanner(input, &options_.order);
  ExtSortOptions sort_options;
  uint64_t sort_blocks = budget_->available_blocks();
  uint64_t pinned_sort_blocks = session_.sort_memory_blocks();
  if (pinned_sort_blocks != 0) {
    if (pinned_sort_blocks < 4 || pinned_sort_blocks > sort_blocks) {
      return Status::InvalidArgument(
          "sort_memory_blocks must be in [4, available blocks]");
    }
    sort_blocks = pinned_sort_blocks;
  } else if (env_options.parallel.threads > 0 &&
             env_options.parallel.double_buffer) {
    // Auto mode with double buffering: grant roughly half the remaining
    // budget so the second sort buffer (and its spill writer) actually fit
    // and overlap engages instead of being declined.
    sort_blocks = std::max<uint64_t>(4, (sort_blocks + 1) / 2);
  }
  sort_options.memory_blocks = sort_blocks;
  sort_options.tracer = tracer_;
  sort_options.parallel = session_.parallel();
  sort_options.buffer_pool = session_.buffer_pool();
  sort_options.cancel = session_.cancellation();
  ExternalMergeSorter sorter(store_, sort_options);
  RETURN_IF_ERROR(sorter.init_status());

  // Pass 1: generate the key-path representation. Each record's key is the
  // concatenated (sort key, sequence) components of the element's ancestors
  // plus its own — explicitly materialized per record, which is exactly the
  // space overhead the paper attributes to this baseline.
  {
    ScopedSpan span(tracer_, "keypath_convert");
    std::vector<size_t> path_ends;
    std::string path;
    std::string serialized;
    ScanEvent event;
    while (true) {
      ASSIGN_OR_RETURN(bool more, scanner.Next(&event));
      if (!more) break;
      if (event.kind == ScanEvent::Kind::kEnd) continue;
      ElementUnit& unit = event.unit;
      uint32_t rel = unit.level - 1;  // root element is level 1
      if (rel < path_ends.size()) {
        path.resize(rel == 0 ? 0 : path_ends[rel - 1]);
        path_ends.resize(rel);
      }
      std::string composite = path;
      // Below the sorting depth, an empty key leaves document order (the
      // sequence number) in charge.
      bool sortable = options_.depth_limit == 0 ||
                      unit.level <= static_cast<uint32_t>(options_.depth_limit) + 1;
      AppendKeyPathComponent(&composite, sortable ? unit.key : "", unit.seq);
      if (event.kind == ScanEvent::Kind::kStart) {
        path = composite;
        path_ends.push_back(path.size());
      }
      serialized.clear();
      AppendUnit(&serialized, unit, format_, &dictionary_);
      stats_.key_path_bytes += composite.size();
      RETURN_IF_ERROR(sorter.Add(composite, serialized));
    }
  }
  stats_.scan = scanner.stats();
  {
    ScopedSpan span(tracer_, "keypath_merge");
    RETURN_IF_ERROR(sorter.Finish());
  }

  // Pass 2: key-path order is depth-first document order of the sorted
  // tree; emit it as XML directly.
  ScopedSpan output_span(tracer_, "keypath_output");
  UnitXmlEmitter emitter(device_, budget_, &dictionary_, output);
  RETURN_IF_ERROR(emitter.init_status());
  std::string key;
  std::string value;
  ElementUnit unit;
  while (true) {
    ASSIGN_OR_RETURN(bool more, sorter.Next(&key, &value));
    if (!more) break;
    std::string_view view = value;
    RETURN_IF_ERROR(ParseUnit(&view, &unit, format_, &dictionary_));
    RETURN_IF_ERROR(emitter.Emit(unit));
  }
  RETURN_IF_ERROR(emitter.Finish());
  stats_.sort = sorter.stats();
  stats_.output_bytes = emitter.output_bytes();
  if (session_.parallel() != nullptr) {
    session_.parallel()->PublishMetrics(tracer_);
  }
  // Push deferred writes to the physical device and surface any write-back
  // failure an eviction deferred mid-sort.
  RETURN_IF_ERROR(session_.Flush());
  return Status::OK();
}

}  // namespace nexsort
