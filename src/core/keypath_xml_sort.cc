#include "core/keypath_xml_sort.h"

#include <algorithm>
#include <optional>

#include "core/unit_emitter.h"
#include "extmem/stream.h"
#include "obs/tracer.h"
#include "sort/key_path.h"
#include "util/cancellation.h"

namespace nexsort {

KeyPathXmlSorter::KeyPathXmlSorter(SortEnv* env, KeyPathSortOptions options)
    : KeyPathXmlSorter(env->NewSession(), std::move(options)) {}

KeyPathXmlSorter::KeyPathXmlSorter(SortEnv::Session session,
                                   KeyPathSortOptions options)
    : session_(std::move(session)),
      options_(std::move(options)),
      tracer_(session_.tracer()),
      device_(session_.device()),
      budget_(session_.budget()),
      store_(session_.run_store()) {
  format_.use_dictionary = options_.use_dictionary;
}

/// SortedStream over the baseline's pass 2: each Step() pulls one record
/// from the final merge and pushes it through the XML emitter into
/// buffer_, which Next() hands out as the chunk. The sorter (and so the
/// run tree and merge state) lives as long as the stream does.
class KeyPathXmlSorter::OutputStream final : public SortedStream {
 public:
  explicit OutputStream(KeyPathXmlSorter* owner)
      : owner_(owner),
        sort_span_(owner->tracer_, "keypath_sort"),
        sink_(&buffer_) {}

  /// Pass 1 (key-path conversion + run formation) and the merge passes run
  /// here eagerly; the *final* merge is what streams.
  [[nodiscard]] Status Init(ByteSource* input) {
    KeyPathXmlSorter* owner = owner_;
    const SortEnvOptions& env_options = owner->session_.env()->options();
    UnitScanner scanner(input, &owner->options_.order);
    ExtSortOptions sort_options;
    uint64_t sort_blocks = owner->budget_->available_blocks();
    uint64_t pinned_sort_blocks = owner->session_.sort_memory_blocks();
    if (pinned_sort_blocks != 0) {
      if (pinned_sort_blocks < 4 || pinned_sort_blocks > sort_blocks) {
        return Status::InvalidArgument(
            "sort_memory_blocks must be in [4, available blocks]");
      }
      sort_blocks = pinned_sort_blocks;
    } else if (env_options.parallel.threads > 0 &&
               env_options.parallel.double_buffer) {
      // Auto mode with double buffering: grant roughly half the remaining
      // budget so the second sort buffer (and its spill writer) actually fit
      // and overlap engages instead of being declined.
      sort_blocks = std::max<uint64_t>(4, (sort_blocks + 1) / 2);
    }
    sort_options.memory_blocks = sort_blocks;
    sort_options.run_formation = owner->options_.run_formation;
    sort_options.merge_policy = owner->options_.merge_policy;
    sort_options.dfs_placement = owner->options_.dfs_placement;
    sort_options.tracer = owner->tracer_;
    sort_options.parallel = owner->session_.parallel();
    sort_options.buffer_pool = owner->session_.buffer_pool();
    sort_options.cancel = owner->session_.cancellation();
    sorter_ = std::make_unique<ExternalMergeSorter>(owner->store_,
                                                    sort_options);
    RETURN_IF_ERROR(sorter_->init_status());

    // Pass 1: generate the key-path representation. Each record's key is
    // the concatenated (sort key, sequence) components of the element's
    // ancestors plus its own — explicitly materialized per record, which is
    // exactly the space overhead the paper attributes to this baseline.
    {
      ScopedSpan span(owner->tracer_, "keypath_convert");
      std::vector<size_t> path_ends;
      std::string path;
      std::string serialized;
      ScanEvent event;
      while (true) {
        ASSIGN_OR_RETURN(bool more, scanner.Next(&event));
        if (!more) break;
        if (event.kind == ScanEvent::Kind::kEnd) continue;
        ElementUnit& unit = event.unit;
        uint32_t rel = unit.level - 1;  // root element is level 1
        if (rel < path_ends.size()) {
          path.resize(rel == 0 ? 0 : path_ends[rel - 1]);
          path_ends.resize(rel);
        }
        std::string composite = path;
        // Below the sorting depth, an empty key leaves document order (the
        // sequence number) in charge.
        bool sortable =
            owner->options_.depth_limit == 0 ||
            unit.level <=
                static_cast<uint32_t>(owner->options_.depth_limit) + 1;
        AppendKeyPathComponent(&composite, sortable ? unit.key : "",
                               unit.seq);
        if (event.kind == ScanEvent::Kind::kStart) {
          path = composite;
          path_ends.push_back(path.size());
        }
        serialized.clear();
        AppendUnit(&serialized, unit, owner->format_, &owner->dictionary_);
        owner->stats_.key_path_bytes += composite.size();
        RETURN_IF_ERROR(sorter_->Add(composite, serialized));
      }
    }
    owner->stats_.scan = scanner.stats();
    {
      ScopedSpan span(owner->tracer_, "keypath_merge");
      RETURN_IF_ERROR(sorter_->Finish());
    }
    output_span_.emplace(owner->tracer_, "keypath_output");
    emitter_ = std::make_unique<UnitXmlEmitter>(owner->device_,
                                                owner->budget_,
                                                &owner->dictionary_, &sink_);
    return emitter_->init_status();
  }

  StatusOr<bool> Next(std::string_view* chunk) override {
    if (!status_.ok()) return status_;  // errors are sticky
    StatusOr<bool> more = Advance(chunk);
    if (!more.ok()) status_ = more.status();
    return more;
  }

 private:
  /// Bounds how many records one Next() call batches; the emitter flushes
  /// to the sink about a block at a time anyway.
  static constexpr size_t kChunkTarget = 4096;

  StatusOr<bool> Advance(std::string_view* chunk) {
    if (done_) return false;
    buffer_.clear();
    while (!merge_done_ && buffer_.size() < kChunkTarget) {
      RETURN_IF_ERROR(Step());
    }
    if (merge_done_ && !completed_) {
      RETURN_IF_ERROR(Complete());
      completed_ = true;
    }
    if (buffer_.empty()) {
      done_ = true;
      return false;
    }
    *chunk = buffer_;
    return true;
  }

  /// Pass 2, one record: key-path order is depth-first document order of
  /// the sorted tree, so each merged record emits directly as XML.
  [[nodiscard]] Status Step() {
    RETURN_IF_ERROR(CheckCancelled(owner_->session_.cancellation()));
    ASSIGN_OR_RETURN(bool more, sorter_->Next(&key_, &value_));
    if (!more) {
      merge_done_ = true;
      return Status::OK();
    }
    std::string_view view = value_;
    RETURN_IF_ERROR(ParseUnit(&view, &unit_, owner_->format_,
                              &owner_->dictionary_));
    return emitter_->Emit(unit_);
  }

  /// The tail of the eager Sort(): close the emitter, record stats, publish
  /// metrics, push deferred writes. Runs inside the final Next().
  [[nodiscard]] Status Complete() {
    RETURN_IF_ERROR(emitter_->Finish());
    KeyPathXmlSorter* owner = owner_;
    owner->stats_.sort = sorter_->stats();
    owner->stats_.output_bytes = emitter_->output_bytes();
    if (owner->session_.parallel() != nullptr) {
      owner->session_.parallel()->PublishMetrics(owner->tracer_);
    }
    output_span_->End();
    // Push deferred writes to the physical device and surface any
    // write-back failure an eviction deferred mid-sort.
    RETURN_IF_ERROR(owner->session_.Flush());
    sort_span_.End();
    emitter_.reset();
    sorter_.reset();
    return Status::OK();
  }

  KeyPathXmlSorter* owner_;
  ScopedSpan sort_span_;                   // whole job, both passes
  std::optional<ScopedSpan> output_span_;  // pass 2 only
  std::string buffer_;                     // chunk handed out by Next()
  StringByteSink sink_;
  std::unique_ptr<ExternalMergeSorter> sorter_;
  std::unique_ptr<UnitXmlEmitter> emitter_;
  std::string key_;
  std::string value_;
  ElementUnit unit_;
  Status status_;
  bool merge_done_ = false;  // final merge exhausted
  bool completed_ = false;   // completion work done
  bool done_ = false;        // final false already returned
};

StatusOr<std::unique_ptr<SortedStream>> KeyPathXmlSorter::SortStream(
    ByteSource* input) {
  if (used_) return Status::InvalidArgument("KeyPathXmlSorter is single-use");
  used_ = true;
  if (options_.order.HasComplexRules()) {
    return Status::NotSupported(
        "the key-path baseline needs keys available at start tags");
  }
  const SortEnvOptions& env_options = session_.env()->options();
  // The env's cache frames are already reserved, so the merge sort gets
  // what is left.
  if (budget_->available_blocks() < 4) {
    std::string msg = "key-path sort needs >= 4 blocks";
    if (env_options.cache.frames > 0) {
      msg += " after the " + std::to_string(env_options.cache.frames) +
             " cache frames";
    }
    return Status::InvalidArgument(msg);
  }
  if (tracer_ != nullptr) {
    // Spans snapshot the *physical* device: with caching on, their I/O
    // deltas are real transfers, not logical accesses.
    tracer_->AttachDevice(session_.physical_device());
    tracer_->AttachBudget(budget_);
  }
  auto stream = std::make_unique<OutputStream>(this);
  RETURN_IF_ERROR(stream->Init(input));
  return std::unique_ptr<SortedStream>(std::move(stream));
}

Status KeyPathXmlSorter::Sort(ByteSource* input, ByteSink* output) {
  std::unique_ptr<SortedStream> stream;
  ASSIGN_OR_RETURN(stream, SortStream(input));
  std::string_view chunk;
  while (true) {
    ASSIGN_OR_RETURN(bool more, stream->Next(&chunk));
    if (!more) return Status::OK();
    RETURN_IF_ERROR(output->Append(chunk));
  }
}

}  // namespace nexsort
