// ElementUnit: the unit of XML data NEXSORT pushes onto the data stack and
// stores in sorted runs. The serialized form natively implements the
// paper's compaction techniques (Section 3.2):
//   * end tags are eliminated — start units carry level numbers, and end
//     tags are reconstructed from level transitions during output;
//   * tag and attribute names are interned in a NameDictionary and stored
//     as small integers (toggle via UnitFormat for the ablation).
//
// Unit kinds:
//   kStart    — an element start tag: level, sequence number, name,
//               attributes, normalized sort key.
//   kText     — a text node (level = parent level + 1).
//   kEnd      — an element end; only materialized when the ordering uses
//               complex criteria (the resolved key rides on the end, as in
//               Section 3.2) or when the compaction ablation keeps ends.
//   kPointer  — a collapsed subtree: the root element was sorted into a run
//               and replaced by this unit carrying its key and the run
//               pointer (paper Figure 2).
//   kFragment — an incomplete sorted run for the graceful-degeneration
//               optimization: a sorted forest of children of the innermost
//               open element, to be merged at that element's sort.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "extmem/block_device.h"
#include "extmem/run_store.h"
#include "util/status.h"
#include "xml/dictionary.h"
#include "xml/token.h"

namespace nexsort {

enum class UnitType : uint8_t {
  kStart = 1,
  kText = 2,
  kEnd = 3,
  kPointer = 4,
  kFragment = 5,
};

/// Serialization knobs shared by writers and readers of one sort.
struct UnitFormat {
  /// Store names as dictionary ids (compaction on) or inline strings.
  bool use_dictionary = true;
};

struct ElementUnit {
  UnitType type = UnitType::kStart;
  uint32_t level = 0;  // root element = 1; text nodes = parent + 1
  uint64_t seq = 0;    // document-order sequence (uniqueness + stability)

  std::string key;   // normalized sort key (kStart, kEnd, kPointer)
  std::string name;  // tag name (kStart; resolved through the dictionary)
  std::vector<XmlAttribute> attributes;  // kStart
  std::string text;                      // kText
  RunHandle run;                         // kPointer, kFragment

  /// Serialized size of this unit under `format` (for threshold math).
  size_t EncodedSize(const UnitFormat& format) const;
};

/// Append the serialized unit to *dst, interning names into *dictionary
/// when format.use_dictionary.
void AppendUnit(std::string* dst, const ElementUnit& unit,
                const UnitFormat& format, NameDictionary* dictionary);

/// Parse one unit from the front of *input, advancing past it. Names are
/// resolved through `dictionary` when format.use_dictionary.
[[nodiscard]] Status ParseUnit(std::string_view* input, ElementUnit* unit,
                 const UnitFormat& format, const NameDictionary* dictionary);

/// Streaming unit reader over a sorted run. Tracks the logical byte offset
/// so the output phase can record resume points on the output location
/// stack when it follows a run pointer (paper Figure 4, lines 18-20).
class RunUnitReader {
 public:
  RunUnitReader(RunStore* store, RunHandle handle, uint64_t offset,
                const UnitFormat& format, const NameDictionary* dictionary,
                IoCategory category = IoCategory::kRunRead);

  const Status& init_status() const { return init_status_; }

  /// Read the next unit; returns false at end of run.
  [[nodiscard]] StatusOr<bool> Next(ElementUnit* unit);

  RunHandle handle() const { return handle_; }

  /// Offset of the first un-consumed unit.
  uint64_t offset() const { return logical_offset_; }

 private:
  RunReader reader_;
  RunHandle handle_;
  const UnitFormat format_;
  const NameDictionary* dictionary_;
  Status init_status_;
  std::string buffer_;
  size_t buffer_pos_ = 0;
  uint64_t logical_offset_ = 0;
};

}  // namespace nexsort
