#include "core/dom_sort.h"

#include <algorithm>
#include <memory>
#include <vector>

namespace nexsort {

void SortDomRecursive(XmlNode* root, const OrderSpec& spec, int depth_limit,
                      int root_level,
                      const std::vector<std::string>* scope_tags) {
  for (auto& child : root->children) {
    if (!child->is_text) {
      SortDomRecursive(child.get(), spec, depth_limit, root_level + 1,
                       scope_tags);
    }
  }
  if (depth_limit != 0 && root_level > depth_limit) return;
  if (scope_tags != nullptr && !scope_tags->empty()) {
    bool in_scope = false;
    for (const std::string& tag : *scope_tags) {
      if (tag == root->name) {
        in_scope = true;
        break;
      }
    }
    if (!in_scope) return;
  }
  // Decorate with keys once, then stable-sort to keep document order on
  // ties — the same (key, sequence) comparison the external algorithms use.
  std::vector<std::pair<std::string, std::unique_ptr<XmlNode>>> decorated;
  decorated.reserve(root->children.size());
  for (auto& child : root->children) {
    decorated.emplace_back(spec.KeyForNode(*child), std::move(child));
  }
  std::stable_sort(decorated.begin(), decorated.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  root->children.clear();
  for (auto& entry : decorated) {
    root->children.push_back(std::move(entry.second));
  }
}

StatusOr<std::string> SortXmlStringInMemory(
    std::string_view xml, const OrderSpec& spec, int depth_limit,
    const std::vector<std::string>* scope_tags) {
  ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> root, ParseDom(xml));
  SortDomRecursive(root.get(), spec, depth_limit, 1, scope_tags);
  return SerializeDom(*root);
}

}  // namespace nexsort
