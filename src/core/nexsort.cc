#include "core/nexsort.h"

#include <algorithm>
#include <optional>

#include "cache/buffer_pool.h"
#include "core/unit_emitter.h"
#include "extmem/stream.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "util/cancellation.h"

namespace nexsort {

void NexSortStats::ToJson(JsonWriter* writer) const {
  writer->BeginObject();
  writer->Key("scan");
  writer->BeginObject();
  writer->Key("elements");
  writer->Uint(scan.elements);
  writer->Key("text_nodes");
  writer->Uint(scan.text_nodes);
  writer->Key("units");
  writer->Uint(scan.units);
  writer->Key("max_fanout");
  writer->Uint(scan.max_fanout);
  writer->Key("max_depth");
  writer->Uint(scan.max_depth);
  writer->EndObject();
  writer->Key("sorts");
  writer->BeginObject();
  writer->Key("internal");
  writer->Uint(sorts.internal_sorts);
  writer->Key("external");
  writer->Uint(sorts.external_sorts);
  writer->Key("fragment_merges");
  writer->Uint(sorts.fragment_merges);
  writer->Key("fragment_premerge_passes");
  writer->Uint(sorts.fragment_premerge_passes);
  writer->Key("largest_subtree_bytes");
  writer->Uint(sorts.largest_subtree_bytes);
  writer->Key("runs_formed");
  writer->Uint(sorts.run_formation.runs_formed);
  writer->Key("avg_run_blocks");
  writer->Double(sorts.run_formation.avg_run_blocks());
  writer->Key("max_run_blocks");
  writer->Uint(sorts.run_formation.max_run_blocks);
  writer->Key("merge_passes");
  writer->Uint(sorts.merge_passes);
  writer->Key("merge_plan");
  sorts.merge_plan.ToJson(writer);
  writer->EndObject();
  writer->Key("subtree_sorts");
  writer->Uint(subtree_sorts);
  writer->Key("fragment_runs");
  writer->Uint(fragment_runs);
  writer->Key("pointer_units");
  writer->Uint(pointer_units);
  writer->Key("input_bytes");
  writer->Uint(input_bytes);
  writer->Key("output_bytes");
  writer->Uint(output_bytes);
  writer->Key("data_stack_peak_bytes");
  writer->Uint(data_stack_peak);
  writer->Key("path_stack_peak_entries");
  writer->Uint(path_stack_peak);
  writer->EndObject();
}

std::string NexSortStats::ToJsonString() const {
  JsonWriter writer;
  ToJson(&writer);
  return std::move(writer).Take();
}

NexSorter::NexSorter(SortEnv* env, NexSortOptions options)
    : NexSorter(env->NewSession(), std::move(options)) {}

NexSorter::NexSorter(SortEnv::Session session, NexSortOptions options)
    : session_(std::move(session)),
      options_(std::move(options)),
      tracer_(session_.tracer()),
      device_(session_.device()),
      budget_(session_.budget()),
      store_(session_.run_store()) {
  format_.use_dictionary = options_.use_dictionary;
  threshold_ = options_.sort_threshold != 0 ? options_.sort_threshold
                                            : 2 * device_->block_size();
  push_end_units_ = options_.keep_end_units || options_.order.HasComplexRules();
  if (options_.dtd != nullptr) options_.dtd->SeedDictionary(&dictionary_);
  // Complex criteria deliver keys on end units, which the streaming
  // key-path (external) subtree sort cannot use. Graceful degeneration
  // keeps every region within the internal sort capacity, so with it on the
  // external path is never taken and resolved keys are always honoured.
  if (options_.order.HasComplexRules()) options_.graceful_degeneration = true;

  sort_context_.store = store_;
  sort_context_.dictionary = &dictionary_;
  sort_context_.format = format_;
  sort_context_.depth_limit = options_.depth_limit;
  sort_context_.run_formation = options_.run_formation;
  sort_context_.merge_policy = options_.merge_policy;
  sort_context_.dfs_placement = options_.dfs_placement;
  sort_context_.parallel = session_.parallel();
  sort_context_.buffer_pool = session_.buffer_pool();
  sort_context_.cancel = session_.cancellation();
  sort_context_.scope_tags =
      options_.sort_scope_tags.empty() ? nullptr : &options_.sort_scope_tags;
  if (tracer_ != nullptr) {
    // Spans snapshot the *physical* device: with caching on, their I/O
    // deltas are real transfers, not logical accesses.
    tracer_->AttachDevice(session_.physical_device());
    tracer_->AttachBudget(budget_);
    sort_context_.tracer = tracer_;
  }
}

Status NexSorter::SortRegion(ExtByteStack* data, const PathEntry& entry,
                             std::string_view resolved_key, uint32_t level,
                             uint64_t seq, RunHandle* run,
                             ElementUnit* pointer) {
  ++stats_.subtree_sorts;
  uint64_t region_size = data->size() - entry.start_offset;
  ScopedSpan span(tracer_, "sort_region");
  if (tracer_ != nullptr) {
    tracer_->metrics()->GetHistogram("subtree_region_bytes")
        ->Record(region_size);
  }
  ElementUnit root_unit;
  // Regions holding fragment pointers must sort in memory (fragments merge
  // against the in-memory forest); fragmentation has already capped their
  // size near the capacity.
  bool force_internal = (entry.flags & kHasFragments) != 0;
  if (region_size <= sort_capacity_ || force_internal) {
    std::string region;
    RETURN_IF_ERROR(data->PopRegion(entry.start_offset, &region));
    ASSIGN_OR_RETURN(*run, SortSubtreeInMemory(sort_context_, region,
                                               &root_unit, &stats_.sorts));
  } else {
    // Stream the oversized region straight off the data stack into the
    // key-path external merge sort: no extra temp-run round trip.
    ExternalSubtreeSorter external(sort_context_, &stats_.sorts);
    RETURN_IF_ERROR(external.init_status());
    RETURN_IF_ERROR(data->PopRegionTo(entry.start_offset, external.sink()));
    ASSIGN_OR_RETURN(*run, external.Finish(&root_unit));
  }
  pointer->type = UnitType::kPointer;
  pointer->level = level;
  pointer->seq = seq;
  pointer->key = resolved_key.empty() ? root_unit.key
                                      : std::string(resolved_key);
  pointer->name.clear();
  pointer->attributes.clear();
  pointer->text.clear();
  pointer->run = *run;
  return Status::OK();
}

Status NexSorter::MaybeFragment(ExtByteStack* data,
                                ExtStack<PathEntry>* path) {
  if (!options_.graceful_degeneration || path->empty()) return Status::OK();
  PathEntry top;
  RETURN_IF_ERROR(path->Top(&top));
  if (data->size() - top.content_offset < frag_threshold_) return Status::OK();

  // The innermost open element has no open descendants, so everything
  // after its start unit is a forest of complete child subtrees: sort it
  // into an incomplete run now (Section 3.2, graceful degeneration). The
  // fragment-pointer units left behind are ~10 bytes each — O(N/t) run
  // metadata, like the run index itself — and the element's eventual sort
  // merges the runs they point to with proper multi-pass fan-in, exactly
  // external merge sort's structure.
  uint64_t from = top.content_offset;
  std::string forest;
  RETURN_IF_ERROR(data->PopRegion(from, &forest));
  RunHandle fragment;
  ASSIGN_OR_RETURN(fragment,
                   SortForestInMemory(sort_context_, forest, &stats_.sorts));
  ++stats_.fragment_runs;
  TraceRunEvent(tracer_, RunEventKind::kFragment,
                IoCategory::kRunWrite, fragment.byte_size, fragment.id);

  ElementUnit unit;
  unit.type = UnitType::kFragment;
  unit.level = static_cast<uint32_t>(path->size()) + 1;  // child level
  unit.seq = 0;
  unit.run = fragment;
  std::string serialized;
  AppendUnit(&serialized, unit, format_, &dictionary_);
  RETURN_IF_ERROR(data->Append(serialized));

  top.content_offset = data->size();
  top.flags |= kHasFragments;
  return path->ReplaceTop(top);
}

Status NexSorter::SortingPhase(ByteSource* input, RunHandle* root_run) {
  ScopedSpan span(tracer_, "sorting_phase");
  Histogram* fanout_histogram =
      tracer_ != nullptr
          ? tracer_->metrics()->GetHistogram("subtree_fanout")
          : nullptr;
  UnitScanner scanner(input, &options_.order);
  ExtByteStack data(device_, budget_, 1, IoCategory::kDataStack);
  RETURN_IF_ERROR(data.init_status());
  ExtStack<PathEntry> path(device_, budget_, 2, IoCategory::kPathStack);
  RETURN_IF_ERROR(path.init_status());

  bool have_root_run = false;
  std::string serialized;
  ScanEvent event;
  while (true) {
    // Cancellation point once per scanned unit: the stacks and any runs
    // already spilled unwind via their destructors, so a cancelled sort
    // leaves the shared env exactly as a failed one would.
    RETURN_IF_ERROR(CheckCancelled(sort_context_.cancel));
    ASSIGN_OR_RETURN(bool more, scanner.Next(&event));
    if (!more) break;
    switch (event.kind) {
      case ScanEvent::Kind::kStart: {
        if (!options_.strip_attribute.empty()) {
          auto& attrs = event.unit.attributes;
          for (size_t i = 0; i < attrs.size(); ++i) {
            if (attrs[i].name == options_.strip_attribute) {
              attrs.erase(attrs.begin() + i);
              break;
            }
          }
        }
        if (!options_.record_order_attribute.empty()) {
          event.unit.attributes.push_back(
              {options_.record_order_attribute,
               std::to_string(event.unit.seq)});
        }
        PathEntry entry;
        entry.start_offset = data.size();
        serialized.clear();
        AppendUnit(&serialized, event.unit, format_, &dictionary_);
        RETURN_IF_ERROR(data.Append(serialized));
        entry.content_offset = data.size();
        RETURN_IF_ERROR(path.Push(entry));
        stats_.path_stack_peak =
            std::max<uint64_t>(stats_.path_stack_peak, path.size());
        break;
      }
      case ScanEvent::Kind::kText: {
        serialized.clear();
        AppendUnit(&serialized, event.unit, format_, &dictionary_);
        RETURN_IF_ERROR(data.Append(serialized));
        break;
      }
      case ScanEvent::Kind::kEnd: {
        if (fanout_histogram != nullptr) {
          fanout_histogram->Record(event.children);
        }
        if (push_end_units_) {
          serialized.clear();
          AppendUnit(&serialized, event.unit, format_, &dictionary_);
          RETURN_IF_ERROR(data.Append(serialized));
        }
        PathEntry entry;
        RETURN_IF_ERROR(path.Pop(&entry));
        bool is_root = path.empty();
        uint64_t region_size = data.size() - entry.start_offset;
        if (region_size > threshold_ || is_root ||
            (entry.flags & kHasFragments) != 0) {
          RunHandle run;
          ElementUnit pointer;
          RETURN_IF_ERROR(SortRegion(&data, entry, event.unit.key,
                                     event.unit.level, event.unit.seq, &run,
                                     &pointer));
          if (is_root) {
            *root_run = run;
            have_root_run = true;
          } else {
            ++stats_.pointer_units;
            serialized.clear();
            AppendUnit(&serialized, pointer, format_, &dictionary_);
            RETURN_IF_ERROR(data.Append(serialized));
          }
        }
        break;
      }
    }
    stats_.data_stack_peak =
        std::max<uint64_t>(stats_.data_stack_peak, data.size());
    RETURN_IF_ERROR(MaybeFragment(&data, &path));
  }

  stats_.scan = scanner.stats();
  stats_.input_bytes = scanner.bytes_consumed();
  if (!have_root_run) return Status::ParseError("input has no root element");
  if (data.size() != 0) {
    return Status::Corruption("data stack not empty after sorting phase");
  }
  return Status::OK();
}

namespace {

struct OutputLoc {
  uint32_t run_id = 0;
  uint64_t run_bytes = 0;
  uint64_t offset = 0;
};

}  // namespace

/// SortedStream over the output-phase DFS (paper Figure 4 lines 13-21).
/// Owns what the eager output phase held on its stack frame — the XML
/// emitter, the external output-location stack, the current run reader —
/// but created only after the sorting phase, so the memory-ledger profile
/// matches the eager path exactly. Emitter output lands in buffer_ through
/// sink_; Next() hands the buffer out as the chunk and recycles it on the
/// following call.
class NexSorter::OutputStream final : public SortedStream {
 public:
  explicit OutputStream(NexSorter* owner)
      : owner_(owner),
        sort_span_(owner->tracer_, "nexsort"),
        sink_(&buffer_) {}

  /// Runs the sorting phase (no sorted byte exists before the run tree
  /// does) and opens the output-phase machinery over its root run.
  [[nodiscard]] Status Init(ByteSource* input) {
    RunHandle root_run;
    RETURN_IF_ERROR(owner_->SortingPhase(input, &root_run));
    output_span_.emplace(owner_->tracer_, "output_phase");
    UnitEmitterOptions emitter_options;
    emitter_options.pretty = owner_->options_.pretty_output;
    emitter_ = std::make_unique<UnitXmlEmitter>(owner_->device_,
                                                owner_->budget_,
                                                &owner_->dictionary_, &sink_,
                                                emitter_options);
    RETURN_IF_ERROR(emitter_->init_status());
    locations_ = std::make_unique<ExtStack<OutputLoc>>(
        owner_->device_, owner_->budget_, 1, IoCategory::kOutputStack);
    RETURN_IF_ERROR(locations_->init_status());
    AdviseRun(root_run);
    reader_ = std::make_unique<RunUnitReader>(owner_->store_, root_run, 0,
                                              owner_->format_,
                                              &owner_->dictionary_);
    return reader_->init_status();
  }

  StatusOr<bool> Next(std::string_view* chunk) override {
    if (!status_.ok()) return status_;  // errors are sticky
    StatusOr<bool> more = Advance(chunk);
    if (!more.ok()) status_ = more.status();
    return more;
  }

 private:
  /// The emitter flushes to the sink in block-sized pieces, so chunks
  /// naturally arrive about one block at a time; this only bounds how much
  /// DFS work one Next() call may batch up.
  static constexpr size_t kChunkTarget = 4096;

  StatusOr<bool> Advance(std::string_view* chunk) {
    if (done_) return false;
    buffer_.clear();
    while (!dfs_done_ && buffer_.size() < kChunkTarget) {
      RETURN_IF_ERROR(Step());
    }
    if (dfs_done_ && !completed_) {
      RETURN_IF_ERROR(Complete());
      completed_ = true;
    }
    if (buffer_.empty()) {
      done_ = true;
      return false;
    }
    *chunk = buffer_;
    return true;
  }

  /// Announce the run the DFS is about to read to the buffer pool's
  /// advisory read-ahead (docs/MERGE_PLANNING.md): each descent/resume
  /// re-points the advice at the blocks the traversal will stream next.
  /// Purely advisory — a null pool or disabled read-ahead is fine.
  void AdviseRun(RunHandle handle) {
    BufferPool* pool = owner_->session_.buffer_pool();
    if (pool == nullptr || pool->options().readahead == 0) return;
    std::vector<uint64_t> blocks;
    if (owner_->store_->SnapshotBlocks(handle, &blocks).ok()) {
      pool->AdviseReadSequence(std::move(blocks));
      advised_ = true;
    }
  }

  /// One DFS step: advance the current run reader, descending into pointer
  /// runs and resuming parents as the traversal dictates.
  [[nodiscard]] Status Step() {
    RETURN_IF_ERROR(CheckCancelled(owner_->sort_context_.cancel));
    ElementUnit unit;
    ASSIGN_OR_RETURN(bool more, reader_->Next(&unit));
    if (!more) {
      if (locations_->empty()) {
        dfs_done_ = true;
        return Status::OK();
      }
      // Finished a child run: resume its parent where we left off
      // (Figure 4 lines 14-15).
      OutputLoc loc;
      RETURN_IF_ERROR(locations_->Pop(&loc));
      RunHandle handle;
      handle.id = loc.run_id;
      handle.byte_size = loc.run_bytes;
      reader_.reset();  // release the block buffer before opening the next
      AdviseRun(handle);
      reader_ = std::make_unique<RunUnitReader>(owner_->store_, handle,
                                                loc.offset, owner_->format_,
                                                &owner_->dictionary_);
      return reader_->init_status();
    }
    if (unit.type == UnitType::kPointer) {
      // Descend into the pointed-to run (Figure 4 lines 18-20).
      OutputLoc loc;
      loc.run_id = reader_->handle().id;
      loc.run_bytes = reader_->handle().byte_size;
      loc.offset = reader_->offset();
      RETURN_IF_ERROR(locations_->Push(loc));
      reader_.reset();
      AdviseRun(unit.run);
      reader_ = std::make_unique<RunUnitReader>(owner_->store_, unit.run, 0,
                                                owner_->format_,
                                                &owner_->dictionary_);
      return reader_->init_status();
    }
    if (unit.type == UnitType::kFragment) {
      return Status::Corruption("fragment unit in a complete sorted run");
    }
    return emitter_->Emit(unit);
  }

  /// The tail of the eager Sort(): close the emitter, record stats, push
  /// deferred writes to the physical device, publish metrics. Runs inside
  /// the final Next() so its errors surface to the caller.
  [[nodiscard]] Status Complete() {
    RETURN_IF_ERROR(emitter_->Finish());
    NexSorter* owner = owner_;
    owner->stats_.output_bytes = emitter_->output_bytes();
    // Freed runs recycle their block ids; stale advice must not outlive
    // the traversal that installed it.
    if (advised_) owner->session_.buffer_pool()->ClearReadAdvice();
    reader_.reset();
    locations_.reset();
    emitter_.reset();
    output_span_->End();
    RETURN_IF_ERROR(owner->session_.Flush());
    sort_span_.End();
    if (owner->session_.parallel() != nullptr) {
      owner->session_.parallel()->PublishMetrics(owner->tracer_);
    }
    if (owner->tracer_ != nullptr) {
      MetricsRegistry* metrics = owner->tracer_->metrics();
      metrics->GetGauge("data_stack_bytes")->Set(owner->stats_.data_stack_peak);
      metrics->GetGauge("path_stack_entries")
          ->Set(owner->stats_.path_stack_peak);
      metrics->GetCounter("subtree_sorts")->Add(owner->stats_.subtree_sorts);
      metrics->GetCounter("fragment_runs")->Add(owner->stats_.fragment_runs);
      metrics->GetCounter("pointer_units")->Add(owner->stats_.pointer_units);
      metrics->GetCounter("input_bytes")->Add(owner->stats_.input_bytes);
      metrics->GetCounter("output_bytes")->Add(owner->stats_.output_bytes);
    }
    return Status::OK();
  }

  NexSorter* owner_;
  ScopedSpan sort_span_;                   // whole job, both phases
  std::optional<ScopedSpan> output_span_;  // output phase only
  std::string buffer_;                     // chunk handed out by Next()
  StringByteSink sink_;
  std::unique_ptr<UnitXmlEmitter> emitter_;
  std::unique_ptr<ExtStack<OutputLoc>> locations_;
  std::unique_ptr<RunUnitReader> reader_;
  Status status_;
  bool dfs_done_ = false;   // traversal exhausted
  bool completed_ = false;  // completion work done
  bool done_ = false;       // final false already returned
  bool advised_ = false;    // pool read-advice installed by AdviseRun
};

StatusOr<std::unique_ptr<SortedStream>> NexSorter::SortStream(
    ByteSource* input) {
  if (used_) return Status::InvalidArgument("NexSorter is single-use");
  used_ = true;
  const SortEnvOptions& env_options = session_.env()->options();
  // Size the memory ledger from what the budget actually has left (the
  // caller may hold input/output stream buffers; the env's cache frames
  // are already reserved): data stack 1 block, path stack 2 blocks; the
  // rest goes to subtree sorts (one block of which is the run writer on
  // the internal path).
  uint64_t blocks = budget_->available_blocks();
  if (blocks < 8) {
    std::string msg = "NEXSORT needs >= 8 available blocks of memory budget";
    if (env_options.cache.frames > 0) {
      msg += " after the " + std::to_string(env_options.cache.frames) +
             " cache frames";
    }
    return Status::InvalidArgument(msg);
  }
  uint64_t sort_blocks = blocks - 3;
  uint64_t pinned_sort_blocks = session_.sort_memory_blocks();
  if (pinned_sort_blocks != 0) {
    if (pinned_sort_blocks < 4 || pinned_sort_blocks > sort_blocks) {
      return Status::InvalidArgument(
          "sort_memory_blocks must be in [4, available - 3 stack blocks]");
    }
    sort_blocks = pinned_sort_blocks;
  } else if (env_options.parallel.threads > 0 &&
             env_options.parallel.double_buffer) {
    // Auto mode with double buffering: grant roughly half the remaining
    // budget so the second sort buffer (and its spill writer) actually fit
    // and overlap engages instead of being declined.
    sort_blocks = std::max<uint64_t>(4, (sort_blocks + 1) / 2);
  }
  sort_capacity_ = (sort_blocks - 1) * device_->block_size();
  // Fragmentation must leave the end-tag region inside the internal sort
  // capacity, so trigger comfortably below it.
  frag_threshold_ = std::max(threshold_, sort_capacity_ / 2);
  sort_context_.memory_blocks = sort_blocks;
  if (!options_.sort_scope_tags.empty() &&
      (options_.graceful_degeneration || options_.order.HasComplexRules())) {
    return Status::NotSupported(
        "scoped sorting cannot combine with graceful degeneration or "
        "complex ordering criteria");
  }
  auto stream = std::make_unique<OutputStream>(this);
  RETURN_IF_ERROR(stream->Init(input));
  return std::unique_ptr<SortedStream>(std::move(stream));
}

Status NexSorter::Sort(ByteSource* input, ByteSink* output) {
  std::unique_ptr<SortedStream> stream;
  ASSIGN_OR_RETURN(stream, SortStream(input));
  std::string_view chunk;
  while (true) {
    ASSIGN_OR_RETURN(bool more, stream->Next(&chunk));
    if (!more) return Status::OK();
    RETURN_IF_ERROR(output->Append(chunk));
  }
}

}  // namespace nexsort
