#include "core/unit_emitter.h"

#include "xml/escape.h"

namespace nexsort {

UnitXmlEmitter::UnitXmlEmitter(BlockDevice* device, MemoryBudget* budget,
                               NameDictionary* dictionary, ByteSink* output,
                               UnitEmitterOptions options)
    : dictionary_(dictionary),
      output_(output),
      options_(options),
      tags_(device, budget, 1, IoCategory::kOutputStack) {}

Status UnitXmlEmitter::FlushIfLarge() {
  if (buffer_.size() >= 64 * 1024) {
    output_bytes_ += buffer_.size();
    RETURN_IF_ERROR(output_->Append(buffer_));
    buffer_.clear();
  }
  return Status::OK();
}

void UnitXmlEmitter::Indent(uint32_t level) {
  if (wrote_anything_) buffer_.push_back('\n');
  buffer_.append(2 * (level - 1), ' ');
}

Status UnitXmlEmitter::CloseTo(uint32_t level) {
  while (!tags_.empty()) {
    OpenTag top;
    RETURN_IF_ERROR(tags_.Top(&top));
    if (top.level < level) break;
    RETURN_IF_ERROR(tags_.Pop(&top));
    ASSIGN_OR_RETURN(std::string_view name, dictionary_->Lookup(top.name_id));
    // Pretty: end tags of elements with element children go on their own
    // line; leaf/text-only elements close inline.
    if (options_.pretty && (top.flags & kHadElementChild) != 0) {
      Indent(top.level);
    }
    buffer_.append("</");
    buffer_.append(name);
    buffer_.push_back('>');
    RETURN_IF_ERROR(FlushIfLarge());
  }
  return Status::OK();
}

Status UnitXmlEmitter::Emit(const ElementUnit& unit) {
  switch (unit.type) {
    case UnitType::kStart: {
      RETURN_IF_ERROR(CloseTo(unit.level));
      if (!tags_.empty()) {
        OpenTag parent;
        RETURN_IF_ERROR(tags_.Top(&parent));
        if ((parent.flags & kHadElementChild) == 0) {
          parent.flags |= kHadElementChild;
          RETURN_IF_ERROR(tags_.ReplaceTop(parent));
        }
      }
      if (options_.pretty) Indent(unit.level);
      buffer_.push_back('<');
      buffer_.append(unit.name);
      for (const XmlAttribute& attr : unit.attributes) {
        buffer_.push_back(' ');
        buffer_.append(attr.name);
        buffer_.append("=\"");
        AppendEscapedAttribute(&buffer_, attr.value);
        buffer_.push_back('"');
      }
      buffer_.push_back('>');
      wrote_anything_ = true;
      OpenTag tag;
      tag.name_id = dictionary_->Intern(unit.name);
      tag.level = unit.level;
      RETURN_IF_ERROR(tags_.Push(tag));
      break;
    }
    case UnitType::kText: {
      RETURN_IF_ERROR(CloseTo(unit.level));
      if (!tags_.empty()) {
        OpenTag parent;
        RETURN_IF_ERROR(tags_.Top(&parent));
        if ((parent.flags & kHadText) == 0) {
          parent.flags |= kHadText;
          RETURN_IF_ERROR(tags_.ReplaceTop(parent));
        }
      }
      AppendEscapedText(&buffer_, unit.text);
      wrote_anything_ = true;
      break;
    }
    case UnitType::kEnd:
      break;
    case UnitType::kPointer:
    case UnitType::kFragment:
      return Status::InvalidArgument("run-pointer unit in XML emission");
  }
  return FlushIfLarge();
}

Status UnitXmlEmitter::Finish() {
  RETURN_IF_ERROR(CloseTo(1));
  output_bytes_ += buffer_.size();
  if (!buffer_.empty()) RETURN_IF_ERROR(output_->Append(buffer_));
  buffer_.clear();
  return Status::OK();
}

}  // namespace nexsort
