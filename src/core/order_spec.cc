#include "core/order_spec.h"

#include <bit>
#include <cstdint>

#include "util/string_util.h"
#include "xml/dom.h"

namespace nexsort {

OrderSpec OrderSpec::ByAttribute(std::string_view name, bool numeric) {
  OrderSpec spec;
  OrderRule rule;
  rule.element = "*";
  rule.source = KeySource::kAttribute;
  rule.argument = name;
  rule.numeric = numeric;
  spec.AddRule(std::move(rule));
  return spec;
}

OrderSpec OrderSpec::ByTagName() {
  OrderSpec spec;
  OrderRule rule;
  rule.element = "*";
  rule.source = KeySource::kTagName;
  spec.AddRule(std::move(rule));
  return spec;
}

OrderSpec& OrderSpec::AddRule(OrderRule rule) {
  rules_.push_back(std::move(rule));
  return *this;
}

const OrderRule* OrderSpec::RuleFor(std::string_view tag) const {
  for (const OrderRule& rule : rules_) {
    if (rule.element == tag || rule.element == "*") return &rule;
  }
  return nullptr;
}

bool OrderSpec::HasComplexRules() const {
  for (const OrderRule& rule : rules_) {
    if (rule.source == KeySource::kTextContent ||
        rule.source == KeySource::kChildText) {
      return true;
    }
  }
  return false;
}

namespace {

// Monotone 9-byte encoding of a double: tag byte 'N' (so numeric keys are
// distinguishable in debug dumps) followed by the sign-folded bit pattern,
// big-endian. Total order matches numeric order for all finite values.
void AppendOrderedDouble(std::string* out, double value) {
  uint64_t bits = std::bit_cast<uint64_t>(value);
  if (bits & (1ULL << 63)) {
    bits = ~bits;  // negative: reverse order
  } else {
    bits |= (1ULL << 63);  // positive: above all negatives
  }
  out->push_back('N');
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((bits >> shift) & 0xFF));
  }
}

// Escape-and-complement transform for descending order. See DESIGN.md:
//   desc(key) = ~(escape00(key) + 0x00 0x01), bytewise complement,
// which reverses lexicographic order even across prefixes.
std::string DescendingTransform(std::string_view key) {
  std::string out;
  out.reserve(key.size() + 2);
  for (char c : key) {
    if (c == '\0') {
      out.push_back('\xFF');         // ~0x00
      out.push_back('\x00');         // ~0xFF
    } else {
      out.push_back(static_cast<char>(~c));
    }
  }
  out.push_back('\xFF');             // ~0x00
  out.push_back('\xFE');             // ~0x01
  return out;
}

}  // namespace

std::string OrderSpec::NormalizeKey(const OrderRule& rule,
                                    std::string_view raw) {
  std::string key;
  if (rule.numeric) {
    double value = 0;
    if (ParseNumber(raw, &value)) {
      AppendOrderedDouble(&key, value);
    }
    // Unparseable numeric keys stay empty and sort first.
  } else {
    key.assign(raw);
  }
  if (rule.descending) key = DescendingTransform(key);
  return key;
}

namespace {

// Extract one simple (start-tag-resolvable) key part.
std::string SimplePartKey(const OrderRule& part, std::string_view tag,
                          const std::vector<XmlAttribute>& attributes) {
  switch (part.source) {
    case KeySource::kTagName:
      return OrderSpec::NormalizeKey(part, tag);
    case KeySource::kAttribute:
      for (const XmlAttribute& attr : attributes) {
        if (attr.name == part.argument) {
          return OrderSpec::NormalizeKey(part, attr.value);
        }
      }
      return {};
    case KeySource::kTextContent:
    case KeySource::kChildText:
      return {};  // not composable on start tags
  }
  return {};
}

// Frame a component so concatenated composites compare bytewise in
// component-tuple order (same escape/terminator scheme as key paths).
void AppendCompositeComponent(std::string* out, std::string_view key) {
  for (char c : key) {
    if (c == '\0') {
      out->push_back('\0');
      out->push_back('\xFF');
    } else {
      out->push_back(c);
    }
  }
  out->push_back('\0');
  out->push_back('\x01');
}

}  // namespace

std::string OrderSpec::KeyForStartTag(
    std::string_view tag, const std::vector<XmlAttribute>& attributes) const {
  const OrderRule* rule = RuleFor(tag);
  if (rule == nullptr) return {};
  if (rule->source == KeySource::kTextContent ||
      rule->source == KeySource::kChildText) {
    return {};  // resolved when the subtree has been scanned
  }
  std::string primary = SimplePartKey(*rule, tag, attributes);
  if (rule->then_by.empty()) return primary;
  std::string composite;
  AppendCompositeComponent(&composite, primary);
  for (const OrderRule& part : rule->then_by) {
    AppendCompositeComponent(&composite,
                              SimplePartKey(part, tag, attributes));
  }
  return composite;
}

std::string OrderSpec::KeyForText(std::string_view text) const {
  const OrderRule* rule = nullptr;
  for (const OrderRule& r : rules_) {
    if (r.element == "#text") {
      rule = &r;
      break;
    }
  }
  if (rule == nullptr) return {};
  return NormalizeKey(*rule, text);
}

namespace {

// First text found at `path` (possibly empty = the node itself) below node.
const std::string* FindPathText(const XmlNode& node,
                                const std::vector<std::string_view>& path,
                                size_t index) {
  if (index == path.size()) {
    for (const auto& child : node.children) {
      if (child->is_text) return &child->text;
    }
    return nullptr;
  }
  for (const auto& child : node.children) {
    if (!child->is_text && child->name == path[index]) {
      const std::string* found = FindPathText(*child, path, index + 1);
      if (found != nullptr) return found;
    }
  }
  return nullptr;
}

}  // namespace

std::string OrderSpec::KeyForNode(const XmlNode& node) const {
  if (node.is_text) return KeyForText(node.text);
  const OrderRule* rule = RuleFor(node.name);
  if (rule == nullptr) return {};
  switch (rule->source) {
    case KeySource::kTagName:
    case KeySource::kAttribute:
      // Must mirror KeyForStartTag exactly, including composite framing.
      return KeyForStartTag(node.name, node.attributes);
    case KeySource::kTextContent: {
      const std::string* text = FindPathText(node, {}, 0);
      return text != nullptr ? NormalizeKey(*rule, *text) : std::string();
    }
    case KeySource::kChildText: {
      std::vector<std::string_view> path;
      for (std::string_view part : Split(rule->argument, '/')) {
        if (!part.empty()) path.push_back(part);
      }
      const std::string* text = FindPathText(node, path, 0);
      return text != nullptr ? NormalizeKey(*rule, *text) : std::string();
    }
  }
  return {};
}

}  // namespace nexsort
