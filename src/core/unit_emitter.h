// UnitXmlEmitter renders a depth-first stream of element units back into
// XML text, reconstructing the eliminated end tags from level transitions
// (paper Section 3.2): a transition from level l1 to a unit at level
// l2 <= l1 closes l1 - l2 + 1 elements. The open-tag bookkeeping lives on an
// external stack, mirroring the paper's "structure similar to the path
// stack" for the output phase. Shared by NEXSORT's output phase and the
// key-path merge-sort baseline.
#pragma once

#include <string>

#include "core/element_unit.h"
#include "extmem/block_device.h"
#include "extmem/ext_stack.h"
#include "extmem/memory_budget.h"
#include "extmem/stream.h"
#include "util/status.h"
#include "xml/dictionary.h"

namespace nexsort {

struct UnitEmitterOptions {
  /// Indent with two spaces per level; text stays inline with its element.
  bool pretty = false;
};

class UnitXmlEmitter {
 public:
  UnitXmlEmitter(BlockDevice* device, MemoryBudget* budget,
                 NameDictionary* dictionary, ByteSink* output,
                 UnitEmitterOptions options = {});

  const Status& init_status() const { return tags_.init_status(); }

  /// Emit one unit (kStart or kText; kEnd units are ignored since levels
  /// already carry the structure). Units must arrive in depth-first order.
  [[nodiscard]] Status Emit(const ElementUnit& unit);

  /// Close all open elements and flush. Must be called exactly once.
  [[nodiscard]] Status Finish();

  uint64_t output_bytes() const { return output_bytes_; }

 private:
  struct OpenTag {
    uint32_t name_id = 0;
    uint32_t level = 0;
    uint32_t flags = 0;  // kHadElementChild | kHadText
  };
  static constexpr uint32_t kHadElementChild = 1;
  static constexpr uint32_t kHadText = 2;

  [[nodiscard]] Status CloseTo(uint32_t level);
  [[nodiscard]] Status FlushIfLarge();
  void Indent(uint32_t level);

  NameDictionary* dictionary_;
  ByteSink* output_;
  const UnitEmitterOptions options_;
  ExtStack<OpenTag> tags_;
  std::string buffer_;
  uint64_t output_bytes_ = 0;
  bool wrote_anything_ = false;
};

}  // namespace nexsort
