#include "util/thread_annotations.h"

#include <cstdio>

namespace nexsort {
namespace internal {

#if NEXSORT_DCHECK_ENABLED

namespace {

// Per-thread stack of held wrapper locks. The capacity bounds legitimate
// nesting depth, which the rank hierarchy already caps at one lock per
// rank level; hitting it is a bug in its own right.
struct HeldLock {
  const void* mu;
  int rank;
  const char* name;
};

constexpr int kMaxHeldLocks = 16;

thread_local HeldLock tls_held[kMaxHeldLocks];
thread_local int tls_depth = 0;

}  // namespace

void LockOrderAcquired(const void* mu, int rank, const char* name) {
  if (tls_depth > 0) {
    const HeldLock& top = tls_held[tls_depth - 1];
    if (rank <= top.rank) {
      char detail[256];
      std::snprintf(detail, sizeof(detail),
                    "lock-rank inversion: acquiring '%s' (rank %d) while "
                    "holding '%s' (rank %d); a mutex may only be acquired "
                    "at a strictly greater rank than every held mutex "
                    "(docs/STATIC_ANALYSIS.md lock hierarchy)",
                    name, rank, top.name, top.rank);
      DcheckFail("thread_annotations", 0, "lock rank order", detail);
    }
  }
  NEXSORT_DCHECK_MSG(tls_depth < kMaxHeldLocks,
                     "held-lock stack overflow (deeper nesting than the "
                     "rank hierarchy allows)");
  tls_held[tls_depth++] = HeldLock{mu, rank, name};
}

void LockOrderReleased(const void* mu) {
  // Search from the top: unlock order is unconstrained, but in practice
  // the match is almost always the top of the stack.
  for (int i = tls_depth - 1; i >= 0; --i) {
    if (tls_held[i].mu != mu) continue;
    for (int j = i; j + 1 < tls_depth; ++j) {
      tls_held[j] = tls_held[j + 1];
    }
    --tls_depth;
    return;
  }
  NEXSORT_DCHECK_MSG(false,
                     "released a wrapper mutex this thread does not hold");
}

int HeldLockCount() { return tls_depth; }

bool HoldsLock(const void* mu) {
  for (int i = 0; i < tls_depth; ++i) {
    if (tls_held[i].mu == mu) return true;
  }
  return false;
}

#else  // !NEXSORT_DCHECK_ENABLED

int HeldLockCount() { return 0; }

bool HoldsLock(const void*) { return false; }

#endif  // NEXSORT_DCHECK_ENABLED

}  // namespace internal

void CondVar::Wait(Mutex* mu) {
#if NEXSORT_DCHECK_ENABLED
  // The wait releases the mutex while blocked: pop the held record so the
  // exactness invariant holds, and re-run the rank check on reacquisition
  // (the remaining stack is identical, so a legal acquire stays legal).
  internal::LockOrderReleased(mu);
#endif
  std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
#if NEXSORT_DCHECK_ENABLED
  internal::LockOrderAcquired(mu, mu->rank(), mu->name());
#endif
}

bool CondVar::WaitUntil(Mutex* mu,
                        std::chrono::steady_clock::time_point deadline) {
#if NEXSORT_DCHECK_ENABLED
  internal::LockOrderReleased(mu);
#endif
  std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
  const std::cv_status status = cv_.wait_until(lock, deadline);
  lock.release();
#if NEXSORT_DCHECK_ENABLED
  internal::LockOrderAcquired(mu, mu->rank(), mu->name());
#endif
  return status == std::cv_status::no_timeout;
}

void SharedMutex::Lock() {
  mu_.lock();
#if NEXSORT_DCHECK_ENABLED
  internal::LockOrderAcquired(this, rank_, name_);
#endif
}

void SharedMutex::Unlock() {
#if NEXSORT_DCHECK_ENABLED
  internal::LockOrderReleased(this);
#endif
  mu_.unlock();
}

void SharedMutex::ReaderLock() {
  mu_.lock_shared();
#if NEXSORT_DCHECK_ENABLED
  internal::LockOrderAcquired(this, rank_, name_);
#endif
}

void SharedMutex::ReaderUnlock() {
#if NEXSORT_DCHECK_ENABLED
  internal::LockOrderReleased(this);
#endif
  mu_.unlock_shared();
}

}  // namespace nexsort
