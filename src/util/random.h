// Deterministic pseudo-random generator (xorshift128+). Used by the XML
// generators and property tests so that every workload is reproducible from
// a seed, independent of the platform's std::mt19937 stream.
#pragma once

#include <cstdint>
#include <string>

namespace nexsort {

/// Seeded, deterministic RNG with convenience samplers.
class Random {
 public:
  explicit Random(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// True with probability num/den.
  bool OneIn(uint64_t den);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Random lowercase ASCII identifier of the given length.
  std::string Identifier(size_t length);

 private:
  uint64_t s_[2];
};

}  // namespace nexsort
