#include "util/random.h"

namespace nexsort {

Random::Random(uint64_t seed) {
  // SplitMix64 expansion of the seed into the xorshift state; guarantees a
  // non-zero state for any seed including 0.
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL;
  for (int i = 0; i < 2; ++i) {
    z += 0x9E3779B97F4A7C15ULL;
    uint64_t x = z;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    s_[i] = x ^ (x >> 31);
  }
  if (s_[0] == 0 && s_[1] == 0) s_[0] = 1;
}

uint64_t Random::Next() {
  uint64_t x = s_[0];
  const uint64_t y = s_[1];
  s_[0] = y;
  x ^= x << 23;
  s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s_[1] + y;
}

uint64_t Random::Uniform(uint64_t n) {
  return n == 0 ? 0 : Next() % n;
}

uint64_t Random::UniformRange(uint64_t lo, uint64_t hi) {
  return lo + Uniform(hi - lo + 1);
}

bool Random::OneIn(uint64_t den) { return Uniform(den) == 0; }

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

std::string Random::Identifier(size_t length) {
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + Uniform(26)));
  }
  return out;
}

}  // namespace nexsort
