#include "util/dcheck.h"

#include <cstdio>
#include <cstdlib>

namespace nexsort {
namespace internal {

// The failure path is the one place in the library allowed to write to
// stderr and abort: a failed DCHECK is a bug in nexsort itself, and dying
// loudly at the broken invariant beats corrupting a sort quietly.
[[noreturn]] void DcheckFail(const char* file, int line, const char* expr,
                             const char* detail) {
  std::fprintf(stderr, "%s:%d: NEXSORT_DCHECK failed: %s%s%s\n", file, line,
               expr, (detail != nullptr && detail[0] != '\0') ? " — " : "",
               detail);                              // lint-ok: no-stdio
  std::fflush(stderr);
  std::abort();                                      // lint-ok: no-stdio
}

[[noreturn]] void DcheckBinaryFail(const char* file, int line,
                                   const char* expr, uint64_t lhs,
                                   uint64_t rhs) {
  std::fprintf(stderr,
               "%s:%d: NEXSORT_DCHECK failed: %s (lhs=%llu rhs=%llu)\n",
               file, line, expr,
               static_cast<unsigned long long>(lhs),
               static_cast<unsigned long long>(rhs));  // lint-ok: no-stdio
  std::fflush(stderr);
  std::abort();                                        // lint-ok: no-stdio
}

[[noreturn]] void DcheckStatusFail(const char* file, int line,
                                   const char* expr, const Status& status) {
  std::fprintf(stderr, "%s:%d: NEXSORT_DCHECK_OK failed: %s -> %s\n", file,
               line, expr, status.ToString().c_str());  // lint-ok: no-stdio
  std::fflush(stderr);
  std::abort();                                         // lint-ok: no-stdio
}

}  // namespace internal
}  // namespace nexsort
