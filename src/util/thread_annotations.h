// Capability-based thread-safety annotations and the locking primitives
// the whole concurrent stack is built on (docs/STATIC_ANALYSIS.md,
// "Capability model & lock hierarchy").
//
// Two independent layers of lock-discipline checking live here:
//
//  1. Compile time: the NEXSORT_* macros expand to Clang's thread-safety
//     attributes (-Wthread-safety), so every guarded field names its
//     mutex (NEXSORT_GUARDED_BY) and every *Locked() helper states its
//     contract (NEXSORT_REQUIRES / NEXSORT_EXCLUDES). The `thread-safety`
//     CMake preset compiles the tree with -Werror=thread-safety; under
//     GCC the macros expand to nothing and the wrappers are plain
//     std::mutex forwarding.
//
//  2. Debug runtime: every Mutex carries a rank from the documented lock
//     hierarchy (lock_rank below). When NEXSORT_DCHECK_ENABLED, each
//     acquisition is checked against a per-thread held-lock stack: a
//     thread may only acquire a mutex of strictly greater rank than every
//     mutex it already holds, so any cross-subsystem cycle
//     (service -> env -> pool -> metrics chains) dies deterministically at
//     the first inverted acquisition instead of deadlocking under an
//     unlucky schedule. Release builds compile the checker out entirely.
//
// Raw std::mutex / std::lock_guard / std::condition_variable are banned
// from src/ outside this file (lint rule `raw-mutex`); all locking goes
// through Mutex / MutexLock / CondVar / SharedMutex.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/dcheck.h"

// ---------------------------------------------------------------------------
// Clang thread-safety attribute macros. Active only under Clang; GCC and
// other compilers see empty expansions. Reference:
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#if defined(__clang__)
#define NEXSORT_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define NEXSORT_THREAD_ANNOTATION_(x)
#endif

#define NEXSORT_CAPABILITY(x) NEXSORT_THREAD_ANNOTATION_(capability(x))
#define NEXSORT_SCOPED_CAPABILITY NEXSORT_THREAD_ANNOTATION_(scoped_lockable)
#define NEXSORT_GUARDED_BY(x) NEXSORT_THREAD_ANNOTATION_(guarded_by(x))
#define NEXSORT_PT_GUARDED_BY(x) NEXSORT_THREAD_ANNOTATION_(pt_guarded_by(x))
#define NEXSORT_ACQUIRED_BEFORE(...) \
  NEXSORT_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define NEXSORT_ACQUIRED_AFTER(...) \
  NEXSORT_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define NEXSORT_REQUIRES(...) \
  NEXSORT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define NEXSORT_REQUIRES_SHARED(...) \
  NEXSORT_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define NEXSORT_ACQUIRE(...) \
  NEXSORT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define NEXSORT_ACQUIRE_SHARED(...) \
  NEXSORT_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define NEXSORT_RELEASE(...) \
  NEXSORT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define NEXSORT_RELEASE_SHARED(...) \
  NEXSORT_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define NEXSORT_TRY_ACQUIRE(...) \
  NEXSORT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define NEXSORT_EXCLUDES(...) \
  NEXSORT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define NEXSORT_ASSERT_CAPABILITY(x) \
  NEXSORT_THREAD_ANNOTATION_(assert_capability(x))
#define NEXSORT_RETURN_CAPABILITY(x) \
  NEXSORT_THREAD_ANNOTATION_(lock_returned(x))
#define NEXSORT_NO_THREAD_SAFETY_ANALYSIS \
  NEXSORT_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace nexsort {

// ---------------------------------------------------------------------------
// The lock hierarchy. A thread may only acquire a mutex whose rank is
// STRICTLY GREATER than the rank of every mutex it already holds (equal
// ranks never nest: no two same-rank mutexes are ever held together by
// design — e.g. a BlockDevice's bookkeeping mutex is released before the
// physical DoRead/DoWrite that reaches a stacked device below it).
//
// The ordering mirrors the call graph, outermost subsystems first: the
// socket layer calls into the service, the service into the env/session
// table and the memory budget, sort passes into the run store and buffer
// pool, and everything bottoms out in observability and device
// bookkeeping. The full table (every named mutex, what it guards, and the
// verified nesting chains) lives in docs/STATIC_ANALYSIS.md.
namespace lock_rank {
inline constexpr int kSocketServer = 10;      // SocketServer::lock_
inline constexpr int kSortService = 20;       // SortService::lock_
inline constexpr int kScratchNamespace = 25;  // ScratchNamespace::mutex_
inline constexpr int kSessionTable = 30;      // SortEnv::sessions_mutex_
inline constexpr int kRunStore = 40;          // RunStore::mutex_
inline constexpr int kAsyncSpiller = 45;      // AsyncSpiller::mutex_
inline constexpr int kRunPrefetcher = 46;     // RunPrefetcher::mutex_
inline constexpr int kParallelStats = 47;     // ParallelContext::mutex_
inline constexpr int kTaskQueue = 48;         // BoundedQueue<T>::mutex_
inline constexpr int kSortPartition = 49;     // sort-pass shared state
inline constexpr int kBufferPool = 50;        // BufferPool::mutex_
inline constexpr int kStatsSampler = 60;      // StatsSampler::mutex_
inline constexpr int kTelemetryHub = 61;      // TelemetryHub::mutex_
inline constexpr int kTracer = 70;            // Tracer::mutex_
inline constexpr int kMetricsRegistry = 75;   // MetricsRegistry::mutex_
inline constexpr int kMemoryBudget = 80;      // MemoryBudget::mutex_
// BlockDevice bookkeeping mutexes: Allocate holds the device's mutex
// across the virtual DoAllocate, which wrapping devices (throttle, fault
// injection, cache) forward to the inner device's Allocate — so a stacked
// wrapper's mutex ranks one BELOW the device it wraps (each wrapper
// constructor derives `inner rank - 1`). kBlockDevice is the innermost
// (storage-backed) default; ranks 81..88 are reserved for wrappers.
inline constexpr int kBlockDevice = 89;       // BlockDevice::mutex_
inline constexpr int kDeviceStorage = 90;     // memory-device storage
inline constexpr int kLeaf = 99;              // test-only / never nests
}  // namespace lock_rank

class Mutex;

namespace internal {

#if NEXSORT_DCHECK_ENABLED
/// Rank-check the mutex identified by `mu` against this thread's
/// held-lock stack and die (via DcheckFail) on an inversion; then push
/// it. Called after the physical acquisition — ordering relative to the
/// blocking lock() is irrelevant because the stack is thread-local.
void LockOrderAcquired(const void* mu, int rank, const char* name);
/// Pop `mu` from this thread's held-lock stack (it need not be the top:
/// unlock order is not constrained by the hierarchy).
void LockOrderReleased(const void* mu);
#endif

/// Test hooks: the number of wrapper locks this thread currently holds
/// and whether it holds the mutex at `mu` specifically. Both are constant
/// 0/false in Release builds (the checker is compiled out).
[[nodiscard]] int HeldLockCount();
[[nodiscard]] bool HoldsLock(const void* mu);

}  // namespace internal

// ---------------------------------------------------------------------------
/// An annotated, ranked exclusive mutex. The name and rank feed the debug
/// lock-order checker and its failure messages; in Release builds Lock()
/// and Unlock() are plain std::mutex forwarding.
class NEXSORT_CAPABILITY("mutex") Mutex {
 public:
  /// `name` must be a string literal (stored by pointer); `rank` is the
  /// mutex's position in the lock_rank hierarchy.
  explicit Mutex(const char* name, int rank) : name_(name), rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() NEXSORT_ACQUIRE() {
    mu_.lock();
#if NEXSORT_DCHECK_ENABLED
    internal::LockOrderAcquired(this, rank_, name_);
#endif
  }

  void Unlock() NEXSORT_RELEASE() {
#if NEXSORT_DCHECK_ENABLED
    internal::LockOrderReleased(this);
#endif
    mu_.unlock();
  }

  /// Debug-assert the calling thread holds this mutex, and tell the
  /// analysis so (for code reached only with the lock already held).
  void AssertHeld() const NEXSORT_ASSERT_CAPABILITY(this) {
    NEXSORT_DCHECK_MSG(internal::HoldsLock(this),
                       "AssertHeld: mutex not held by this thread");
  }

  [[nodiscard]] const char* name() const { return name_; }
  [[nodiscard]] int rank() const { return rank_; }

 private:
  friend class CondVar;

  std::mutex mu_;
  const char* const name_;
  const int rank_;
};

// ---------------------------------------------------------------------------
/// RAII scoped acquisition of a Mutex.
class NEXSORT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) NEXSORT_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() NEXSORT_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// ---------------------------------------------------------------------------
/// Condition variable bound to Mutex. All waits require the mutex held;
/// call sites loop on their condition explicitly (`while (!pred) Wait()`)
/// so the predicate reads of guarded fields stay visible to the
/// thread-safety analysis (a predicate lambda would be analyzed as an
/// unlocked context).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, block, and reacquire it before returning.
  /// The held-lock record is popped for the duration of the block and the
  /// reacquisition is rank-checked again (equivalently to Lock()).
  void Wait(Mutex* mu) NEXSORT_REQUIRES(mu);

  /// Wait, bounded by `deadline` on the monotonic clock. Returns false
  /// when the deadline passed (the mutex is reacquired either way).
  [[nodiscard]] bool WaitUntil(Mutex* mu,
                               std::chrono::steady_clock::time_point deadline)
      NEXSORT_REQUIRES(mu);

  /// Wait, bounded by a relative timeout. Returns false on timeout.
  template <typename Rep, typename Period>
  [[nodiscard]] bool WaitFor(Mutex* mu,
                             std::chrono::duration<Rep, Period> timeout)
      NEXSORT_REQUIRES(mu) {
    return WaitUntil(mu, std::chrono::steady_clock::now() + timeout);
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// ---------------------------------------------------------------------------
/// Annotated, ranked reader/writer mutex (the memory-backed device uses
/// it so reads and writes of distinct already-allocated blocks overlap).
/// Shared acquisitions participate in the per-thread rank check exactly
/// like exclusive ones.
class NEXSORT_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(const char* name, int rank)
      : name_(name), rank_(rank) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() NEXSORT_ACQUIRE();
  void Unlock() NEXSORT_RELEASE();
  void ReaderLock() NEXSORT_ACQUIRE_SHARED();
  void ReaderUnlock() NEXSORT_RELEASE_SHARED();

  [[nodiscard]] const char* name() const { return name_; }
  [[nodiscard]] int rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  const char* const name_;
  const int rank_;
};

/// RAII exclusive acquisition of a SharedMutex.
class NEXSORT_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) NEXSORT_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() NEXSORT_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared acquisition of a SharedMutex.
class NEXSORT_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) NEXSORT_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() NEXSORT_RELEASE() { mu_->ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

}  // namespace nexsort
