#include "util/status.h"

namespace nexsort {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk: return "OK";
    case Status::Code::kInvalidArgument: return "InvalidArgument";
    case Status::Code::kIOError: return "IOError";
    case Status::Code::kCorruption: return "Corruption";
    case Status::Code::kNotSupported: return "NotSupported";
    case Status::Code::kOutOfMemory: return "OutOfMemory";
    case Status::Code::kNotFound: return "NotFound";
    case Status::Code::kParseError: return "ParseError";
    case Status::Code::kCancelled: return "Cancelled";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace nexsort
