// Debug invariant checks: NEXSORT_DCHECK and friends verify internal
// invariants (pin/unpin balance, budget exactness, stack bookkeeping,
// loser-tree heap order) in Debug and sanitizer builds, and compile to
// nothing in Release builds. A failed check is a programming bug, never an
// environmental error, so the failure path prints the condition and dies —
// it must not be used for conditions a caller could legitimately trigger
// (those return Status).
//
// Enablement: NEXSORT_DCHECK_ENABLED can be forced to 0/1 on the compile
// command line (the NEXSORT_DCHECK CMake option does this; the asan-ubsan
// and tsan presets force it on). When unset it follows NDEBUG, so plain
// Debug builds check and Release/RelWithDebInfo builds do not.
//
// Disabled checks do not evaluate their arguments; never put required side
// effects inside one. NEXSORT_DCHECK_OK exists so a Status-returning
// expression can be asserted on without tripping the unchecked-Status lint.
#pragma once

#include <cstdint>

#include "util/status.h"

#if !defined(NEXSORT_DCHECK_ENABLED)
#if defined(NDEBUG)
#define NEXSORT_DCHECK_ENABLED 0
#else
#define NEXSORT_DCHECK_ENABLED 1
#endif
#endif

namespace nexsort {
namespace internal {

/// Print "<file>:<line>: NEXSORT_DCHECK failed: <expr> <detail>" to stderr
/// and abort. Out of line so the macro expansion stays small.
[[noreturn]] void DcheckFail(const char* file, int line, const char* expr,
                             const char* detail);

/// DcheckFail with the two operand values of a binary comparison rendered
/// into the message.
[[noreturn]] void DcheckBinaryFail(const char* file, int line,
                                   const char* expr, uint64_t lhs,
                                   uint64_t rhs);

/// DcheckFail for NEXSORT_DCHECK_OK: renders the non-OK Status.
[[noreturn]] void DcheckStatusFail(const char* file, int line,
                                   const char* expr, const Status& status);

}  // namespace internal
}  // namespace nexsort

#if NEXSORT_DCHECK_ENABLED

/// Die unless `cond` is true. Debug/sanitizer builds only.
#define NEXSORT_DCHECK(cond)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::nexsort::internal::DcheckFail(__FILE__, __LINE__, #cond, "");     \
    }                                                                     \
  } while (0)

/// NEXSORT_DCHECK with an extra string-literal detail in the message.
#define NEXSORT_DCHECK_MSG(cond, detail)                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::nexsort::internal::DcheckFail(__FILE__, __LINE__, #cond, detail); \
    }                                                                     \
  } while (0)

#define NEXSORT_DCHECK_OP_(op, a, b)                                      \
  do {                                                                    \
    const uint64_t _dca = static_cast<uint64_t>(a);                       \
    const uint64_t _dcb = static_cast<uint64_t>(b);                       \
    if (!(_dca op _dcb)) {                                                \
      ::nexsort::internal::DcheckBinaryFail(__FILE__, __LINE__,           \
                                            #a " " #op " " #b, _dca,      \
                                            _dcb);                        \
    }                                                                     \
  } while (0)

/// Die unless the Status-valued expression is OK. Debug/sanitizer builds
/// only: in Release the expression is NOT evaluated.
#define NEXSORT_DCHECK_OK(expr)                                           \
  do {                                                                    \
    const ::nexsort::Status _dcst = (expr);                               \
    if (!_dcst.ok()) {                                                    \
      ::nexsort::internal::DcheckStatusFail(__FILE__, __LINE__, #expr,    \
                                            _dcst);                       \
    }                                                                     \
  } while (0)

#else  // !NEXSORT_DCHECK_ENABLED

// Disabled: arguments are type-checked but never evaluated.
#define NEXSORT_DCHECK(cond) \
  do {                       \
    (void)sizeof((cond));    \
  } while (0)
#define NEXSORT_DCHECK_MSG(cond, detail) \
  do {                                   \
    (void)sizeof((cond));                \
    (void)sizeof(detail);                \
  } while (0)
#define NEXSORT_DCHECK_OP_(op, a, b) \
  do {                               \
    (void)sizeof((a));               \
    (void)sizeof((b));               \
  } while (0)
#define NEXSORT_DCHECK_OK(expr) \
  do {                          \
    (void)sizeof((expr));       \
  } while (0)

#endif  // NEXSORT_DCHECK_ENABLED

/// Comparison forms print both operand values on failure (operands are
/// converted to uint64_t, which every invariant in this codebase uses).
#define NEXSORT_DCHECK_EQ(a, b) NEXSORT_DCHECK_OP_(==, a, b)
#define NEXSORT_DCHECK_NE(a, b) NEXSORT_DCHECK_OP_(!=, a, b)
#define NEXSORT_DCHECK_LE(a, b) NEXSORT_DCHECK_OP_(<=, a, b)
#define NEXSORT_DCHECK_LT(a, b) NEXSORT_DCHECK_OP_(<, a, b)
#define NEXSORT_DCHECK_GE(a, b) NEXSORT_DCHECK_OP_(>=, a, b)
