// Small string helpers shared across modules.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace nexsort {

/// Split `input` on `sep`, keeping empty fields.
std::vector<std::string_view> Split(std::string_view input, char sep);

/// True if `s` parses fully as a (possibly signed) decimal or simple
/// floating-point number; sets *value on success.
bool ParseNumber(std::string_view s, double* value);

/// Render a byte count with binary units ("1.5 MiB").
std::string HumanBytes(uint64_t bytes);

/// Render a count with thousands separators ("1,234,567").
std::string WithCommas(uint64_t value);

}  // namespace nexsort
