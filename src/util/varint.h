// LEB128-style variable-length integer coding, used throughout the sorted-run
// and stack record formats to keep on-disk representations compact.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace nexsort {

/// Append a varint-encoded value to *dst.
void PutVarint64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);

/// Append a length-prefixed string to *dst.
void PutLengthPrefixed(std::string* dst, std::string_view value);

/// Decode a varint from the front of *input, advancing it past the encoding.
/// Returns Corruption if the input is truncated or overlong.
[[nodiscard]] Status GetVarint64(std::string_view* input, uint64_t* value);
[[nodiscard]] Status GetVarint32(std::string_view* input, uint32_t* value);

/// Decode a length-prefixed string from the front of *input.
[[nodiscard]] Status GetLengthPrefixed(std::string_view* input, std::string_view* value);

/// Number of bytes PutVarint64 would append for `value`.
int VarintLength(uint64_t value);

}  // namespace nexsort
