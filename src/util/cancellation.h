// CancellationToken: cooperative cancellation for long-running sort jobs.
//
// A token is a single atomic flag shared between the party that wants a
// job stopped (the service's Cancel RPC, a SIGTERM handler) and the code
// doing the work. Sorters poll it at block-granular points — once per
// scanned unit during run formation, once per merged record batch — and
// bail out with Status::Cancelled. Cancellation is therefore *graceful*:
// a job never stops mid-block, every RAII guard (BudgetReservation,
// RunWriter, pinned frames) unwinds normally, and the shared SortEnv is
// left exactly as if the job had failed with any other error.
//
// Tokens are shared via std::shared_ptr so a canceller can outlive the
// job (and vice versa) without lifetime coordination. Polling is a
// relaxed atomic load: cancellation only needs to be *eventually*
// observed, and the block-granular check sites bound the latency.
#pragma once

#include <atomic>

#include "util/status.h"

namespace nexsort {

/// Shared flag for cooperative, block-granular job cancellation.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Request cancellation. Idempotent; safe from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once Cancel() has been called.
  [[nodiscard]] bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Status::Cancelled once Cancel() has been called, OK before.
  /// The standard poll at a block boundary:
  ///   RETURN_IF_ERROR(CheckCancelled(cancel));
  [[nodiscard]] Status Check() const {
    if (cancelled()) return Status::Cancelled("job cancelled");
    return Status::OK();
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Null-tolerant poll: no token means cancellation is disabled.
[[nodiscard]] inline Status CheckCancelled(const CancellationToken* token) {
  if (token == nullptr) return Status::OK();
  return token->Check();
}

}  // namespace nexsort
