#include "util/varint.h"

namespace nexsort {

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

Status GetVarint64(std::string_view* input, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (input->empty()) return Status::Corruption("truncated varint");
    unsigned char byte = static_cast<unsigned char>(input->front());
    input->remove_prefix(1);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return Status::OK();
    }
  }
  return Status::Corruption("varint too long");
}

Status GetVarint32(std::string_view* input, uint32_t* value) {
  uint64_t v = 0;
  RETURN_IF_ERROR(GetVarint64(input, &v));
  if (v > UINT32_MAX) return Status::Corruption("varint32 overflow");
  *value = static_cast<uint32_t>(v);
  return Status::OK();
}

Status GetLengthPrefixed(std::string_view* input, std::string_view* value) {
  uint64_t len = 0;
  RETURN_IF_ERROR(GetVarint64(input, &len));
  if (input->size() < len) {
    return Status::Corruption("truncated length-prefixed string");
  }
  *value = input->substr(0, len);
  input->remove_prefix(len);
  return Status::OK();
}

int VarintLength(uint64_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

}  // namespace nexsort
