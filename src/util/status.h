// Status / StatusOr: lightweight error propagation without exceptions,
// following the RocksDB / Arrow idiom for database-engine code. Every
// fallible operation in the library returns a Status (or StatusOr<T>);
// callers either handle the error or propagate it with RETURN_IF_ERROR.
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <utility>

namespace nexsort {

/// Outcome of a fallible operation.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kIOError,
    kCorruption,
    kNotSupported,
    kOutOfMemory,   // memory budget exhausted
    kNotFound,
    kParseError,    // malformed XML input
    kCancelled,     // job cooperatively cancelled at a block boundary
  };

  Status() : code_(Code::kOk) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  [[nodiscard]] static Status IOError(std::string_view msg) {
    return Status(Code::kIOError, msg);
  }
  [[nodiscard]] static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  [[nodiscard]] static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }
  [[nodiscard]] static Status OutOfMemory(std::string_view msg) {
    return Status(Code::kOutOfMemory, msg);
  }
  [[nodiscard]] static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  [[nodiscard]] static Status ParseError(std::string_view msg) {
    return Status(Code::kParseError, msg);
  }
  [[nodiscard]] static Status Cancelled(std::string_view msg) {
    return Status(Code::kCancelled, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsOutOfMemory() const { return code_ == Code::kOutOfMemory; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsParseError() const { return code_ == Code::kParseError; }
  bool IsCancelled() const { return code_ == Code::kCancelled; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_;
  std::string message_;
};

/// Either a value or an error Status. Accessing the value of an error
/// result is a programming bug and asserts in debug builds.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

// Propagate a non-OK Status to the caller.
#define RETURN_IF_ERROR(expr)             \
  do {                                    \
    ::nexsort::Status _st = (expr);       \
    if (!_st.ok()) return _st;            \
  } while (0)

// Evaluate a StatusOr expression; bind the value or propagate the error.
#define ASSIGN_OR_RETURN(lhs, expr)       \
  auto NEXSORT_CONCAT_(_sor_, __LINE__) = (expr);               \
  if (!NEXSORT_CONCAT_(_sor_, __LINE__).ok())                   \
    return NEXSORT_CONCAT_(_sor_, __LINE__).status();           \
  lhs = std::move(NEXSORT_CONCAT_(_sor_, __LINE__)).value()

#define NEXSORT_CONCAT_INNER_(a, b) a##b
#define NEXSORT_CONCAT_(a, b) NEXSORT_CONCAT_INNER_(a, b)

}  // namespace nexsort
