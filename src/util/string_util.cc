#include "util/string_util.h"

#include <cstdio>
#include <cstdlib>

namespace nexsort {

std::vector<std::string_view> Split(std::string_view input, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(input.substr(start));
      break;
    }
    out.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

bool ParseNumber(std::string_view s, double* value) {
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *value = v;
  return true;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string WithCommas(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

}  // namespace nexsort
