#include "obs/chrome_trace.h"

#include <algorithm>
#include <limits>

#include "obs/json_writer.h"
#include "obs/tracer.h"

namespace nexsort {

namespace {

std::string NameArgs(const std::string& name) {
  JsonWriter args;
  args.BeginObject();
  args.Key("name");
  args.String(name);
  args.EndObject();
  return std::move(args).Take();
}

}  // namespace

double ChromeTraceExporter::EpochOffset(
    std::chrono::steady_clock::time_point epoch) {
  if (!have_ref_) {
    ref_ = epoch;
    have_ref_ = true;
  }
  return std::chrono::duration<double>(epoch - ref_).count();
}

int ChromeTraceExporter::AddSession(const std::string& label,
                                    const Tracer& tracer) {
  const int pid = next_pid_++;
  const double offset = EpochOffset(tracer.epoch());

  meta_events_.push_back(Event{'M', 0.0, 0.0, pid, 0, "process_name",
                               NameArgs(label)});
  for (int tid = 0; tid < tracer.thread_count(); ++tid) {
    meta_events_.push_back(
        Event{'M', 0.0, 0.0, pid, tid, "thread_name",
              NameArgs(tid == 0 ? "foreground"
                                : "worker-" + std::to_string(tid))});
  }

  for (const SpanRecord& span : tracer.spans()) {
    JsonWriter args;
    args.BeginObject();
    args.Key("reads");
    args.Uint(span.reads);
    args.Key("writes");
    args.Uint(span.writes);
    args.Key("modeled_seconds");
    args.Double(span.modeled_seconds);
    args.Key("budget_peak");
    args.Uint(span.budget_peak);
    args.EndObject();
    events_.push_back(Event{'X', offset + span.start_seconds,
                            span.closed ? span.duration_seconds : 0.0, pid,
                            span.tid, span.name, std::move(args).Take()});
  }

  // Run events are recorded foreground-only, so they land on tid 0.
  for (const RunEvent& event : tracer.run_events()) {
    JsonWriter args;
    args.BeginObject();
    args.Key("run_id");
    args.Uint(event.run_id);
    args.Key("bytes");
    args.Uint(event.bytes);
    args.Key("category");
    args.String(IoCategoryName(event.category));
    args.EndObject();
    events_.push_back(Event{'i', offset + event.at_seconds, 0.0, pid, 0,
                            std::string("run:") + RunEventKindName(event.kind),
                            std::move(args).Take()});
  }
  return pid;
}

int ChromeTraceExporter::AddCounterTrack(
    const std::string& label, const std::vector<TelemetrySample>& samples,
    std::chrono::steady_clock::time_point epoch) {
  const int pid = next_pid_++;
  const double offset = EpochOffset(epoch);

  meta_events_.push_back(Event{'M', 0.0, 0.0, pid, 0, "process_name",
                               NameArgs(label)});
  for (const TelemetrySample& sample : samples) {
    for (const auto& [name, value] : sample.gauges) {
      JsonWriter args;
      args.BeginObject();
      args.Key("value");
      args.Double(value);
      args.EndObject();
      events_.push_back(Event{'C', offset + sample.t_seconds, 0.0, pid, 0,
                              name, std::move(args).Take()});
    }
  }
  return pid;
}

void ChromeTraceExporter::ToJson(JsonWriter* writer) const {
  // Re-base on the earliest event so ts is never negative (epochs added
  // after the first may predate it), then emit metadata first and the
  // rest in global timestamp order.
  double min_ts = 0.0;
  if (!events_.empty()) {
    min_ts = std::numeric_limits<double>::infinity();
    for (const Event& event : events_) {
      min_ts = std::min(min_ts, event.ts_seconds);
    }
  }

  std::vector<const Event*> ordered;
  ordered.reserve(events_.size());
  for (const Event& event : events_) ordered.push_back(&event);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Event* a, const Event* b) {
                     return a->ts_seconds < b->ts_seconds;
                   });

  auto emit = [&](const Event& event, double ts_base) {
    writer->BeginObject();
    writer->Key("name");
    writer->String(event.name);
    writer->Key("ph");
    writer->String(std::string(1, event.ph));
    writer->Key("pid");
    writer->Int(event.pid);
    writer->Key("tid");
    writer->Int(event.tid);
    writer->Key("ts");
    writer->Double((event.ts_seconds - ts_base) * 1e6);
    if (event.ph == 'X') {
      writer->Key("dur");
      writer->Double(event.dur_seconds * 1e6);
    }
    if (event.ph == 'i') {
      writer->Key("s");  // instant scope: thread
      writer->String("t");
    }
    if (!event.args_json.empty()) {
      writer->Key("args");
      writer->Raw(event.args_json);
    }
    writer->EndObject();
  };

  writer->BeginArray();
  for (const Event& event : meta_events_) emit(event, 0.0);
  for (const Event* event : ordered) emit(*event, min_ts);
  writer->EndArray();
}

std::string ChromeTraceExporter::ToJsonString() const {
  JsonWriter writer;
  ToJson(&writer);
  return std::move(writer).Take();
}

}  // namespace nexsort
