// MetricsRegistry: named counters, gauges, and histograms backing the
// telemetry layer. The paper's evaluation is built on exactly these shapes
// of data — monotonically increasing I/O counts, high-water marks (stack
// depth, memory budget), and distributions (run sizes, subtree fan-outs) —
// so the registry gives every pipeline component a uniform place to record
// them and one exporter to serialize them.
//
// Counters and gauges are atomic so recording is safe from the background
// spill/prefetch threads (the buffer pool mirrors its counters from
// whichever thread triggered the access), and registry *lookup* is
// mutex-protected so an instrument can be created lazily from whichever
// thread first needs it (the cache hit-rate gauge materializes on the
// first access, which may be a background prefetch). Histogram recording
// and all exporters stay foreground-only. Instruments are handed out as
// stable pointers: a component looks its instrument up once and then
// records through the pointer with no map lookups on the hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.h"

namespace nexsort {

class JsonWriter;

/// Monotonically increasing count. Add/value are thread-safe.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written value plus its high-water mark (e.g. stack depth: `value`
/// is the depth now, `max` the peak the run ever reached). Set/value/max
/// are thread-safe; concurrent Sets race benignly on `value` (last writer
/// wins) while `max` is maintained exactly.
class Gauge {
 public:
  void Set(uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
  std::atomic<uint64_t> max_{0};
};

/// Power-of-two-bucketed histogram of uint64 samples: bucket 0 holds the
/// value 0, bucket i >= 1 holds [2^(i-1), 2^i - 1]. Percentiles
/// interpolate linearly inside a bucket (clamped to the observed min/max),
/// which is accurate to well under a bucket width — plenty for run-size
/// and fan-out distributions whose interesting structure is orders of
/// magnitude.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;

  void Record(uint64_t value);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Estimated value at quantile `q` in [0, 1]; 0 when empty.
  double Percentile(double q) const;

  /// Index of the bucket `value` lands in.
  static int BucketIndex(uint64_t value);

  /// Inclusive upper bound of bucket `index`.
  static uint64_t BucketUpperBound(int index);

  const uint64_t* buckets() const { return buckets_; }

 private:
  uint64_t buckets_[kNumBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

/// Owner of all named instruments for one run. Lookup creates on first
/// use and is thread-safe; names are stable for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Lookup without creation; null when `name` was never registered.
  /// Thread-safe like the Get* variants.
  const Gauge* FindGauge(std::string_view name) const;

  bool empty() const NEXSORT_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Serialize every instrument as one JSON object:
  ///   {"counters": {...}, "gauges": {...}, "histograms": {...}}
  /// Histograms export count/sum/min/max/mean/p50/p95/p99 (interpolated
  /// within the power-of-two buckets) plus the non-empty buckets as
  /// [upper_bound, count] pairs.
  void ToJson(JsonWriter* writer) const;

  /// Human-readable multi-line report (empty string when nothing was
  /// recorded).
  std::string ToString() const;

 private:
  // std::map keeps export order deterministic (sorted by name) and hands
  // out stable element addresses, so instrument pointers survive later
  // insertions; the mutex only guards the maps themselves, never the
  // instruments' atomics.
  mutable Mutex mutex_{"MetricsRegistry::mutex_",
                       lock_rank::kMetricsRegistry};
  std::map<std::string, Counter, std::less<>> counters_
      NEXSORT_GUARDED_BY(mutex_);
  std::map<std::string, Gauge, std::less<>> gauges_
      NEXSORT_GUARDED_BY(mutex_);
  std::map<std::string, Histogram, std::less<>> histograms_
      NEXSORT_GUARDED_BY(mutex_);
};

}  // namespace nexsort
