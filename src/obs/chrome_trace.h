// ChromeTraceExporter: renders Tracer spans, run-lifecycle events, and
// TelemetryHub counter samples into the Chrome Trace Event Format (the
// JSON array of {"ph":"X","pid":...,"tid":...} objects that Perfetto and
// chrome://tracing load directly). Each added session becomes one trace
// process (pid) whose thread lanes (tid) are the tracer's dense thread
// ids — so a parallel sort shows the foreground lane and one lane per
// worker that recorded spans — and each counter track becomes its own
// process of ph:"C" counter series.
//
// All sources are normalized onto one time axis: every Tracer and the
// TelemetryHub stamp against their own steady-clock epoch, the exporter
// re-bases everything on the earliest epoch it was given, and emits
// timestamps in microseconds sorted non-decreasing.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "obs/telemetry_hub.h"

namespace nexsort {

class JsonWriter;
class Tracer;

class ChromeTraceExporter {
 public:
  /// Render `tracer`'s spans and run events as the next trace process,
  /// labeled `label`. Call only when the tracer is quiescent (same rule
  /// as its own exporters). Returns the assigned pid.
  int AddSession(const std::string& label, const Tracer& tracer);

  /// Render gauge samples (t_seconds relative to `epoch`) as one counter
  /// series per gauge name, grouped under a trace process labeled
  /// `label`. Returns the assigned pid.
  int AddCounterTrack(const std::string& label,
                      const std::vector<TelemetrySample>& samples,
                      std::chrono::steady_clock::time_point epoch);

  /// The complete trace: a single JSON array of trace events.
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;

 private:
  struct Event {
    char ph = 'X';
    double ts_seconds = 0.0;  // relative to ref_
    double dur_seconds = 0.0;
    int pid = 0;
    int tid = 0;
    std::string name;
    std::string args_json;  // pre-rendered args object; empty = none
  };

  /// Seconds of `epoch` relative to ref_ (the first epoch this exporter
  /// saw, which it adopts as its provisional zero).
  double EpochOffset(std::chrono::steady_clock::time_point epoch);

  bool have_ref_ = false;
  std::chrono::steady_clock::time_point ref_;
  int next_pid_ = 0;
  std::vector<Event> meta_events_;  // ph:"M" process/thread names
  std::vector<Event> events_;
};

}  // namespace nexsort
