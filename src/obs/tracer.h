// Tracer: unified tracing + metrics for the sort/merge pipeline — the
// machinery behind the paper's whole evaluation (Section 5 counts block
// I/Os per phase and attributes them to the cost components of
// Theorem 4.5). A Tracer owns
//
//  * a tree of *spans* (RAII via ScopedSpan): named, nested phases or
//    operations carrying steady-clock wall time plus the I/O and
//    memory-budget deltas observed while the span was open (captured by
//    snapshotting the attached BlockDevice / MemoryBudget at open and
//    close — deltas are *inclusive* of child spans, like the paper's
//    phase totals);
//  * a MetricsRegistry of named counters / gauges / histograms (run-size
//    and subtree-fan-out distributions, stack high-water marks);
//  * a run-lifecycle event trail (created / fragmented / read back /
//    merged / freed, each with I/O category and byte size) — the data
//    behind run-size distributions and Lemma 4.12's 1 + p(b) accounting;
//  * exporters: human-readable report, a single JSON object (the
//    `nexsort-telemetry-v1` schema shared by `xmlsort --stats-json` and
//    the benches), and a JSONL trace stream of spans + events.
//
// Instrumentation is nullable by design: every instrumented component
// takes a `Tracer*` defaulting to nullptr, and the inline ScopedSpan /
// TraceRunEvent helpers reduce to a single predictable branch when it is
// null, keeping the zero-instrumentation hot path free.
//
// Thread-awareness: span recording keeps one open-span stack per thread
// behind a mutex, and every SpanRecord carries the small dense `tid` of
// the thread that opened it — that is what gives the Chrome-trace export
// one lane per worker thread. Begin/EndSpan are therefore safe from
// background spill workers; run events, histogram recording, and the
// exporters remain foreground-only (call them after background work has
// drained).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "extmem/block_device.h"
#include "extmem/memory_budget.h"
#include "obs/metrics.h"
#include "util/thread_annotations.h"

namespace nexsort {

class JsonWriter;

/// Lifecycle moments of a sorted run.
enum class RunEventKind {
  kCreated = 0,   // a complete sorted run was written
  kFragment,      // an incomplete run (graceful degeneration)
  kReadBack,      // a run opened for reading
  kMerged,        // a run consumed by a merge step
  kFreed,         // a run's blocks returned to the store
};
inline constexpr int kNumRunEventKinds = 5;

const char* RunEventKindName(RunEventKind kind);

struct RunEvent {
  RunEventKind kind = RunEventKind::kCreated;
  uint32_t run_id = 0;
  IoCategory category = IoCategory::kOther;
  uint64_t bytes = 0;
  double at_seconds = 0.0;  // since tracer construction
};

/// One completed (or still-open) span.
struct SpanRecord {
  std::string name;
  int64_t id = -1;
  int64_t parent_id = -1;  // -1 = root (per thread)
  int depth = 0;
  int tid = 0;  // dense id of the opening thread (0 = first/foreground)
  double start_seconds = 0.0;     // since tracer construction
  double duration_seconds = 0.0;  // 0 while still open
  bool closed = false;

  // I/O observed while open (inclusive of children); zeros when no device
  // is attached.
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t category_reads[kNumIoCategories] = {};
  uint64_t category_writes[kNumIoCategories] = {};
  double modeled_seconds = 0.0;

  // Memory-budget view; zeros when no budget is attached.
  uint64_t budget_used_open = 0;
  uint64_t budget_used_close = 0;
  uint64_t budget_peak = 0;  // budget high-water at close
};

/// Collects spans, metrics, and run events for one pipeline execution.
/// Begin/EndSpan are thread-safe (per-thread open-span stacks); run
/// events and the exporters are foreground-only.
class Tracer {
 public:
  /// `device` / `budget` (either may be null, not owned, must outlive the
  /// tracer) are snapshotted at span boundaries for per-span deltas.
  explicit Tracer(const BlockDevice* device = nullptr,
                  const MemoryBudget* budget = nullptr);

  void AttachDevice(const BlockDevice* device) { device_ = device; }
  void AttachBudget(const MemoryBudget* budget) { budget_ = budget; }

  /// Open a span nested under the calling thread's innermost open span
  /// (threads it has never seen get a fresh dense tid and an empty stack).
  /// Returns the span id. Prefer ScopedSpan over calling this directly.
  int64_t BeginSpan(std::string_view name);

  /// Close span `id`, finalizing its deltas. Any deeper spans the calling
  /// thread still has open are closed first (defensive: RAII makes this
  /// the exception). Must run on the thread that opened the span.
  void EndSpan(int64_t id);

  void RecordRunEvent(RunEventKind kind, IoCategory category, uint64_t bytes,
                      uint32_t run_id);

  MetricsRegistry* metrics() { return &metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Accessors over the recorded data; call after background work has
  /// drained (quiescent tracer), like the exporters. The lock is taken
  /// only to satisfy the capability analysis — the returned references
  /// are stable because a quiescent tracer records nothing further.
  const std::vector<SpanRecord>& spans() const NEXSORT_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return spans_;
  }
  const std::vector<RunEvent>& run_events() const NEXSORT_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return run_events_;
  }
  const uint64_t* run_event_counts() const NEXSORT_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return run_event_counts_;
  }

  /// Number of distinct threads that have opened spans so far.
  int thread_count() const;

  /// Seconds since construction (steady clock).
  double ElapsedSeconds() const;

  /// The steady-clock instant all span/event timestamps are relative to —
  /// what ChromeTraceExporter uses to align several tracers (and the
  /// sampler's timeline) on one time axis.
  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

  /// Multi-line human-readable report: span tree with wall time and I/O,
  /// then metrics, then the run-event summary.
  std::string ReportString() const;

  /// The `nexsort-telemetry-v1` JSON object: elapsed time, span list
  /// (with per-category I/O deltas and budget marks), run-event summary,
  /// and all metrics. The full event trail is JSONL-only.
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;

  /// JSONL trace stream: one {"type":"span"|"run_event",...} object per
  /// line, ordered by timestamp.
  std::string ToJsonl() const;

 private:
  struct OpenSpan {
    size_t index;        // into spans_
    IoStats io_at_open;  // device snapshot
  };

  /// One open-span stack per recording thread, keyed by std::thread::id
  /// but exported under a small dense tid (assigned in first-span order,
  /// so the foreground is tid 0 in every trace).
  struct ThreadState {
    int tid = 0;
    std::vector<OpenSpan> open;
  };

  double Now() const;
  ThreadState& StateForThisThreadLocked() NEXSORT_REQUIRES(mutex_);
  void CloseTop(ThreadState& state) NEXSORT_REQUIRES(mutex_);

  const BlockDevice* device_;
  const MemoryBudget* budget_;
  std::chrono::steady_clock::time_point epoch_;

  mutable Mutex mutex_{"Tracer::mutex_", lock_rank::kTracer};
  std::vector<SpanRecord> spans_ NEXSORT_GUARDED_BY(mutex_);
  std::unordered_map<std::thread::id, ThreadState> threads_
      NEXSORT_GUARDED_BY(mutex_);
  int next_tid_ NEXSORT_GUARDED_BY(mutex_) = 0;
  std::vector<RunEvent> run_events_ NEXSORT_GUARDED_BY(mutex_);
  uint64_t run_event_counts_[kNumRunEventKinds] NEXSORT_GUARDED_BY(mutex_) = {};
  MetricsRegistry metrics_;
};

/// RAII span handle, safe on a null tracer: instrumented code pays one
/// branch when tracing is off.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string_view name) : tracer_(tracer) {
    if (tracer_ != nullptr) id_ = tracer_->BeginSpan(name);
  }
  ~ScopedSpan() { End(); }

  /// Close early (before scope exit); idempotent.
  void End() {
    if (tracer_ != nullptr) {
      tracer_->EndSpan(id_);
      tracer_ = nullptr;
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  int64_t id_ = -1;
};

/// Null-safe run-event helper for instrumented call sites.
inline void TraceRunEvent(Tracer* tracer, RunEventKind kind,
                          IoCategory category, uint64_t bytes,
                          uint32_t run_id = 0) {
  if (tracer != nullptr) tracer->RecordRunEvent(kind, category, bytes, run_id);
}

}  // namespace nexsort
