#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "obs/json_writer.h"

namespace nexsort {

int Histogram::BucketIndex(uint64_t value) {
  // 0 -> bucket 0; otherwise bucket = bit width, so bucket i (i >= 1)
  // covers [2^(i-1), 2^i - 1].
  return value == 0 ? 0 : std::bit_width(value);
}

uint64_t Histogram::BucketUpperBound(int index) {
  if (index <= 0) return 0;
  if (index >= 64) return UINT64_MAX;
  return (uint64_t{1} << index) - 1;
}

void Histogram::Record(uint64_t value) {
  ++buckets_[BucketIndex(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double Histogram::Percentile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(min());
  if (q >= 1.0) return static_cast<double>(max_);
  double target = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    double before = static_cast<double>(cumulative);
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) >= target) {
      double lower =
          i == 0 ? 0.0 : static_cast<double>(BucketUpperBound(i - 1)) + 1.0;
      double upper = static_cast<double>(BucketUpperBound(i));
      // The observed extremes tighten the bucket bounds: with few samples
      // a whole power-of-two bucket is a very loose interval.
      lower = std::max(lower, static_cast<double>(min()));
      upper = std::min(upper, static_cast<double>(max_));
      if (upper < lower) upper = lower;
      double fraction = (target - before) / static_cast<double>(buckets_[i]);
      return lower + (upper - lower) * fraction;
    }
  }
  return static_cast<double>(max_);
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(&mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name)).first;
  }
  return &it->second;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(&mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name)).first;
  }
  return &it->second;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(&mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name)).first;
  }
  return &it->second;
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  MutexLock lock(&mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

void MetricsRegistry::ToJson(JsonWriter* writer) const {
  MutexLock lock(&mutex_);
  writer->BeginObject();
  writer->Key("counters");
  writer->BeginObject();
  for (const auto& [name, counter] : counters_) {
    writer->Key(name);
    writer->Uint(counter.value());
  }
  writer->EndObject();
  writer->Key("gauges");
  writer->BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    writer->Key(name);
    writer->BeginObject();
    writer->Key("value");
    writer->Uint(gauge.value());
    writer->Key("max");
    writer->Uint(gauge.max());
    writer->EndObject();
  }
  writer->EndObject();
  writer->Key("histograms");
  writer->BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    writer->Key(name);
    writer->BeginObject();
    writer->Key("count");
    writer->Uint(histogram.count());
    writer->Key("sum");
    writer->Uint(histogram.sum());
    writer->Key("min");
    writer->Uint(histogram.min());
    writer->Key("max");
    writer->Uint(histogram.max());
    writer->Key("mean");
    writer->Double(histogram.mean());
    writer->Key("p50");
    writer->Double(histogram.Percentile(0.50));
    writer->Key("p90");
    writer->Double(histogram.Percentile(0.90));
    writer->Key("p95");
    writer->Double(histogram.Percentile(0.95));
    writer->Key("p99");
    writer->Double(histogram.Percentile(0.99));
    writer->Key("buckets");
    writer->BeginArray();
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      if (histogram.buckets()[i] == 0) continue;
      writer->BeginArray();
      writer->Uint(Histogram::BucketUpperBound(i));
      writer->Uint(histogram.buckets()[i]);
      writer->EndArray();
    }
    writer->EndArray();
    writer->EndObject();
  }
  writer->EndObject();
  writer->EndObject();
}

std::string MetricsRegistry::ToString() const {
  MutexLock lock(&mutex_);
  std::string out;
  char line[192];
  for (const auto& [name, counter] : counters_) {
    std::snprintf(line, sizeof(line), "  counter %-28s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter.value()));
    out += line;
  }
  for (const auto& [name, gauge] : gauges_) {
    std::snprintf(line, sizeof(line), "  gauge   %-28s %llu (max %llu)\n",
                  name.c_str(),
                  static_cast<unsigned long long>(gauge.value()),
                  static_cast<unsigned long long>(gauge.max()));
    out += line;
  }
  for (const auto& [name, histogram] : histograms_) {
    std::snprintf(line, sizeof(line),
                  "  hist    %-28s n=%llu min=%llu p50=%.0f p90=%.0f "
                  "max=%llu mean=%.1f\n",
                  name.c_str(),
                  static_cast<unsigned long long>(histogram.count()),
                  static_cast<unsigned long long>(histogram.min()),
                  histogram.Percentile(0.50), histogram.Percentile(0.90),
                  static_cast<unsigned long long>(histogram.max()),
                  histogram.mean());
    out += line;
  }
  return out;
}

}  // namespace nexsort
