// Minimal streaming JSON writer for telemetry export: builds RFC 8259
// JSON text into a std::string with automatic comma placement and string
// escaping. Deliberately tiny (no DOM, no parsing) — the observability
// layer only ever *emits* JSON, and keeping the writer dependency-free
// lets every module (extmem stats, core stats, benches) share one schema.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace nexsort {

/// Append-only JSON builder. Usage:
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("reads"); w.Uint(12);
///   w.Key("phases"); w.BeginArray(); ... w.EndArray();
///   w.EndObject();
///   std::string text = std::move(w).Take();
/// Misuse (e.g. two values without a comma context) is a programming bug;
/// the writer keeps the output syntactically valid for all call orders the
/// telemetry code uses but does not validate against arbitrary misuse.
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject() { OpenContainer('{'); }
  void EndObject() { CloseContainer('}'); }
  void BeginArray() { OpenContainer('['); }
  void EndArray() { CloseContainer(']'); }

  /// Member name inside an object; must be followed by exactly one value.
  void Key(std::string_view name);

  void String(std::string_view value);
  void Int(int64_t value);
  void Uint(uint64_t value);
  /// Finite doubles print with enough digits to round-trip; NaN/inf (not
  /// representable in JSON) print as null.
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Splice a pre-rendered JSON value (e.g. a nested ToJson() result).
  void Raw(std::string_view json);

  const std::string& text() const& { return out_; }
  std::string Take() && { return std::move(out_); }

 private:
  void OpenContainer(char open);
  void CloseContainer(char close);
  void BeforeValue();
  void AppendEscaped(std::string_view value);

  std::string out_;
  // One flag per open container: true once it has at least one element
  // (so the next element needs a leading comma).
  std::vector<bool> has_element_;
  bool after_key_ = false;
};

}  // namespace nexsort
