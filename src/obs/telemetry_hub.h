// Live telemetry: a background StatsSampler snapshots env-wide gauges at
// a fixed interval and a TelemetryHub fans every sample out to pluggable
// TimelineSinks — the time-series counterpart of the post-hoc Tracer
// dump. The file sink writes the `nexsort-timeline-v1` JSONL stream that
// `xmlsort --timeline-out` exposes today and that the nexsortd daemon
// will later push over a socket (the sink interface is the seam); the
// progress sink drives a one-line live status on stderr. The hub also
// retains samples in memory so ChromeTraceExporter can render them as
// counter tracks next to the span lanes.
//
// Timestamps are seconds since the hub's steady-clock epoch — the same
// clock discipline as Tracer spans (the `steady-clock` lint rule keeps
// wall clocks out of measurement paths), which is what lets the exporter
// align the two streams on one time axis.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace nexsort {

/// One sampler tick: the time it was taken and every gauge's value at
/// that instant. Gauges are (name, value) pairs rather than a struct so
/// sinks and exporters stay decoupled from which components the env
/// composed (no cache => no cache gauges in the sample).
struct TelemetrySample {
  double t_seconds = 0.0;  // since the hub's epoch
  std::vector<std::pair<std::string, double>> gauges;

  /// Value of gauge `name`, or `fallback` when this sample lacks it.
  double GaugeOr(const std::string& name, double fallback) const;
};

/// Fills `sample->gauges`; the sampler stamps t_seconds. Runs on the
/// sampler thread, so it may only touch thread-safe state (atomics,
/// IoStats snapshots).
using TelemetryProbe = std::function<void(TelemetrySample*)>;

/// Receiver of the live sample stream. OnSample is only ever called from
/// one thread at a time (the hub serializes), but not necessarily the
/// same thread every call.
class TimelineSink {
 public:
  virtual ~TimelineSink() = default;
  virtual void OnSample(const TelemetrySample& sample) = 0;
};

/// `nexsort-timeline-v1` JSONL file sink: one header record describing
/// the stream, then one {"type":"sample",...} record per tick.
class FileTimelineSink final : public TimelineSink {
 public:
  /// `env_json` is the env's DescribeJson object, embedded verbatim in
  /// the header record so a timeline file is self-describing.
  [[nodiscard]] static StatusOr<std::unique_ptr<FileTimelineSink>> Open(
      const std::string& path, const std::string& env_json,
      uint32_t sample_interval_ms);

  ~FileTimelineSink() override;

  void OnSample(const TelemetrySample& sample) override;

 private:
  explicit FileTimelineSink(std::FILE* file) : file_(file) {}

  std::FILE* file_;
};

/// Live one-line progress report on stderr, rewritten in place (\r) on
/// every sample; prints a final newline when destroyed.
class ProgressSink final : public TimelineSink {
 public:
  ~ProgressSink() override;

  void OnSample(const TelemetrySample& sample) override;

 private:
  bool wrote_anything_ = false;
};

class StatsSampler;

/// Fan-out point between one sample producer (the StatsSampler, or a test
/// calling Publish directly) and any number of sinks, plus the in-memory
/// retention the Chrome-trace counter tracks are built from.
class TelemetryHub {
 public:
  TelemetryHub();
  ~TelemetryHub();  // stops the sampler first, so no sink outlives use

  TelemetryHub(const TelemetryHub&) = delete;
  TelemetryHub& operator=(const TelemetryHub&) = delete;

  void AddSink(std::unique_ptr<TimelineSink> sink);

  /// Stamp (if unset) and deliver one sample to every sink, retaining it
  /// for samples(). Thread-safe; delivery is serialized.
  void Publish(TelemetrySample sample);

  /// Start the background sampler: `probe` runs every `interval_ms` on a
  /// dedicated thread and the result is Published. One sampler at most.
  void StartSampler(TelemetryProbe probe, uint32_t interval_ms);

  /// Stop and join the sampler; the sampler takes one final sample on the
  /// way out so even sub-interval runs get a timeline. Idempotent.
  void StopSampler();

  bool sampling() const;

  /// The steady-clock zero of every sample's t_seconds.
  std::chrono::steady_clock::time_point epoch() const { return epoch_; }
  double ElapsedSeconds() const;

  /// Copy of the retained samples (the live stream keeps flowing to the
  /// sinks even after retention stops at kMaxRetainedSamples).
  std::vector<TelemetrySample> samples() const;
  uint64_t dropped_samples() const;

  static constexpr size_t kMaxRetainedSamples = 1 << 16;

 private:
  const std::chrono::steady_clock::time_point epoch_;
  mutable Mutex mutex_{"TelemetryHub::mutex_", lock_rank::kTelemetryHub};
  std::vector<std::unique_ptr<TimelineSink>> sinks_ NEXSORT_GUARDED_BY(mutex_);
  std::vector<TelemetrySample> samples_ NEXSORT_GUARDED_BY(mutex_);
  uint64_t dropped_ NEXSORT_GUARDED_BY(mutex_) = 0;
  std::unique_ptr<StatsSampler> sampler_;
};

/// The background sampling thread. Owned by a TelemetryHub; separate so
/// the hub can exist (and receive pushed samples) without any thread.
class StatsSampler {
 public:
  /// Starts sampling immediately; `hub` must outlive this object.
  StatsSampler(TelemetryHub* hub, TelemetryProbe probe, uint32_t interval_ms);

  /// Joins the thread (taking the final sample) if Stop was not called.
  ~StatsSampler();

  StatsSampler(const StatsSampler&) = delete;
  StatsSampler& operator=(const StatsSampler&) = delete;

  /// Request shutdown and join; the loop takes one last sample before
  /// exiting. Idempotent.
  void Stop();

 private:
  void Main();
  void TakeSample();

  TelemetryHub* hub_;
  TelemetryProbe probe_;
  const uint32_t interval_ms_;
  /// Never held across TakeSample(): the probe and the hub's Publish run
  /// lock-free from this thread, so the sampler and hub mutexes never
  /// nest in either direction.
  Mutex mutex_{"StatsSampler::mutex_", lock_rank::kStatsSampler};
  CondVar wake_;
  bool stop_ NEXSORT_GUARDED_BY(mutex_) = false;
  std::thread thread_;
};

}  // namespace nexsort
