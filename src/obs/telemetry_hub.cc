#include "obs/telemetry_hub.h"

#include <cstdio>

#include "obs/json_writer.h"

namespace nexsort {

double TelemetrySample::GaugeOr(const std::string& name,
                                double fallback) const {
  for (const auto& [gauge_name, value] : gauges) {
    if (gauge_name == name) return value;
  }
  return fallback;
}

// ---------------------------------------------------------------- sinks

StatusOr<std::unique_ptr<FileTimelineSink>> FileTimelineSink::Open(
    const std::string& path, const std::string& env_json,
    uint32_t sample_interval_ms) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IOError("cannot open timeline file: " + path);
  }
  std::unique_ptr<FileTimelineSink> sink(new FileTimelineSink(file));

  JsonWriter header;
  header.BeginObject();
  header.Key("type");
  header.String("header");
  header.Key("schema");
  header.String("nexsort-timeline-v1");
  header.Key("sample_interval_ms");
  header.Uint(sample_interval_ms);
  header.Key("env");
  if (env_json.empty()) {
    header.Null();
  } else {
    header.Raw(env_json);
  }
  header.EndObject();
  std::string text = std::move(header).Take();
  std::fwrite(text.data(), 1, text.size(), file);
  std::fputc('\n', file);
  return sink;
}

FileTimelineSink::~FileTimelineSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileTimelineSink::OnSample(const TelemetrySample& sample) {
  JsonWriter line;
  line.BeginObject();
  line.Key("type");
  line.String("sample");
  line.Key("t_seconds");
  line.Double(sample.t_seconds);
  line.Key("gauges");
  line.BeginObject();
  for (const auto& [name, value] : sample.gauges) {
    line.Key(name);
    line.Double(value);
  }
  line.EndObject();
  line.EndObject();
  std::string text = std::move(line).Take();
  std::fwrite(text.data(), 1, text.size(), file_);
  std::fputc('\n', file_);
  // Line-buffered on purpose: a live consumer (tail -f, the future
  // daemon) should see each tick as it happens.
  std::fflush(file_);
}

ProgressSink::~ProgressSink() {
  if (wrote_anything_) std::fputc('\n', stderr);
}

void ProgressSink::OnSample(const TelemetrySample& sample) {
  double io = sample.GaugeOr("io_logical_total", 0) +
              sample.GaugeOr("io_physical_total", 0);
  std::fprintf(stderr,
               "\r[%7.2fs] io %.0f  budget %.0f/%.0f blk  runs %.0f live  "
               "workers %.0f busy  ",
               sample.t_seconds, io,
               sample.GaugeOr("budget_used_blocks", 0),
               sample.GaugeOr("budget_total_blocks", 0),
               sample.GaugeOr("runs_live", 0),
               sample.GaugeOr("workers_busy", 0));
  std::fflush(stderr);
  wrote_anything_ = true;
}

// ------------------------------------------------------------------ hub

TelemetryHub::TelemetryHub() : epoch_(std::chrono::steady_clock::now()) {}

TelemetryHub::~TelemetryHub() { StopSampler(); }

void TelemetryHub::AddSink(std::unique_ptr<TimelineSink> sink) {
  MutexLock lock(&mutex_);
  sinks_.push_back(std::move(sink));
}

double TelemetryHub::ElapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void TelemetryHub::Publish(TelemetrySample sample) {
  if (sample.t_seconds == 0.0) sample.t_seconds = ElapsedSeconds();
  MutexLock lock(&mutex_);
  for (auto& sink : sinks_) sink->OnSample(sample);
  if (samples_.size() < kMaxRetainedSamples) {
    samples_.push_back(std::move(sample));
  } else {
    ++dropped_;  // surfaced via dropped_samples(), never silent
  }
}

void TelemetryHub::StartSampler(TelemetryProbe probe, uint32_t interval_ms) {
  if (sampler_ != nullptr) return;
  sampler_ =
      std::make_unique<StatsSampler>(this, std::move(probe), interval_ms);
}

void TelemetryHub::StopSampler() {
  // Destroying the sampler joins its thread (taking the final sample), so
  // after this returns no further Publish can originate from it.
  sampler_.reset();
}

bool TelemetryHub::sampling() const { return sampler_ != nullptr; }

std::vector<TelemetrySample> TelemetryHub::samples() const {
  MutexLock lock(&mutex_);
  return samples_;
}

uint64_t TelemetryHub::dropped_samples() const {
  MutexLock lock(&mutex_);
  return dropped_;
}

// -------------------------------------------------------------- sampler

StatsSampler::StatsSampler(TelemetryHub* hub, TelemetryProbe probe,
                           uint32_t interval_ms)
    : hub_(hub),
      probe_(std::move(probe)),
      interval_ms_(interval_ms == 0 ? 1 : interval_ms),
      thread_([this] { Main(); }) {}

StatsSampler::~StatsSampler() { Stop(); }

void StatsSampler::Stop() {
  {
    MutexLock lock(&mutex_);
    if (stop_ && !thread_.joinable()) return;
    stop_ = true;
  }
  wake_.SignalAll();
  if (thread_.joinable()) thread_.join();
}

void StatsSampler::TakeSample() {
  TelemetrySample sample;
  sample.t_seconds = hub_->ElapsedSeconds();
  if (probe_) probe_(&sample);
  hub_->Publish(std::move(sample));
}

void StatsSampler::Main() {
  mutex_.Lock();
  while (!stop_) {
    mutex_.Unlock();
    TakeSample();
    mutex_.Lock();
    const std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(interval_ms_);
    while (!stop_) {
      if (!wake_.WaitUntil(&mutex_, deadline)) break;  // interval elapsed
    }
  }
  mutex_.Unlock();
  // Final sample on the way out: even a run shorter than one interval
  // leaves a timeline, and the last record reflects the drained state.
  TakeSample();
}

}  // namespace nexsort
