#include "obs/tracer.h"

#include <algorithm>
#include <cstdio>

#include "obs/json_writer.h"
#include "util/string_util.h"

namespace nexsort {

const char* RunEventKindName(RunEventKind kind) {
  switch (kind) {
    case RunEventKind::kCreated: return "created";
    case RunEventKind::kFragment: return "fragment";
    case RunEventKind::kReadBack: return "read-back";
    case RunEventKind::kMerged: return "merged";
    case RunEventKind::kFreed: return "freed";
  }
  return "unknown";
}

Tracer::Tracer(const BlockDevice* device, const MemoryBudget* budget)
    : device_(device),
      budget_(budget),
      epoch_(std::chrono::steady_clock::now()) {}

double Tracer::Now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

double Tracer::ElapsedSeconds() const { return Now(); }

int Tracer::thread_count() const {
  MutexLock lock(&mutex_);
  return next_tid_;
}

Tracer::ThreadState& Tracer::StateForThisThreadLocked() {
  auto [it, inserted] = threads_.try_emplace(std::this_thread::get_id());
  if (inserted) it->second.tid = next_tid_++;
  return it->second;
}

int64_t Tracer::BeginSpan(std::string_view name) {
  MutexLock lock(&mutex_);
  ThreadState& state = StateForThisThreadLocked();
  SpanRecord span;
  span.name = std::string(name);
  span.id = static_cast<int64_t>(spans_.size());
  span.parent_id =
      state.open.empty() ? -1 : spans_[state.open.back().index].id;
  span.depth = static_cast<int>(state.open.size());
  span.tid = state.tid;
  span.start_seconds = Now();
  if (budget_ != nullptr) span.budget_used_open = budget_->used_blocks();

  OpenSpan open;
  open.index = spans_.size();
  if (device_ != nullptr) open.io_at_open = device_->stats();
  spans_.push_back(std::move(span));
  state.open.push_back(std::move(open));
  return spans_.back().id;
}

void Tracer::CloseTop(ThreadState& state) {
  const OpenSpan& top = state.open.back();
  SpanRecord& span = spans_[top.index];
  span.closed = true;
  span.duration_seconds = Now() - span.start_seconds;
  if (device_ != nullptr) {
    const IoStats& now = device_->stats();
    const IoStats& then = top.io_at_open;
    span.reads = now.reads - then.reads;
    span.writes = now.writes - then.writes;
    for (int i = 0; i < kNumIoCategories; ++i) {
      span.category_reads[i] = now.category_reads[i] - then.category_reads[i];
      span.category_writes[i] =
          now.category_writes[i] - then.category_writes[i];
    }
    span.modeled_seconds = now.modeled_seconds - then.modeled_seconds;
  }
  if (budget_ != nullptr) {
    span.budget_used_close = budget_->used_blocks();
    span.budget_peak = budget_->peak_blocks();
  }
  state.open.pop_back();
}

void Tracer::EndSpan(int64_t id) {
  // Close any dangling children first, then the span itself — all within
  // the calling thread's stack. An id that is no longer open on this
  // thread (already closed via a parent) is a no-op.
  MutexLock lock(&mutex_);
  ThreadState& state = StateForThisThreadLocked();
  while (!state.open.empty()) {
    bool is_target = spans_[state.open.back().index].id == id;
    bool contains = false;
    for (const OpenSpan& open : state.open) {
      if (spans_[open.index].id == id) {
        contains = true;
        break;
      }
    }
    if (!contains) return;
    CloseTop(state);
    if (is_target) return;
  }
}

void Tracer::RecordRunEvent(RunEventKind kind, IoCategory category,
                            uint64_t bytes, uint32_t run_id) {
  RunEvent event;
  event.kind = kind;
  event.run_id = run_id;
  event.category = category;
  event.bytes = bytes;
  event.at_seconds = Now();
  {
    MutexLock lock(&mutex_);
    run_events_.push_back(event);
    ++run_event_counts_[static_cast<int>(kind)];
  }
  switch (kind) {
    case RunEventKind::kCreated:
      metrics_.GetHistogram("run_size_bytes")->Record(bytes);
      break;
    case RunEventKind::kFragment:
      metrics_.GetHistogram("fragment_run_bytes")->Record(bytes);
      break;
    default:
      break;
  }
}

std::string Tracer::ReportString() const {
  // The exporters are foreground-only, but lock anyway: they read every
  // guarded field, and a straggling background span would otherwise race.
  MutexLock lock(&mutex_);
  std::string out;
  char line[256];
  out += "spans (wall s, I/Os r+w, modeled s, budget peak):\n";
  for (const SpanRecord& span : spans_) {
    std::snprintf(line, sizeof(line),
                  "  %*s%-24s %8.4fs  io %llu+%llu  model %.3fs  peak %llu%s\n",
                  span.depth * 2, "", span.name.c_str(),
                  span.duration_seconds,
                  static_cast<unsigned long long>(span.reads),
                  static_cast<unsigned long long>(span.writes),
                  span.modeled_seconds,
                  static_cast<unsigned long long>(span.budget_peak),
                  span.closed ? "" : "  (open)");
    out += line;
  }
  std::string metrics_text = metrics_.ToString();
  if (!metrics_text.empty()) {
    out += "metrics:\n";
    out += metrics_text;
  }
  if (!run_events_.empty()) {
    out += "run events:";
    for (int i = 0; i < kNumRunEventKinds; ++i) {
      if (run_event_counts_[i] == 0) continue;
      std::snprintf(line, sizeof(line), " %s=%llu",
                    RunEventKindName(static_cast<RunEventKind>(i)),
                    static_cast<unsigned long long>(run_event_counts_[i]));
      out += line;
    }
    out += '\n';
  }
  return out;
}

namespace {

void SpanIoToJson(JsonWriter* writer, const SpanRecord& span) {
  writer->Key("io");
  writer->BeginObject();
  writer->Key("reads");
  writer->Uint(span.reads);
  writer->Key("writes");
  writer->Uint(span.writes);
  writer->Key("total");
  writer->Uint(span.reads + span.writes);
  writer->Key("modeled_seconds");
  writer->Double(span.modeled_seconds);
  writer->Key("categories");
  writer->BeginObject();
  for (int i = 0; i < kNumIoCategories; ++i) {
    if (span.category_reads[i] == 0 && span.category_writes[i] == 0) continue;
    writer->Key(IoCategoryName(static_cast<IoCategory>(i)));
    writer->BeginObject();
    writer->Key("reads");
    writer->Uint(span.category_reads[i]);
    writer->Key("writes");
    writer->Uint(span.category_writes[i]);
    writer->EndObject();
  }
  writer->EndObject();
  writer->EndObject();
}

void SpanToJson(JsonWriter* writer, const SpanRecord& span) {
  writer->BeginObject();
  writer->Key("name");
  writer->String(span.name);
  writer->Key("id");
  writer->Int(span.id);
  writer->Key("parent");
  writer->Int(span.parent_id);
  writer->Key("depth");
  writer->Int(span.depth);
  writer->Key("tid");
  writer->Int(span.tid);
  writer->Key("start_seconds");
  writer->Double(span.start_seconds);
  writer->Key("wall_seconds");
  writer->Double(span.duration_seconds);
  writer->Key("closed");
  writer->Bool(span.closed);
  SpanIoToJson(writer, span);
  writer->Key("memory");
  writer->BeginObject();
  writer->Key("budget_used_open");
  writer->Uint(span.budget_used_open);
  writer->Key("budget_used_close");
  writer->Uint(span.budget_used_close);
  writer->Key("budget_peak");
  writer->Uint(span.budget_peak);
  writer->EndObject();
  writer->EndObject();
}

}  // namespace

void Tracer::ToJson(JsonWriter* writer) const {
  MutexLock lock(&mutex_);
  writer->BeginObject();
  writer->Key("schema");
  writer->String("nexsort-telemetry-v1");
  writer->Key("elapsed_seconds");
  writer->Double(ElapsedSeconds());
  writer->Key("spans");
  writer->BeginArray();
  for (const SpanRecord& span : spans_) SpanToJson(writer, span);
  writer->EndArray();
  writer->Key("run_events");
  writer->BeginObject();
  writer->Key("count");
  writer->Uint(run_events_.size());
  writer->Key("by_kind");
  writer->BeginObject();
  for (int i = 0; i < kNumRunEventKinds; ++i) {
    writer->Key(RunEventKindName(static_cast<RunEventKind>(i)));
    writer->Uint(run_event_counts_[i]);
  }
  writer->EndObject();
  writer->EndObject();
  writer->Key("metrics");
  metrics_.ToJson(writer);
  writer->EndObject();
}

std::string Tracer::ToJsonString() const {
  JsonWriter writer;
  ToJson(&writer);
  return std::move(writer).Take();
}

std::string Tracer::ToJsonl() const {
  // Span lines are stamped at their start, event lines at their moment;
  // merge the two streams by timestamp.
  MutexLock lock(&mutex_);
  std::vector<std::pair<double, std::string>> lines;
  lines.reserve(spans_.size() + run_events_.size());
  for (const SpanRecord& span : spans_) {
    JsonWriter writer;
    writer.BeginObject();
    writer.Key("type");
    writer.String("span");
    writer.Key("span");
    SpanToJson(&writer, span);
    writer.EndObject();
    lines.emplace_back(span.start_seconds, std::move(writer).Take());
  }
  for (const RunEvent& event : run_events_) {
    JsonWriter writer;
    writer.BeginObject();
    writer.Key("type");
    writer.String("run_event");
    writer.Key("kind");
    writer.String(RunEventKindName(event.kind));
    writer.Key("run_id");
    writer.Uint(event.run_id);
    writer.Key("category");
    writer.String(IoCategoryName(event.category));
    writer.Key("bytes");
    writer.Uint(event.bytes);
    writer.Key("at_seconds");
    writer.Double(event.at_seconds);
    writer.EndObject();
    lines.emplace_back(event.at_seconds, std::move(writer).Take());
  }
  std::stable_sort(lines.begin(), lines.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string out;
  for (auto& [at, line] : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace nexsort
