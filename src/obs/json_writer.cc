#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

namespace nexsort {

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    if (!has_element_.empty()) has_element_.back() = true;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

void JsonWriter::OpenContainer(char open) {
  BeforeValue();
  out_ += open;
  has_element_.push_back(false);
}

void JsonWriter::CloseContainer(char close) {
  has_element_.pop_back();
  out_ += close;
  if (!has_element_.empty()) has_element_.back() = true;
}

void JsonWriter::Key(std::string_view name) {
  if (!has_element_.empty() && has_element_.back()) out_ += ',';
  if (!has_element_.empty()) has_element_.back() = false;
  AppendEscaped(name);
  out_ += ':';
  after_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  AppendEscaped(value);
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == value) {
      out_ += shorter;
      return;
    }
  }
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

void JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
}

void JsonWriter::AppendEscaped(std::string_view value) {
  out_ += '"';
  for (unsigned char c : value) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\b': out_ += "\\b"; break;
      case '\f': out_ += "\\f"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += static_cast<char>(c);
        }
    }
  }
  out_ += '"';
}

}  // namespace nexsort
