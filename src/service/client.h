// ServiceClient: the nexsortctl side of `nexsortd-wire-v1` — connect to
// the daemon's unix-domain socket, send one JSON request per line, read
// one JSON response per line. Thin by design: requests are composed by
// the caller (or the helpers here) and responses come back as parsed
// JsonValue trees; all interpretation stays with the tool.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "service/wire.h"
#include "util/status.h"

namespace nexsort {

class ServiceClient {
 public:
  /// Connect to the daemon listening on `socket_path`.
  [[nodiscard]] static StatusOr<std::unique_ptr<ServiceClient>> Connect(
      const std::string& socket_path);

  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Send one request line (JSON text, no trailing newline) and parse the
  /// response line. IOError when the daemon hangs up mid-call.
  [[nodiscard]] StatusOr<JsonValue> Call(std::string_view request_json);

 private:
  explicit ServiceClient(int fd);

  int fd_;
  std::string buffer_;  // bytes read past the last response line
};

/// Lift a wire response into a Status: {"ok":true} → OK; {"ok":false}
/// → InvalidArgument carrying the server's "error" text.
[[nodiscard]] Status ResponseStatus(const JsonValue& response);

}  // namespace nexsort
