// Dispatch policy of nexsortd (docs/SERVICE.md): who runs next, and under
// what memory entitlement.
//
// FairScheduler implements stride scheduling over tenants. Each tenant
// carries a virtual-time "pass"; dispatching a job advances its tenant's
// pass by bytes/weight, and the next dispatch goes to the eligible tenant
// with the minimum pass. A tenant that streams one huge job therefore
// accumulates pass quickly and yields the next slots to tenants with small
// jobs — the no-starvation property the service load test asserts. Backlog
// within a tenant is ordered by (priority desc, arrival). Eligibility is
// bounded by per-tenant quotas (max in-flight jobs, max in-flight bytes),
// and total backlog by a queue depth that rejects with a deterministic
// retry-after — backpressure, not buffering, when overloaded.
//
// AdmissionController guards the shared MemoryBudget: every job runs under
// a fixed grant of G blocks, and a job is only dispatched while the sum of
// grants of admitted-but-unfinished jobs stays within the admissible pool
// (budget minus env-owned cache frames). Admit() additionally takes a real
// BudgetReservation of G — the blocks are physically held from admission
// until the job starts consuming them itself (OnJobStart releases the
// reservation; the ledger entitlement stays until OnJobFinish). With the
// env's sort_memory_blocks pinned below G, no job can reach into another
// job's entitlement, so concurrent sorts see the same memory as solo runs
// — the root of the byte-identity guarantee.
//
// Both classes are externally synchronized (the service's one mutex) and
// fully deterministic: no clocks, no threads, no randomness — unit tests
// drive them step by step.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "extmem/memory_budget.h"
#include "util/status.h"

namespace nexsort {

/// Per-tenant dispatch limits.
struct TenantQuota {
  /// Share of dispatch bandwidth relative to other tenants (> 0).
  double weight = 1.0;

  /// Concurrent running jobs this tenant may hold.
  uint32_t max_in_flight = 2;

  /// Input bytes this tenant may have running at once; 0 = unlimited.
  uint64_t max_bytes_in_flight = 0;
};

/// One schedulable job, as the scheduler sees it.
struct QueuedJob {
  uint64_t job_id = 0;
  std::string tenant;
  int32_t priority = 0;  // higher dispatches earlier within its tenant
  uint64_t bytes = 1;    // input size: the fairness currency
};

struct FairSchedulerOptions {
  /// Total backlog across tenants; Enqueue rejects beyond this.
  size_t max_queue_depth = 64;

  /// Deterministic retry hint handed to rejected submitters.
  uint64_t retry_after_ms = 50;

  /// Quota for tenants without an explicit SetQuota.
  TenantQuota default_quota;
};

/// Weighted-fair (stride) scheduler across tenants. Externally
/// synchronized; deterministic.
class FairScheduler {
 public:
  explicit FairScheduler(FairSchedulerOptions options);

  /// Declare `tenant`'s quota (before or after its first job).
  void SetQuota(const std::string& tenant, TenantQuota quota);

  /// Add a job to its tenant's backlog. Fails with OutOfMemory when the
  /// global depth bound is hit; *retry_after_ms then carries the hint.
  [[nodiscard]] Status Enqueue(const QueuedJob& job,
                               uint64_t* retry_after_ms = nullptr);

  /// Dispatch the next job: the minimum-pass tenant (ties by name) whose
  /// quota admits its front job. Charges the tenant's pass and in-flight
  /// accounting. False when nothing is eligible (empty, or every backlog
  /// is quota-blocked).
  [[nodiscard]] bool PickNext(QueuedJob* out);

  /// A dispatched job finished (any terminal state): return its in-flight
  /// allowance.
  void OnComplete(const std::string& tenant, uint64_t bytes);

  /// Remove a still-queued job (cancellation). False when not queued.
  [[nodiscard]] bool Remove(uint64_t job_id);

  /// Total queued (not yet dispatched) jobs.
  [[nodiscard]] size_t depth() const;

  /// True when some queued job is currently dispatchable.
  [[nodiscard]] bool HasEligible() const;

  uint64_t rejected() const { return rejected_; }
  uint64_t dispatched() const { return dispatched_; }

  /// Live per-tenant view for the stats endpoint.
  struct TenantSnapshot {
    std::string tenant;
    double weight = 1.0;
    double pass = 0;
    uint32_t in_flight = 0;
    uint64_t bytes_in_flight = 0;
    size_t queued = 0;
    uint64_t dispatched = 0;
  };
  [[nodiscard]] std::vector<TenantSnapshot> Snapshot() const;

 private:
  struct Entry {
    QueuedJob job;
    uint64_t seq = 0;  // arrival order within the tenant
  };

  struct Tenant {
    TenantQuota quota;
    double pass = 0;
    uint32_t in_flight = 0;
    uint64_t bytes_in_flight = 0;
    uint64_t dispatched = 0;
    std::vector<Entry> backlog;  // ordered (priority desc, seq asc)
  };

  Tenant& GetTenant(const std::string& name);
  [[nodiscard]] bool Eligible(const Tenant& tenant) const;

  /// Pass floor for a tenant (re)activating: the minimum pass among
  /// tenants with work, so an idle tenant cannot bank virtual time and
  /// then monopolize dispatch.
  [[nodiscard]] double ActivePassFloor() const;

  FairSchedulerOptions options_;
  std::map<std::string, Tenant> tenants_;  // ordered: deterministic ties
  size_t depth_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t rejected_ = 0;
  uint64_t dispatched_ = 0;
};

/// Ledger of per-job memory grants over the shared budget. Externally
/// synchronized.
class AdmissionController {
 public:
  /// Jobs run under `grant_blocks` each; the sum of live grants is capped
  /// at `admissible_blocks` (the budget minus env-held frames).
  AdmissionController(MemoryBudget* budget, uint64_t grant_blocks,
                      uint64_t admissible_blocks);

  /// Reserve one grant for `job_id`: ledger entry plus a physical
  /// BudgetReservation of grant_blocks. OutOfMemory when the admissible
  /// pool is exhausted (every executor slot holds a grant).
  [[nodiscard]] Status Admit(uint64_t job_id);

  /// The job begins executing: release the physical reservation so the
  /// job's own components can acquire the same blocks. Its ledger
  /// entitlement stays.
  void OnJobStart(uint64_t job_id);

  /// Terminal state: return the grant to the admissible pool.
  void OnJobFinish(uint64_t job_id);

  /// True when one more Admit() would succeed.
  [[nodiscard]] bool HasCapacity() const;

  uint64_t grant_blocks() const { return grant_blocks_; }
  uint64_t admissible_blocks() const { return admissible_blocks_; }
  uint64_t ledger_blocks() const { return ledger_blocks_; }
  uint64_t admitted_jobs() const { return admissions_.size(); }

 private:
  struct Grant {
    uint64_t job_id = 0;
    BudgetReservation reservation;  // held admit -> start
    bool started = false;
  };

  MemoryBudget* budget_;
  uint64_t grant_blocks_;
  uint64_t admissible_blocks_;
  uint64_t ledger_blocks_ = 0;
  std::vector<Grant> admissions_;
};

}  // namespace nexsort
