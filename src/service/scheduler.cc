#include "service/scheduler.h"

#include <algorithm>
#include <limits>

#include "util/dcheck.h"

namespace nexsort {

FairScheduler::FairScheduler(FairSchedulerOptions options)
    : options_(options) {
  if (options_.default_quota.weight <= 0) options_.default_quota.weight = 1.0;
}

void FairScheduler::SetQuota(const std::string& tenant, TenantQuota quota) {
  if (quota.weight <= 0) quota.weight = 1.0;
  GetTenant(tenant).quota = quota;
}

FairScheduler::Tenant& FairScheduler::GetTenant(const std::string& name) {
  auto [it, inserted] = tenants_.try_emplace(name);
  if (inserted) it->second.quota = options_.default_quota;
  return it->second;
}

double FairScheduler::ActivePassFloor() const {
  double floor = std::numeric_limits<double>::max();
  bool any = false;
  for (const auto& [name, tenant] : tenants_) {
    if (tenant.backlog.empty() && tenant.in_flight == 0) continue;
    floor = std::min(floor, tenant.pass);
    any = true;
  }
  return any ? floor : 0;
}

Status FairScheduler::Enqueue(const QueuedJob& job,
                              uint64_t* retry_after_ms) {
  if (depth_ >= options_.max_queue_depth) {
    ++rejected_;
    if (retry_after_ms != nullptr) *retry_after_ms = options_.retry_after_ms;
    return Status::OutOfMemory(
        "queue full (" + std::to_string(depth_) + " jobs); retry in " +
        std::to_string(options_.retry_after_ms) + "ms");
  }
  Tenant& tenant = GetTenant(job.tenant);
  if (tenant.backlog.empty() && tenant.in_flight == 0) {
    // (Re)activation: an idle tenant's stale pass would either starve it
    // (too high) or let it monopolize dispatch (too low); align it with
    // the busiest-waiting floor.
    tenant.pass = std::max(tenant.pass, ActivePassFloor());
  }
  Entry entry{job, next_seq_++};
  auto pos = std::upper_bound(
      tenant.backlog.begin(), tenant.backlog.end(), entry,
      [](const Entry& a, const Entry& b) {
        if (a.job.priority != b.job.priority) {
          return a.job.priority > b.job.priority;
        }
        return a.seq < b.seq;
      });
  tenant.backlog.insert(pos, std::move(entry));
  ++depth_;
  return Status::OK();
}

bool FairScheduler::Eligible(const Tenant& tenant) const {
  if (tenant.backlog.empty()) return false;
  const TenantQuota& quota = tenant.quota;
  if (tenant.in_flight >= quota.max_in_flight) return false;
  if (quota.max_bytes_in_flight > 0) {
    uint64_t front_bytes = tenant.backlog.front().job.bytes;
    // A job bigger than the whole byte quota must still be dispatchable
    // when the tenant is otherwise idle, or it could never run.
    if (tenant.bytes_in_flight > 0 &&
        tenant.bytes_in_flight + front_bytes > quota.max_bytes_in_flight) {
      return false;
    }
  }
  return true;
}

bool FairScheduler::HasEligible() const {
  for (const auto& [name, tenant] : tenants_) {
    if (Eligible(tenant)) return true;
  }
  return false;
}

bool FairScheduler::PickNext(QueuedJob* out) {
  Tenant* best = nullptr;
  for (auto& [name, tenant] : tenants_) {  // map order: ties by name
    if (!Eligible(tenant)) continue;
    if (best == nullptr || tenant.pass < best->pass) best = &tenant;
  }
  if (best == nullptr) return false;
  Entry entry = std::move(best->backlog.front());
  best->backlog.erase(best->backlog.begin());
  --depth_;
  ++dispatched_;
  ++best->dispatched;
  ++best->in_flight;
  best->bytes_in_flight += entry.job.bytes;
  // Stride charge: virtual time advances with the work dispatched, scaled
  // down by the tenant's weight. Zero-byte jobs still pay one unit so a
  // stream of empty jobs cannot freeze the pass.
  best->pass += static_cast<double>(std::max<uint64_t>(entry.job.bytes, 1)) /
                best->quota.weight;
  *out = std::move(entry.job);
  return true;
}

void FairScheduler::OnComplete(const std::string& tenant_name,
                               uint64_t bytes) {
  Tenant& tenant = GetTenant(tenant_name);
  NEXSORT_DCHECK_MSG(tenant.in_flight > 0,
                     "OnComplete without a dispatched job");
  if (tenant.in_flight > 0) --tenant.in_flight;
  tenant.bytes_in_flight -= std::min(tenant.bytes_in_flight, bytes);
}

bool FairScheduler::Remove(uint64_t job_id) {
  for (auto& [name, tenant] : tenants_) {
    for (auto it = tenant.backlog.begin(); it != tenant.backlog.end(); ++it) {
      if (it->job.job_id == job_id) {
        tenant.backlog.erase(it);
        --depth_;
        return true;
      }
    }
  }
  return false;
}

size_t FairScheduler::depth() const { return depth_; }

std::vector<FairScheduler::TenantSnapshot> FairScheduler::Snapshot() const {
  std::vector<TenantSnapshot> out;
  out.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) {
    TenantSnapshot snapshot;
    snapshot.tenant = name;
    snapshot.weight = tenant.quota.weight;
    snapshot.pass = tenant.pass;
    snapshot.in_flight = tenant.in_flight;
    snapshot.bytes_in_flight = tenant.bytes_in_flight;
    snapshot.queued = tenant.backlog.size();
    snapshot.dispatched = tenant.dispatched;
    out.push_back(std::move(snapshot));
  }
  return out;
}

AdmissionController::AdmissionController(MemoryBudget* budget,
                                         uint64_t grant_blocks,
                                         uint64_t admissible_blocks)
    : budget_(budget),
      grant_blocks_(grant_blocks),
      admissible_blocks_(admissible_blocks) {}

Status AdmissionController::Admit(uint64_t job_id) {
  if (ledger_blocks_ + grant_blocks_ > admissible_blocks_) {
    return Status::OutOfMemory(
        "admission: " + std::to_string(ledger_blocks_) + "/" +
        std::to_string(admissible_blocks_) +
        " blocks granted; no room for another " +
        std::to_string(grant_blocks_));
  }
  Grant grant;
  grant.job_id = job_id;
  // The physical hold: these blocks are out of everyone else's reach from
  // this moment. The ledger invariant makes the acquire infallible —
  // everything inside the admissible pool is either granted (and by the
  // pinned sort size, actually used only up to its grant) or free.
  RETURN_IF_ERROR(grant.reservation.Acquire(budget_, grant_blocks_));
  ledger_blocks_ += grant_blocks_;
  admissions_.push_back(std::move(grant));
  return Status::OK();
}

void AdmissionController::OnJobStart(uint64_t job_id) {
  for (Grant& grant : admissions_) {
    if (grant.job_id == job_id && !grant.started) {
      grant.started = true;
      grant.reservation.Reset();
      return;
    }
  }
  NEXSORT_DCHECK_MSG(false, "OnJobStart for a job never admitted");
}

void AdmissionController::OnJobFinish(uint64_t job_id) {
  for (auto it = admissions_.begin(); it != admissions_.end(); ++it) {
    if (it->job_id == job_id) {
      ledger_blocks_ -= grant_blocks_;
      admissions_.erase(it);  // reservation (if still held) releases here
      return;
    }
  }
  NEXSORT_DCHECK_MSG(false, "OnJobFinish for a job never admitted");
}

bool AdmissionController::HasCapacity() const {
  return ledger_blocks_ + grant_blocks_ <= admissible_blocks_;
}

}  // namespace nexsort
