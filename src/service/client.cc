#include "service/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace nexsort {

StatusOr<std::unique_ptr<ServiceClient>> ServiceClient::Connect(
    const std::string& socket_path) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad socket path: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = Status::IOError("connect " + socket_path + ": " +
                                    std::strerror(errno));
    ::close(fd);
    return status;
  }
  return std::unique_ptr<ServiceClient>(new ServiceClient(fd));
}

ServiceClient::ServiceClient(int fd) : fd_(fd) {}

ServiceClient::~ServiceClient() { ::close(fd_); }

StatusOr<JsonValue> ServiceClient::Call(std::string_view request_json) {
  std::string line(request_json);
  line.push_back('\n');
  size_t sent = 0;
  while (sent < line.size()) {
    ssize_t n = ::send(fd_, line.data() + sent, line.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IOError("daemon connection closed while sending");
    }
    sent += static_cast<size_t>(n);
  }

  char chunk[4096];
  while (true) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string response = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return JsonValue::Parse(response);
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::IOError("daemon connection closed while waiting");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Status ResponseStatus(const JsonValue& response) {
  if (response.GetBool("ok", false)) return Status::OK();
  std::string error = response.GetString("error", "unknown server error");
  return Status::InvalidArgument(error);
}

}  // namespace nexsort
