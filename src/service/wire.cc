#include "service/wire.h"

#include <cmath>
#include <cstdlib>

#include "obs/json_writer.h"

namespace nexsort {

namespace {

Status ParseErrorAt(size_t offset, std::string_view what) {
  return Status::ParseError("json: " + std::string(what) + " at byte " +
                            std::to_string(offset));
}

}  // namespace

/// Recursive-descent parser over one in-memory line. Depth is bounded to
/// keep a hostile request from exhausting the connection thread's stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Status ParseDocument(JsonValue* out) {
    RETURN_IF_ERROR(ParseValue(out, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return ParseErrorAt(pos_, "trailing content after document");
    }
    return Status::OK();
  }

 private:
  static constexpr int kMaxDepth = 64;

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return ParseErrorAt(pos_, "nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return ParseErrorAt(pos_, "unexpected end");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->string_);
      case 't':
        RETURN_IF_ERROR(Literal("true"));
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = true;
        return Status::OK();
      case 'f':
        RETURN_IF_ERROR(Literal("false"));
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = false;
        return Status::OK();
      case 'n':
        RETURN_IF_ERROR(Literal("null"));
        out->kind_ = JsonValue::Kind::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return ParseErrorAt(pos_, "malformed literal");
    }
    pos_ += word.size();
    return Status::OK();
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return ParseErrorAt(pos_, "expected member name");
      }
      std::string key;
      RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return ParseErrorAt(pos_, "expected ':'");
      JsonValue value;
      RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return ParseErrorAt(pos_, "expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue item;
      RETURN_IF_ERROR(ParseValue(&item, depth + 1));
      out->items_.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return ParseErrorAt(pos_, "expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) {
        return ParseErrorAt(pos_, "unterminated string");
      }
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c == '\\') {
        RETURN_IF_ERROR(ParseEscape(out));
        continue;
      }
      if (c < 0x20) return ParseErrorAt(pos_, "raw control character");
      out->push_back(static_cast<char>(c));
      ++pos_;
    }
  }

  Status ParseEscape(std::string* out) {
    ++pos_;  // backslash
    if (pos_ >= text_.size()) return ParseErrorAt(pos_, "dangling escape");
    char c = text_[pos_++];
    switch (c) {
      case '"': out->push_back('"'); return Status::OK();
      case '\\': out->push_back('\\'); return Status::OK();
      case '/': out->push_back('/'); return Status::OK();
      case 'b': out->push_back('\b'); return Status::OK();
      case 'f': out->push_back('\f'); return Status::OK();
      case 'n': out->push_back('\n'); return Status::OK();
      case 'r': out->push_back('\r'); return Status::OK();
      case 't': out->push_back('\t'); return Status::OK();
      case 'u': {
        uint32_t code = 0;
        RETURN_IF_ERROR(ParseHex4(&code));
        // Surrogate pair: a high surrogate must be followed by \u-escaped
        // low surrogate; combine into one scalar value.
        if (code >= 0xD800 && code <= 0xDBFF) {
          if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
              text_[pos_ + 1] != 'u') {
            return ParseErrorAt(pos_, "unpaired high surrogate");
          }
          pos_ += 2;
          uint32_t low = 0;
          RETURN_IF_ERROR(ParseHex4(&low));
          if (low < 0xDC00 || low > 0xDFFF) {
            return ParseErrorAt(pos_, "invalid low surrogate");
          }
          code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
        } else if (code >= 0xDC00 && code <= 0xDFFF) {
          return ParseErrorAt(pos_, "unpaired low surrogate");
        }
        AppendUtf8(out, code);
        return Status::OK();
      }
      default:
        return ParseErrorAt(pos_ - 1, "unknown escape");
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) {
      return ParseErrorAt(pos_, "truncated \\u escape");
    }
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + i];
      uint32_t digit;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (c >= 'a' && c <= 'f') digit = 10 + (c - 'a');
      else if (c >= 'A' && c <= 'F') digit = 10 + (c - 'A');
      else return ParseErrorAt(pos_ + i, "bad hex digit");
      value = (value << 4) | digit;
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, uint32_t code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
      // sign consumed
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return ParseErrorAt(pos_, "expected value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return ParseErrorAt(start, "malformed number");
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = value;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

StatusOr<JsonValue> JsonValue::Parse(std::string_view text) {
  JsonValue value;
  JsonParser parser(text);
  RETURN_IF_ERROR(parser.ParseDocument(&value));
  return value;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string JsonValue::GetString(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* member = Find(key);
  if (member == nullptr || !member->is_string()) return std::string(fallback);
  return member->string_value();
}

uint64_t JsonValue::GetUint(std::string_view key, uint64_t fallback) const {
  const JsonValue* member = Find(key);
  if (member == nullptr || !member->is_number() ||
      member->number_value() < 0) {
    return fallback;
  }
  return static_cast<uint64_t>(member->number_value());
}

int64_t JsonValue::GetInt(std::string_view key, int64_t fallback) const {
  const JsonValue* member = Find(key);
  if (member == nullptr || !member->is_number()) return fallback;
  return static_cast<int64_t>(member->number_value());
}

double JsonValue::GetDouble(std::string_view key, double fallback) const {
  const JsonValue* member = Find(key);
  if (member == nullptr || !member->is_number()) return fallback;
  return member->number_value();
}

bool JsonValue::GetBool(std::string_view key, bool fallback) const {
  const JsonValue* member = Find(key);
  if (member == nullptr || !member->is_bool()) return fallback;
  return member->bool_value();
}

void JsonValue::WriteTo(JsonWriter* writer) const {
  switch (kind_) {
    case Kind::kNull:
      writer->Null();
      return;
    case Kind::kBool:
      writer->Bool(bool_);
      return;
    case Kind::kNumber:
      // Counters parse as integral doubles; keep them integral on the way
      // back out so a stats round-trip stays byte-comparable.
      if (number_ == static_cast<double>(static_cast<int64_t>(number_))) {
        writer->Int(static_cast<int64_t>(number_));
      } else {
        writer->Double(number_);
      }
      return;
    case Kind::kString:
      writer->String(string_);
      return;
    case Kind::kArray:
      writer->BeginArray();
      for (const JsonValue& item : items_) item.WriteTo(writer);
      writer->EndArray();
      return;
    case Kind::kObject:
      writer->BeginObject();
      for (const auto& [name, value] : members_) {
        writer->Key(name);
        value.WriteTo(writer);
      }
      writer->EndObject();
      return;
  }
}

std::string JsonValue::ToJsonString() const {
  JsonWriter writer;
  WriteTo(&writer);
  return std::move(writer).Take();
}

}  // namespace nexsort
