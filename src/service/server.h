// SocketServer: the framing shim between a unix-domain stream socket and
// SortService (docs/SERVICE.md). Protocol `nexsortd-wire-v1`: each
// request is one JSON object on one line; each response is one JSON
// object on one line — {"ok":true,...} or {"ok":false,"error":...} with
// a "retry_after_ms" hint when the queue rejected the submission. All
// policy lives in SortService; this layer only parses, dispatches, and
// serializes, one thread per connection.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "service/service.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace nexsort {

inline constexpr std::string_view kWireSchema = "nexsortd-wire-v1";

class SocketServer {
 public:
  /// Bind `socket_path` (replacing a stale socket file left by a crashed
  /// instance), listen, and start the accept loop. `service` must outlive
  /// the server.
  [[nodiscard]] static StatusOr<std::unique_ptr<SocketServer>> Start(
      SortService* service, std::string socket_path);

  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Stop accepting, unblock every connection, join all threads, and
  /// remove the socket file. Idempotent.
  void Stop();

  const std::string& socket_path() const { return socket_path_; }

  /// True once a client issued the shutdown op.
  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  /// Block until a client issues the shutdown op or Stop() runs. Returns
  /// true when a client asked (false = stopped locally). The daemon's
  /// main thread waits here alongside its signal pipe.
  [[nodiscard]] bool WaitForShutdownRequest();

 private:
  SocketServer(SortService* service, std::string socket_path, int listen_fd);

  void AcceptLoop();
  void ServeConnection(int fd);

  /// Parse one request line, dispatch, serialize one response line.
  [[nodiscard]] std::string HandleLine(std::string_view line);
  [[nodiscard]] std::string HandleSubmit(const class JsonValue& request);

  SortService* service_;
  std::string socket_path_;
  int listen_fd_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};

  Mutex lock_{"SocketServer::lock_", lock_rank::kSocketServer};
  CondVar shutdown_cv_;
  std::vector<int> connection_fds_ NEXSORT_GUARDED_BY(lock_);
  std::vector<std::thread> connection_threads_ NEXSORT_GUARDED_BY(lock_);
  std::thread accept_thread_;
};

}  // namespace nexsort
