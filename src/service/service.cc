#include "service/service.h"

#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include "core/order_spec_parse.h"
#include "extmem/stream.h"
#include "merge/batch_update.h"
#include "merge/structural_merge.h"
#include "obs/json_writer.h"
#include "sort/merge_plan.h"

namespace nexsort {

namespace {

/// Budget blocks a job uses beyond its pinned sort memory: the sorting
/// phase's data stack (1) + path stack (2), and one block of slack for the
/// output phase's emitter/reader window (which runs after the stacks are
/// gone but is kept inside the grant for safety).
constexpr uint64_t kJobOverheadBlocks = 4;

/// NexSorter rejects pinned sort grants below this.
constexpr uint64_t kMinSortBlocks = 4;

Status WriteFileAtomic(ScratchNamespace* scratch, const std::string& staged,
                       const std::string& final_path,
                       const std::string& contents) {
  {
    std::ofstream out(staged, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open staging file " + staged);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    if (!out) return Status::IOError("short write to staging file " + staged);
  }
  std::error_code ec;
  std::filesystem::rename(staged, final_path, ec);
  if (ec) {
    return Status::IOError("renaming staged output to " + final_path + ": " +
                           ec.message());
  }
  // The staged path moved away; drop it from the namespace's ledger so
  // teardown does not try to delete the delivered output.
  (void)scratch->Remove(staged);  // NotFound-only failure is harmless here
  return Status::OK();
}

}  // namespace

const char* JobStateName(JobStatus::State state) {
  switch (state) {
    case JobStatus::State::kQueued: return "queued";
    case JobStatus::State::kRunning: return "running";
    case JobStatus::State::kDone: return "done";
    case JobStatus::State::kFailed: return "failed";
    case JobStatus::State::kCancelled: return "cancelled";
  }
  return "unknown";
}

const char* JobKindName(JobRequest::Kind kind) {
  switch (kind) {
    case JobRequest::Kind::kSort: return "sort";
    case JobRequest::Kind::kMerge: return "merge";
    case JobRequest::Kind::kBatchUpdate: return "batch_update";
  }
  return "unknown";
}

void JobStatus::ToJson(JsonWriter* writer) const {
  writer->BeginObject();
  writer->Key("id");
  writer->Uint(id);
  writer->Key("kind");
  writer->String(JobKindName(kind));
  writer->Key("tenant");
  writer->String(tenant);
  writer->Key("priority");
  writer->Int(priority);
  writer->Key("state");
  writer->String(JobStateName(state));
  if (!error.empty()) {
    writer->Key("error");
    writer->String(error);
  }
  writer->Key("submit_seconds");
  writer->Double(submit_seconds);
  if (start_seconds >= 0) {
    writer->Key("start_seconds");
    writer->Double(start_seconds);
  }
  if (finish_seconds >= 0) {
    writer->Key("finish_seconds");
    writer->Double(finish_seconds);
  }
  writer->Key("input_bytes");
  writer->Uint(input_bytes);
  writer->Key("output_bytes");
  writer->Uint(output_bytes);
  if (has_session) {
    writer->Key("session_id");
    writer->Uint(session_id);
  }
  if (streamed) {
    writer->Key("streamed");
    writer->Bool(true);
    if (time_to_first_byte_ms >= 0) {
      writer->Key("time_to_first_byte_ms");
      writer->Double(time_to_first_byte_ms);
    }
  }
  writer->EndObject();
}

SortService::SortService(ServiceOptions options, std::unique_ptr<SortEnv> env,
                         uint64_t grant_blocks, uint64_t admissible_blocks)
    : options_(std::move(options)),
      env_(std::move(env)),
      epoch_(std::chrono::steady_clock::now()),
      scheduler_(FairSchedulerOptions{options_.max_queue_depth,
                                      options_.retry_after_ms,
                                      options_.default_quota}),
      admission_(env_->budget(), grant_blocks, admissible_blocks) {}

StatusOr<std::unique_ptr<SortService>> SortService::Create(
    ServiceOptions options) {
  if (options.executors == 0) {
    return Status::InvalidArgument("service: executors must be >= 1");
  }

  // Size the per-job grant so `executors` concurrent jobs partition the
  // admissible pool (budget minus env-owned cache frames) exactly, then
  // pin the env's sort memory inside the grant: every job — concurrent or
  // solo — sorts with identical memory, which keeps run boundaries and
  // therefore output bytes deterministic.
  uint64_t total = options.env.memory_blocks;
  uint64_t cache = options.env.cache.frames;
  if (cache >= total) {
    return Status::InvalidArgument(
        "service: cache frames consume the whole budget");
  }
  uint64_t admissible = total - cache;
  uint64_t grant = admissible / options.executors;
  if (grant < kMinSortBlocks + kJobOverheadBlocks) {
    return Status::InvalidArgument(
        "service: budget " + std::to_string(admissible) +
        " blocks cannot grant " + std::to_string(options.executors) +
        " executors " +
        std::to_string(kMinSortBlocks + kJobOverheadBlocks) +
        " blocks each; shrink executors or grow memory_blocks");
  }
  if (options.env.sort_memory_blocks == 0) {
    options.env.sort_memory_blocks = grant - kJobOverheadBlocks;
  } else if (options.env.sort_memory_blocks + kJobOverheadBlocks > grant) {
    return Status::InvalidArgument(
        "service: sort_memory_blocks " +
        std::to_string(options.env.sort_memory_blocks) +
        " exceeds the per-job grant of " + std::to_string(grant) +
        " minus " + std::to_string(kJobOverheadBlocks) + " overhead blocks");
  }
  // Opportunistic double buffering grabs a second sort buffer beyond the
  // grant when the budget momentarily has room — room that belongs to
  // another job's entitlement here. Keep concurrent jobs inside their
  // grants.
  options.env.parallel.double_buffer = false;

  uint64_t swept = 0;
  std::unique_ptr<ScratchNamespace> scratch;
  if (!options.scratch_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.scratch_dir, ec);
    if (ec) {
      return Status::IOError("service: cannot create scratch dir " +
                             options.scratch_dir + ": " + ec.message());
    }
    ASSIGN_OR_RETURN(swept, ScratchNamespace::SweepOrphans(
                                options.scratch_dir, options.scratch_prefix,
                                options.instance));
    scratch = std::make_unique<ScratchNamespace>(
        options.scratch_dir, options.scratch_prefix, options.instance);
    if (options.env.file_path.empty()) {
      // A daemon env defaults to file-backed working storage inside the
      // scratch namespace, so a crashed instance's device file is exactly
      // what the next instance's sweep reclaims.
      options.env.file_path = scratch->NewPath("env-device");
    }
  }

  ASSIGN_OR_RETURN(auto env, SortEnv::Create(options.env));

  uint32_t executors = options.executors;
  std::map<std::string, TenantQuota> quotas = options.tenant_quotas;
  std::unique_ptr<SortService> service(new SortService(
      std::move(options), std::move(env), grant, admissible));
  service->scratch_ = std::move(scratch);
  service->swept_orphans_ = swept;
  for (const auto& [tenant, quota] : quotas) {
    service->scheduler_.SetQuota(tenant, quota);
  }
  service->executors_.reserve(executors);
  for (uint32_t i = 0; i < executors; ++i) {
    service->executors_.emplace_back(
        [raw = service.get()] { raw->ExecutorLoop(); });
  }
  return service;
}

SortService::~SortService() { Shutdown(/*cancel_inflight=*/true); }

double SortService::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

uint64_t SortService::grant_blocks() const {
  return admission_.grant_blocks();
}

Status SortService::Submit(JobRequest request, uint64_t* job_id,
                           uint64_t* retry_after_ms) {
  auto record = std::make_unique<JobRecord>();
  if (!request.order_text.empty()) {
    ASSIGN_OR_RETURN(record->order, ParseOrderSpec(request.order_text));
  }
  if (request.stream && request.kind != JobRequest::Kind::kSort) {
    return Status::InvalidArgument("stream mode applies to sort jobs only");
  }
  if (!request.merge_policy.empty() && request.merge_policy != "planned" &&
      request.merge_policy != "greedy") {
    return Status::InvalidArgument("unknown merge_policy '" +
                                   request.merge_policy + "'");
  }

  uint64_t input_bytes = request.input_text.size() +
                         request.updates_text.size();
  for (const std::string& text : request.input_texts) {
    input_bytes += text.size();
  }

  MutexLock guard(&lock_);
  if (stopping_) {
    return Status::InvalidArgument("service is shutting down");
  }
  uint64_t id = next_job_id_++;
  QueuedJob queued;
  queued.job_id = id;
  queued.tenant = request.tenant;
  queued.priority = request.priority;
  queued.bytes = input_bytes;
  RETURN_IF_ERROR(scheduler_.Enqueue(queued, retry_after_ms));

  record->request = std::move(request);
  record->status.id = id;
  record->status.streamed = record->request.stream;
  record->status.kind = record->request.kind;
  record->status.tenant = record->request.tenant;
  record->status.priority = record->request.priority;
  record->status.state = JobStatus::State::kQueued;
  record->status.submit_seconds = NowSeconds();
  record->status.input_bytes = input_bytes;
  jobs_.emplace(id, std::move(record));
  *job_id = id;
  work_cv_.Signal();
  return Status::OK();
}

bool SortService::ShouldStopLocked() const {
  // A cancelling shutdown exits immediately (the backlog was cancelled
  // out from under us); a draining shutdown exits once the backlog is
  // empty, leaving running jobs to their executors.
  return stopping_ && (cancel_on_stop_ || scheduler_.depth() == 0);
}

void SortService::ExecutorLoop() {
  while (true) {
    QueuedJob queued;
    JobRecord* record = nullptr;
    {
      MutexLock guard(&lock_);
      while (!ShouldStopLocked() &&
             !(scheduler_.HasEligible() && admission_.HasCapacity())) {
        work_cv_.Wait(&lock_);
      }
      if (ShouldStopLocked()) return;
      if (!scheduler_.PickNext(&queued)) continue;
      auto it = jobs_.find(queued.job_id);
      record = it->second.get();
      // Infallible by the ledger invariant: HasCapacity held under this
      // same lock, and grants only move at dispatch/finish, also under it.
      Status admitted = admission_.Admit(queued.job_id);
      if (!admitted.ok()) {
        FinishJob(record, queued, admitted);
        continue;
      }
      record->status.state = JobStatus::State::kRunning;
      record->status.start_seconds = NowSeconds();
    }

    Status result = ExecuteJob(record);

    MutexLock guard(&lock_);
    admission_.OnJobFinish(queued.job_id);
    FinishJob(record, queued, result);
  }
}

Status SortService::ExecuteJob(JobRecord* record) {
  SortEnv::Session session = env_->NewSession();
  {
    // Publish the session's cancellation handle, then honour any Cancel()
    // that raced with dispatch before the handle was visible.
    MutexLock guard(&lock_);
    record->cancel = session.cancellation_handle();
    record->status.session_id = session.id();
    record->status.has_session = true;
    if (record->cancel_requested) record->cancel->Cancel();
    // From here the job's components allocate their own budget blocks —
    // hand the physically reserved grant over to them. The ledger keeps
    // other admissions out of it until OnJobFinish.
    admission_.OnJobStart(record->status.id);
  }

  const JobRequest& request = record->request;
  std::string output;
  Status result;
  switch (request.kind) {
    case JobRequest::Kind::kSort: {
      NexSortOptions sort_options;
      sort_options.order = record->order;
      if (request.merge_policy == "greedy") {
        sort_options.merge_policy = MergePolicy::kGreedy;
      }
      sort_options.dfs_placement = request.dfs_placement;
      NexSorter sorter(std::move(session), std::move(sort_options));
      StringByteSource source(request.input_text);
      if (request.stream) {
        // Pull-based output: drain the SortedStream chunk by chunk. The
        // bytes are identical to the eager call; what the stream buys the
        // job is the time_to_first_byte_ms measurement, stamped when the
        // first sorted chunk surfaces.
        auto begin = std::chrono::steady_clock::now();
        auto stream = sorter.SortStream(&source);
        result = stream.status();
        if (result.ok()) {
          std::string_view chunk;
          bool first = true;
          while (true) {
            auto more = stream.value()->Next(&chunk);
            if (!more.ok()) {
              result = more.status();
              break;
            }
            if (!more.value()) break;
            if (first) {
              first = false;
              double ttfb = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - begin)
                                .count();
              MutexLock guard(&lock_);
              record->status.time_to_first_byte_ms = ttfb;
            }
            output.append(chunk);
          }
        }
      } else {
        StringByteSink sink(&output);
        result = sorter.Sort(&source, &sink);
      }
      break;
    }
    case JobRequest::Kind::kMerge: {
      // Structural merge is one streaming pass over pre-sorted inputs: no
      // runs, no budget blocks, nothing to cancel block-by-block — merge
      // jobs cancel only while queued (docs/SERVICE.md).
      std::vector<StringByteSource> sources;
      sources.reserve(request.input_texts.size());
      std::vector<ByteSource*> raw;
      for (const std::string& text : request.input_texts) {
        sources.emplace_back(text);
      }
      for (StringByteSource& source : sources) raw.push_back(&source);
      MergeOptions merge_options;
      merge_options.order = record->order;
      merge_options.tracer = session.tracer();
      StringByteSink sink(&output);
      result = StructuralMergeMany(raw, &sink, merge_options);
      break;
    }
    case JobRequest::Kind::kBatchUpdate: {
      StringByteSource base(request.input_text);
      StringByteSink sink(&output);
      BatchUpdateOptions update_options;
      update_options.order = record->order;
      result = ApplyBatchUpdates(&base, request.updates_text,
                                 std::move(session), &sink, update_options);
      break;
    }
  }

  if (result.ok() && !request.output_path.empty()) {
    if (scratch_ == nullptr) {
      result = Status::InvalidArgument(
          "output_path needs a service scratch_dir");
    } else {
      std::string staged = scratch_->NewPath(
          "job" + std::to_string(record->status.id) + "-out");
      result = WriteFileAtomic(scratch_.get(), staged, request.output_path,
                               output);
    }
  }

  if (result.ok()) {
    MutexLock guard(&lock_);
    record->status.output_bytes = output.size();
    if (request.return_output) record->output = std::move(output);
  }
  return result;
}

void SortService::FinishJob(JobRecord* record, const QueuedJob& queued,
                            const Status& result) {
  scheduler_.OnComplete(queued.tenant, queued.bytes);
  record->cancel.reset();
  if (result.ok()) {
    record->status.state = JobStatus::State::kDone;
  } else if (result.IsCancelled()) {
    record->status.state = JobStatus::State::kCancelled;
    record->status.error = result.ToString();
  } else {
    record->status.state = JobStatus::State::kFailed;
    record->status.error = result.ToString();
  }
  record->status.finish_seconds = NowSeconds();
  work_cv_.SignalAll();
  terminal_cv_.SignalAll();
}

StatusOr<JobStatus> SortService::GetJob(uint64_t job_id) const {
  MutexLock guard(&lock_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("job " + std::to_string(job_id));
  }
  return it->second->status;
}

std::vector<JobStatus> SortService::ListJobs() const {
  MutexLock guard(&lock_);
  std::vector<JobStatus> out;
  out.reserve(jobs_.size());
  for (const auto& [id, record] : jobs_) out.push_back(record->status);
  return out;
}

Status SortService::Cancel(uint64_t job_id) {
  MutexLock guard(&lock_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("job " + std::to_string(job_id));
  }
  JobRecord* record = it->second.get();
  if (record->status.terminal()) return Status::OK();  // idempotent
  record->cancel_requested = true;
  if (record->status.state == JobStatus::State::kQueued &&
      scheduler_.Remove(job_id)) {
    record->status.state = JobStatus::State::kCancelled;
    record->status.error = "Cancelled: cancelled while queued";
    record->status.finish_seconds = NowSeconds();
    terminal_cv_.SignalAll();
    return Status::OK();
  }
  // Running (or mid-dispatch): flip the session token when it is already
  // published; the dispatch path re-checks cancel_requested otherwise.
  if (record->cancel != nullptr) record->cancel->Cancel();
  return Status::OK();
}

StatusOr<JobStatus> SortService::Wait(uint64_t job_id) {
  MutexLock guard(&lock_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("job " + std::to_string(job_id));
  }
  JobRecord* record = it->second.get();
  while (!record->status.terminal()) terminal_cv_.Wait(&lock_);
  return record->status;
}

StatusOr<std::string> SortService::TakeOutput(uint64_t job_id) {
  MutexLock guard(&lock_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("job " + std::to_string(job_id));
  }
  JobRecord* record = it->second.get();
  if (!record->status.terminal()) {
    return Status::InvalidArgument("job still in flight");
  }
  if (record->status.state != JobStatus::State::kDone) {
    return Status::InvalidArgument("job did not produce output: " +
                                   record->status.error);
  }
  if (!record->request.return_output) {
    return Status::InvalidArgument("job was not submitted with return_output");
  }
  if (record->output_taken) {
    return Status::InvalidArgument("output already taken");
  }
  record->output_taken = true;
  return std::move(record->output);
}

void SortService::Drain() {
  MutexLock guard(&lock_);
  for (;;) {
    bool all_terminal = true;
    for (const auto& [id, record] : jobs_) {
      if (!record->status.terminal()) {
        all_terminal = false;
        break;
      }
    }
    if (all_terminal) return;
    terminal_cv_.Wait(&lock_);
  }
}

void SortService::Shutdown(bool cancel_inflight) {
  {
    MutexLock guard(&lock_);
    if (stopping_ && executors_.empty()) return;  // already shut down
    stopping_ = true;
    cancel_on_stop_ = cancel_inflight;
    if (cancel_inflight) {
      for (auto& [id, record] : jobs_) {
        if (record->status.terminal()) continue;
        record->cancel_requested = true;
        if (record->status.state == JobStatus::State::kQueued &&
            scheduler_.Remove(id)) {
          record->status.state = JobStatus::State::kCancelled;
          record->status.error = "Cancelled: service shutdown";
          record->status.finish_seconds = NowSeconds();
        } else if (record->cancel != nullptr) {
          record->cancel->Cancel();
        }
      }
      terminal_cv_.SignalAll();
    }
    work_cv_.SignalAll();
  }
  if (!cancel_inflight) Drain();
  for (std::thread& executor : executors_) {
    if (executor.joinable()) executor.join();
  }
  executors_.clear();
}

std::string SortService::StatsJson() const {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("schema");
  writer.String("nexsortd-stats-v1");
  writer.Key("uptime_seconds");
  writer.Double(NowSeconds());
  writer.Key("env");
  env_->DescribeJson(&writer);
  writer.Key("sessions");
  env_->SessionsToJson(&writer);

  MutexLock guard(&lock_);
  writer.Key("queue");
  writer.BeginObject();
  writer.Key("depth");
  writer.Uint(scheduler_.depth());
  writer.Key("max_depth");
  writer.Uint(options_.max_queue_depth);
  writer.Key("dispatched");
  writer.Uint(scheduler_.dispatched());
  writer.Key("rejected");
  writer.Uint(scheduler_.rejected());
  writer.EndObject();

  writer.Key("admission");
  writer.BeginObject();
  writer.Key("grant_blocks");
  writer.Uint(admission_.grant_blocks());
  writer.Key("admissible_blocks");
  writer.Uint(admission_.admissible_blocks());
  writer.Key("ledger_blocks");
  writer.Uint(admission_.ledger_blocks());
  writer.Key("admitted_jobs");
  writer.Uint(admission_.admitted_jobs());
  writer.Key("swept_orphans");
  writer.Uint(swept_orphans_);
  writer.EndObject();

  writer.Key("tenants");
  writer.BeginArray();
  for (const FairScheduler::TenantSnapshot& tenant : scheduler_.Snapshot()) {
    writer.BeginObject();
    writer.Key("tenant");
    writer.String(tenant.tenant);
    writer.Key("weight");
    writer.Double(tenant.weight);
    writer.Key("pass");
    writer.Double(tenant.pass);
    writer.Key("in_flight");
    writer.Uint(tenant.in_flight);
    writer.Key("bytes_in_flight");
    writer.Uint(tenant.bytes_in_flight);
    writer.Key("queued");
    writer.Uint(tenant.queued);
    writer.Key("dispatched");
    writer.Uint(tenant.dispatched);
    writer.EndObject();
  }
  writer.EndArray();

  writer.Key("jobs");
  writer.BeginArray();
  for (const auto& [id, record] : jobs_) {
    record->status.ToJson(&writer);
  }
  writer.EndArray();
  writer.EndObject();
  return std::move(writer).Take();
}

}  // namespace nexsort
