// SortService: the in-process multi-tenant sort service nexsortd wraps a
// socket around (docs/SERVICE.md). Everything the daemon does — queueing,
// weighted-fair dispatch, admission against the shared MemoryBudget,
// cooperative cancellation, per-job stats — lives here, behind a plain
// C++ API, so the end-to-end behavior is unit-testable without a socket
// and the socket layer stays a dumb framing shim.
//
// One SortService owns one SortEnv. Jobs are submitted as JobRequests,
// queued per tenant, and executed by a fixed pool of executor threads;
// each executor runs at most one job, in its own SortEnv::Session, under
// an AdmissionController grant sized so that every concurrent job gets
// the same deterministic sort memory as a solo run (see scheduler.h) —
// that is what makes service outputs byte-identical to direct NexSorter
// runs, which the socket test and bench_service assert.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/nexsort.h"
#include "core/order_spec.h"
#include "env/sort_env.h"
#include "extmem/run_store.h"
#include "service/scheduler.h"
#include "util/cancellation.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace nexsort {

class JsonWriter;

struct ServiceOptions {
  /// The shared execution environment. sort_memory_blocks == 0 lets the
  /// service derive the largest deterministic per-job pin that fits
  /// `executors` concurrent jobs; a non-zero pin is validated against the
  /// admission grant instead.
  SortEnvOptions env;

  /// Executor threads == the number of concurrently running jobs. The
  /// admission grant is (admissible budget) / executors.
  uint32_t executors = 2;

  /// Backpressure: total backlog bound and the retry hint on rejection.
  size_t max_queue_depth = 64;
  uint64_t retry_after_ms = 50;

  /// Quotas: per-tenant overrides on top of the default.
  TenantQuota default_quota;
  std::map<std::string, TenantQuota> tenant_quotas;

  /// Scratch-file hygiene: when non-empty, output staging files live in
  /// this directory under `scratch_prefix`, orphans of crashed prior
  /// instances are swept at Create, and everything this instance stages
  /// is removed at destruction. `instance` should be the process id.
  std::string scratch_dir;
  std::string scratch_prefix = "nexsortd";
  uint64_t instance = 0;
};

struct JobRequest {
  enum class Kind { kSort, kMerge, kBatchUpdate };
  Kind kind = Kind::kSort;

  std::string tenant = "default";
  int32_t priority = 0;

  /// Ordering criterion (order_spec_parse.h grammar); empty = tag order
  /// default spec.
  std::string order_text;

  /// Sort / batch-update base document (inline text).
  std::string input_text;

  /// Merge inputs (already sorted by `order_text`), in merge order.
  std::vector<std::string> input_texts;

  /// Batch-update updates document.
  std::string updates_text;

  /// When non-empty, the result is staged in the scratch namespace and
  /// atomically renamed here on success.
  std::string output_path;

  /// Keep the result in memory for TakeOutput (socket clients that want
  /// the document back inline).
  bool return_output = false;

  /// Sort jobs only: run the output phase through the pull-based
  /// SortedStream instead of the eager Sort call. Output bytes are
  /// identical; the job's status additionally reports
  /// `time_to_first_byte_ms` — the latency until the first sorted chunk
  /// surfaced — in `nexsortd-stats-v1`.
  bool stream = false;

  /// Sort jobs only: merge-scheduling policy — "planned" (default),
  /// "greedy", or "" (= planned). Output bytes are identical either way
  /// (docs/MERGE_PLANNING.md); greedy is kept for A/B comparisons.
  std::string merge_policy;

  /// Sort jobs only: place output runs in contiguous extents for the
  /// output DFS (docs/MERGE_PLANNING.md). Never changes output bytes.
  bool dfs_placement = true;
};

struct JobStatus {
  enum class State { kQueued, kRunning, kDone, kFailed, kCancelled };

  uint64_t id = 0;
  JobRequest::Kind kind = JobRequest::Kind::kSort;
  std::string tenant;
  int32_t priority = 0;
  State state = State::kQueued;
  std::string error;  // terminal Status for kFailed / kCancelled

  /// Steady-clock seconds since the service started.
  double submit_seconds = 0;
  double start_seconds = -1;   // < 0 while queued
  double finish_seconds = -1;  // < 0 until terminal

  uint64_t input_bytes = 0;
  uint64_t output_bytes = 0;
  uint64_t session_id = 0;  // SortEnv session the job ran in
  bool has_session = false;

  /// Streaming sort jobs: milliseconds from job start to the first sorted
  /// output chunk (< 0 until the first chunk lands).
  bool streamed = false;
  double time_to_first_byte_ms = -1;

  [[nodiscard]] bool terminal() const {
    return state == State::kDone || state == State::kFailed ||
           state == State::kCancelled;
  }

  void ToJson(JsonWriter* writer) const;
};

[[nodiscard]] const char* JobStateName(JobStatus::State state);
[[nodiscard]] const char* JobKindName(JobRequest::Kind kind);

class SortService {
 public:
  /// Validates options, sweeps orphaned scratch of crashed prior
  /// instances, composes the SortEnv (pinning sort_memory_blocks to the
  /// derived grant), and starts the executors.
  [[nodiscard]] static StatusOr<std::unique_ptr<SortService>> Create(
      ServiceOptions options);

  /// Stops accepting, cancels queued and in-flight jobs, joins executors.
  ~SortService();

  SortService(const SortService&) = delete;
  SortService& operator=(const SortService&) = delete;

  /// Queue a job. On backpressure rejection returns OutOfMemory and sets
  /// *retry_after_ms; on success *job_id identifies the job from now on.
  [[nodiscard]] Status Submit(JobRequest request, uint64_t* job_id,
                              uint64_t* retry_after_ms = nullptr);

  [[nodiscard]] StatusOr<JobStatus> GetJob(uint64_t job_id) const;
  [[nodiscard]] std::vector<JobStatus> ListJobs() const;

  /// Cancel: a queued job leaves the queue immediately; a running job's
  /// CancellationToken flips and the sorters unwind at the next block
  /// boundary. Terminal jobs are left untouched (OK, idempotent).
  [[nodiscard]] Status Cancel(uint64_t job_id);

  /// Block until the job is terminal; returns its final status.
  [[nodiscard]] StatusOr<JobStatus> Wait(uint64_t job_id);

  /// Move out a return_output job's result document (once).
  [[nodiscard]] StatusOr<std::string> TakeOutput(uint64_t job_id);

  /// Block until every submitted job is terminal (the SIGTERM drain).
  void Drain();

  /// Stop: no new submissions; `cancel_inflight` also cancels queued and
  /// running jobs (false = drain them first). Joins the executors.
  void Shutdown(bool cancel_inflight);

  /// The daemon stats document, `nexsortd-stats-v1`: env composition,
  /// live `sessions` array, queue/admission/tenant state, and the job
  /// table.
  [[nodiscard]] std::string StatsJson() const;

  SortEnv* env() { return env_.get(); }
  ScratchNamespace* scratch() { return scratch_.get(); }
  uint64_t swept_orphans() const { return swept_orphans_; }
  uint64_t grant_blocks() const;
  uint64_t sort_memory_blocks() const {
    return env_->options().sort_memory_blocks;
  }

 private:
  SortService(ServiceOptions options, std::unique_ptr<SortEnv> env,
              uint64_t grant_blocks, uint64_t admissible_blocks);

  struct JobRecord {
    JobRequest request;
    JobStatus status;
    OrderSpec order;
    std::string output;  // in-memory result while return_output
    bool output_taken = false;
    bool cancel_requested = false;
    /// The running session's token; null while queued. Held as shared_ptr
    /// so Cancel() can flip it while the executor owns the session.
    std::shared_ptr<CancellationToken> cancel;
  };

  void ExecutorLoop();

  /// Run one dispatched job outside the lock; returns its terminal Status.
  [[nodiscard]] Status ExecuteJob(JobRecord* record);

  [[nodiscard]] double NowSeconds() const;

  /// Executor stop test: a cancelling shutdown exits immediately, a
  /// draining one once the backlog is empty.
  [[nodiscard]] bool ShouldStopLocked() const NEXSORT_REQUIRES(lock_);

  /// Terminal bookkeeping under lock_: state, error, timestamps, wakeups.
  void FinishJob(JobRecord* record, const QueuedJob& queued,
                 const Status& result) NEXSORT_REQUIRES(lock_);

  ServiceOptions options_;
  std::unique_ptr<SortEnv> env_;
  std::unique_ptr<ScratchNamespace> scratch_;
  uint64_t swept_orphans_ = 0;
  std::chrono::steady_clock::time_point epoch_;

  mutable Mutex lock_{"SortService::lock_", lock_rank::kSortService};
  CondVar work_cv_;      // executors: work or stop
  CondVar terminal_cv_;  // waiters: a job went terminal
  FairScheduler scheduler_ NEXSORT_GUARDED_BY(lock_);
  AdmissionController admission_ NEXSORT_GUARDED_BY(lock_);
  std::map<uint64_t, std::unique_ptr<JobRecord>> jobs_
      NEXSORT_GUARDED_BY(lock_);
  uint64_t next_job_id_ NEXSORT_GUARDED_BY(lock_) = 1;
  bool stopping_ NEXSORT_GUARDED_BY(lock_) = false;
  bool cancel_on_stop_ NEXSORT_GUARDED_BY(lock_) = false;

  std::vector<std::thread> executors_;
};

}  // namespace nexsort
