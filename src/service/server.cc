#include "service/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/json_writer.h"
#include "service/wire.h"

namespace nexsort {

namespace {

Status ReadWholeFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("error reading " + path);
  *out = std::move(buffer).str();
  return Status::OK();
}

std::string ErrorResponse(const Status& status,
                          uint64_t retry_after_ms = 0) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("ok");
  writer.Bool(false);
  writer.Key("error");
  writer.String(status.ToString());
  if (retry_after_ms > 0) {
    writer.Key("retry_after_ms");
    writer.Uint(retry_after_ms);
  }
  writer.EndObject();
  return std::move(writer).Take();
}

std::string JobResponse(const JobStatus& status, const std::string* output) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("ok");
  writer.Bool(true);
  writer.Key("job");
  status.ToJson(&writer);
  if (output != nullptr) {
    writer.Key("output");
    writer.String(*output);
  }
  writer.EndObject();
  return std::move(writer).Take();
}

/// Send all of `data`, tolerating partial writes. A dead peer surfaces as
/// EPIPE (signal suppressed via MSG_NOSIGNAL), which the caller treats as
/// disconnect.
bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

StatusOr<std::unique_ptr<SocketServer>> SocketServer::Start(
    SortService* service, std::string socket_path) {
  if (socket_path.empty()) {
    return Status::InvalidArgument("socket path must be non-empty");
  }
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  // A previous instance that crashed leaves its socket file behind; the
  // bind would fail on it forever. Unlinking is safe — a *live* instance
  // would still hold the listening fd, but two daemons on one path is an
  // operator error the runbook covers, not something we can detect here.
  ::unlink(socket_path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status =
        Status::IOError("bind " + socket_path + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    Status status = Status::IOError("listen " + socket_path + ": " +
                                    std::strerror(errno));
    ::close(fd);
    return status;
  }
  std::unique_ptr<SocketServer> server(
      new SocketServer(service, std::move(socket_path), fd));
  server->accept_thread_ = std::thread([raw = server.get()] {
    raw->AcceptLoop();
  });
  return server;
}

SocketServer::SocketServer(SortService* service, std::string socket_path,
                           int listen_fd)
    : service_(service),
      socket_path_(std::move(socket_path)),
      listen_fd_(listen_fd) {}

SocketServer::~SocketServer() { Stop(); }

void SocketServer::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Second caller: the first is (or was) tearing down; just join.
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // Unblock accept(); connection reads unblock via per-fd shutdown below.
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    MutexLock guard(&lock_);
    for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    shutdown_cv_.SignalAll();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    MutexLock guard(&lock_);
    threads.swap(connection_threads_);
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
  ::close(listen_fd_);
  ::unlink(socket_path_.c_str());
}

bool SocketServer::WaitForShutdownRequest() {
  MutexLock guard(&lock_);
  while (!shutdown_requested_.load(std::memory_order_acquire) &&
         !stopping_.load(std::memory_order_acquire)) {
    shutdown_cv_.Wait(&lock_);
  }
  return shutdown_requested_.load(std::memory_order_acquire);
}

void SocketServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down
    }
    MutexLock guard(&lock_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void SocketServer::ServeConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // peer closed or server shutting down
      buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (line.empty()) continue;
    std::string response = HandleLine(line);
    response.push_back('\n');
    if (!SendAll(fd, response)) break;
  }
  ::close(fd);
}

std::string SocketServer::HandleLine(std::string_view line) {
  auto parsed = JsonValue::Parse(line);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  const JsonValue& request = parsed.value();
  std::string op = request.GetString("op");

  if (op == "ping") {
    JsonWriter writer;
    writer.BeginObject();
    writer.Key("ok");
    writer.Bool(true);
    writer.Key("schema");
    writer.String(kWireSchema);
    writer.EndObject();
    return std::move(writer).Take();
  }

  if (op == "submit") return HandleSubmit(request);

  if (op == "status" || op == "wait" || op == "cancel") {
    const JsonValue* job = request.Find("job");
    if (job == nullptr || !job->is_number()) {
      return ErrorResponse(
          Status::InvalidArgument(op + " needs a numeric \"job\""));
    }
    uint64_t id = static_cast<uint64_t>(job->number_value());
    if (op == "cancel") {
      Status cancelled = service_->Cancel(id);
      if (!cancelled.ok()) return ErrorResponse(cancelled);
      auto status = service_->GetJob(id);
      if (!status.ok()) return ErrorResponse(status.status());
      return JobResponse(status.value(), nullptr);
    }
    auto status = op == "wait" ? service_->Wait(id) : service_->GetJob(id);
    if (!status.ok()) return ErrorResponse(status.status());
    return JobResponse(status.value(), nullptr);
  }

  if (op == "jobs") {
    JsonWriter writer;
    writer.BeginObject();
    writer.Key("ok");
    writer.Bool(true);
    writer.Key("jobs");
    writer.BeginArray();
    for (const JobStatus& job : service_->ListJobs()) {
      job.ToJson(&writer);
    }
    writer.EndArray();
    writer.EndObject();
    return std::move(writer).Take();
  }

  if (op == "stats") {
    JsonWriter writer;
    writer.BeginObject();
    writer.Key("ok");
    writer.Bool(true);
    writer.Key("stats");
    writer.Raw(service_->StatsJson());
    writer.EndObject();
    return std::move(writer).Take();
  }

  if (op == "shutdown") {
    shutdown_requested_.store(true, std::memory_order_release);
    {
      MutexLock guard(&lock_);
      shutdown_cv_.SignalAll();
    }
    JsonWriter writer;
    writer.BeginObject();
    writer.Key("ok");
    writer.Bool(true);
    writer.Key("stopping");
    writer.Bool(true);
    writer.EndObject();
    return std::move(writer).Take();
  }

  return ErrorResponse(Status::InvalidArgument("unknown op \"" + op + "\""));
}

std::string SocketServer::HandleSubmit(const JsonValue& request) {
  JobRequest job;
  std::string kind = request.GetString("kind", "sort");
  if (kind == "sort") {
    job.kind = JobRequest::Kind::kSort;
  } else if (kind == "merge") {
    job.kind = JobRequest::Kind::kMerge;
  } else if (kind == "batch_update") {
    job.kind = JobRequest::Kind::kBatchUpdate;
  } else {
    return ErrorResponse(
        Status::InvalidArgument("unknown job kind \"" + kind + "\""));
  }
  job.tenant = request.GetString("tenant", "default");
  job.priority = static_cast<int32_t>(request.GetInt("priority", 0));
  job.order_text = request.GetString("order");
  job.output_path = request.GetString("output");
  job.return_output = request.GetBool("return_output", false);
  job.stream = request.GetBool("stream", false);
  job.merge_policy = request.GetString("merge_policy");
  job.dfs_placement = request.GetBool("dfs_placement", true);

  job.input_text = request.GetString("input_text");
  std::string input_path = request.GetString("input_path");
  if (!input_path.empty()) {
    Status read = ReadWholeFile(input_path, &job.input_text);
    if (!read.ok()) return ErrorResponse(read);
  }
  const JsonValue* inputs = request.Find("input_texts");
  if (inputs != nullptr && inputs->is_array()) {
    for (const JsonValue& item : inputs->array_items()) {
      if (!item.is_string()) {
        return ErrorResponse(
            Status::InvalidArgument("input_texts must be strings"));
      }
      job.input_texts.push_back(item.string_value());
    }
  }
  const JsonValue* input_paths = request.Find("input_paths");
  if (input_paths != nullptr && input_paths->is_array()) {
    for (const JsonValue& item : input_paths->array_items()) {
      if (!item.is_string()) {
        return ErrorResponse(
            Status::InvalidArgument("input_paths must be strings"));
      }
      std::string text;
      Status read = ReadWholeFile(item.string_value(), &text);
      if (!read.ok()) return ErrorResponse(read);
      job.input_texts.push_back(std::move(text));
    }
  }
  job.updates_text = request.GetString("updates_text");
  std::string updates_path = request.GetString("updates_path");
  if (!updates_path.empty()) {
    Status read = ReadWholeFile(updates_path, &job.updates_text);
    if (!read.ok()) return ErrorResponse(read);
  }

  bool wait = request.GetBool("wait", false);
  bool want_inline = wait && job.return_output;

  uint64_t job_id = 0;
  uint64_t retry_after_ms = 0;
  Status submitted = service_->Submit(std::move(job), &job_id,
                                      &retry_after_ms);
  if (!submitted.ok()) return ErrorResponse(submitted, retry_after_ms);

  if (!wait) {
    auto status = service_->GetJob(job_id);
    if (!status.ok()) return ErrorResponse(status.status());
    return JobResponse(status.value(), nullptr);
  }
  auto status = service_->Wait(job_id);
  if (!status.ok()) return ErrorResponse(status.status());
  if (want_inline && status.value().state == JobStatus::State::kDone) {
    auto output = service_->TakeOutput(job_id);
    if (!output.ok()) return ErrorResponse(output.status());
    return JobResponse(status.value(), &output.value());
  }
  return JobResponse(status.value(), nullptr);
}

}  // namespace nexsort
