// Wire format of nexsortd (docs/SERVICE.md): one JSON object per line in
// both directions over a unix-domain stream socket — `nexsortd-wire-v1`.
//
// The service side needs a *reader* for JSON (requests arrive as text);
// responses are produced with the streaming JsonWriter like every other
// emitter in the tree. JsonValue is that reader: a small immutable DOM
// with the exact feature set the protocol uses (objects, arrays, strings
// with full escape handling, numbers, booleans, null) and Status-based
// error reporting with byte-offset positions. It is not a general XML/JSON
// translation layer — that lives in src/nested/ — just the service's
// request decoder, shared by nexsortctl so client and daemon can never
// disagree about framing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace nexsort {

/// One parsed JSON value. Object member order is preserved for
/// deterministic re-serialization in tests.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parse one complete JSON document; trailing non-whitespace is an
  /// error (requests are exactly one object per line).
  [[nodiscard]] static StatusOr<JsonValue> Parse(std::string_view text);

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& object_members()
      const {
    return members_;
  }

  /// Member lookup on an object; null when absent or not an object.
  [[nodiscard]] const JsonValue* Find(std::string_view key) const;

  /// Re-serialize for display and tests: member order preserved, integral
  /// numbers printed without a fraction.
  [[nodiscard]] std::string ToJsonString() const;
  void WriteTo(class JsonWriter* writer) const;

  // -- Typed member accessors with defaults (the protocol's fields are
  // -- mostly optional) -------------------------------------------------
  [[nodiscard]] std::string GetString(std::string_view key,
                                      std::string_view fallback = "") const;
  [[nodiscard]] uint64_t GetUint(std::string_view key,
                                 uint64_t fallback = 0) const;
  [[nodiscard]] int64_t GetInt(std::string_view key,
                               int64_t fallback = 0) const;
  [[nodiscard]] double GetDouble(std::string_view key,
                                 double fallback = 0) const;
  [[nodiscard]] bool GetBool(std::string_view key,
                             bool fallback = false) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  friend class JsonParser;
};

}  // namespace nexsort
