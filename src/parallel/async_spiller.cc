#include "parallel/async_spiller.h"

#include <chrono>
#include <utility>

#include "parallel/worker_pool.h"

namespace nexsort {

namespace {
double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
}  // namespace

AsyncSpiller::AsyncSpiller(WorkerPool* pool) : pool_(pool) {}

AsyncSpiller::~AsyncSpiller() {
  // Best-effort drain: a failed spill was already recorded in
  // pending_error_ and surfaced via Finish(); nothing to do with it here.
  (void)WaitIdle();
}

Status AsyncSpiller::Submit(std::function<Status()> job) {
  RETURN_IF_ERROR(WaitIdle());
  if (pool_ == nullptr || pool_->size() == 0) {
    auto start = std::chrono::steady_clock::now();
    Status st = job();
    MutexLock lock(&mutex_);
    busy_seconds_ += SecondsSince(start);
    if (status_.ok()) status_ = st;
    return st;
  }
  {
    MutexLock lock(&mutex_);
    in_flight_ = true;
  }
  bool submitted = pool_->Submit([this, job = std::move(job)] {
    auto start = std::chrono::steady_clock::now();
    Status st = job();
    MutexLock lock(&mutex_);
    busy_seconds_ += SecondsSince(start);
    if (status_.ok() && !st.ok()) status_ = st;
    in_flight_ = false;
    idle_.SignalAll();
  });
  if (!submitted) {
    MutexLock lock(&mutex_);
    in_flight_ = false;
    if (status_.ok()) {
      status_ = Status::InvalidArgument("worker pool shut down");
    }
    return status_;
  }
  return Status::OK();
}

Status AsyncSpiller::WaitIdle() {
  auto start = std::chrono::steady_clock::now();
  MutexLock lock(&mutex_);
  while (in_flight_) idle_.Wait(&mutex_);
  wait_seconds_ += SecondsSince(start);
  return status_;
}

double AsyncSpiller::wait_seconds() const {
  MutexLock lock(&mutex_);
  return wait_seconds_;
}

double AsyncSpiller::busy_seconds() const {
  MutexLock lock(&mutex_);
  return busy_seconds_;
}

}  // namespace nexsort
