#include "parallel/run_prefetcher.h"

#include <algorithm>

#include "cache/buffer_pool.h"

namespace nexsort {

RunPrefetcher::RunPrefetcher(BufferPool* pool, IoCategory category,
                             uint32_t depth, std::vector<Source> sources)
    : pool_(pool),
      category_(category),
      depth_(depth),
      sources_(std::move(sources)) {
  bool any_blocks = false;
  for (const Source& source : sources_) {
    if (!source.blocks.empty()) any_blocks = true;
  }
  if (pool_ == nullptr || depth_ == 0 || !any_blocks) return;
  consumed_.assign(sources_.size(), 0);
  issued_.assign(sources_.size(), 0);
  thread_ = std::thread([this] { Main(); });
}

RunPrefetcher::~RunPrefetcher() { Stop(); }

void RunPrefetcher::OnConsumed(size_t source, uint64_t block_index) {
  if (!thread_.joinable()) return;
  MutexLock lock(&mutex_);
  if (source >= consumed_.size()) return;
  consumed_[source] = std::max(consumed_[source], block_index + 1);
  wake_.Signal();
}

void RunPrefetcher::Stop() {
  if (!thread_.joinable()) return;
  {
    MutexLock lock(&mutex_);
    stop_ = true;
    wake_.Signal();
  }
  thread_.join();
}

void RunPrefetcher::Main() {
  mutex_.Lock();
  while (!stop_) {
    bool issued_any = false;
    for (size_t i = 0; i < sources_.size(); ++i) {
      // Stay at most `depth_` blocks past the consumption cursor; the
      // first `depth_` blocks of every source are eligible immediately.
      uint64_t limit = std::min<uint64_t>(consumed_[i] + depth_,
                                          sources_[i].blocks.size());
      while (issued_[i] < limit && !stop_) {
        uint64_t block = sources_[i].blocks[issued_[i]];
        ++issued_[i];
        mutex_.Unlock();
        // Outside the lock: the pool may do a real base-device read here,
        // and OnConsumed must never wait on it.
        pool_->Prefetch(block, category_);
        issued_total_.fetch_add(1, std::memory_order_relaxed);
        mutex_.Lock();
        issued_any = true;
        limit = std::min<uint64_t>(consumed_[i] + depth_,
                                   sources_[i].blocks.size());
      }
    }
    if (!issued_any && !stop_) wake_.Wait(&mutex_);
  }
  mutex_.Unlock();
}

}  // namespace nexsort
