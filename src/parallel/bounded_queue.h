// Bounded blocking queue: the hand-off primitive between the foreground
// pipeline and its background workers (spiller jobs, worker-pool tasks,
// prefetch requests). Capacity is fixed at construction so a fast producer
// exerts back-pressure instead of queueing unbounded work — the memory
// discipline everywhere else in this repo (MemoryBudget) would be defeated
// by an unbounded task list. Safe for any number of producers/consumers
// (MPMC); the pipeline mostly uses it SPSC.
#pragma once

#include <cstddef>
#include <deque>
#include <utility>

#include "util/thread_annotations.h"

namespace nexsort {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Block until there is room, then enqueue. Returns false (dropping the
  /// item) if the queue was closed before space appeared.
  bool Push(T item) NEXSORT_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    while (!closed_ && items_.size() >= capacity_) not_full_.Wait(&mutex_);
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.Signal();
    return true;
  }

  /// Block until an item is available or the queue is closed and drained.
  /// Returns false only when closed with nothing left — items enqueued
  /// before Close() are always delivered.
  bool Pop(T* item) NEXSORT_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    while (!closed_ && items_.empty()) not_empty_.Wait(&mutex_);
    if (items_.empty()) return false;
    *item = std::move(items_.front());
    items_.pop_front();
    not_full_.Signal();
    return true;
  }

  /// Non-blocking pop; false when nothing is immediately available.
  bool TryPop(T* item) NEXSORT_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    if (items_.empty()) return false;
    *item = std::move(items_.front());
    items_.pop_front();
    not_full_.Signal();
    return true;
  }

  /// Reject future pushes and wake all waiters. Idempotent. Items already
  /// queued still drain through Pop.
  void Close() NEXSORT_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    closed_ = true;
    not_empty_.SignalAll();
    not_full_.SignalAll();
  }

  bool closed() const NEXSORT_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return closed_;
  }

  size_t size() const NEXSORT_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  mutable Mutex mutex_{"BoundedQueue::mutex_", lock_rank::kTaskQueue};
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ NEXSORT_GUARDED_BY(mutex_);
  bool closed_ NEXSORT_GUARDED_BY(mutex_) = false;
};

}  // namespace nexsort
