// RunPrefetcher: loads merge-input blocks into the BufferPool ahead of the
// loser tree consuming them. The merge itself reads runs strictly
// sequentially through the CachedBlockDevice, so the prefetcher only has
// to stay `depth` blocks ahead of each source's consumption cursor for
// every merge read to hit the pool. It runs on its own thread (created at
// construction, joined by Stop()/destruction) so the pool's base-device
// reads — the slow part — overlap the foreground's comparison work.
//
// Lifetime rule: Stop() must run before the runs being prefetched are
// freed (a stale prefetch of a recycled block would read someone else's
// data — harmless for correctness of the pool, but a wasted, miscounted
// I/O). The merge loop owns the prefetcher for exactly one merge group.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "extmem/block_device.h"
#include "util/thread_annotations.h"

namespace nexsort {

class BufferPool;

class RunPrefetcher {
 public:
  struct Source {
    std::vector<uint64_t> blocks;  // device block ids in run order
  };

  /// Starts the prefetch thread unless `pool` is null, `depth` is 0, or
  /// there is nothing to prefetch — in those cases it is an inert no-op
  /// and issued() stays 0.
  RunPrefetcher(BufferPool* pool, IoCategory category, uint32_t depth,
                std::vector<Source> sources);
  ~RunPrefetcher();

  RunPrefetcher(const RunPrefetcher&) = delete;
  RunPrefetcher& operator=(const RunPrefetcher&) = delete;

  /// Foreground: source `source` has consumed through run-block index
  /// `block_index`; the prefetcher may now issue up to
  /// `block_index + depth` for it.
  void OnConsumed(size_t source, uint64_t block_index);

  /// Join the prefetch thread. Idempotent.
  void Stop();

  /// Blocks handed to BufferPool::Prefetch so far.
  uint64_t issued() const {
    return issued_total_.load(std::memory_order_relaxed);
  }

 private:
  void Main();

  BufferPool* pool_;
  const IoCategory category_;
  const uint32_t depth_;
  std::vector<Source> sources_;

  /// Ranked below the BufferPool's mutex, but never actually held across
  /// pool_->Prefetch — Main releases it around the real I/O so OnConsumed
  /// never waits on the base device.
  Mutex mutex_{"RunPrefetcher::mutex_", lock_rank::kRunPrefetcher};
  CondVar wake_;
  /// Highest consumed block index + 1, per source.
  std::vector<uint64_t> consumed_ NEXSORT_GUARDED_BY(mutex_);
  /// Blocks issued per source.
  std::vector<uint64_t> issued_ NEXSORT_GUARDED_BY(mutex_);
  bool stop_ NEXSORT_GUARDED_BY(mutex_) = false;
  std::atomic<uint64_t> issued_total_{0};
  std::thread thread_;
};

}  // namespace nexsort
