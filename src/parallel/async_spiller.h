// AsyncSpiller: ordered background execution of spill jobs with sticky
// error propagation — the piece that turns run formation into a two-stage
// pipeline. At most one job is in flight at a time, so runs are finished
// in submission order (run ids and merge order stay identical to the
// serial path); a failing job's Status is latched and returned from every
// later Submit/Drain, so a lost write surfaces at the sorter's Finish()
// instead of vanishing on a worker thread.
#pragma once

#include <functional>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace nexsort {

class WorkerPool;

class AsyncSpiller {
 public:
  /// `pool` not owned; may be null or zero-sized, in which case jobs run
  /// inline on the submitting thread (serial semantics, same interface).
  explicit AsyncSpiller(WorkerPool* pool);

  /// Blocks until any in-flight job completes (errors are still available
  /// from Drain afterwards).
  ~AsyncSpiller();

  AsyncSpiller(const AsyncSpiller&) = delete;
  AsyncSpiller& operator=(const AsyncSpiller&) = delete;

  /// Run `job` in the background. Blocks while a previous job is still in
  /// flight (one-deep pipeline: the caller's next buffer fill overlaps
  /// exactly one sort+spill). Returns the sticky error instead of
  /// submitting if an earlier job failed.
  [[nodiscard]] Status Submit(std::function<Status()> job);

  /// Wait for the in-flight job (if any); returns the sticky status.
  [[nodiscard]] Status WaitIdle();

  /// WaitIdle, for the end of the pipeline.
  [[nodiscard]] Status Drain() { return WaitIdle(); }

  /// Foreground seconds spent blocked waiting on background jobs (the
  /// pipeline stall time) and background seconds spent executing them (the
  /// overlap won against a serial schedule).
  double wait_seconds() const;
  double busy_seconds() const;

 private:
  WorkerPool* pool_;
  mutable Mutex mutex_{"AsyncSpiller::mutex_", lock_rank::kAsyncSpiller};
  CondVar idle_;
  bool in_flight_ NEXSORT_GUARDED_BY(mutex_) = false;
  Status status_ NEXSORT_GUARDED_BY(mutex_);  // sticky first error
  double wait_seconds_ NEXSORT_GUARDED_BY(mutex_) = 0.0;
  double busy_seconds_ NEXSORT_GUARDED_BY(mutex_) = 0.0;
};

}  // namespace nexsort
