#include "parallel/parallel.h"

#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace nexsort {

void ParallelStats::MergeFrom(const ParallelStats& other) {
  async_spills += other.async_spills;
  sync_spills += other.sync_spills;
  double_buffer_declined += other.double_buffer_declined;
  parallel_sorts += other.parallel_sorts;
  sort_partitions += other.sort_partitions;
  prefetch_issued += other.prefetch_issued;
  prefetch_declined += other.prefetch_declined;
  spill_wait_seconds += other.spill_wait_seconds;
  spill_busy_seconds += other.spill_busy_seconds;
}

void ParallelStats::ToJson(JsonWriter* writer) const {
  writer->BeginObject();
  writer->Key("async_spills");
  writer->Uint(async_spills);
  writer->Key("sync_spills");
  writer->Uint(sync_spills);
  writer->Key("double_buffer_declined");
  writer->Uint(double_buffer_declined);
  writer->Key("parallel_sorts");
  writer->Uint(parallel_sorts);
  writer->Key("sort_partitions");
  writer->Uint(sort_partitions);
  writer->Key("prefetch_issued");
  writer->Uint(prefetch_issued);
  writer->Key("prefetch_declined");
  writer->Uint(prefetch_declined);
  writer->Key("spill_wait_seconds");
  writer->Double(spill_wait_seconds);
  writer->Key("spill_busy_seconds");
  writer->Double(spill_busy_seconds);
  writer->EndObject();
}

ParallelContext::ParallelContext(ParallelOptions options, WorkerPool* pool)
    : options_(options), pool_(options.threads > 0 ? pool : nullptr) {}

void ParallelContext::AddStats(const ParallelStats& stats) {
  MutexLock lock(&mutex_);
  stats_.MergeFrom(stats);
}

ParallelStats ParallelContext::stats() const {
  MutexLock lock(&mutex_);
  return stats_;
}

void ParallelContext::PublishMetrics(Tracer* tracer) const {
  if (tracer == nullptr) return;
  ParallelStats snapshot = stats();
  MetricsRegistry* metrics = tracer->metrics();
  metrics->GetCounter("parallel_async_spills")->Add(snapshot.async_spills);
  metrics->GetCounter("parallel_sync_spills")->Add(snapshot.sync_spills);
  metrics->GetCounter("parallel_double_buffer_declined")
      ->Add(snapshot.double_buffer_declined);
  metrics->GetCounter("parallel_sorts")->Add(snapshot.parallel_sorts);
  metrics->GetCounter("parallel_sort_partitions")
      ->Add(snapshot.sort_partitions);
  metrics->GetCounter("parallel_prefetch_issued")
      ->Add(snapshot.prefetch_issued);
  metrics->GetCounter("parallel_prefetch_declined")
      ->Add(snapshot.prefetch_declined);
  // Overlap time as millisecond gauges (gauges are integral).
  metrics->GetGauge("parallel_spill_wait_ms")
      ->Set(static_cast<uint64_t>(snapshot.spill_wait_seconds * 1e3));
  metrics->GetGauge("parallel_spill_busy_ms")
      ->Set(static_cast<uint64_t>(snapshot.spill_busy_seconds * 1e3));
}

}  // namespace nexsort
