// Fixed-size worker pool over a bounded task queue. Deliberately minimal:
// the sort pipeline needs "run this closure eventually, with back-pressure
// when workers fall behind", not futures or work stealing. Results and
// errors travel through the closures themselves (see AsyncSpiller for the
// ordered, error-sticky variant the spill path uses).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "parallel/bounded_queue.h"

namespace nexsort {

class WorkerPool {
 public:
  /// Start `threads` workers. `threads == 0` is allowed and makes Submit
  /// run tasks inline on the caller — callers can treat a zero-size pool
  /// as "serial mode" without branching.
  explicit WorkerPool(size_t threads, size_t queue_capacity = 0);

  /// Closes the queue and joins all workers; queued tasks finish first.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueue a task. Blocks when the queue is full. With no worker threads
  /// the task runs synchronously here. Returns false if the pool is shut
  /// down (the task is not run).
  bool Submit(std::function<void()> task);

  size_t size() const { return workers_.size(); }

  /// Instantaneous load gauges for the telemetry sampler: tasks waiting
  /// in the queue, and workers currently executing one.
  size_t queue_depth() const { return tasks_.size(); }
  size_t busy_workers() const {
    return busy_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerMain();

  BoundedQueue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::atomic<size_t> busy_{0};
};

}  // namespace nexsort
