#include "parallel/worker_pool.h"

namespace nexsort {

WorkerPool::WorkerPool(size_t threads, size_t queue_capacity)
    : tasks_(queue_capacity ? queue_capacity
                            : (threads ? 2 * threads : 1)) {
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

WorkerPool::~WorkerPool() {
  tasks_.Close();
  for (std::thread& worker : workers_) worker.join();
}

bool WorkerPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    if (tasks_.closed()) return false;
    task();
    return true;
  }
  return tasks_.Push(std::move(task));
}

void WorkerPool::WorkerMain() {
  std::function<void()> task;
  while (tasks_.Pop(&task)) {
    busy_.fetch_add(1, std::memory_order_relaxed);
    task();
    busy_.fetch_sub(1, std::memory_order_relaxed);
    task = nullptr;  // release captures before blocking on the next Pop
  }
}

}  // namespace nexsort
