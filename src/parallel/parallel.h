// ParallelOptions/ParallelStats/ParallelContext: the configuration knob,
// the counters, and the shared worker-pool handle for the overlapped sort
// pipeline (double-buffered run formation, partitioned spill sorting,
// merge-input prefetching). Everything defaults *off* — `threads == 0`
// reproduces the serial pipeline exactly — and every engagement point
// degrades gracefully, recording why it declined instead of failing, so
// output bytes and logical I/O counts are identical whether or not the
// pipeline actually overlapped.
#pragma once

#include <cstdint>
#include <memory>

#include "parallel/worker_pool.h"
#include "util/thread_annotations.h"

namespace nexsort {

class JsonWriter;
class Tracer;

/// Concurrency knobs, carried by ExtSortOptions / NexSortOptions /
/// KeyPathSortOptions. Defaults keep the pipeline serial.
struct ParallelOptions {
  /// Background worker threads. 0 = fully serial (the default): no pool,
  /// no background spills, no parallel sort partitions.
  uint32_t threads = 0;
  /// Allow double-buffered run formation when the MemoryBudget can afford
  /// a second sort buffer. Only meaningful with threads > 0.
  bool double_buffer = true;
  /// Merge-input prefetch distance in blocks per source. 0 disables the
  /// RunPrefetcher. Needs a BufferPool (cache frames) to hold the blocks.
  uint32_t prefetch_depth = 0;

  /// Anything to do at all? Prefetching runs its own thread, so it works
  /// even with zero workers.
  bool enabled() const { return threads > 0 || prefetch_depth > 0; }
};

/// Counters describing what the parallel pipeline actually did — how many
/// spills overlapped, why double-buffering was declined, how much of the
/// wall clock the foreground spent stalled on background work. Plain
/// fields: aggregate copies are exchanged under the ParallelContext lock.
struct ParallelStats {
  uint64_t async_spills = 0;   // spills executed on a worker
  uint64_t sync_spills = 0;    // spills executed inline (serial path)
  uint64_t double_buffer_declined = 0;  // budget couldn't fund 2nd buffer
  uint64_t parallel_sorts = 0;     // buffer sorts partitioned across pool
  uint64_t sort_partitions = 0;    // total partitions across those sorts
  uint64_t prefetch_issued = 0;    // blocks pushed by RunPrefetcher
  uint64_t prefetch_declined = 0;  // merge phases without pool/depth
  double spill_wait_seconds = 0.0;  // foreground blocked on spiller
  double spill_busy_seconds = 0.0;  // background busy in spill jobs

  void MergeFrom(const ParallelStats& other);

  /// One JSON object with every counter (schema: the "parallel" block of
  /// nexsort-stats-v1; see docs/PARALLELISM.md).
  void ToJson(JsonWriter* writer) const;
};

/// Shared state for one job's parallel execution: a borrowed worker pool
/// plus thread-safe stats aggregation. The SortEnv (src/env/) owns the
/// WorkerPool and hands each job's session its own context over it, so
/// concurrent jobs share one set of threads while keeping per-job
/// counters; the context is then lent to every ExternalMergeSorter via
/// ExtSortOptions, so nested subtree sorts share the pool too.
class ParallelContext {
 public:
  /// `pool` is not owned (may be null = no background workers; the
  /// prefetcher still works, it runs its own thread) and must outlive the
  /// context. Pool construction itself lives in SortEnv.
  ParallelContext(ParallelOptions options, WorkerPool* pool);

  const ParallelOptions& options() const { return options_; }

  /// Null when the context was built without workers (threads == 0).
  WorkerPool* pool() { return pool_; }

  /// Fold a sorter's local counters into the aggregate. Thread-safe.
  void AddStats(const ParallelStats& stats);

  /// Aggregate snapshot.
  ParallelStats stats() const;

  /// Export parallel_* counters and overlap-time gauges into the tracer's
  /// metrics registry. Foreground-thread only (the Tracer is
  /// single-threaded); call once after the pipeline drains.
  void PublishMetrics(Tracer* tracer) const;

 private:
  const ParallelOptions options_;
  WorkerPool* pool_;  // not owned; null = serial
  mutable Mutex mutex_{"ParallelContext::mutex_", lock_rank::kParallelStats};
  ParallelStats stats_ NEXSORT_GUARDED_BY(mutex_);
};

}  // namespace nexsort
