// Example 1.1, the paper's motivation: merging two large XML documents.
// Sort-merge (NEXSORT both inputs, then one-pass structural merge) versus
// the naive nested-loop method, which rescans the second document for every
// match-level element of the first. The expected shape is the classic
// join-method contrast: nested-loop I/O grows quadratically with input
// size, sort-merge stays near-linear, so the crossover hits immediately at
// any realistic size.
#include "bench/bench_common.h"
#include "extmem/stream.h"
#include "merge/nested_loop_merge.h"
#include "merge/structural_merge.h"
#include "util/random.h"
#include "util/string_util.h"

using namespace nexsort;
using namespace nexsort::bench;

namespace {

// Personnel/payroll-style paired documents: regions > branches > employees,
// keyed like Figure 1 (region/branch by name, employee by ID).
std::string MakeCompanyDoc(int regions, int branches, int employees,
                           uint64_t seed, bool payroll) {
  Random rng(seed);
  std::string xml = "<company>";
  for (int r = 0; r < regions; ++r) {
    xml += "<region name=\"R" + std::to_string(rng.Uniform(10000)) + "\">";
    for (int b = 0; b < branches; ++b) {
      xml += "<branch name=\"B" + std::to_string(rng.Uniform(10000)) + "\">";
      for (int e = 0; e < employees; ++e) {
        std::string id = std::to_string(rng.Uniform(100000));
        if (payroll) {
          xml += "<employee ID=\"" + id + "\"><salary>" +
                 std::to_string(30000 + rng.Uniform(90000)) +
                 "</salary></employee>";
        } else {
          xml += "<employee ID=\"" + id + "\"><name>" + rng.Identifier(7) +
                 "</name><phone>" + std::to_string(rng.Uniform(9999999)) +
                 "</phone></employee>";
        }
      }
      xml += "</branch>";
    }
    xml += "</region>";
  }
  xml += "</company>";
  return xml;
}

OrderSpec MergeSpec() {
  OrderSpec spec;
  OrderRule employee;
  employee.element = "employee";
  employee.source = KeySource::kAttribute;
  employee.argument = "ID";
  spec.AddRule(employee);
  OrderRule by_name;
  by_name.element = "*";
  by_name.source = KeySource::kAttribute;
  by_name.argument = "name";
  spec.AddRule(by_name);
  return spec;
}

}  // namespace

int main() {
  std::printf("Example 1.1: sort-merge vs nested-loop XML merge\n");
  std::printf("block size %zu, memory 16 blocks\n", kBlockSize);
  const uint64_t kMemoryBlocks = 16;

  PrintHeader("Merge methods",
              "  employees      bytes | sortmerge I/O (sortL+sortR+merge) | "
              "nestloop I/O |  ratio");
  for (int scale : {2, 4, 8, 12, 16}) {
    // Same seed => same region/branch names, so documents overlap heavily.
    std::string d1 = MakeCompanyDoc(scale, scale, scale, 5, false);
    std::string d2 = MakeCompanyDoc(scale, scale, scale, 5, true);
    uint64_t employees = static_cast<uint64_t>(scale) * scale * scale;

    // --- Sort-merge: two NEXSORTs + a one-pass structural merge over
    // device-resident inputs and output.
    uint64_t sortmerge_io = 0;
    uint64_t sort_io = 0;
    {
      NexSortOptions options;
      options.order = MergeSpec();
      std::string d1_sorted;
      RunResult left = RunNexSort(d1, kMemoryBlocks, options, kBlockSize,
                                  /*capture_telemetry=*/false, &d1_sorted);
      CheckOk(left, "sort left");
      NexSortOptions options2;
      options2.order = MergeSpec();
      std::string d2_sorted;
      RunResult right = RunNexSort(d2, kMemoryBlocks, options2, kBlockSize,
                                   /*capture_telemetry=*/false, &d2_sorted);
      CheckOk(right, "sort right");
      sort_io = left.io_total + right.io_total;

      // Merge pass over sorted inputs stored on a counted device.
      auto env_or = SortEnvBuilder()
                        .BlockSize(kBlockSize)
                        .MemoryBlocks(kMemoryBlocks)
                        .Build();
      if (!env_or.ok()) return 1;
      std::unique_ptr<SortEnv> env = std::move(env_or).value();
      BlockDevice* device = env->device();
      MemoryBudget* budget = env->budget();
      auto left_range = StoreBytes(device, budget, d1_sorted);
      auto right_range = StoreBytes(device, budget, d2_sorted);
      if (!left_range.ok() || !right_range.ok()) return 1;
      device->mutable_stats()->Clear();
      BlockStreamReader left_reader(device, budget, *left_range,
                                    IoCategory::kInput);
      BlockStreamReader right_reader(device, budget, *right_range,
                                     IoCategory::kInput);
      BlockStreamWriter out(device, budget, IoCategory::kOutput);
      MergeOptions merge_options;
      merge_options.order = MergeSpec();
      Status st = StructuralMerge(&left_reader, &right_reader, &out,
                                  merge_options);
      if (!st.ok()) {
        std::fprintf(stderr, "merge failed: %s\n", st.ToString().c_str());
        return 1;
      }
      ByteRange out_range;
      if (!out.Finish(&out_range).ok()) return 1;
      sortmerge_io = sort_io + device->stats().total();
    }

    // --- Nested loop: left streamed, right rescanned per employee.
    uint64_t nestloop_io = 0;
    {
      auto env_or = SortEnvBuilder()
                        .BlockSize(kBlockSize)
                        .MemoryBlocks(kMemoryBlocks)
                        .Build();
      if (!env_or.ok()) return 1;
      std::unique_ptr<SortEnv> env = std::move(env_or).value();
      BlockDevice* device = env->device();
      MemoryBudget* budget = env->budget();
      auto right_range = StoreBytes(device, budget, d2);
      if (!right_range.ok()) return 1;
      device->mutable_stats()->Clear();
      NestedLoopMergeOptions options;
      options.order = MergeSpec();
      options.match_level = 4;
      NestedLoopMergeStats stats;
      StringByteSource left(d1);
      std::string merged;
      StringByteSink sink(&merged);
      Status st = NestedLoopMerge(&left, device, budget, *right_range,
                                  &sink, options, &stats);
      if (!st.ok()) {
        std::fprintf(stderr, "nested loop failed: %s\n",
                     st.ToString().c_str());
        return 1;
      }
      nestloop_io = device->stats().total() +
                    (d1.size() + kBlockSize - 1) / kBlockSize;
    }

    std::printf("  %9llu %10s | %33llu | %12llu | %5.1fx\n",
                static_cast<unsigned long long>(employees),
                HumanBytes(d1.size() + d2.size()).c_str(),
                static_cast<unsigned long long>(sortmerge_io),
                static_cast<unsigned long long>(nestloop_io),
                static_cast<double>(nestloop_io) /
                    static_cast<double>(sortmerge_io));
  }
  std::printf(
      "\nexpected shape: nested-loop I/O grows quadratically with document\n"
      "size while sort-merge stays near-linear, exactly the contrast that\n"
      "motivates sorting XML (paper Example 1.1).\n");
  return 0;
}
