// Micro-benchmarks (google-benchmark) for the building blocks: SAX parse
// throughput, key-path encoding, normalized-key comparison, loser-tree
// merge width, external-stack paging, and unit serialization.
#include <benchmark/benchmark.h>

#include "core/element_unit.h"
#include "core/order_spec.h"
#include "env/sort_env.h"
#include "extmem/ext_stack.h"
#include "sort/key_path.h"
#include "sort/loser_tree.h"
#include "util/random.h"
#include "xml/generator.h"
#include "xml/sax_parser.h"

namespace nexsort {
namespace {

const std::string& TestDocument() {
  static const std::string doc = [] {
    RandomTreeGenerator generator(5, 8, {.seed = 1, .element_bytes = 150});
    auto xml = generator.GenerateString();
    return xml.ok() ? std::move(xml).value() : std::string();
  }();
  return doc;
}

void BM_SaxParse(benchmark::State& state) {
  const std::string& doc = TestDocument();
  for (auto _ : state) {
    StringByteSource source(doc);
    SaxParser parser(&source);
    XmlEvent event;
    uint64_t events = 0;
    while (true) {
      auto more = parser.Next(&event);
      if (!more.ok() || !*more) break;
      ++events;
    }
    benchmark::DoNotOptimize(events);
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
}
BENCHMARK(BM_SaxParse);

void BM_SaxParseDepthOnly(benchmark::State& state) {
  const std::string& doc = TestDocument();
  SaxOptions options;
  options.check_tag_names = false;
  for (auto _ : state) {
    StringByteSource source(doc);
    SaxParser parser(&source, options);
    XmlEvent event;
    while (true) {
      auto more = parser.Next(&event);
      if (!more.ok() || !*more) break;
    }
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
}
BENCHMARK(BM_SaxParseDepthOnly);

void BM_KeyPathEncode(benchmark::State& state) {
  Random rng(2);
  std::vector<std::pair<std::string, uint64_t>> components;
  for (int i = 0; i < 64; ++i) {
    components.emplace_back(rng.Identifier(8), rng.Next());
  }
  std::string out;
  for (auto _ : state) {
    out.clear();
    for (const auto& [key, seq] : components) {
      AppendKeyPathComponent(&out, key, seq);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * components.size());
}
BENCHMARK(BM_KeyPathEncode);

void BM_NumericKeyNormalize(benchmark::State& state) {
  OrderRule rule;
  rule.numeric = true;
  Random rng(3);
  std::vector<std::string> raw;
  for (int i = 0; i < 256; ++i) raw.push_back(std::to_string(rng.Next() % 1000000));
  size_t index = 0;
  for (auto _ : state) {
    std::string key = OrderSpec::NormalizeKey(rule, raw[index++ % raw.size()]);
    benchmark::DoNotOptimize(key.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NumericKeyNormalize);

class VectorSource final : public MergeSource {
 public:
  explicit VectorSource(const std::vector<std::string>* keys) : keys_(keys) {}
  void Reset() { index_ = 0; }
  bool exhausted() const override { return index_ >= keys_->size(); }
  std::string_view key() const override { return (*keys_)[index_]; }
  Status Advance() override {
    ++index_;
    return Status::OK();
  }

 private:
  const std::vector<std::string>* keys_;
  size_t index_ = 0;
};

void BM_LoserTreeMerge(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  Random rng(4);
  std::vector<std::vector<std::string>> runs(k);
  for (auto& run : runs) {
    for (int i = 0; i < 1000; ++i) run.push_back(rng.Identifier(8));
    std::sort(run.begin(), run.end());
  }
  for (auto _ : state) {
    std::vector<VectorSource> sources;
    sources.reserve(k);
    std::vector<MergeSource*> raw;
    for (auto& run : runs) {
      sources.emplace_back(&run);
      raw.push_back(&sources.back());
    }
    LoserTree tree(std::move(raw));
    (void)tree.Init();  // in-memory sources cannot fail
    uint64_t merged = 0;
    while (tree.Min() != nullptr) {
      ++merged;
      (void)tree.AdvanceMin();  // in-memory sources cannot fail
    }
    benchmark::DoNotOptimize(merged);
  }
  state.SetItemsProcessed(state.iterations() * k * 1000);
}
BENCHMARK(BM_LoserTreeMerge)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_ExtStackPushPop(benchmark::State& state) {
  auto env_or =
      SortEnvBuilder().BlockSize(4096).MemoryBlocks(8).Build();
  if (!env_or.ok()) {
    state.SkipWithError("SortEnv::Create failed");
    return;
  }
  std::unique_ptr<SortEnv> env = std::move(env_or).value();
  for (auto _ : state) {
    ExtStack<uint64_t> stack(env->device(), env->budget(), 1,
                             IoCategory::kPathStack);
    for (uint64_t i = 0; i < 10000; ++i) (void)stack.Push(i);
    uint64_t value = 0;
    for (uint64_t i = 0; i < 10000; ++i) (void)stack.Pop(&value);
    benchmark::DoNotOptimize(value);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_ExtStackPushPop);

void BM_UnitSerialize(benchmark::State& state) {
  NameDictionary dictionary;
  ElementUnit unit;
  unit.type = UnitType::kStart;
  unit.level = 4;
  unit.seq = 123456;
  unit.name = "employee";
  unit.attributes = {{"ID", "48213"}, {"dept", "storage"}};
  unit.key = "48213";
  UnitFormat format;
  std::string buf;
  for (auto _ : state) {
    buf.clear();
    AppendUnit(&buf, unit, format, &dictionary);
    std::string_view view = buf;
    ElementUnit back;
    // Parsing bytes AppendUnit just produced cannot fail.
    (void)ParseUnit(&view, &back, format, &dictionary);
    benchmark::DoNotOptimize(back.seq);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnitSerialize);

}  // namespace
}  // namespace nexsort

BENCHMARK_MAIN();
