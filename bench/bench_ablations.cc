// Ablations for the design choices DESIGN.md calls out beyond the paper's
// own figures:
//   A. internal vs external subtree-sort crossover (memory sweep at fixed
//      subtree geometry);
//   B. compaction value on verbose documents (long tag/attribute names);
//   C. access-pattern quality: fraction of sequential block I/Os, which the
//      disk model rewards — NEXSORT's run-at-a-time discipline vs merge
//      sort's wide fan-in;
//   D. graceful-degeneration fragment geometry: fragments and pre-merge
//      passes as memory shrinks on a flat document.
#include "bench/bench_common.h"
#include "util/random.h"
#include "util/string_util.h"
#include "xml/writer.h"

using namespace nexsort;
using namespace nexsort::bench;

namespace {

// A document with deliberately verbose names, for the compaction ablation.
std::string MakeVerboseDoc(int per_level, int height, uint64_t seed) {
  std::string out;
  StringByteSink sink(&out);
  XmlWriter writer(&sink);
  Random rng(seed);
  std::vector<std::string> tags = {
      "inventoryReconciliationRecord", "warehouseAllocationEntry",
      "supplierContractLineItem", "quarterlyForecastAdjustment"};
  struct Frame { int remaining; };
  std::string key_attr = "transactionIdentifier";
  std::vector<Frame> stack;
  // In-memory sink: XmlWriter cannot fail here, discards are safe.
  (void)writer.StartElement("enterpriseResourcePlanningExport",
                            {XmlAttribute{key_attr, "0"}});
  stack.push_back({per_level});
  while (!stack.empty()) {
    if (stack.back().remaining == 0) {
      (void)writer.EndElement();  // in-memory sink, cannot fail
      stack.pop_back();
      continue;
    }
    --stack.back().remaining;
    const std::string& tag = tags[rng.Uniform(tags.size())];
    // In-memory sink, cannot fail.
    (void)writer.StartElement(
        tag,
        {XmlAttribute{key_attr, std::to_string(rng.Uniform(1000000))}});
    if (static_cast<int>(stack.size()) < height) {
      stack.push_back({per_level});
    } else {
      (void)writer.EndElement();  // in-memory sink, cannot fail
    }
  }
  (void)writer.Finish();  // in-memory sink, cannot fail
  return out;
}

}  // namespace

int main() {
  std::printf("Design-choice ablations (DESIGN.md section 6)\n");

  // --- A: internal/external subtree sort crossover.
  {
    GeneratorStats doc_stats;
    // Fixed geometry: ~2400-element (340 KiB) level-2 subtrees.
    std::string xml = MakeShapedDoc({20, 85, 28}, 3, &doc_stats);
    PrintHeader("A. internal vs external subtree sorts (fixed document, "
                "memory sweep)",
                "    M | nexsort I/O  model(s) | internal  external  largest "
                "subtree");
    for (uint64_t memory_blocks : {160, 120, 96, 64, 32, 16, 10}) {
      RunResult run = RunNexSort(xml, memory_blocks, DefaultNexOptions());
      CheckOk(run, "nexsort");
      std::printf("  %3llu | %11llu  %8.2f | %8llu  %8llu  %15s\n",
                  static_cast<unsigned long long>(memory_blocks),
                  static_cast<unsigned long long>(run.io_total),
                  run.modeled_seconds,
                  static_cast<unsigned long long>(
                      run.nexsort_stats.sorts.internal_sorts),
                  static_cast<unsigned long long>(
                      run.nexsort_stats.sorts.external_sorts),
                  HumanBytes(run.nexsort_stats.sorts.largest_subtree_bytes)
                      .c_str());
    }
  }

  // --- B: compaction on a verbose document.
  {
    std::string xml = MakeVerboseDoc(12, 4, 9);
    PrintHeader("B. name-dictionary compaction on verbose tag names",
                "   config             | nexsort I/O  model(s) | data-stack "
                "peak");
    for (bool use_dictionary : {true, false}) {
      NexSortOptions options = DefaultNexOptions();
      OrderRule rule;
      rule.element = "*";
      rule.source = KeySource::kAttribute;
      rule.argument = "transactionIdentifier";
      rule.numeric = true;
      options.order = OrderSpec().AddRule(rule);
      options.use_dictionary = use_dictionary;
      RunResult run = RunNexSort(xml, 16, options);
      CheckOk(run, "nexsort");
      std::printf("   %-18s | %11llu  %8.2f | %s\n",
                  use_dictionary ? "dictionary" : "verbatim names",
                  static_cast<unsigned long long>(run.io_total),
                  run.modeled_seconds,
                  HumanBytes(run.nexsort_stats.data_stack_peak).c_str());
    }
  }

  // --- C: sequential-access fraction.
  {
    GeneratorStats doc_stats;
    std::string xml = MakeShapedDoc({40, 85, 60}, 11, &doc_stats);
    PrintHeader("C. access-pattern quality (sequential fraction of all "
                "block I/Os)",
                "   algorithm  |   total I/O  sequential  fraction  model(s)");
    RunResult nex = RunNexSort(xml, 16, DefaultNexOptions());
    CheckOk(nex, "nexsort");
    RunResult kp = RunKeyPathSort(xml, 16, DefaultKeyPathOptions());
    CheckOk(kp, "merge sort");
    for (const auto& [name, run] :
         {std::pair<const char*, const RunResult&>{"nexsort", nex},
          {"merge sort", kp}}) {
      uint64_t sequential =
          run.io.sequential_reads + run.io.sequential_writes;
      std::printf("   %-10s | %11llu  %10llu  %7.1f%%  %8.2f\n", name,
                  static_cast<unsigned long long>(run.io_total),
                  static_cast<unsigned long long>(sequential),
                  100.0 * sequential / run.io_total, run.modeled_seconds);
    }
  }

  // --- D: fragment geometry under graceful degeneration.
  {
    GeneratorStats doc_stats;
    std::string xml = MakeShapedDoc({6000}, 13, &doc_stats);
    PrintHeader("D. graceful degeneration on a flat 6000-element document",
                "    M | nexsort I/O  model(s) | fragments  premerge passes");
    for (uint64_t memory_blocks : {64, 32, 16, 10, 8}) {
      NexSortOptions options = DefaultNexOptions();
      options.graceful_degeneration = true;
      RunResult run = RunNexSort(xml, memory_blocks, options);
      CheckOk(run, "nexsort");
      std::printf("  %3llu | %11llu  %8.2f | %9llu  %15llu\n",
                  static_cast<unsigned long long>(memory_blocks),
                  static_cast<unsigned long long>(run.io_total),
                  run.modeled_seconds,
                  static_cast<unsigned long long>(
                      run.nexsort_stats.fragment_runs),
                  static_cast<unsigned long long>(
                      run.nexsort_stats.sorts.fragment_premerge_passes));
    }
  }
  return 0;
}
