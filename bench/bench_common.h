// Shared harness for the paper-reproduction benchmarks: workload builders,
// algorithm runners over counted block devices, and table printers. Each
// bench binary regenerates one table/figure of the paper (see DESIGN.md's
// experiment index); the primary metric is counted block I/Os, with the
// DiskModel supplying a seconds-shaped series comparable to the paper's
// sort-time plots, plus real wall-clock for reference.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/keypath_xml_sort.h"
#include "core/nexsort.h"
#include "env/sort_env.h"
#include "extmem/block_device.h"
#include "obs/json_writer.h"
#include "obs/telemetry_hub.h"
#include "obs/tracer.h"
#include "xml/generator.h"

namespace nexsort {
namespace bench {

/// The paper's experiments used 64 KB blocks on a 1 GB machine; we shrink
/// both so the same N/B and M/B ratios (and therefore the same pass
/// structure) appear at laptop-benchmark sizes.
inline constexpr size_t kBlockSize = 4096;

struct RunResult {
  bool ok = false;
  std::string error;
  uint64_t io_total = 0;
  uint64_t io_reads = 0;
  uint64_t io_writes = 0;
  double modeled_seconds = 0;
  double wall_seconds = 0;
  uint64_t output_bytes = 0;
  /// Streaming runs only (RunNexSortStream): milliseconds from Sort start
  /// to the first sorted chunk. Negative when the run was eager.
  double time_to_first_byte_ms = -1;
  NexSortStats nexsort_stats;      // NEXSORT runs only
  KeyPathSortStats keypath_stats;  // baseline runs only
  IoStats io;  // *physical* transfers: the backing device's counters
  CacheStats cache;  // all zeros unless env_options.cache.frames > 0
  /// Rendered "nexsort-telemetry-v1" object (per-phase spans, run events,
  /// metrics) — same schema as xmlsort --stats-json's "telemetry" key.
  /// Empty unless the run captured telemetry.
  std::string telemetry_json;
};

/// Sort `xml` with NEXSORT inside an environment built from `env_options`.
/// Benches that need a cache, worker threads, or throttle layers set the
/// corresponding SortEnvOptions fields; everything else uses the
/// memory-blocks convenience overload below.
inline RunResult RunNexSort(const std::string& xml, SortEnvOptions env_options,
                            NexSortOptions options,
                            bool capture_telemetry = false,
                            std::string* output = nullptr) {
  RunResult result;
  Tracer tracer;
  if (capture_telemetry) env_options.tracer = &tracer;
  auto env_or = SortEnv::Create(std::move(env_options));
  if (!env_or.ok()) {
    result.error = env_or.status().ToString();
    return result;
  }
  std::unique_ptr<SortEnv> env = std::move(env_or).value();
  NexSorter sorter(env.get(), std::move(options));
  StringByteSource source(xml);
  std::string out;
  StringByteSink sink(&out);
  auto start = std::chrono::steady_clock::now();
  Status st = sorter.Sort(&source, &sink);
  auto stop = std::chrono::steady_clock::now();
  result.ok = st.ok();
  result.error = st.ToString();
  result.io = env->physical_device()->stats();
  result.io_total = result.io.total();
  result.io_reads = result.io.reads;
  result.io_writes = result.io.writes;
  result.modeled_seconds = result.io.modeled_seconds;
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  result.output_bytes = out.size();
  result.nexsort_stats = sorter.stats();
  result.cache = env->cache_stats();
  if (capture_telemetry) result.telemetry_json = tracer.ToJsonString();
  if (output != nullptr) *output = std::move(out);
  return result;
}

/// Sort `xml` with NEXSORT under `memory_blocks` of budget.
inline RunResult RunNexSort(const std::string& xml, uint64_t memory_blocks,
                            NexSortOptions options,
                            size_t block_size = kBlockSize,
                            bool capture_telemetry = false,
                            std::string* output = nullptr) {
  SortEnvOptions env_options;
  env_options.block_size = block_size;
  env_options.memory_blocks = memory_blocks;
  return RunNexSort(xml, std::move(env_options), std::move(options),
                    capture_telemetry, output);
}

/// Sort `xml` with NEXSORT's pull-based SortedStream, draining chunk by
/// chunk and stamping time_to_first_byte_ms when the first sorted chunk
/// surfaces. Output bytes are identical to RunNexSort.
inline RunResult RunNexSortStream(const std::string& xml,
                                  uint64_t memory_blocks,
                                  NexSortOptions options,
                                  size_t block_size = kBlockSize,
                                  std::string* output = nullptr) {
  RunResult result;
  SortEnvOptions env_options;
  env_options.block_size = block_size;
  env_options.memory_blocks = memory_blocks;
  auto env_or = SortEnv::Create(std::move(env_options));
  if (!env_or.ok()) {
    result.error = env_or.status().ToString();
    return result;
  }
  std::unique_ptr<SortEnv> env = std::move(env_or).value();
  NexSorter sorter(env.get(), std::move(options));
  StringByteSource source(xml);
  std::string out;
  auto start = std::chrono::steady_clock::now();
  auto stream_or = sorter.SortStream(&source);
  Status st = stream_or.status();
  if (st.ok()) {
    std::string_view chunk;
    bool first = true;
    while (true) {
      auto more = stream_or.value()->Next(&chunk);
      if (!more.ok()) {
        st = more.status();
        break;
      }
      if (!more.value()) break;
      if (first) {
        first = false;
        result.time_to_first_byte_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
      }
      out.append(chunk);
    }
  }
  auto stop = std::chrono::steady_clock::now();
  result.ok = st.ok();
  result.error = st.ToString();
  result.io = env->physical_device()->stats();
  result.io_total = result.io.total();
  result.io_reads = result.io.reads;
  result.io_writes = result.io.writes;
  result.modeled_seconds = result.io.modeled_seconds;
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  result.output_bytes = out.size();
  result.nexsort_stats = sorter.stats();
  result.cache = env->cache_stats();
  if (output != nullptr) *output = std::move(out);
  return result;
}

/// Sort `xml` with the key-path external merge sort baseline inside an
/// environment built from `env_options`.
inline RunResult RunKeyPathSort(const std::string& xml,
                                SortEnvOptions env_options,
                                KeyPathSortOptions options,
                                bool capture_telemetry = false) {
  RunResult result;
  Tracer tracer;
  if (capture_telemetry) env_options.tracer = &tracer;
  auto env_or = SortEnv::Create(std::move(env_options));
  if (!env_or.ok()) {
    result.error = env_or.status().ToString();
    return result;
  }
  std::unique_ptr<SortEnv> env = std::move(env_or).value();
  KeyPathXmlSorter sorter(env.get(), std::move(options));
  StringByteSource source(xml);
  std::string out;
  StringByteSink sink(&out);
  auto start = std::chrono::steady_clock::now();
  Status st = sorter.Sort(&source, &sink);
  auto stop = std::chrono::steady_clock::now();
  result.ok = st.ok();
  result.error = st.ToString();
  result.io = env->physical_device()->stats();
  result.io_total = result.io.total();
  result.io_reads = result.io.reads;
  result.io_writes = result.io.writes;
  result.modeled_seconds = result.io.modeled_seconds;
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  result.output_bytes = out.size();
  result.keypath_stats = sorter.stats();
  result.cache = env->cache_stats();
  if (capture_telemetry) result.telemetry_json = tracer.ToJsonString();
  return result;
}

/// Sort `xml` with the key-path external merge sort baseline.
inline RunResult RunKeyPathSort(const std::string& xml,
                                uint64_t memory_blocks,
                                KeyPathSortOptions options,
                                size_t block_size = kBlockSize,
                                bool capture_telemetry = false) {
  SortEnvOptions env_options;
  env_options.block_size = block_size;
  env_options.memory_blocks = memory_blocks;
  return RunKeyPathSort(xml, std::move(env_options), std::move(options),
                        capture_telemetry);
}

/// Machine-readable companion to the printed tables: pass `--json FILE`
/// (or `--json=FILE`) to a bench binary and every measured point is also
/// appended here, then written as one "nexsort-bench-v1" document:
///
///   {"schema":"nexsort-bench-v1","bench":...,"block_size":...,
///    "rows":[{"algorithm":...,"params":{...},"ok":...,"io":{...},
///             "modeled_seconds":...,"wall_seconds":...,
///             "output_bytes":...,"telemetry":{...}}, ...]}
///
/// "io" matches IoStats::ToJson and "telemetry" (present when the run
/// captured it) matches the tracer's nexsort-telemetry-v1 — the same
/// objects xmlsort --stats-json emits, so one consumer reads both.
class BenchJsonLog {
 public:
  BenchJsonLog(int argc, char** argv, const char* bench_name)
      : bench_name_(bench_name) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--json" && i + 1 < argc) {
        path_ = argv[++i];
      } else if (arg.rfind("--json=", 0) == 0) {
        path_ = arg.substr(std::string("--json=").size());
      }
    }
  }

  /// True when --json was given; use it to decide capture_telemetry.
  bool enabled() const { return !path_.empty(); }

  void AddRow(const char* algorithm,
              std::initializer_list<std::pair<const char*, uint64_t>> params,
              const RunResult& result) {
    if (!enabled()) return;
    JsonWriter row;
    row.BeginObject();
    row.Key("algorithm");
    row.String(algorithm);
    row.Key("params");
    row.BeginObject();
    for (const auto& [name, value] : params) {
      row.Key(name);
      row.Uint(value);
    }
    row.EndObject();
    row.Key("ok");
    row.Bool(result.ok);
    row.Key("io");
    result.io.ToJson(&row);
    row.Key("modeled_seconds");
    row.Double(result.modeled_seconds);
    row.Key("wall_seconds");
    row.Double(result.wall_seconds);
    row.Key("output_bytes");
    row.Uint(result.output_bytes);
    if (result.time_to_first_byte_ms >= 0) {
      row.Key("time_to_first_byte_ms");
      row.Double(result.time_to_first_byte_ms);
    }
    if (result.cache.hits + result.cache.misses > 0) {
      row.Key("cache");
      result.cache.ToJson(&row);
    }
    if (!result.telemetry_json.empty()) {
      row.Key("telemetry");
      row.Raw(result.telemetry_json);
    }
    row.EndObject();
    rows_.push_back(std::move(row).Take());
  }

  /// Write the accumulated series; call once after the sweep.
  void Write(size_t block_size = kBlockSize) {
    if (!enabled()) return;
    JsonWriter json;
    json.BeginObject();
    json.Key("schema");
    json.String("nexsort-bench-v1");
    json.Key("bench");
    json.String(bench_name_);
    json.Key("block_size");
    json.Uint(block_size);
    json.Key("rows");
    json.BeginArray();
    for (const std::string& row : rows_) json.Raw(row);
    json.EndArray();
    json.EndObject();
    FILE* out = std::fopen(path_.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", path_.c_str());
      return;
    }
    std::string text = std::move(json).Take();
    text.push_back('\n');
    std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
    std::printf("wrote %s (%zu rows)\n", path_.c_str(), rows_.size());
  }

 private:
  std::string bench_name_;
  std::string path_;
  std::vector<std::string> rows_;
};

/// Live-telemetry knobs for the bench binaries, parsed the same way as
/// BenchJsonLog's `--json`: `--sample-interval-ms N` arms the SortEnv
/// background sampler on the runs a bench designates, and `--timeline
/// FILE` (or `--timeline=FILE`) streams that run's gauge samples as
/// nexsort-timeline-v1 JSONL. `--timeline` without an explicit interval
/// defaults to 5 ms. Each bench decides which configuration gets the
/// timeline (typically its headline run); the sink attaches once.
class BenchTimeline {
 public:
  BenchTimeline(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--timeline" && i + 1 < argc) {
        path_ = argv[++i];
      } else if (arg.rfind("--timeline=", 0) == 0) {
        path_ = arg.substr(std::string("--timeline=").size());
      } else if (arg == "--sample-interval-ms" && i + 1 < argc) {
        interval_ms_ =
            static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (arg.rfind("--sample-interval-ms=", 0) == 0) {
        interval_ms_ = static_cast<uint32_t>(std::strtoul(
            arg.substr(std::string("--sample-interval-ms=").size()).c_str(),
            nullptr, 10));
      }
    }
    if (!path_.empty() && interval_ms_ == 0) interval_ms_ = 5;
  }

  bool enabled() const { return interval_ms_ > 0; }
  uint32_t interval_ms() const { return interval_ms_; }

  /// Arm the env's sampler for a run this bench wants sampled.
  void Arm(SortEnvOptions* options) const {
    options->sample_interval_ms = interval_ms_;
  }

  /// Attach the timeline file sink to a freshly created (armed) env.
  /// First successful call wins; later calls are no-ops.
  void Attach(SortEnv* env) {
    if (path_.empty() || attached_ || env->telemetry() == nullptr) return;
    JsonWriter env_json;
    env->DescribeJson(&env_json);
    auto sink = FileTimelineSink::Open(path_, std::move(env_json).Take(),
                                       interval_ms_);
    if (!sink.ok()) {
      std::fprintf(stderr, "cannot open %s: %s\n", path_.c_str(),
                   sink.status().ToString().c_str());
      return;
    }
    env->telemetry()->AddSink(std::move(sink).value());
    attached_ = true;
  }

 private:
  std::string path_;
  uint32_t interval_ms_ = 0;
  bool attached_ = false;
};

inline NexSortOptions DefaultNexOptions() {
  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  return options;
}

inline KeyPathSortOptions DefaultKeyPathOptions() {
  KeyPathSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  return options;
}

/// Generate a paper-style document with the IBM-style generator.
inline std::string MakeRandomDoc(int height, uint64_t max_fanout,
                                 uint64_t seed, GeneratorStats* stats) {
  RandomTreeGenerator generator(
      height, max_fanout, {.seed = seed, .element_bytes = 150});
  auto xml = generator.GenerateString();
  if (!xml.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 xml.status().ToString().c_str());
    std::exit(1);
  }
  if (stats != nullptr) *stats = generator.stats();
  return std::move(xml).value();
}

/// Generate a Table-2-style document with exact fan-outs per level.
inline std::string MakeShapedDoc(const std::vector<uint64_t>& fanouts,
                                 uint64_t seed, GeneratorStats* stats) {
  ShapeGenerator generator(fanouts,
                           {.seed = seed, .element_bytes = 150,
                            .leaf_text = false});
  auto xml = generator.GenerateString();
  if (!xml.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 xml.status().ToString().c_str());
    std::exit(1);
  }
  if (stats != nullptr) *stats = generator.stats();
  return std::move(xml).value();
}

inline void PrintHeader(const char* title, const char* columns) {
  std::printf("\n== %s ==\n%s\n", title, columns);
}

inline void CheckOk(const RunResult& result, const char* label) {
  if (!result.ok) {
    std::fprintf(stderr, "%s failed: %s\n", label, result.error.c_str());
    std::exit(1);
  }
}

}  // namespace bench
}  // namespace nexsort
