// Shared harness for the paper-reproduction benchmarks: workload builders,
// algorithm runners over counted block devices, and table printers. Each
// bench binary regenerates one table/figure of the paper (see DESIGN.md's
// experiment index); the primary metric is counted block I/Os, with the
// DiskModel supplying a seconds-shaped series comparable to the paper's
// sort-time plots, plus real wall-clock for reference.
#pragma once

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/keypath_xml_sort.h"
#include "core/nexsort.h"
#include "extmem/block_device.h"
#include "extmem/memory_budget.h"
#include "xml/generator.h"

namespace nexsort {
namespace bench {

/// The paper's experiments used 64 KB blocks on a 1 GB machine; we shrink
/// both so the same N/B and M/B ratios (and therefore the same pass
/// structure) appear at laptop-benchmark sizes.
inline constexpr size_t kBlockSize = 4096;

struct RunResult {
  bool ok = false;
  std::string error;
  uint64_t io_total = 0;
  uint64_t io_reads = 0;
  uint64_t io_writes = 0;
  double modeled_seconds = 0;
  double wall_seconds = 0;
  uint64_t output_bytes = 0;
  NexSortStats nexsort_stats;      // NEXSORT runs only
  KeyPathSortStats keypath_stats;  // baseline runs only
  IoStats io;
};

/// Sort `xml` with NEXSORT under `memory_blocks` of budget.
inline RunResult RunNexSort(const std::string& xml, uint64_t memory_blocks,
                            NexSortOptions options,
                            size_t block_size = kBlockSize) {
  RunResult result;
  auto device = NewMemoryBlockDevice(block_size);
  MemoryBudget budget(memory_blocks);
  NexSorter sorter(device.get(), &budget, std::move(options));
  StringByteSource source(xml);
  std::string out;
  StringByteSink sink(&out);
  auto start = std::chrono::steady_clock::now();
  Status st = sorter.Sort(&source, &sink);
  auto stop = std::chrono::steady_clock::now();
  result.ok = st.ok();
  result.error = st.ToString();
  result.io = device->stats();
  result.io_total = device->stats().total();
  result.io_reads = device->stats().reads;
  result.io_writes = device->stats().writes;
  result.modeled_seconds = device->stats().modeled_seconds;
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  result.output_bytes = out.size();
  result.nexsort_stats = sorter.stats();
  return result;
}

/// Sort `xml` with the key-path external merge sort baseline.
inline RunResult RunKeyPathSort(const std::string& xml,
                                uint64_t memory_blocks,
                                KeyPathSortOptions options,
                                size_t block_size = kBlockSize) {
  RunResult result;
  auto device = NewMemoryBlockDevice(block_size);
  MemoryBudget budget(memory_blocks);
  KeyPathXmlSorter sorter(device.get(), &budget, std::move(options));
  StringByteSource source(xml);
  std::string out;
  StringByteSink sink(&out);
  auto start = std::chrono::steady_clock::now();
  Status st = sorter.Sort(&source, &sink);
  auto stop = std::chrono::steady_clock::now();
  result.ok = st.ok();
  result.error = st.ToString();
  result.io = device->stats();
  result.io_total = device->stats().total();
  result.io_reads = device->stats().reads;
  result.io_writes = device->stats().writes;
  result.modeled_seconds = device->stats().modeled_seconds;
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  result.output_bytes = out.size();
  result.keypath_stats = sorter.stats();
  return result;
}

inline NexSortOptions DefaultNexOptions() {
  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  return options;
}

inline KeyPathSortOptions DefaultKeyPathOptions() {
  KeyPathSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  return options;
}

/// Generate a paper-style document with the IBM-style generator.
inline std::string MakeRandomDoc(int height, uint64_t max_fanout,
                                 uint64_t seed, GeneratorStats* stats) {
  RandomTreeGenerator generator(
      height, max_fanout, {.seed = seed, .element_bytes = 150});
  auto xml = generator.GenerateString();
  if (!xml.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 xml.status().ToString().c_str());
    std::exit(1);
  }
  if (stats != nullptr) *stats = generator.stats();
  return std::move(xml).value();
}

/// Generate a Table-2-style document with exact fan-outs per level.
inline std::string MakeShapedDoc(const std::vector<uint64_t>& fanouts,
                                 uint64_t seed, GeneratorStats* stats) {
  ShapeGenerator generator(fanouts,
                           {.seed = seed, .element_bytes = 150,
                            .leaf_text = false});
  auto xml = generator.GenerateString();
  if (!xml.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 xml.status().ToString().c_str());
    std::exit(1);
  }
  if (stats != nullptr) *stats = generator.stats();
  return std::move(xml).value();
}

inline void PrintHeader(const char* title, const char* columns) {
  std::printf("\n== %s ==\n%s\n", title, columns);
}

inline void CheckOk(const RunResult& result, const char* label) {
  if (!result.ok) {
    std::fprintf(stderr, "%s failed: %s\n", label, result.error.c_str());
    std::exit(1);
  }
}

}  // namespace bench
}  // namespace nexsort
