// Service isolation load test (docs/SERVICE.md): one SortService, a bulk
// tenant that floods the queue with big sorts, and an interactive tenant
// submitting a stream of small sorts behind them. Demonstrates and
// *asserts* the three service guarantees:
//
//   1. no starvation — every interactive job completes, and the stride
//      scheduler interleaves them with the bulk backlog instead of
//      appending them behind it (bounded, reported p95 latency);
//   2. exact accounting — per-session I/O attribution sums to the shared
//      env device's totals, read for read;
//   3. byte identity — service outputs equal solo NexSorter runs under
//      the same pinned grant, even with every executor busy.
//
//   bench_service [--json FILE]
//
// Exits non-zero when any assertion fails, so the bench doubles as a CI
// gate. --json writes a nexsort-bench-v1 document with the latency
// distribution per tenant.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/order_spec_parse.h"
#include "service/service.h"

using namespace nexsort;
using bench::kBlockSize;

namespace {

struct TenantOutcome {
  std::vector<double> latencies;  // submit -> terminal, seconds
  double last_finish = 0;
  uint64_t done = 0;
  uint64_t failed = 0;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t index = static_cast<size_t>(p * (values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

std::string SmallDoc(int index) {
  // ~40 KB, unsorted: several spills under the service's pinned grant.
  std::string xml = "<batch>";
  for (int i = 0; i < 260; ++i) {
    int id = (i * 37 + index * 13 + 5) % 260;
    xml += "<item id=\"" + std::to_string(id) +
           "\"><name>interactive-" + std::to_string(id) +
           "</name><payload>0123456789abcdefghijklmnopqrstuvwxyz"
           "0123456789abcdefghijklmnop</payload></item>";
  }
  xml += "</batch>";
  return xml;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJsonLog log(argc, argv, "service");

  constexpr int kBulkJobs = 5;
  constexpr int kSmallJobs = 16;

  // Bulk documents: ~0.6 MB each, many runs under a small grant.
  std::vector<std::string> bulk_docs;
  for (int i = 0; i < kBulkJobs; ++i) {
    RandomTreeGenerator generator(/*height=*/3, /*max_fanout=*/70,
                                  {.seed = 1000 + static_cast<uint64_t>(i)});
    auto doc = generator.GenerateString();
    if (!doc.ok()) {
      std::fprintf(stderr, "generator: %s\n", doc.status().ToString().c_str());
      return 1;
    }
    bulk_docs.push_back(std::move(doc).value());
  }
  std::vector<std::string> small_docs;
  for (int i = 0; i < kSmallJobs; ++i) small_docs.push_back(SmallDoc(i));

  ServiceOptions options;
  options.env.block_size = kBlockSize;
  options.env.memory_blocks = 96;
  options.executors = 2;
  options.max_queue_depth = 128;
  // The interactive tenant gets 4x the dispatch bandwidth and the bulk
  // tenant may hold only one executor at a time — the big backlog cannot
  // monopolize the service.
  TenantQuota bulk_quota;
  bulk_quota.weight = 0.25;
  bulk_quota.max_in_flight = 1;
  options.tenant_quotas["bulk"] = bulk_quota;
  TenantQuota interactive_quota;
  interactive_quota.weight = 1.0;
  interactive_quota.max_in_flight = 2;
  options.tenant_quotas["interactive"] = interactive_quota;

  auto service_or = SortService::Create(std::move(options));
  if (!service_or.ok()) {
    std::fprintf(stderr, "service: %s\n",
                 service_or.status().ToString().c_str());
    return 1;
  }
  SortService& service = *service_or.value();
  std::printf("service: %u executors, %llu-block grant, %llu-block pinned "
              "sort memory\n",
              2u, static_cast<unsigned long long>(service.grant_blocks()),
              static_cast<unsigned long long>(service.sort_memory_blocks()));

  // Phase 1: the bulk tenant floods the queue...
  std::vector<uint64_t> bulk_ids;
  for (const std::string& doc : bulk_docs) {
    JobRequest request;
    request.tenant = "bulk";
    request.order_text = "*:attr(id)n";
    request.input_text = doc;
    uint64_t id = 0;
    Status submitted = service.Submit(std::move(request), &id);
    if (!submitted.ok()) {
      std::fprintf(stderr, "bulk submit: %s\n",
                   submitted.ToString().c_str());
      return 1;
    }
    bulk_ids.push_back(id);
  }
  // ...then the interactive stream arrives behind it.
  std::vector<uint64_t> small_ids;
  for (const std::string& doc : small_docs) {
    JobRequest request;
    request.tenant = "interactive";
    request.order_text = "item:attr(id)n";
    request.input_text = doc;
    request.return_output = true;
    uint64_t id = 0;
    Status submitted = service.Submit(std::move(request), &id);
    if (!submitted.ok()) {
      std::fprintf(stderr, "interactive submit: %s\n",
                   submitted.ToString().c_str());
      return 1;
    }
    small_ids.push_back(id);
  }

  auto collect = [&](const std::vector<uint64_t>& ids) {
    TenantOutcome outcome;
    for (uint64_t id : ids) {
      auto status = service.Wait(id);
      if (!status.ok() ||
          status.value().state != JobStatus::State::kDone) {
        ++outcome.failed;
        std::fprintf(stderr, "job %llu: %s\n",
                     static_cast<unsigned long long>(id),
                     status.ok() ? status.value().error.c_str()
                                 : status.status().ToString().c_str());
        continue;
      }
      ++outcome.done;
      outcome.latencies.push_back(status.value().finish_seconds -
                                  status.value().submit_seconds);
      outcome.last_finish =
          std::max(outcome.last_finish, status.value().finish_seconds);
    }
    return outcome;
  };
  TenantOutcome small = collect(small_ids);
  TenantOutcome bulk = collect(bulk_ids);

  bool ok = true;

  // Guarantee 1: every interactive job completed, and the stream did not
  // simply queue behind the bulk backlog — the last small job finishes
  // before the last bulk job does.
  double p50 = Percentile(small.latencies, 0.50);
  double p95 = Percentile(small.latencies, 0.95);
  std::printf("interactive: %llu/%d done, latency p50 %.3fs p95 %.3fs, "
              "last finish %.3fs\n",
              static_cast<unsigned long long>(small.done), kSmallJobs, p50,
              p95, small.last_finish);
  std::printf("bulk:        %llu/%d done, last finish %.3fs\n",
              static_cast<unsigned long long>(bulk.done), kBulkJobs,
              bulk.last_finish);
  if (small.done != kSmallJobs || bulk.done != kBulkJobs) {
    std::fprintf(stderr, "FAIL: jobs did not all complete\n");
    ok = false;
  }
  if (small.last_finish >= bulk.last_finish) {
    std::fprintf(stderr,
                 "FAIL: interactive stream finished after the bulk "
                 "backlog — starvation\n");
    ok = false;
  }
  if (p95 >= 30.0) {
    std::fprintf(stderr, "FAIL: interactive p95 unbounded (%.3fs)\n", p95);
    ok = false;
  }

  // Guarantee 2: per-session attribution sums to the env totals exactly.
  uint64_t session_reads = 0;
  uint64_t session_writes = 0;
  for (const SessionStats& session : service.env()->session_stats()) {
    session_reads += session.io.reads.load();
    session_writes += session.io.writes.load();
  }
  const IoStats& env_io = service.env()->device()->stats();
  std::printf("accounting: sessions %llu+%llu r/w, env %llu+%llu r/w\n",
              static_cast<unsigned long long>(session_reads),
              static_cast<unsigned long long>(session_writes),
              static_cast<unsigned long long>(env_io.reads.load()),
              static_cast<unsigned long long>(env_io.writes.load()));
  if (session_reads != env_io.reads.load() ||
      session_writes != env_io.writes.load()) {
    std::fprintf(stderr, "FAIL: session attribution does not sum to env "
                         "totals\n");
    ok = false;
  }

  // Guarantee 3: outputs equal solo runs under the same pinned grant.
  auto spec = ParseOrderSpec("item:attr(id)n");
  if (!spec.ok()) {
    std::fprintf(stderr, "spec: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  const SortEnvOptions& shared = service.env()->options();
  for (int i = 0; i < kSmallJobs; ++i) {
    auto produced = service.TakeOutput(small_ids[i]);
    if (!produced.ok()) {
      std::fprintf(stderr, "FAIL: no output for small job %d\n", i);
      ok = false;
      continue;
    }
    SortEnvOptions solo;
    solo.block_size = shared.block_size;
    solo.memory_blocks = shared.memory_blocks;
    solo.sort_memory_blocks = shared.sort_memory_blocks;
    NexSortOptions sort_options;
    sort_options.order = *spec;
    std::string expected;
    bench::RunResult reference = bench::RunNexSort(
        small_docs[i], std::move(solo), std::move(sort_options),
        /*capture_telemetry=*/false, &expected);
    if (!reference.ok) {
      std::fprintf(stderr, "solo run %d: %s\n", i, reference.error.c_str());
      return 1;
    }
    if (produced.value() != expected) {
      std::fprintf(stderr,
                   "FAIL: small job %d output diverged from its solo "
                   "run\n", i);
      ok = false;
    }
  }
  if (ok) std::printf("isolation: PASS\n");

  if (log.enabled()) {
    // Two synthetic rows, one per tenant: wall_seconds carries the p95.
    bench::RunResult small_row;
    small_row.ok = small.done == kSmallJobs;
    small_row.wall_seconds = p95;
    small_row.io = env_io;
    log.AddRow("service-interactive",
               {{"jobs", small.done},
                {"latency_p50_us", static_cast<uint64_t>(p50 * 1e6)},
                {"latency_p95_us", static_cast<uint64_t>(p95 * 1e6)}},
               small_row);
    bench::RunResult bulk_row;
    bulk_row.ok = bulk.done == kBulkJobs;
    bulk_row.wall_seconds = Percentile(bulk.latencies, 0.95);
    log.AddRow("service-bulk",
               {{"jobs", bulk.done},
                {"latency_p95_us",
                 static_cast<uint64_t>(bulk_row.wall_seconds * 1e6)}},
               bulk_row);
    log.Write(kBlockSize);
  }
  return ok ? 0 : 1;
}
