// Buffer-pool sweep on the Figure-5 workload: fixed memory budget M, an
// increasing share of it spent on block-cache frames instead of sort
// memory. Reports *physical* I/O on the backing device (the cache
// wrapper absorbs repeat accesses), the I/O saved against the uncached
// baseline, and the pool's hit rate — and checks that every cached run
// produces byte-identical output. The trade is real: frames given to the
// cache come out of the same M the subtree sorts use, so the interesting
// region is where the stacks' hot tails and merge inputs fit in cache
// without starving the sorter.
#include "bench/bench_common.h"
#include "util/string_util.h"

using namespace nexsort;
using namespace nexsort::bench;

int main(int argc, char** argv) {
  BenchJsonLog json_log(argc, argv, "cache");
  GeneratorStats doc_stats;
  std::string xml = MakeRandomDoc(/*height=*/7, /*max_fanout=*/10,
                                  /*seed=*/42, &doc_stats);
  constexpr uint64_t kMemoryBlocks = 128;
  constexpr uint64_t kReadahead = 4;
  std::printf("Buffer-pool cache sweep (fig5 workload, fixed M)\n");
  std::printf("document: %s elements, k=%llu, height=%d, %s\n",
              WithCommas(doc_stats.elements).c_str(),
              static_cast<unsigned long long>(doc_stats.max_fanout),
              doc_stats.height, HumanBytes(doc_stats.bytes).c_str());
  std::printf("block size %zu, M=%llu blocks, readahead %llu\n", kBlockSize,
              static_cast<unsigned long long>(kMemoryBlocks),
              static_cast<unsigned long long>(kReadahead));

  std::string baseline_output;
  uint64_t baseline_io = 0;
  PrintHeader("Cache sweep",
              "  frames | physical I/O |    saved | saved% | hit rate | "
              "prefetch | model(s) | output");
  for (uint64_t frames : {0, 4, 8, 16, 32, 48, 64}) {
    NexSortOptions options = DefaultNexOptions();
    SortEnvOptions env_options;
    env_options.block_size = kBlockSize;
    env_options.memory_blocks = kMemoryBlocks;
    env_options.cache = {.frames = frames,
                         .readahead = frames > 0 ? kReadahead : 0};
    std::string output;
    RunResult result = RunNexSort(xml, std::move(env_options),
                                  std::move(options), json_log.enabled(),
                                  &output);
    CheckOk(result, "nexsort");
    json_log.AddRow("nexsort_cached",
                    {{"memory_blocks", kMemoryBlocks},
                     {"cache_frames", frames},
                     {"readahead", frames > 0 ? kReadahead : 0}},
                    result);
    bool identical;
    if (frames == 0) {
      baseline_output = std::move(output);
      baseline_io = result.io_total;
      identical = true;
    } else {
      identical = output == baseline_output;
    }
    uint64_t saved = baseline_io > result.io_total
                         ? baseline_io - result.io_total
                         : 0;
    std::printf("  %6llu | %12llu | %8llu | %5.1f%% | %7.1f%% | %8llu | "
                "%8.2f | %s\n",
                static_cast<unsigned long long>(frames),
                static_cast<unsigned long long>(result.io_total),
                static_cast<unsigned long long>(saved),
                baseline_io == 0 ? 0.0 : 100.0 * saved / baseline_io,
                result.cache.hit_rate() * 100.0,
                static_cast<unsigned long long>(result.cache.prefetches),
                result.modeled_seconds,
                identical ? "identical" : "DIFFERS!");
    if (!identical) {
      std::fprintf(stderr, "cached output differs from uncached baseline "
                           "at %llu frames\n",
                   static_cast<unsigned long long>(frames));
      return 1;
    }
  }
  std::printf(
      "\nexpected shape: physical I/O falls as frames absorb the stacks'\n"
      "hot tails, then levels off (or rebounds) once cache frames start\n"
      "starving the subtree sorts of working memory.\n");
  json_log.Write();
  return 0;
}
