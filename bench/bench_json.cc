// The nested-data extension, measured: cost of sorting JSON through the
// element-tree encoding, versus sorting the equivalent XML directly — the
// translation adds two linear passes and an encoding-size factor, nothing
// superlinear.
#include "bench/bench_common.h"
#include "nested/json.h"
#include "util/random.h"
#include "util/string_util.h"

using namespace nexsort;
using namespace nexsort::bench;

namespace {

// Paired workloads: a JSON array of records and the equivalent XML.
void MakeRecordWorkload(int records, uint64_t seed, std::string* json,
                        std::string* xml) {
  Random rng(seed);
  *json = "[";
  *xml = "<all>";
  for (int i = 0; i < records; ++i) {
    uint64_t id = rng.Uniform(1000000);
    std::string name = rng.Identifier(12);
    std::string city = rng.Identifier(8);
    if (i) *json += ",";
    *json += "{\"id\":" + std::to_string(id) + ",\"name\":\"" + name +
             "\",\"city\":\"" + city + "\"}";
    *xml += "<rec id=\"" + std::to_string(id) + "\" name=\"" + name +
            "\" city=\"" + city + "\"></rec>";
  }
  *json += "]";
  *xml += "</all>";
}

}  // namespace

int main() {
  std::printf("JSON front-end: sorting records by id, encoding overhead vs "
              "native XML\n");
  std::printf("block size %zu, memory 24 blocks\n", kBlockSize);
  const uint64_t kMemoryBlocks = 24;

  PrintHeader("JSON vs XML sort",
              "    records | json bytes  sort I/O  model(s) | xml bytes  "
              "sort I/O  model(s) | I/O ratio");
  for (int records : {1000, 5000, 20000, 60000}) {
    std::string json;
    std::string xml;
    MakeRecordWorkload(records, 7, &json, &xml);

    uint64_t json_io = 0;
    double json_model = 0;
    {
      SortEnvOptions env_options;
      env_options.block_size = kBlockSize;
      env_options.memory_blocks = kMemoryBlocks;
      auto env_or = SortEnv::Create(std::move(env_options));
      if (!env_or.ok()) {
        std::fprintf(stderr, "env failed: %s\n",
                     env_or.status().ToString().c_str());
        return 1;
      }
      std::unique_ptr<SortEnv> env = std::move(env_or).value();
      JsonSortOptions options;
      options.sort_object_members = false;
      options.sort_arrays_by = "id";
      options.numeric_array_keys = true;
      JsonSorter sorter(env.get(), options);
      StringByteSource source(json);
      std::string out;
      StringByteSink sink(&out);
      Status st = sorter.Sort(&source, &sink);
      if (!st.ok()) {
        std::fprintf(stderr, "json sort failed: %s\n", st.ToString().c_str());
        return 1;
      }
      json_io = env->physical_device()->stats().total();
      json_model = env->physical_device()->stats().modeled_seconds;
    }

    NexSortOptions options = DefaultNexOptions();
    RunResult xml_run = RunNexSort(xml, kMemoryBlocks, options);
    CheckOk(xml_run, "xml sort");

    std::printf("  %9d | %10s %9llu  %8.2f | %9s %9llu  %8.2f | %8.2fx\n",
                records, HumanBytes(json.size()).c_str(),
                static_cast<unsigned long long>(json_io), json_model,
                HumanBytes(xml.size()).c_str(),
                static_cast<unsigned long long>(xml_run.io_total),
                xml_run.modeled_seconds,
                static_cast<double>(json_io) / xml_run.io_total);
  }
  std::printf(
      "\nexpected shape: a constant I/O factor (encoding passes + size\n"
      "inflation), flat across scales — the NEXSORT asymptotics carry over\n"
      "to nested data unchanged, as the paper's Section 6 claims.\n");
  return 0;
}
