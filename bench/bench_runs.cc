// Run-formation policy sweep (docs/RUN_FORMATION.md): quicksort chunks
// vs replacement selection, across memory sizes, on the three places runs
// actually form:
//
//  - the key-path merge-sort baseline on the Figure-5 hierarchical
//    document (every unit goes through one big external sort — the
//    paper's comparison workload);
//  - NEXSORT on a flat randomly-permuted document (one huge fan-out, so
//    the subtree sort spills);
//  - NEXSORT on a nearly-sorted flat document.
//
// Expected shape (Knuth 5.4.1): on random keys replacement selection
// forms runs averaging ~2x memory, roughly halving the run count and
// trimming merge I/O; on nearly-sorted input nothing is ever fenced, the
// whole input becomes ONE run, and the merge phase is skipped entirely.
// NEXSORT outputs are asserted byte-identical between the two policies at
// every point. The streamed rows drain the pull-based SortedStream
// instead of the eager Sort call and report time_to_first_byte_ms.
//
// A second sweep (docs/MERGE_PLANNING.md) compares merge *scheduling*:
// the historical greedy left-to-right passes (merge_policy=greedy, no
// placement — exactly the pre-planner behavior) against the planned
// schedule with DFS-aware run placement. On the fig5 key-path workload
// the planner's cost ceiling guarantees planned physical I/O and modeled
// seconds never exceed greedy's, and at M=52 — where quicksort's run
// count just exceeds the fan-in — the win is strict; placement must also
// not lower the device's sequential-read share. The skewed workload
// (replacement selection over alternating presorted stretches and
// shuffled bursts, so run lengths vary wildly) exercises the planner's
// carry DP, with outputs asserted byte-identical across policies.
#include "bench/bench_common.h"
#include "sort/merge_plan.h"
#include "sort/run_formation.h"
#include "util/string_util.h"

using namespace nexsort;
using namespace nexsort::bench;

namespace {

/// Deterministic flat document: `items` records under one root, payload
/// sizes varied by a multiplicative hash around the paper's ~150 bytes.
/// `ids` supplies the (1-based) key order.
std::string MakeFlatDoc(const std::vector<uint64_t>& ids) {
  std::string xml = "<doc>\n";
  for (size_t i = 0; i < ids.size(); ++i) {
    xml += "<item id=\"";
    xml += std::to_string(ids[i]);
    xml += "\">";
    xml.append(120 + (i * 2654435761ULL) % 64, 'x');
    xml += "</item>\n";
  }
  xml += "</doc>\n";
  return xml;
}

/// ids 1..items, deterministically permuted (Fisher-Yates over an LCG).
std::vector<uint64_t> PermutedIds(uint64_t items, uint64_t seed) {
  std::vector<uint64_t> ids(items);
  for (uint64_t i = 0; i < items; ++i) ids[i] = i + 1;
  uint64_t state = seed;
  for (uint64_t i = items - 1; i > 0; --i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    std::swap(ids[i], ids[(state >> 33) % (i + 1)]);
  }
  return ids;
}

/// ids ascending except every 64th adjacent pair swapped.
std::vector<uint64_t> NearlySortedIds(uint64_t items) {
  std::vector<uint64_t> ids(items);
  for (uint64_t i = 0; i < items; ++i) ids[i] = i + 1;
  for (uint64_t i = 63; i + 1 < items; i += 64) std::swap(ids[i], ids[i + 1]);
  return ids;
}

/// ids ascending in long stretches with a 256-item burst every 1024 items
/// swapped to random positions across the WHOLE array. A burst shuffled
/// only within itself would never fence (every value still exceeds the
/// running maximum — the nearly_sorted collapse); global swaps plant small
/// values late, so replacement selection cuts runs at the displaced keys
/// and the run lengths vary wildly — the skewed mix the merge planner's
/// carry DP exploits.
std::vector<uint64_t> SkewedSegmentIds(uint64_t items, uint64_t seed) {
  std::vector<uint64_t> ids(items);
  for (uint64_t i = 0; i < items; ++i) ids[i] = i + 1;
  uint64_t state = seed;
  for (uint64_t start = 768; start + 256 <= items; start += 1024) {
    for (uint64_t i = 0; i < 256; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      std::swap(ids[start + i], ids[(state >> 33) % items]);
    }
  }
  return ids;
}

NexSortOptions NexPolicyOptions(RunFormationPolicy policy) {
  NexSortOptions options = DefaultNexOptions();
  options.run_formation = policy;
  return options;
}

KeyPathSortOptions KeyPathPolicyOptions(RunFormationPolicy policy) {
  KeyPathSortOptions options = DefaultKeyPathOptions();
  options.run_formation = policy;
  return options;
}

KeyPathSortOptions KeyPathMergeOptions(MergePolicy policy, bool placement) {
  KeyPathSortOptions options = DefaultKeyPathOptions();
  options.merge_policy = policy;
  options.dfs_placement = placement;
  return options;
}

NexSortOptions NexMergeOptions(MergePolicy policy, bool placement) {
  NexSortOptions options = DefaultNexOptions();
  options.run_formation = RunFormationPolicy::kReplacementSelection;
  options.merge_policy = policy;
  options.dfs_placement = placement;
  return options;
}

double SequentialReadShare(const RunResult& result) {
  uint64_t reads = result.io.reads.load(std::memory_order_relaxed);
  if (reads == 0) return 0;
  return static_cast<double>(
             result.io.sequential_reads.load(std::memory_order_relaxed)) /
         static_cast<double>(reads);
}

void PrintMergeRow(const char* workload, uint64_t memory_blocks,
                   const MergePlanStats& plan, const RunResult& result) {
  std::printf(
      "  %-14s %4llu | %-7s %5llu  %3llu-%-3llu  %7.1f | %10llu  %8.2f  "
      "%5.1f%%\n",
      workload, static_cast<unsigned long long>(memory_blocks),
      MergePolicyName(plan.policy),
      static_cast<unsigned long long>(plan.steps),
      static_cast<unsigned long long>(plan.fanin_min),
      static_cast<unsigned long long>(plan.fanin_max),
      static_cast<double>(plan.actual_bytes) / (1024.0 * 1024.0),
      static_cast<unsigned long long>(result.io_total),
      result.modeled_seconds, 100.0 * SequentialReadShare(result));
}

void PrintRow(const char* workload, uint64_t memory_blocks,
              const char* policy, const RunFormationStats& runs,
              uint64_t merge_passes, const RunResult& result) {
  std::printf(
      "  %-14s %4llu | %-11s %5llu  %8.1f  %6llu | %10llu  %8.2f\n",
      workload, static_cast<unsigned long long>(memory_blocks), policy,
      static_cast<unsigned long long>(runs.runs_formed),
      runs.avg_run_blocks(),
      static_cast<unsigned long long>(merge_passes),
      static_cast<unsigned long long>(result.io_total),
      result.modeled_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  BenchJsonLog json_log(argc, argv, "run_formation");
  GeneratorStats doc_stats;
  std::string fig5_xml = MakeRandomDoc(/*height=*/7, /*max_fanout=*/10,
                                       /*seed=*/42, &doc_stats);
  std::string random_xml = MakeFlatDoc(PermutedIds(20000, /*seed=*/42));
  std::string sorted_xml = MakeFlatDoc(NearlySortedIds(20000));

  std::printf("Run formation: quicksort chunks vs replacement selection\n");
  std::printf("fig5 document: %s elements, %s (key-path baseline)\n",
              WithCommas(doc_stats.elements).c_str(),
              HumanBytes(doc_stats.bytes).c_str());
  std::printf("flat documents: 20,000 items, %s (random / nearly sorted)\n",
              HumanBytes(random_xml.size()).c_str());

  PrintHeader("Run formation sweep",
              "  workload          M | policy      runs  avg(blk)  passes |"
              "   phys I/O  model(s)");

  // Key-path baseline on the Figure-5 document: one external sort over
  // every unit, random key order — the classic replacement-selection win.
  // M=52 sits on a fan-in boundary: quicksort's run count exceeds the
  // merge fan-in (costing a second pass) while replacement selection's
  // longer runs stay under it.
  for (uint64_t memory_blocks : {64, 52, 32}) {
    RunResult qs = RunKeyPathSort(
        fig5_xml, memory_blocks,
        KeyPathPolicyOptions(RunFormationPolicy::kQuicksortChunks));
    CheckOk(qs, "keypath quicksort");
    RunResult rs = RunKeyPathSort(
        fig5_xml, memory_blocks,
        KeyPathPolicyOptions(RunFormationPolicy::kReplacementSelection));
    CheckOk(rs, "keypath replacement");
    json_log.AddRow("keypath_quicksort_fig5",
                    {{"memory_blocks", memory_blocks}}, qs);
    json_log.AddRow("keypath_replacement_fig5",
                    {{"memory_blocks", memory_blocks}}, rs);
    PrintRow("fig5_keypath", memory_blocks, "quicksort",
             qs.keypath_stats.sort.runs, qs.keypath_stats.sort.merge_passes,
             qs);
    PrintRow("fig5_keypath", memory_blocks, "replacement",
             rs.keypath_stats.sort.runs, rs.keypath_stats.sort.merge_passes,
             rs);
  }

  // NEXSORT on the flat documents: one huge fan-out forces the subtree
  // sort external; outputs must be byte-identical across policies.
  struct Workload {
    const char* name;
    const std::string* xml;
  };
  const Workload workloads[] = {{"random", &random_xml},
                                {"nearly_sorted", &sorted_xml}};
  for (const Workload& workload : workloads) {
    for (uint64_t memory_blocks : {64, 32}) {
      std::string qs_out;
      std::string rs_out;
      RunResult qs = RunNexSort(
          *workload.xml, memory_blocks,
          NexPolicyOptions(RunFormationPolicy::kQuicksortChunks),
          kBlockSize, json_log.enabled(), &qs_out);
      CheckOk(qs, "nexsort quicksort");
      RunResult rs = RunNexSort(
          *workload.xml, memory_blocks,
          NexPolicyOptions(RunFormationPolicy::kReplacementSelection),
          kBlockSize, json_log.enabled(), &rs_out);
      CheckOk(rs, "nexsort replacement");
      if (qs_out != rs_out) {
        std::fprintf(stderr,
                     "FATAL: policies disagree on %s at M=%llu "
                     "(outputs must be byte-identical)\n",
                     workload.name,
                     static_cast<unsigned long long>(memory_blocks));
        return 1;
      }
      std::string algo_qs =
          std::string("nexsort_quicksort_") + workload.name;
      std::string algo_rs =
          std::string("nexsort_replacement_") + workload.name;
      json_log.AddRow(algo_qs.c_str(), {{"memory_blocks", memory_blocks}},
                      qs);
      json_log.AddRow(algo_rs.c_str(), {{"memory_blocks", memory_blocks}},
                      rs);
      PrintRow(workload.name, memory_blocks, "quicksort",
               qs.nexsort_stats.sorts.run_formation,
               qs.nexsort_stats.sorts.merge_passes, qs);
      PrintRow(workload.name, memory_blocks, "replacement",
               rs.nexsort_stats.sorts.run_formation,
               rs.nexsort_stats.sorts.merge_passes, rs);
    }
  }

  // Streamed rows: the pull-based output path on the headline (M=32)
  // configurations; the row carries time_to_first_byte_ms.
  PrintHeader("Streamed output (M=32)",
              "  workload        | policy       ttfb(ms)   wall(ms)");
  for (const Workload& workload : workloads) {
    for (const auto& [policy_name, policy] :
         {std::pair<const char*, RunFormationPolicy>{
              "quicksort", RunFormationPolicy::kQuicksortChunks},
          {"replacement", RunFormationPolicy::kReplacementSelection}}) {
      RunResult streamed = RunNexSortStream(*workload.xml, /*memory=*/32,
                                            NexPolicyOptions(policy));
      CheckOk(streamed, "streamed sort");
      std::string algo = std::string("nexsort_stream_") + policy_name +
                         "_" + workload.name;
      json_log.AddRow(algo.c_str(), {{"memory_blocks", 32}}, streamed);
      std::printf("  %-14s | %-11s %9.1f  %9.1f\n", workload.name,
                  policy_name, streamed.time_to_first_byte_ms,
                  streamed.wall_seconds * 1e3);
    }
  }

  // Merge scheduling: the historical greedy passes (no placement) against
  // the planned schedule with DFS-aware placement, on the fig5 key-path
  // workload. The planner's pass/byte ceiling makes "planned never worse"
  // a hard assertion; M=52 sits just past the fan-in boundary, where
  // greedy's full first pass over every run is pure waste and the win
  // must be strict.
  PrintHeader("Merge scheduling: greedy vs planned (fig5 key-path)",
              "  workload          M | policy  steps  fan-in   MiB mrg |"
              "   phys I/O  model(s)  seq-rd");
  for (uint64_t memory_blocks : {64, 52, 32}) {
    RunResult greedy = RunKeyPathSort(
        fig5_xml, memory_blocks,
        KeyPathMergeOptions(MergePolicy::kGreedy, /*placement=*/false));
    CheckOk(greedy, "keypath greedy merge");
    RunResult planned = RunKeyPathSort(
        fig5_xml, memory_blocks,
        KeyPathMergeOptions(MergePolicy::kPlanned, /*placement=*/true));
    CheckOk(planned, "keypath planned merge");
    json_log.AddRow("keypath_merge_greedy_fig5",
                    {{"memory_blocks", memory_blocks}}, greedy);
    json_log.AddRow("keypath_merge_planned_fig5",
                    {{"memory_blocks", memory_blocks}}, planned);
    PrintMergeRow("fig5_keypath", memory_blocks,
                  greedy.keypath_stats.sort.plan, greedy);
    PrintMergeRow("fig5_keypath", memory_blocks,
                  planned.keypath_stats.sort.plan, planned);
    if (planned.io_total > greedy.io_total ||
        planned.modeled_seconds > greedy.modeled_seconds) {
      std::fprintf(stderr,
                   "FATAL: planned merge costs more than greedy at M=%llu "
                   "(io %llu vs %llu, model %.3f vs %.3f)\n",
                   static_cast<unsigned long long>(memory_blocks),
                   static_cast<unsigned long long>(planned.io_total),
                   static_cast<unsigned long long>(greedy.io_total),
                   planned.modeled_seconds, greedy.modeled_seconds);
      return 1;
    }
    if (memory_blocks == 52 &&
        (planned.io_total >= greedy.io_total ||
         planned.modeled_seconds >= greedy.modeled_seconds)) {
      std::fprintf(stderr,
                   "FATAL: planned merge win not strict at M=52 "
                   "(io %llu vs %llu)\n",
                   static_cast<unsigned long long>(planned.io_total),
                   static_cast<unsigned long long>(greedy.io_total));
      return 1;
    }
    if (SequentialReadShare(planned) + 1e-9 < SequentialReadShare(greedy)) {
      std::fprintf(stderr,
                   "FATAL: DFS placement lowered the sequential-read share "
                   "at M=%llu (%.3f vs %.3f)\n",
                   static_cast<unsigned long long>(memory_blocks),
                   SequentialReadShare(planned), SequentialReadShare(greedy));
      return 1;
    }
  }

  // Skewed run lengths (replacement selection over alternating presorted
  // stretches and shuffled bursts): the carry DP's home turf. Outputs
  // must stay byte-identical; the planned schedule must not merge more
  // bytes than greedy.
  std::string skewed_xml = MakeFlatDoc(SkewedSegmentIds(20000, /*seed=*/42));
  for (uint64_t memory_blocks : {32}) {
    std::string greedy_out;
    std::string planned_out;
    RunResult greedy = RunNexSort(
        skewed_xml, memory_blocks,
        NexMergeOptions(MergePolicy::kGreedy, /*placement=*/false),
        kBlockSize, json_log.enabled(), &greedy_out);
    CheckOk(greedy, "nexsort greedy merge");
    RunResult planned = RunNexSort(
        skewed_xml, memory_blocks,
        NexMergeOptions(MergePolicy::kPlanned, /*placement=*/true),
        kBlockSize, json_log.enabled(), &planned_out);
    CheckOk(planned, "nexsort planned merge");
    if (greedy_out != planned_out) {
      std::fprintf(stderr,
                   "FATAL: merge policies disagree on the skewed workload "
                   "at M=%llu (outputs must be byte-identical)\n",
                   static_cast<unsigned long long>(memory_blocks));
      return 1;
    }
    if (planned.nexsort_stats.sorts.merge_plan.plans == 0) {
      std::fprintf(stderr,
                   "FATAL: the skewed workload formed a single run — no "
                   "merge was planned, the sweep measures nothing\n");
      return 1;
    }
    if (planned.nexsort_stats.sorts.merge_plan.actual_bytes >
        greedy.nexsort_stats.sorts.merge_plan.actual_bytes) {
      std::fprintf(stderr,
                   "FATAL: planned merge moved more bytes than greedy on "
                   "the skewed workload\n");
      return 1;
    }
    json_log.AddRow("nexsort_merge_greedy_skewed",
                    {{"memory_blocks", memory_blocks}}, greedy);
    json_log.AddRow("nexsort_merge_planned_skewed",
                    {{"memory_blocks", memory_blocks}}, planned);
    PrintMergeRow("skewed", memory_blocks,
                  greedy.nexsort_stats.sorts.merge_plan, greedy);
    PrintMergeRow("skewed", memory_blocks,
                  planned.nexsort_stats.sorts.merge_plan, planned);
  }

  std::printf(
      "\nexpected shape: replacement selection roughly halves the run count\n"
      "on random input and collapses nearly-sorted input to a single run\n"
      "with zero merge passes; the planned merge schedule never exceeds\n"
      "greedy's I/O and wins strictly past the fan-in boundary; outputs\n"
      "are byte-identical throughout.\n");
  json_log.Write();
  return 0;
}
