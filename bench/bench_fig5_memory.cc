// Figure 5 of the paper: effect of main memory size.
//
// Paper setup: one hierarchical document (IBM-style generator), both
// algorithms run across a range of main-memory sizes. Expected shape:
// external merge sort is slower overall (13%-27% in the paper) and
// degrades sharply when shrinking memory forces an extra merge pass;
// NEXSORT's running time increases only marginally, because with modest
// fan-outs few of its subtree sorts need all of memory.
#include "bench/bench_common.h"
#include "util/string_util.h"

using namespace nexsort;
using namespace nexsort::bench;

int main(int argc, char** argv) {
  BenchJsonLog json_log(argc, argv, "fig5_memory");
  GeneratorStats doc_stats;
  std::string xml = MakeRandomDoc(/*height=*/7, /*max_fanout=*/10,
                                  /*seed=*/42, &doc_stats);
  std::printf("Figure 5: effect of main memory size\n");
  std::printf("document: %s elements, k=%llu, height=%d, %s\n",
              WithCommas(doc_stats.elements).c_str(),
              static_cast<unsigned long long>(doc_stats.max_fanout),
              doc_stats.height, HumanBytes(doc_stats.bytes).c_str());
  std::printf("block size %zu; memory swept in blocks (M)\n", kBlockSize);

  PrintHeader("Figure 5",
              "  mem(KiB)    M | nexsort I/O  model(s) |  mrgsort I/O  "
              "model(s) | ms passes | slowdown");
  for (uint64_t memory_blocks : {256, 192, 128, 96, 64, 48, 32, 24, 16, 12}) {
    RunResult nex = RunNexSort(xml, memory_blocks, DefaultNexOptions(),
                               kBlockSize, json_log.enabled());
    CheckOk(nex, "nexsort");
    RunResult kp = RunKeyPathSort(xml, memory_blocks, DefaultKeyPathOptions(),
                                  kBlockSize, json_log.enabled());
    CheckOk(kp, "merge sort");
    json_log.AddRow("nexsort", {{"memory_blocks", memory_blocks}}, nex);
    json_log.AddRow("keypath_merge_sort", {{"memory_blocks", memory_blocks}},
                    kp);
    std::printf(
        "  %8llu %4llu | %11llu  %8.2f | %12llu  %8.2f | %9llu | %7.2fx\n",
        static_cast<unsigned long long>(memory_blocks * kBlockSize / 1024),
        static_cast<unsigned long long>(memory_blocks),
        static_cast<unsigned long long>(nex.io_total), nex.modeled_seconds,
        static_cast<unsigned long long>(kp.io_total), kp.modeled_seconds,
        static_cast<unsigned long long>(kp.keypath_stats.sort.merge_passes),
        kp.modeled_seconds / nex.modeled_seconds);
  }
  std::printf(
      "\nexpected shape (paper): merge sort slower throughout, and its time\n"
      "climbs steeply at pass boundaries while NEXSORT stays nearly flat.\n");
  json_log.Write();
  return 0;
}
