// Validation of the paper's Section 4 analysis: measured NEXSORT I/O
// against the Theorem 4.4 lower bound Omega(max{n, n log_{M/B}(k/B)}) and
// the Theorem 4.5 upper bound O(n + n log_{M/B}(min{kt,N}/B)), sweeping
// the maximum fan-out k at (roughly) constant N.
#include <algorithm>
#include <cmath>

#include "bench/bench_common.h"
#include "util/string_util.h"

using namespace nexsort;
using namespace nexsort::bench;

namespace {

double LogBase(double base, double x) {
  if (base <= 1.0 || x <= 1.0) return 0.0;
  return std::log(x) / std::log(base);
}

}  // namespace

int main() {
  std::printf("Theorem 4.4 / 4.5 validation: I/O vs fan-out k at ~constant N\n");
  const uint64_t kMemoryBlocks = 10;
  const double B_elements = static_cast<double>(kBlockSize) / 150.0;
  const double M_over_B = static_cast<double>(kMemoryBlocks);
  std::printf("block %zu (~%.0f elements), M/B = %.0f, t = 2 blocks\n\n",
              kBlockSize, B_elements, M_over_B);

  // Shapes with growing fan-out and ~20k elements each.
  std::vector<std::vector<uint64_t>> shapes = {
      {4, 4, 4, 4, 4, 4, 4},       // k=4,  4^7 ~ 16k leaves
      {8, 8, 8, 8, 8},             // k=8
      {16, 16, 16, 4},             // k=16
      {32, 32, 18},                // k=32
      {128, 152},                  // k=152
      {20000},                     // k=20000 (flat)
  };

  PrintHeader("Bounds",
              "        k   elements | measured I/O |  lower bnd  upper bnd |"
              " meas/lower  meas/upper");
  for (const auto& fanouts : shapes) {
    GeneratorStats doc_stats;
    std::string xml = MakeShapedDoc(fanouts, 23, &doc_stats);
    RunResult run = RunNexSort(xml, kMemoryBlocks, DefaultNexOptions());
    CheckOk(run, "nexsort");

    double n = std::ceil(static_cast<double>(xml.size()) / kBlockSize);
    double k = static_cast<double>(doc_stats.max_fanout);
    double N_elems = static_cast<double>(doc_stats.elements);
    double t_elements = 2.0 * B_elements;  // t = 2 blocks, in elements
    // Theorem 4.4: max{n, n log_{M/B}(k/B)}.
    double lower = std::max(n, n * LogBase(M_over_B, k / B_elements));
    // Theorem 4.5: n + n log_{M/B}(min{kt, N}/B).
    double upper =
        n + n * std::max(1.0, LogBase(M_over_B,
                                      std::min(k * t_elements, N_elems) /
                                          B_elements));
    std::printf(
        "  %7llu %10s | %12llu | %10.0f %10.0f | %10.2f  %10.2f\n",
        static_cast<unsigned long long>(doc_stats.max_fanout),
        WithCommas(doc_stats.elements).c_str(),
        static_cast<unsigned long long>(run.io_total), lower, upper,
        run.io_total / lower, run.io_total / upper);
  }
  std::printf(
      "\nexpected shape: measured I/O tracks the bounds within a constant\n"
      "factor (Theorem 4.5); the constant vs the lower bound shrinks as k\n"
      "grows past B, the regime where the paper proves tightness.\n");
  return 0;
}
