// Table 2 + Figure 7 of the paper: effect of input tree shape.
//
// Paper setup: five documents of roughly constant size whose heights range
// from 2 to 6 with near-uniform fan-out per level (Table 2: 3000000 |
// 1733,1733 | 144,144,144 | 41,41,42,42 | 19,19,20,20,20). We scale each
// shape down ~100x, preserving heights and near-uniform fan-outs.
//
// Expected shape: merge sort degrades slightly as the tree gets taller
// (longer key paths to generate and compare); NEXSORT loses on the 2-level
// flat file (the paper did not implement graceful degeneration — shown
// here both ways), then improves sharply once the fan-out drops below the
// critical level (4 in the paper), with plateaus in between because
// "increased tree height does not necessarily translate into smaller
// subtree sorts".
#include "bench/bench_common.h"
#include "util/string_util.h"

using namespace nexsort;
using namespace nexsort::bench;

int main() {
  std::printf("Table 2 + Figure 7: effect of tree shape (paper shapes /100)\n");
  std::printf("block size %zu, memory 12 blocks (like the paper's 4 MB)\n\n",
              kBlockSize);

  struct Shape {
    int height;
    std::vector<uint64_t> fanouts;
  };
  // Scaled versions of the paper's Table 2.
  std::vector<Shape> shapes = {
      {2, {30000}},
      {3, {173, 173}},
      {4, {31, 31, 31}},
      {5, {13, 13, 13, 13}},
      {6, {8, 8, 8, 8, 8}},
  };
  const uint64_t kMemoryBlocks = 12;

  std::printf("Table 2 (scaled): height | fan-out per level | elements\n");
  for (const Shape& shape : shapes) {
    ShapeGenerator generator(shape.fanouts, {});
    std::string fanout_text;
    for (uint64_t fanout : shape.fanouts) {
      if (!fanout_text.empty()) fanout_text += ", ";
      fanout_text += std::to_string(fanout);
    }
    std::printf("  %d | %-20s | %s\n", shape.height, fanout_text.c_str(),
                WithCommas(generator.ExpectedElements()).c_str());
  }

  PrintHeader("Figure 7",
              " height | nexsort I/O  model(s) | +graceful I/O  model(s) | "
              "mrgsort I/O  model(s)");
  for (const Shape& shape : shapes) {
    GeneratorStats doc_stats;
    std::string xml = MakeShapedDoc(shape.fanouts, 11, &doc_stats);

    // The paper's configuration: graceful degeneration NOT implemented.
    RunResult nex = RunNexSort(xml, kMemoryBlocks, DefaultNexOptions());
    CheckOk(nex, "nexsort");
    // With the Section 3.2 optimization the flat case degenerates into
    // plain external merge sort instead of paying a wasted pass.
    NexSortOptions graceful_options = DefaultNexOptions();
    graceful_options.graceful_degeneration = true;
    RunResult graceful = RunNexSort(xml, kMemoryBlocks, graceful_options);
    CheckOk(graceful, "nexsort+graceful");
    RunResult kp = RunKeyPathSort(xml, kMemoryBlocks, DefaultKeyPathOptions());
    CheckOk(kp, "merge sort");

    std::printf(
        "  %5d | %11llu  %8.2f | %13llu  %8.2f | %11llu  %8.2f\n",
        shape.height, static_cast<unsigned long long>(nex.io_total),
        nex.modeled_seconds,
        static_cast<unsigned long long>(graceful.io_total),
        graceful.modeled_seconds,
        static_cast<unsigned long long>(kp.io_total), kp.modeled_seconds);
  }

  // Ablation: the XML compaction techniques of Section 3.2 (both
  // algorithms in this repo use the name dictionary; turning it off shows
  // what the compression buys).
  PrintHeader("Compaction ablation (height-4 shape)",
              "   config              | nexsort I/O  model(s)");
  {
    GeneratorStats doc_stats;
    std::string xml = MakeShapedDoc({31, 31, 31}, 11, &doc_stats);
    for (bool use_dictionary : {true, false}) {
      NexSortOptions options = DefaultNexOptions();
      options.use_dictionary = use_dictionary;
      RunResult run = RunNexSort(xml, kMemoryBlocks, options);
      CheckOk(run, "nexsort");
      std::printf("   %-19s | %11llu  %8.2f\n",
                  use_dictionary ? "dictionary (paper)" : "verbatim names",
                  static_cast<unsigned long long>(run.io_total),
                  run.modeled_seconds);
    }
  }
  std::printf(
      "\nexpected shape (paper): merge sort slightly worse with height; "
      "NEXSORT\nworst on the flat 2-level input (unless graceful "
      "degeneration is on),\nsharply better past the critical height, with "
      "plateaus between.\n");
  return 0;
}
