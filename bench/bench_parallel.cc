// Compute/I-O overlap sweep on the Figure-5 workload: the same document,
// budget, and pinned sort allowance, sorted serially and with increasing
// worker counts (plus a merge-prefetching variant). Unlike the counted
// benches, the interesting metric here is *wall clock*, so each run's
// SortEnv stacks a Throttle layer over the memory base that pays a real
// (slept) latency per block — on a pure memory device the CPU dominates
// and overlap has nothing to hide. Every parallel run must produce byte-identical output;
// the table reports the wall-time reduction against the serial baseline
// alongside the pipeline's own counters (async spills, foreground stall,
// background busy time).
//
//   bench_parallel [--json FILE] [--timeline FILE] [--sample-interval-ms N]
//
// With --timeline, the headline "2 thr + prefetch" NEXSORT run gets the
// live sampler and streams its gauges as nexsort-timeline-v1 JSONL.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "extmem/block_device.h"
#include "util/string_util.h"

using namespace nexsort;
using namespace nexsort::bench;

namespace {

struct ParallelRun {
  RunResult result;
  ParallelStats pstats;
  std::string output;
};

// Stage `xml` onto the env's storage and return its extent. The extent is
// *allocated* through the full device stack (env->device()) so every
// wrapper layer's block count stays in sync — allocating beside a wrapper
// violates the layer invariant and leaves the staged blocks unaddressable
// through the stack. The payload is then *written* straight to the base
// device: staging is setup, not workload, so it pays no throttle latency
// and leaves the measured (wrapper-layer) stats untouched. Exits on
// failure — this is bench scaffolding.
ByteRange StageInput(SortEnv* env, const std::string& xml) {
  const uint64_t block_size = env->device()->block_size();
  const uint64_t blocks = (xml.size() + block_size - 1) / block_size;
  uint64_t first = 0;
  Status st = env->device()->Allocate(blocks, &first);
  std::string block(block_size, '\0');
  for (uint64_t i = 0; st.ok() && i < blocks; ++i) {
    const uint64_t offset = i * block_size;
    const size_t chunk = static_cast<size_t>(
        std::min<uint64_t>(block_size, xml.size() - offset));
    block.assign(xml.data() + offset, chunk);
    block.resize(block_size, '\0');
    st = env->base_device()->Write(first + i, block.data(),
                                   IoCategory::kOther);
  }
  if (!st.ok()) {
    std::fprintf(stderr, "staging the input document failed: %s\n",
                 st.ToString().c_str());
    std::exit(1);
  }
  return ByteRange{first, xml.size()};
}

// Read an extent back into a string. This goes through the full stack
// (env->device()) so a caching layer's dirty frames are visible; it runs
// after the stats snapshot, so the extra reads are never measured.
std::string ReadBack(SortEnv* env, ByteRange range) {
  BlockStreamReader reader(env->device(), env->budget(), range,
                           IoCategory::kOther);
  std::string out;
  out.reserve(range.byte_size);
  char buf[8192];
  size_t got = 0;
  while (reader.Read(buf, sizeof(buf), &got).ok() && got > 0) {
    out.append(buf, got);
  }
  return out;
}

// RunNexSort in bench_common.h sorts RAM-to-RAM, so the overlap sweep
// has its own runner: the document is staged on the env's memory base and
// the sort runs extent-to-extent through the env's throttle layer —
// input reads, working I/O, and output writes all pay a real (slept)
// per-block latency, which is what gives background spills and
// prefetches something to hide. Stats come from the throttled layer
// (env->physical_device(); staging and read-back bypass it).
ParallelRun RunThrottled(SortEnv* env, ByteRange input_range,
                         NexSortOptions options) {
  ParallelRun run;
  NexSorter sorter(env, std::move(options));
  BlockStreamReader source(env->device(), env->budget(), input_range,
                           IoCategory::kInput);
  BlockStreamWriter sink(env->device(), env->budget(), IoCategory::kOutput);
  ByteRange output_range;
  auto start = std::chrono::steady_clock::now();
  Status st = sorter.Sort(&source, &sink);
  if (st.ok()) st = sink.Finish(&output_range);
  auto stop = std::chrono::steady_clock::now();
  run.result.ok = st.ok();
  run.result.error = st.ToString();
  run.result.io = env->physical_device()->stats();
  run.result.io_total = run.result.io.total();
  run.result.io_reads = run.result.io.reads;
  run.result.io_writes = run.result.io.writes;
  run.result.modeled_seconds = run.result.io.modeled_seconds;
  run.result.wall_seconds =
      std::chrono::duration<double>(stop - start).count();
  run.result.nexsort_stats = sorter.stats();
  run.result.cache = env->cache_stats();
  run.pstats = sorter.parallel_stats();
  if (run.result.ok) run.output = ReadBack(env, output_range);
  run.result.output_bytes = run.output.size();
  return run;
}

// Same arrangement for the key-path external merge sort — the
// external-sort-heavy configuration: every document byte flows through
// run formation and the merge, so overlapped spills and prefetched merge
// inputs act on the bulk of the I/O instead of a slice of it.
ParallelRun RunThrottledKeyPath(SortEnv* env, ByteRange input_range,
                                KeyPathSortOptions options) {
  ParallelRun run;
  KeyPathXmlSorter sorter(env, std::move(options));
  BlockStreamReader source(env->device(), env->budget(), input_range,
                           IoCategory::kInput);
  BlockStreamWriter sink(env->device(), env->budget(), IoCategory::kOutput);
  ByteRange output_range;
  auto start = std::chrono::steady_clock::now();
  Status st = sorter.Sort(&source, &sink);
  if (st.ok()) st = sink.Finish(&output_range);
  auto stop = std::chrono::steady_clock::now();
  run.result.ok = st.ok();
  run.result.error = st.ToString();
  run.result.io = env->physical_device()->stats();
  run.result.io_total = run.result.io.total();
  run.result.io_reads = run.result.io.reads;
  run.result.io_writes = run.result.io.writes;
  run.result.modeled_seconds = run.result.io.modeled_seconds;
  run.result.wall_seconds =
      std::chrono::duration<double>(stop - start).count();
  run.result.keypath_stats = sorter.stats();
  run.result.cache = env->cache_stats();
  run.pstats = sorter.parallel_stats();
  if (run.result.ok) run.output = ReadBack(env, output_range);
  run.result.output_bytes = run.output.size();
  return run;
}

struct Config {
  const char* label;
  uint32_t threads;
  uint32_t prefetch_depth;
  uint64_t cache_frames;
};

// Build the throttled environment for one sweep configuration: memory
// base device, a Throttle layer paying the modeled per-block latency,
// and the config's cache/thread/prefetch settings. Exits on failure.
std::unique_ptr<SortEnv> MakeThrottledEnv(const Config& config,
                                          uint64_t memory_blocks,
                                          uint64_t sort_blocks,
                                          const ThrottleModel& model,
                                          BenchTimeline* timeline = nullptr) {
  SortEnvOptions env_options;
  env_options.block_size = kBlockSize;
  env_options.memory_blocks = memory_blocks;
  env_options.sort_memory_blocks = sort_blocks;
  env_options.layers.push_back(DeviceLayer::Throttle(model));
  env_options.parallel.threads = config.threads;
  env_options.parallel.prefetch_depth = config.prefetch_depth;
  if (config.cache_frames > 0) {
    env_options.cache = {.frames = config.cache_frames, .readahead = 0};
  }
  if (timeline != nullptr) timeline->Arm(&env_options);
  auto env = SortEnv::Create(std::move(env_options));
  if (!env.ok()) {
    std::fprintf(stderr, "SortEnv::Create failed: %s\n",
                 env.status().ToString().c_str());
    std::exit(1);
  }
  if (timeline != nullptr) timeline->Attach(env->get());
  return std::move(env).value();
}

}  // namespace

int main(int argc, char** argv) {
  BenchJsonLog json_log(argc, argv, "parallel");
  BenchTimeline timeline(argc, argv);
  GeneratorStats doc_stats;
  std::string xml = MakeRandomDoc(/*height=*/7, /*max_fanout=*/10,
                                  /*seed=*/42, &doc_stats);
  constexpr uint64_t kMemoryBlocks = 128;
  // Pinned for every run: identical run structure, so the serial-vs-
  // parallel delta is pure scheduling. Deliberately small so the large
  // subtrees overflow it — the external-sort-heavy regime where run
  // formation spills often and merges read runs back — while the budget
  // keeps ample room for the second buffer and the cache frames.
  constexpr uint64_t kSortBlocks = 8;
  constexpr uint64_t kCacheFrames = 32;
  constexpr uint32_t kPrefetchDepth = 4;
  const ThrottleModel kModel{};  // 150 us + 4 KB / 250 MB/s per block

  std::printf("Compute/I-O overlap sweep (fig5 workload, throttled device)\n");
  std::printf("document: %s elements, k=%llu, height=%d, %s\n",
              WithCommas(doc_stats.elements).c_str(),
              static_cast<unsigned long long>(doc_stats.max_fanout),
              doc_stats.height, HumanBytes(doc_stats.bytes).c_str());
  std::printf("block size %zu, M=%llu blocks, sort allowance %llu blocks, "
              "device latency %.0f us + %.0f MB/s\n",
              kBlockSize, static_cast<unsigned long long>(kMemoryBlocks),
              static_cast<unsigned long long>(kSortBlocks),
              kModel.access_latency_us, kModel.throughput_mb_per_s);

  const Config configs[] = {
      {"serial", 0, 0, 0},
      {"1 thread", 1, 0, 0},
      {"2 threads", 2, 0, 0},
      {"4 threads", 4, 0, 0},
      {"cache only", 0, 0, kCacheFrames},
      {"prefetch only", 0, kPrefetchDepth, kCacheFrames},
      {"2 thr + prefetch", 2, kPrefetchDepth, kCacheFrames},
  };
  const char* kColumns =
      "            config |  wall(s) | saved% | async | stall(s) | "
      "busy(s) | prefetch | output";

  auto print_row = [](const Config& config, const ParallelRun& run,
                      double baseline_wall, bool identical) {
    double saved = baseline_wall > 0
                       ? 100.0 * (baseline_wall - run.result.wall_seconds) /
                             baseline_wall
                       : 0.0;
    std::printf("  %16s | %8.2f | %5.1f%% | %5llu | %8.2f | %7.2f | %8llu "
                "| %s\n",
                config.label, run.result.wall_seconds, saved,
                static_cast<unsigned long long>(run.pstats.async_spills),
                run.pstats.spill_wait_seconds, run.pstats.spill_busy_seconds,
                static_cast<unsigned long long>(run.pstats.prefetch_issued),
                identical ? "identical" : "DIFFERS!");
  };

  PrintHeader("NEXSORT overlap sweep", kColumns);
  std::string baseline_output;
  double baseline_wall = 0;
  for (const Config& config : configs) {
    NexSortOptions options = DefaultNexOptions();
    // The headline overlap configuration carries the live sampler (and
    // the --timeline stream when requested).
    bool sampled = timeline.enabled() && config.threads == 2 &&
                   config.prefetch_depth > 0;
    auto env = MakeThrottledEnv(config, kMemoryBlocks, kSortBlocks, kModel,
                                sampled ? &timeline : nullptr);
    ByteRange input_range = StageInput(env.get(), xml);
    ParallelRun run = RunThrottled(env.get(), input_range,
                                   std::move(options));
    if (env->telemetry() != nullptr) env->telemetry()->StopSampler();
    CheckOk(run.result, config.label);
    json_log.AddRow("nexsort_parallel",
                    {{"threads", config.threads},
                     {"prefetch_depth", config.prefetch_depth},
                     {"cache_frames", config.cache_frames},
                     {"sort_memory_blocks", kSortBlocks},
                     {"memory_blocks", kMemoryBlocks}},
                    run.result);
    bool identical;
    if (baseline_output.empty()) {
      baseline_output = std::move(run.output);
      baseline_wall = run.result.wall_seconds;
      identical = true;
    } else {
      identical = run.output == baseline_output;
    }
    print_row(config, run, baseline_wall, identical);
    if (!identical) {
      std::fprintf(stderr, "parallel output differs from serial baseline "
                           "(%s)\n", config.label);
      return 1;
    }
  }

  // The external-sort-heavy configuration: the key-path baseline pushes
  // the whole document through one big run-formation + merge, so the
  // overlapped pipeline acts on the bulk of the I/O.
  PrintHeader("Key-path merge sort overlap sweep (external-sort-heavy)",
              kColumns);
  baseline_output.clear();
  baseline_wall = 0;
  for (const Config& config : configs) {
    KeyPathSortOptions options = DefaultKeyPathOptions();
    auto env = MakeThrottledEnv(config, kMemoryBlocks, kSortBlocks, kModel);
    ByteRange input_range = StageInput(env.get(), xml);
    ParallelRun run = RunThrottledKeyPath(env.get(), input_range,
                                          std::move(options));
    CheckOk(run.result, config.label);
    json_log.AddRow("keypath_parallel",
                    {{"threads", config.threads},
                     {"prefetch_depth", config.prefetch_depth},
                     {"cache_frames", config.cache_frames},
                     {"sort_memory_blocks", kSortBlocks},
                     {"memory_blocks", kMemoryBlocks}},
                    run.result);
    bool identical;
    if (baseline_output.empty()) {
      baseline_output = std::move(run.output);
      baseline_wall = run.result.wall_seconds;
      identical = true;
    } else {
      identical = run.output == baseline_output;
    }
    print_row(config, run, baseline_wall, identical);
    if (!identical) {
      std::fprintf(stderr, "parallel output differs from serial baseline "
                           "(keypath, %s)\n", config.label);
      return 1;
    }
  }

  std::printf(
      "\nexpected shape: wall time falls as background spills hide run\n"
      "writes behind buffer fills and prefetching hides merge-input reads\n"
      "(target: >= 20%% combined at 2 threads; compare against the 'cache\n"
      "only' row to separate caching from overlap). Counted I/O is\n"
      "identical within each sweep — only the schedule changes.\n");
  json_log.Write();
  return 0;
}
