// Section 5, "Effect of sort threshold" (the paper discusses this
// experiment but omits the plot for space; reproduced here as the ablation
// DESIGN.md calls out).
//
// Expected shape: a U-curve. "When the threshold is small, there is a
// significant amount of overhead caused by many small sorts. When the
// threshold becomes too large, performance begins to degrade because
// NEXSORT is sorting large subtrees with multiple levels using external
// merge sort." The paper settles on t ~ twice the block size.
#include "bench/bench_common.h"
#include "util/string_util.h"

using namespace nexsort;
using namespace nexsort::bench;

int main() {
  GeneratorStats doc_stats;
  std::string xml = MakeRandomDoc(/*height=*/6, /*max_fanout=*/8,
                                  /*seed=*/19, &doc_stats);
  std::printf("Sort-threshold ablation (Section 5, plot omitted in paper)\n");
  std::printf("document: %s elements, k=%llu, %s; block size %zu, "
              "memory 16 blocks\n",
              WithCommas(doc_stats.elements).c_str(),
              static_cast<unsigned long long>(doc_stats.max_fanout),
              HumanBytes(doc_stats.bytes).c_str(), kBlockSize);

  PrintHeader("Threshold sweep",
              "     t(bytes)  t/B | nexsort I/O  model(s) |  subtree sorts  "
              "internal  external");
  for (uint64_t factor_x2 : {1, 2, 4, 8, 16, 32, 64, 128}) {
    uint64_t threshold = kBlockSize * factor_x2 / 2;
    NexSortOptions options = DefaultNexOptions();
    options.sort_threshold = threshold;
    RunResult run = RunNexSort(xml, /*memory_blocks=*/16, options);
    CheckOk(run, "nexsort");
    std::printf(
        "  %11llu %4.1f | %11llu  %8.2f | %14llu  %8llu  %8llu\n",
        static_cast<unsigned long long>(threshold),
        static_cast<double>(threshold) / kBlockSize,
        static_cast<unsigned long long>(run.io_total), run.modeled_seconds,
        static_cast<unsigned long long>(run.nexsort_stats.subtree_sorts),
        static_cast<unsigned long long>(
            run.nexsort_stats.sorts.internal_sorts),
        static_cast<unsigned long long>(
            run.nexsort_stats.sorts.external_sorts));
  }
  std::printf(
      "\nexpected shape (paper): U-curve — overhead from many small sorts at\n"
      "tiny t, extra external-sort passes at huge t; t ~ 2 blocks is the\n"
      "sweet spot used by all other experiments.\n");
  return 0;
}
