// Figure 6 of the paper: effect of input size with constant maximum
// fan-out.
//
// Paper setup: the authors' custom generator builds documents of growing
// size with fan-out capped at 85 "to ensure that the input exhibits enough
// hierarchicalness", both algorithms run with a small fixed memory.
// Expected shape: NEXSORT grows linearly in input size — its logarithmic
// factor log_{M/B}(kt/B) does not depend on N — while external merge sort
// grows superlinearly, with visible jumps where the sort gains a pass
// (2->3 and 3->4 passes in the paper).
#include "bench/bench_common.h"
#include "util/string_util.h"

using namespace nexsort;
using namespace nexsort::bench;

int main(int argc, char** argv) {
  BenchJsonLog json_log(argc, argv, "fig6_input_size");
  std::printf("Figure 6: effect of input size, max fan-out capped at 85\n");
  std::printf("block size %zu, memory 16 blocks (deliberately small, like "
              "the paper's 3 MB)\n", kBlockSize);
  const uint64_t kMemoryBlocks = 16;

  // Growing documents with per-level fan-out <= 85, mirroring the paper's
  // series. Geometry is scaled like the paper's: with ~28 elements per
  // block and t = 2 blocks, a bottom-level fan-out of 60-85 puts the
  // workhorse subtree sorts between t and internal memory, exactly where
  // the paper's 85x85-element (~1 MB) subtrees sat inside its 3 MB.
  struct Point {
    std::vector<uint64_t> fanouts;
  };
  std::vector<Point> points = {
      {{60}},              // 61 elements
      {{60, 60}},          // ~3.7k
      {{85, 60}},          // ~5.2k
      {{10, 85, 60}},      // ~51k
      {{20, 85, 60}},      // ~102k
      {{40, 85, 60}},      // ~204k
      {{85, 85, 60}},      // ~441k
      {{85, 85, 85}},      // ~620k
  };

  PrintHeader("Figure 6",
              "   elements      bytes | nexsort I/O  model(s) | mrgsort I/O"
              "  model(s) | ms passes | ratio");
  for (const Point& point : points) {
    GeneratorStats doc_stats;
    std::string xml = MakeShapedDoc(point.fanouts, 7, &doc_stats);
    RunResult nex = RunNexSort(xml, kMemoryBlocks, DefaultNexOptions(),
                               kBlockSize, json_log.enabled());
    CheckOk(nex, "nexsort");
    RunResult kp = RunKeyPathSort(xml, kMemoryBlocks, DefaultKeyPathOptions(),
                                  kBlockSize, json_log.enabled());
    CheckOk(kp, "merge sort");
    json_log.AddRow("nexsort", {{"elements", doc_stats.elements},
                                {"bytes", doc_stats.bytes}}, nex);
    json_log.AddRow("keypath_merge_sort", {{"elements", doc_stats.elements},
                                           {"bytes", doc_stats.bytes}}, kp);
    std::printf(
        " %10s %10s | %11llu  %8.2f | %11llu  %8.2f | %9llu | %5.2fx\n",
        WithCommas(doc_stats.elements).c_str(),
        HumanBytes(doc_stats.bytes).c_str(),
        static_cast<unsigned long long>(nex.io_total), nex.modeled_seconds,
        static_cast<unsigned long long>(kp.io_total), kp.modeled_seconds,
        static_cast<unsigned long long>(kp.keypath_stats.sort.merge_passes),
        static_cast<double>(kp.io_total) / nex.io_total);
  }
  std::printf(
      "\nexpected shape (paper): NEXSORT I/O grows ~linearly with N; merge\n"
      "sort grows superlinearly, jumping where its pass count increases.\n");
  json_log.Write();
  return 0;
}
