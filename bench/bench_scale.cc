// Laptop-scale end-to-end run: generate a few hundred MB of XML onto a
// real file-backed device, NEXSORT it file-to-file under a small memory
// budget, verify sortedness, and report wall-clock throughput alongside
// the counted I/Os. This is the "adopt it for real work" check — every
// byte flows disk to disk; only the configured budget stays resident.
//
//   bench_scale [target_mb]   (default 200)
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/nexsort.h"
#include "core/sorted_check.h"
#include "env/sort_env.h"
#include "extmem/block_device.h"
#include "util/string_util.h"
#include "xml/generator.h"

using namespace nexsort;

int main(int argc, char** argv) {
  uint64_t target_mb = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200;
  const size_t kBlock = 64 * 1024;   // the paper's block size
  const uint64_t kMemory = 128;      // 8 MiB budget

  std::string dir = "/tmp";
  std::string work_path = dir + "/nexsort_scale.work";
  auto env_or = SortEnvBuilder()
                    .BlockSize(kBlock)
                    .MemoryBlocks(kMemory)
                    .File(work_path)
                    .Build();
  if (!env_or.ok()) {
    std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<SortEnv> env = std::move(env_or).value();
  BlockDevice* device = env->device();
  MemoryBudget* budget = env->budget();

  // Pick a shape whose size lands near the target: levels of fan-out 60
  // under a top fan-out chosen from the target (about 150 bytes/element).
  uint64_t elements_target = target_mb * 1024 * 1024 / 150;
  uint64_t top = elements_target / (85 * 60);
  if (top == 0) top = 1;
  ShapeGenerator generator({top, 85, 60},
                           {.seed = 11, .element_bytes = 150});

  std::printf("generating ~%llu MB onto %s ...\n",
              static_cast<unsigned long long>(target_mb), work_path.c_str());
  ByteRange input_range;
  auto t0 = std::chrono::steady_clock::now();
  {
    BlockStreamWriter writer(device, budget, IoCategory::kOther);
    if (!writer.init_status().ok()) return 1;
    Status st = generator.Generate(&writer);
    if (!st.ok() || !writer.Finish(&input_range).ok()) {
      std::fprintf(stderr, "generation failed\n");
      return 1;
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  std::printf("document: %s elements, %s, k=%llu\n",
              WithCommas(generator.stats().elements).c_str(),
              HumanBytes(input_range.byte_size).c_str(),
              static_cast<unsigned long long>(generator.stats().max_fanout));

  device->mutable_stats()->Clear();
  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  NexSorter sorter(env.get(), options);
  ByteRange output_range;
  {
    BlockStreamReader reader(device, budget, input_range, IoCategory::kInput);
    BlockStreamWriter writer(device, budget, IoCategory::kOutput);
    if (!reader.init_status().ok() || !writer.init_status().ok()) return 1;
    Status st = sorter.Sort(&reader, &writer);
    if (!st.ok()) {
      std::fprintf(stderr, "sort failed: %s\n", st.ToString().c_str());
      return 1;
    }
    if (!writer.Finish(&output_range).ok()) return 1;
  }
  auto t2 = std::chrono::steady_clock::now();

  double sort_seconds = std::chrono::duration<double>(t2 - t1).count();
  const IoStats& io = device->stats();
  std::printf("\nsorted %s in %.2f s wall (%.1f MB/s), generation %.2f s\n",
              HumanBytes(input_range.byte_size).c_str(), sort_seconds,
              input_range.byte_size / 1e6 / sort_seconds,
              std::chrono::duration<double>(t1 - t0).count());
  std::printf("block I/Os: %s (%.2f per input block); modeled disk time "
              "%.1f s\n%s",
              WithCommas(io.total()).c_str(),
              static_cast<double>(io.total()) /
                  ((input_range.byte_size + kBlock - 1) / kBlock),
              io.modeled_seconds.load(), io.ToString(kBlock).c_str());
  std::printf("memory budget: %llu blocks (%s), peak use %llu\n",
              static_cast<unsigned long long>(kMemory),
              HumanBytes(kMemory * kBlock).c_str(),
              static_cast<unsigned long long>(budget->peak_blocks()));

  // Verify the output start to finish.
  {
    BlockStreamReader reader(device, budget, output_range,
                             IoCategory::kInput);
    if (!reader.init_status().ok()) return 1;
    auto report = CheckSorted(&reader, options.order);
    if (!report.ok() || !report->sorted) {
      std::fprintf(stderr, "VERIFICATION FAILED\n");
      return 1;
    }
    std::printf("output verified fully sorted (%s elements)\n",
                WithCommas(report->elements).c_str());
  }
  std::remove(work_path.c_str());
  return 0;
}
