#!/usr/bin/env python3
"""Run Clang's -Wthread-safety capability analysis over every src/ TU.

The NEXSORT_* annotations in src/util/thread_annotations.h only mean
something to Clang, and the project's default toolchain is GCC — so this
gate re-drives each translation unit from compile_commands.json through
`clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety` instead of
requiring a second full build. Any thread-safety diagnostic fails the run;
unrelated warnings do not (only the thread-safety family is promoted to
error). Diagnostics are printed raw and, for summary purposes, normalized
with scripts/lint_common.py like the other static-analysis gates.

Exit codes: 0 clean, 1 thread-safety findings, 77 skipped because no
clang++ binary or compile database was found (ctest maps 77 to SKIPPED
via SKIP_RETURN_CODE, same as the clang-tidy gate).

Usage:
  run_thread_safety.py [--build-dir build] [--jobs N] [FILES...]
"""

import argparse
import concurrent.futures
import json
import os
import re
import shlex
import shutil
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint_common  # noqa: E402

CLANG_NAMES = (
    "clang++",
    "clang++-18",
    "clang++-17",
    "clang++-16",
    "clang++-15",
    "clang++-14",
)

# "path:line:col: error: message [-Wthread-safety-...]"
DIAGNOSTIC = re.compile(
    r"^(?P<path>[^:\s][^:]*):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?:error|warning):\s+(?P<message>.*?)\s+"
    r"\[-W(?P<check>thread-safety[\w-]*)(?:,-Werror)?\]$"
)

# GCC-only flags clang rejects; everything else GCC emits in this tree
# (-W*, -f*, -std=, -D, -I) clang accepts.
DROP_FLAGS = {"-fno-semantic-interposition"}


def find_clang(explicit):
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in CLANG_NAMES:
        if shutil.which(name):
            return name
    return None


def load_compile_db(build_dir):
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def analysis_command(clang, entry):
    """The clang syntax-only command for one compile-database entry: the
    original compiler and any -o/-c output handling are replaced, the
    thread-safety family is enabled as errors, and unknown-warning noise
    from GCC-specific -W flags is silenced (those flags check nothing)."""
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry["command"])
    out = [clang]
    skip_next = False
    for arg in argv[1:]:
        if skip_next:
            skip_next = False
            continue
        if arg in ("-o", "-MF", "-MT", "-MQ"):
            skip_next = True
            continue
        if arg in ("-c", "-MD", "-MMD") or arg in DROP_FLAGS:
            continue
        out.append(arg)
    out += [
        "-fsyntax-only",
        "-Wno-unknown-warning-option",
        "-Wthread-safety",
        "-Werror=thread-safety",
    ]
    return out


def run_one(clang, entry, root):
    proc = subprocess.run(
        analysis_command(clang, entry),
        capture_output=True,
        text=True,
        cwd=entry["directory"],
    )
    findings = set()
    raw = []
    for line in proc.stderr.splitlines():
        m = DIAGNOSTIC.match(line)
        if not m:
            continue
        raw.append(line)
        abspath = os.path.abspath(
            os.path.join(entry["directory"], m.group("path"))
        )
        findings.add(
            lint_common.normalize_finding(
                root, abspath, m.group("check"), m.group("message")
            )
        )
    # A non-zero exit with no parsed thread-safety diagnostic means the TU
    # failed to compile at all under clang — that is a finding too (the
    # preset build would be broken), attributed to the TU.
    if proc.returncode != 0 and not findings:
        err_lines = proc.stderr.splitlines()
        raw.append("\n".join(err_lines[-15:]))
        detail = err_lines[-1] if err_lines else "unknown"
        findings.add(
            lint_common.normalize_finding(
                root, entry["file"], "clang-frontend",
                "TU does not compile under clang: " + detail,
            )
        )
    return entry["file"], findings, raw


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    root_default = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    parser.add_argument("--root", default=root_default)
    parser.add_argument("--build-dir", default=None)
    parser.add_argument("--clang", default=None)
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument(
        "files", nargs="*", help="restrict to these sources (default: src/)"
    )
    args = parser.parse_args()

    root = os.path.abspath(args.root)
    build_dir = args.build_dir or os.path.join(root, "build")

    clang = find_clang(args.clang)
    if clang is None:
        print(
            "run_thread_safety: no clang++ binary found; skipping "
            "(install clang to enable the -Wthread-safety gate)",
            file=sys.stderr,
        )
        return lint_common.SKIP_EXIT
    db = load_compile_db(build_dir)
    if db is None:
        print(
            f"run_thread_safety: no compile_commands.json in {build_dir}; "
            "configure cmake first (exported by default)",
            file=sys.stderr,
        )
        return lint_common.SKIP_EXIT

    wanted = [os.path.abspath(f) for f in args.files]
    entries = []
    for entry in db:
        path = os.path.abspath(entry["file"])
        if wanted:
            if path not in wanted:
                continue
        elif not path.startswith(os.path.join(root, "src") + os.sep):
            continue
        entries.append(entry)
    if not entries:
        print(
            "run_thread_safety: no matching translation units",
            file=sys.stderr,
        )
        return lint_common.SKIP_EXIT

    findings = set()
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = [
            pool.submit(run_one, clang, entry, root) for entry in entries
        ]
        for future in concurrent.futures.as_completed(futures):
            _file, file_findings, raw = future.result()
            findings |= file_findings
            for line in raw:
                print(line)

    print(
        f"run_thread_safety: {len(entries)} TU(s), "
        f"{len(findings)} thread-safety finding(s)"
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
