#!/usr/bin/env python3
"""Run clang-tidy over the project and diff findings against a baseline.

Reads compile_commands.json from the build directory (exported by default
— see CMAKE_EXPORT_COMPILE_COMMANDS in the top-level CMakeLists.txt), runs
clang-tidy on every src/ translation unit with the checked-in .clang-tidy
configuration, and compares the normalized findings against
scripts/clang_tidy_baseline.txt. Only *new* findings fail the run, so CI
gates on regressions without requiring the whole backlog to be fixed at
once; fixed findings are reported so the baseline can be shrunk.

Findings are normalized to "<relpath> <check> <message>" via the shared
helpers in scripts/lint_common.py — line numbers are deliberately dropped
so unrelated edits do not churn the baseline.

Exit codes: 0 clean, 1 new findings (or stale baseline with --strict),
77 skipped because no clang-tidy binary or compile database was found
(ctest maps 77 to SKIPPED via SKIP_RETURN_CODE).

Usage:
  run_clang_tidy.py [--build-dir build] [--baseline FILE]
                    [--update-baseline] [--strict] [--jobs N] [FILES...]
"""

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint_common  # noqa: E402  (shared normalization, docs/STATIC_ANALYSIS.md)

SKIP_EXIT = lint_common.SKIP_EXIT

CLANG_TIDY_NAMES = (
    "clang-tidy",
    "clang-tidy-18",
    "clang-tidy-17",
    "clang-tidy-16",
    "clang-tidy-15",
    "clang-tidy-14",
)

# "path:line:col: warning: message [check]"
FINDING = re.compile(
    r"^(?P<path>[^:\s][^:]*):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?P<kind>warning|error):\s+(?P<message>.*?)\s+\[(?P<check>[\w.,-]+)\]$"
)


def find_clang_tidy(explicit):
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in CLANG_TIDY_NAMES:
        if shutil.which(name):
            return name
    return None


def load_compile_db(build_dir):
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def run_one(tidy, entry, root):
    cmd = [tidy, "-p", entry["directory"], "--quiet", entry["file"]]
    proc = subprocess.run(
        cmd, capture_output=True, text=True, cwd=entry["directory"]
    )
    findings = set()
    for line in proc.stdout.splitlines():
        m = FINDING.match(line)
        if not m:
            continue
        # Only report findings in the project tree (headers pulled in from
        # the system stay out of the baseline).
        abspath = os.path.abspath(
            os.path.join(entry["directory"], m.group("path"))
        )
        if not abspath.startswith(root + os.sep):
            continue
        findings.add(
            lint_common.normalize_finding(
                root, abspath, m.group("check"), m.group("message")
            )
        )
    return entry["file"], findings, proc.returncode


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    root_default = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    parser.add_argument("--root", default=root_default)
    parser.add_argument("--build-dir", default=None)
    parser.add_argument("--baseline", default=None)
    parser.add_argument("--clang-tidy", default=None)
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline with the current findings",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail when baseline entries no longer fire (stale)",
    )
    parser.add_argument(
        "files", nargs="*", help="restrict to these sources (default: src/)"
    )
    args = parser.parse_args()

    root = os.path.abspath(args.root)
    build_dir = args.build_dir or os.path.join(root, "build")
    baseline_path = args.baseline or os.path.join(
        root, "scripts", "clang_tidy_baseline.txt"
    )

    tidy = find_clang_tidy(args.clang_tidy)
    if tidy is None:
        print(
            "run_clang_tidy: no clang-tidy binary found; skipping "
            "(install clang-tidy to enable this gate)",
            file=sys.stderr,
        )
        return SKIP_EXIT
    db = load_compile_db(build_dir)
    if db is None:
        print(
            f"run_clang_tidy: no compile_commands.json in {build_dir}; "
            "configure cmake first (exported by default)",
            file=sys.stderr,
        )
        return SKIP_EXIT

    wanted = [os.path.abspath(f) for f in args.files]
    entries = []
    for entry in db:
        path = os.path.abspath(entry["file"])
        if wanted:
            if path not in wanted:
                continue
        elif not path.startswith(os.path.join(root, "src") + os.sep):
            continue
        entries.append(entry)
    if not entries:
        print("run_clang_tidy: no matching translation units", file=sys.stderr)
        return SKIP_EXIT

    findings = set()
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = [
            pool.submit(run_one, tidy, entry, root) for entry in entries
        ]
        for future in concurrent.futures.as_completed(futures):
            _file, file_findings, _rc = future.result()
            findings |= file_findings

    if args.update_baseline:
        lint_common.write_baseline(baseline_path, findings, "clang-tidy")
        print(
            f"run_clang_tidy: baseline updated with {len(findings)} "
            f"finding(s) at {baseline_path}"
        )
        return 0

    baseline = lint_common.read_baseline(baseline_path)
    new = sorted(findings - baseline)
    fixed = sorted(baseline - findings)
    for line in new:
        path, check, message = line.split("\t", 2)
        print(f"NEW: {path}: {message} [{check}]")
    for line in fixed:
        path, check, message = line.split("\t", 2)
        print(f"fixed (remove from baseline): {path}: {message} [{check}]")
    print(
        f"run_clang_tidy: {len(entries)} TU(s), {len(findings)} finding(s), "
        f"{len(new)} new, {len(fixed)} fixed-vs-baseline"
    )
    if new:
        return 1
    if fixed and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
