#!/usr/bin/env python3
"""Diff two nexsort-bench-v1 files and gate on regressions.

Rows are matched by (algorithm, params). For every matched row the tool
compares the *deterministic* series — modeled_seconds and physical I/O
(io.total, io.reads, io.writes) — and exits non-zero when the candidate
regresses by more than --threshold-pct (default 10%) on any of them.
Wall-clock is printed for context but never gated: it measures the
machine, not the algorithm.

Rows present in the baseline but missing from the candidate (or failed
rows) are regressions too: a sweep that silently lost a configuration
must not pass.

Usage:
  bench_diff.py BASELINE.json CANDIDATE.json [--threshold-pct P]
  bench_diff.py BASELINE.json --run BENCH_BIN [--threshold-pct P]
      (runs `BENCH_BIN --json <tmp>` first, then diffs — the ctest gate)
  bench_diff.py BASELINE.json --self-test
      (synthesizes a >threshold regression from the baseline and checks
      the detector fires — guards the gate itself)
"""

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

GATED_IO_KEYS = ("total", "reads", "writes")


def row_key(row):
    params = row.get("params", {})
    return (row.get("algorithm"),
            tuple(sorted((k, v) for k, v in params.items())))


def load(path):
    with open(path) as handle:
        doc = json.load(handle)
    if doc.get("schema") != "nexsort-bench-v1":
        sys.exit(f"{path}: schema is {doc.get('schema')!r}, "
                 "expected 'nexsort-bench-v1'")
    return doc


def fmt_key(key):
    algorithm, params = key
    inner = ",".join(f"{k}={v}" for k, v in params)
    return f"{algorithm}({inner})"


def diff(baseline, candidate, threshold_pct):
    """Returns the list of regression messages (empty = pass)."""
    base_rows = {row_key(r): r for r in baseline.get("rows", [])}
    cand_rows = {row_key(r): r for r in candidate.get("rows", [])}
    regressions = []

    for key, base in sorted(base_rows.items()):
        label = fmt_key(key)
        cand = cand_rows.get(key)
        if cand is None:
            regressions.append(f"{label}: row missing from candidate")
            continue
        if not cand.get("ok", False):
            regressions.append(f"{label}: candidate run failed")
            continue

        def gate(name, base_value, cand_value):
            if not base_value:
                return  # nothing to regress against
            change_pct = 100.0 * (cand_value - base_value) / base_value
            marker = ""
            if change_pct > threshold_pct:
                marker = "  << REGRESSION"
                regressions.append(
                    f"{label}: {name} {base_value:g} -> {cand_value:g} "
                    f"(+{change_pct:.1f}% > {threshold_pct:g}%)")
            print(f"  {label:<70} {name:>16} {base_value:>12g} "
                  f"{cand_value:>12g} {change_pct:>+7.1f}%{marker}")

        gate("modeled_seconds", base.get("modeled_seconds", 0.0),
             cand.get("modeled_seconds", 0.0))
        for io_key in GATED_IO_KEYS:
            gate(f"io.{io_key}", base.get("io", {}).get(io_key, 0),
                 cand.get("io", {}).get(io_key, 0))
        base_wall = base.get("wall_seconds", 0.0)
        cand_wall = cand.get("wall_seconds", 0.0)
        if base_wall:
            print(f"  {label:<70} {'wall_seconds':>16} {base_wall:>12.3f} "
                  f"{cand_wall:>12.3f}   (not gated)")

    extra = set(cand_rows) - set(base_rows)
    for key in sorted(extra):
        print(f"  {fmt_key(key)}: new row (not in baseline, not gated)")
    return regressions


def self_test(baseline, threshold_pct):
    """The detector must fire on a synthesized super-threshold regression
    and stay quiet on an identical copy."""
    clean = json.loads(json.dumps(baseline))
    if diff(baseline, clean, threshold_pct):
        print("FAIL: self-test: identical candidate reported regressions",
              file=sys.stderr)
        return 1

    regressed = json.loads(json.dumps(baseline))
    factor = 1.0 + 2.0 * threshold_pct / 100.0
    for row in regressed.get("rows", []):
        row["modeled_seconds"] = row.get("modeled_seconds", 0.0) * factor
        io = row.get("io", {})
        for key in GATED_IO_KEYS:
            io[key] = int(io.get(key, 0) * factor)
    if not diff(baseline, regressed, threshold_pct):
        print("FAIL: self-test: synthesized regression went undetected",
              file=sys.stderr)
        return 1
    print("bench diff self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="baseline nexsort-bench-v1 file")
    parser.add_argument("candidate", nargs="?", default=None,
                        help="candidate nexsort-bench-v1 file")
    parser.add_argument("--run", default=None, metavar="BENCH_BIN",
                        help="run this bench binary with --json into a "
                             "temp file and diff that as the candidate")
    parser.add_argument("--threshold-pct", type=float, default=10.0,
                        help="regression threshold in percent (default 10)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the detector on synthesized data")
    args = parser.parse_args()

    baseline = load(args.baseline)
    if args.self_test:
        return self_test(baseline, args.threshold_pct)

    if (args.candidate is None) == (args.run is None):
        parser.error("need exactly one of CANDIDATE or --run")

    if args.run:
        with tempfile.TemporaryDirectory() as tmp:
            candidate_path = Path(tmp) / "candidate.json"
            command = [args.run, "--json", str(candidate_path)]
            result = subprocess.run(command, capture_output=True, text=True)
            if result.returncode != 0:
                print(f"FAIL: {' '.join(command)} exited "
                      f"{result.returncode}", file=sys.stderr)
                sys.stderr.write(result.stderr)
                return 1
            candidate = load(candidate_path)
    else:
        candidate = load(args.candidate)

    regressions = diff(baseline, candidate, args.threshold_pct)
    if regressions:
        for message in regressions:
            print(f"FAIL: {message}", file=sys.stderr)
        return 1
    print(f"bench diff OK ({len(baseline.get('rows', []))} rows, "
          f"threshold {args.threshold_pct:g}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
