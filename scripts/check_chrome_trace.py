#!/usr/bin/env python3
"""Validate xmlsort's Chrome Trace Event export.

Generates a document large enough that a parallel (--threads 2) cached run
spills runs and engages the worker threads, sorts it with --chrome-trace +
--timeline-out, and asserts the trace is well-formed Trace Event JSON:

  - the file is one JSON array that json.load accepts;
  - every event has a known phase; every "B" has a matching "E" on the
    same (pid, tid) lane (the exporter emits complete "X" events, so this
    doubles as a guard against a future half-open regression);
  - timestamps are non-negative, durations non-negative, and per-lane
    timestamps non-decreasing;
  - the session process has >= 2 thread lanes carrying spans (foreground
    plus at least one worker), each named by "M" metadata;
  - there is >= 1 counter track (ph "C") with numeric series.

The companion timeline stream is validated with the same record-by-record
checker the telemetry schema gate uses. Wired into ctest as
`chrome_trace_check`.

Usage:
  check_chrome_trace.py --xmlsort BIN [--keep DIR]
"""

import argparse
import json
import random
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import check_telemetry_schema as schema

check = schema.check
FAILURES = schema.FAILURES

KNOWN_PHASES = {"M", "X", "C", "i", "B", "E"}


def make_input(path, elements=4000):
    """A flat document of shuffled numeric ids: big enough (hundreds of KB)
    that small blocks + a small budget force external sorting, which is
    what sends spill work to the worker threads."""
    ids = list(range(elements))
    random.seed(7)
    random.shuffle(ids)
    with path.open("w") as out:
        out.write("<employees>\n")
        for n in ids:
            out.write(f'  <employee id="{n}"><name>n{n:06d}</name>'
                      f"<dept>d{n % 17}</dept></employee>\n")
        out.write("</employees>\n")


def check_chrome_trace(path):
    try:
        events = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        check(False, f"chrome trace: cannot parse {path}: {err}")
        return
    check(isinstance(events, list), "chrome trace: top level is not a list")
    if not isinstance(events, list):
        return
    check(len(events) > 0, "chrome trace: no events")

    lane_last_ts = {}
    open_b = {}  # (pid, tid) -> stack of "B" names
    process_names = {}  # pid -> name
    thread_names = {}  # (pid, tid) -> name
    span_lanes = {}  # pid -> set of tids that carried "X"/"B" events
    counter_pids = set()

    for i, event in enumerate(events):
        where = f"chrome trace event {i}"
        check(isinstance(event, dict), f"{where}: not an object")
        if not isinstance(event, dict):
            continue
        ph = event.get("ph")
        check(ph in KNOWN_PHASES, f"{where}: unknown phase {ph!r}")
        for key in ("pid", "tid"):
            check(isinstance(event.get(key), int), f"{where}: missing {key}")
        pid, tid = event.get("pid"), event.get("tid")
        name = event.get("name")

        if ph == "M":
            args = event.get("args", {})
            if name == "process_name":
                process_names[pid] = args.get("name")
            elif name == "thread_name":
                thread_names[(pid, tid)] = args.get("name")
            continue

        ts = event.get("ts")
        check(isinstance(ts, (int, float)) and ts >= 0,
              f"{where}: ts is not a non-negative number")
        if isinstance(ts, (int, float)):
            lane = (pid, tid)
            check(ts >= lane_last_ts.get(lane, 0.0),
                  f"{where}: ts went backwards on lane pid={pid} tid={tid}")
            lane_last_ts[lane] = ts

        if ph == "X":
            check(isinstance(event.get("dur"), (int, float))
                  and event.get("dur", -1) >= 0,
                  f"{where}: complete event with bad dur")
            span_lanes.setdefault(pid, set()).add(tid)
        elif ph == "B":
            open_b.setdefault((pid, tid), []).append(name)
            span_lanes.setdefault(pid, set()).add(tid)
        elif ph == "E":
            stack = open_b.get((pid, tid), [])
            check(bool(stack),
                  f"{where}: 'E' with no open 'B' on pid={pid} tid={tid}")
            if stack:
                stack.pop()
        elif ph == "C":
            args = event.get("args", {})
            check(isinstance(args, dict) and args,
                  f"{where}: counter event without series values")
            for series, value in (args or {}).items():
                check(isinstance(value, (int, float)),
                      f"{where}: counter '{series}' is not numeric")
            counter_pids.add(pid)

    for (pid, tid), stack in open_b.items():
        check(not stack,
              f"chrome trace: {len(stack)} unclosed 'B' event(s) on "
              f"pid={pid} tid={tid}: {stack}")

    # Lanes: at least one process must carry spans on >= 2 threads
    # (foreground + a worker), every span lane must be named, and at
    # least one counter track must exist.
    multi_lane = {pid: tids for pid, tids in span_lanes.items()
                  if len(tids) >= 2}
    check(bool(multi_lane),
          f"chrome trace: no process has >= 2 thread lanes with spans "
          f"(got {({p: sorted(t) for p, t in span_lanes.items()})})")
    for pid, tids in span_lanes.items():
        check(pid in process_names, f"chrome trace: pid {pid} unnamed")
        for tid in tids:
            check((pid, tid) in thread_names,
                  f"chrome trace: lane pid={pid} tid={tid} unnamed")
    check(bool(counter_pids), "chrome trace: no counter track (ph 'C')")
    counter_lanes = counter_pids - set(span_lanes)
    check(bool(counter_lanes),
          "chrome trace: counter events share a pid with span lanes "
          "(each counter track should be its own process)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--xmlsort", required=True,
                        help="path to the xmlsort binary")
    parser.add_argument("--keep", default=None,
                        help="write artifacts into this directory and keep "
                             "them (default: a temp dir)")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(args.keep) if args.keep else Path(tmp)
        workdir.mkdir(parents=True, exist_ok=True)

        input_path = workdir / "input.xml"
        make_input(input_path)
        output_path = workdir / "sorted.xml"
        trace_path = workdir / "chrome-trace.json"
        timeline_path = workdir / "timeline.jsonl"
        sample_interval_ms = 2

        # Small blocks plus a pinned 8-block sort allowance force the big
        # flat element list through external merge sort; --threads 2 runs
        # spill sorting on the workers, which is what puts spans on
        # worker lanes.
        command = [
            args.xmlsort, "--numeric",
            "--block-kb", "4", "--memory-mb", "1",
            "--sort-memory-blocks", "8",
            "--cache-blocks", "32", "--threads", "2",
            "--sample-interval-ms", str(sample_interval_ms),
            "--chrome-trace", str(trace_path),
            "--timeline-out", str(timeline_path),
            "--check",
            str(input_path), str(output_path),
        ]
        result = subprocess.run(command, capture_output=True, text=True)
        if result.returncode != 0:
            print(f"FAIL: xmlsort exited {result.returncode}",
                  file=sys.stderr)
            sys.stderr.write(result.stderr)
            return 1

        check_chrome_trace(trace_path)
        schema.check_timeline(timeline_path, sample_interval_ms)

    if FAILURES:
        for failure in FAILURES:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("chrome trace OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
