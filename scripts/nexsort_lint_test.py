#!/usr/bin/env python3
"""Fixture tests for nexsort_lint.py: every rule must fire on its bad file.

Each file under tests/lint_fixtures/ is a minimal violation of exactly one
lint rule. For each (fixture, rule) pair this driver runs the linter
restricted to that rule — with --treat-as mapping the fixture into the
tree the rule is scoped to — and asserts exit code 1 with the rule id in
the output. A clean fixture must pass with *all* rules active, guarding
against false positives. Registered in ctest as `nexsort_lint_fixtures`.
"""

import os
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(ROOT, "scripts", "nexsort_lint.py")
FIXTURES = os.path.join(ROOT, "tests", "lint_fixtures")

# (fixture file, rule that must fire, --treat-as tree or None).
# memory_budget.cc is deliberately named after a real src file: the
# include-first rule only applies when the paired header exists on disk.
CASES = [
    ("nodiscard_status.h", "nodiscard-status", "src"),
    ("unchecked_status.cc", "unchecked-status", "src"),
    ("void_discard.cc", "void-discard-comment", "src"),
    ("io_category.cc", "io-category", "src"),
    ("no_stdio.cc", "no-stdio", "src"),
    ("no_raw_random.cc", "no-raw-random", "src"),
    ("steady_clock.cc", "steady-clock", "src"),
    ("memory_budget.cc", "include-first", "src/extmem"),
    ("direct_include.cc", "direct-include", "src"),
    ("env_construction.cc", "env-construction", "src"),
    ("raw_mutex.cc", "raw-mutex", "src"),
    ("guarded_by.cc", "guarded-by", "src"),
    ("py_hygiene_bad.py", "py-hygiene", None),
]


def run_lint(extra):
    cmd = [sys.executable, LINT, "--root", ROOT] + extra
    return subprocess.run(cmd, capture_output=True, text=True)


def main():
    failures = []
    for fixture, rule, treat_as in CASES:
        path = os.path.join(FIXTURES, fixture)
        args = ["--rule", rule]
        if treat_as:
            args += ["--treat-as", treat_as]
        proc = run_lint(args + [path])
        if proc.returncode != 1:
            failures.append(
                f"{fixture}: rule {rule} did not fire "
                f"(exit {proc.returncode})\n{proc.stdout}{proc.stderr}"
            )
        elif rule not in proc.stdout:
            failures.append(
                f"{fixture}: exit 1 but no {rule} finding in output:\n"
                f"{proc.stdout}"
            )
        else:
            print(f"ok: {rule} fires on {fixture}")

    clean = os.path.join(FIXTURES, "clean.cc")
    proc = run_lint(["--treat-as", "src", clean])
    if proc.returncode != 0:
        failures.append(
            f"clean.cc: expected no findings, got exit {proc.returncode}:\n"
            f"{proc.stdout}{proc.stderr}"
        )
    else:
        print("ok: clean.cc passes every rule")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"nexsort_lint_test: {len(CASES) + 1} case(s) passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
