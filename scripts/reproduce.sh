#!/usr/bin/env bash
# Regenerate every table and figure of the paper reproduction (see
# EXPERIMENTS.md). Builds if needed, runs the full test suite, then every
# benchmark binary. Outputs land in bench_results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p bench_results
for bench in build/bench/bench_*; do
  name=$(basename "$bench")
  echo "== $name =="
  "$bench" | tee "bench_results/$name.txt"
done
echo "done; outputs in bench_results/"
