#!/usr/bin/env python3
"""nexsort_lint: project-specific correctness linter for the nexsort tree.

Rules (see docs/STATIC_ANALYSIS.md for rationale and examples):

  nodiscard-status      Every function in a src/ header returning Status or
                        StatusOr<T> by value carries [[nodiscard]].
  unchecked-status      No call site silently discards a Status/StatusOr
                        (no bare `Foo();` statement when Foo returns one).
  void-discard-comment  An intentional `(void)Foo();` discard of a Status
                        must carry an explanatory comment on the same line.
  io-category           Device-level Read/Write calls in src/ pass an
                        explicit IoCategory argument (scope-based category
                        attribution races under concurrency).
  no-stdio              No std::cout / printf / abort in library code
                        (src/). Errors travel as Status; stderr logging and
                        snprintf-to-buffer are allowed.
  no-raw-random         No rand()/srand()/time()/std::random_device outside
                        src/util/random.* — all randomness is seeded and
                        deterministic.
  include-first         Every src/ .cc includes its own header first.
  direct-include        Files using a core project type include its
                        canonical header directly (no transitive reliance);
                        forward declarations and the paired-header
                        allowance for .cc files are accepted.
  env-construction      MemoryBudget / BufferPool / WorkerPool are
                        constructed only inside src/env/ (and their own
                        defining files); everything else obtains them from
                        a SortEnv. Tests are outside the linted tree.
  raw-mutex             No raw std::mutex / std::lock_guard /
                        std::unique_lock / std::condition_variable /
                        std::shared_mutex (etc.) in src/ outside
                        src/util/thread_annotations.{h,cc}: all locking
                        goes through the annotated, ranked Mutex /
                        MutexLock / CondVar / SharedMutex wrappers so the
                        Clang capability analysis and the debug lock-order
                        checker both see every acquisition.
  guarded-by            Every Mutex / SharedMutex member must have at
                        least one NEXSORT_GUARDED_BY(that mutex) field in
                        the same file, or a `// lint-ok: guarded-by`
                        rationale on or directly above the declaration
                        (a mutex guarding nothing is either dead or its
                        guarded data is unannotated).
  py-hygiene            scripts/*.py compile, start with a python3 shebang,
                        carry a module docstring, and keep lines <= 100.

A finding on one line can be suppressed with `// lint-ok: <rule-id>`
(attach it to the first line of a multi-line statement). Exit status is 1
when findings are printed, 0 on a clean tree.

Usage:
  nexsort_lint.py [--root DIR]               # lint the whole tree
  nexsort_lint.py [--rule ID] [--treat-as src] FILE...   # fixture mode
"""

import argparse
import ast
import os
import py_compile
import re
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint_common  # noqa: E402  (shared path/message normalization)

CXX_EXTS = (".h", ".cc", ".cpp")

# Canonical header of each core project type/macro the direct-include rule
# tracks. Types not listed here are not checked.
CANONICAL_HEADER = {
    "Status": "util/status.h",
    "StatusOr": "util/status.h",
    "RETURN_IF_ERROR": "util/status.h",
    "ASSIGN_OR_RETURN": "util/status.h",
    "NEXSORT_DCHECK": "util/dcheck.h",
    "NEXSORT_DCHECK_OK": "util/dcheck.h",
    "BlockDevice": "extmem/block_device.h",
    "IoCategory": "extmem/block_device.h",
    "IoCategoryScope": "extmem/block_device.h",
    "IoStats": "extmem/block_device.h",
    "DiskModel": "extmem/block_device.h",
    "MemoryBudget": "extmem/memory_budget.h",
    "BudgetReservation": "extmem/memory_budget.h",
    "ExtStack": "extmem/ext_stack.h",
    "ExtByteStack": "extmem/ext_stack.h",
    "RunStore": "extmem/run_store.h",
    "RunHandle": "extmem/run_store.h",
    "RunWriter": "extmem/run_store.h",
    "RunReader": "extmem/run_store.h",
    "ByteSource": "extmem/stream.h",
    "ByteSink": "extmem/stream.h",
    "ByteRange": "extmem/stream.h",
    "BlockStreamReader": "extmem/stream.h",
    "BlockStreamWriter": "extmem/stream.h",
    "BufferPool": "cache/buffer_pool.h",
    "CachedBlockDevice": "cache/buffer_pool.h",
    "CacheOptions": "cache/buffer_pool.h",
    "CacheStats": "cache/buffer_pool.h",
    "LoserTree": "sort/loser_tree.h",
    "MergeSource": "sort/loser_tree.h",
    "Tracer": "obs/tracer.h",
    "JsonWriter": "obs/json_writer.h",
    "MetricsRegistry": "obs/metrics.h",
    "WorkerPool": "parallel/worker_pool.h",
    "AsyncSpiller": "parallel/async_spiller.h",
    "BoundedQueue": "parallel/bounded_queue.h",
    "RunPrefetcher": "parallel/run_prefetcher.h",
    "SortEnv": "env/sort_env.h",
    "SortEnvOptions": "env/sort_env.h",
    "SortEnvBuilder": "env/sort_env.h",
    "DeviceLayer": "env/sort_env.h",
    "ThrottleModel": "extmem/device_wrappers.h",
    "CancellationToken": "util/cancellation.h",
    "ScratchNamespace": "extmem/run_store.h",
    "JsonValue": "service/wire.h",
    "FairScheduler": "service/scheduler.h",
    "AdmissionController": "service/scheduler.h",
    "TenantQuota": "service/scheduler.h",
    "SortService": "service/service.h",
    "ServiceOptions": "service/service.h",
    "JobRequest": "service/service.h",
    "SocketServer": "service/server.h",
    "ServiceClient": "service/client.h",
    "RunFormationPolicy": "sort/run_formation.h",
    "RunFormationStats": "sort/run_formation.h",
    "MergePolicy": "sort/merge_plan.h",
    "MergePlan": "sort/merge_plan.h",
    "MergePlanner": "sort/merge_plan.h",
    "MergeStep": "sort/merge_plan.h",
    "MergePlanStats": "sort/merge_plan.h",
    "PlacementHint": "extmem/run_store.h",
    "ReplacementSelectionFormer": "sort/replacement_selection.h",
    "ReplacementHeapSlot": "sort/replacement_selection.h",
    "SortedStream": "sort/sorted_stream.h",
    "Mutex": "util/thread_annotations.h",
    "MutexLock": "util/thread_annotations.h",
    "CondVar": "util/thread_annotations.h",
    "SharedMutex": "util/thread_annotations.h",
    "WriterMutexLock": "util/thread_annotations.h",
    "ReaderMutexLock": "util/thread_annotations.h",
    "NEXSORT_GUARDED_BY": "util/thread_annotations.h",
    "NEXSORT_REQUIRES": "util/thread_annotations.h",
    "NEXSORT_EXCLUDES": "util/thread_annotations.h",
}

# Receiver identifiers that denote a BlockDevice for the io-category rule.
DEVICE_RECEIVER = re.compile(r"(?:device|dev|disk)\w*$|^base_?$", re.IGNORECASE)

SPECIFIERS = ("virtual", "static", "inline", "constexpr", "explicit", "friend")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blank out comments and string/char literal contents, preserving
    newlines and overall offsets so line numbers survive."""
    out = list(text)
    i, n = 0, len(text)

    def blank(a, b):
        for j in range(a, b):
            if out[j] != "\n":
                out[j] = " "

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            blank(i, j)
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            blank(i, j)
            i = j
        elif c == "R" and text[i : i + 2] == 'R"':
            m = re.match(r'R"([^(\s]*)\(', text[i:])
            if not m:
                i += 1
                continue
            close = ")" + m.group(1) + '"'
            j = text.find(close, i + m.end())
            j = n if j == -1 else j + len(close)
            blank(i + m.end(), j)
            i = j
        elif c == '"' or c == "'":
            j = i + 1
            while j < n and text[j] != c:
                if text[j] == "\\":
                    j += 1
                j += 1
            j = min(j + 1, n)
            blank(i + 1, j - 1)
            i = j
        else:
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def suppressed(raw_lines, lineno, rule):
    line = raw_lines[lineno - 1] if lineno - 1 < len(raw_lines) else ""
    m = re.search(r"//\s*lint-ok:\s*([\w,\s-]+)", line)
    return bool(m) and rule in [r.strip() for r in m.group(1).split(",")]


# ---------------------------------------------------------------------------
# Status-returning function collection (shared by nodiscard-status and
# unchecked-status).

STATUS_DECL = re.compile(
    r"(?:Status|StatusOr<[^;{}()]*>)\s+(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\("
)

# Declarations with one of these return types make a name ambiguous: the
# linter matches call sites by name only, so a name with both a Status and
# a non-Status declaration (e.g. SaxParser's private `void Advance(size_t)`
# vs MergeSource::Advance) is excluded rather than risk false positives.
NONSTATUS_DECL = re.compile(
    r"\b(?:void|bool|int|unsigned|char|float|double|size_t|ssize_t"
    r"|u?int(?:8|16|32|64)_t|auto)\s+(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\("
)


def collect_status_functions(files):
    """Names of functions declared to return Status/StatusOr by value,
    minus names that also have a non-Status-returning declaration."""
    names = set()
    ambiguous = set()
    for path in files:
        try:
            text = strip_comments_and_strings(read(path))
        except OSError:
            continue
        for m in STATUS_DECL.finditer(text):
            prev = text[: m.start()].rstrip()
            # Skip when Status is qualified (::nexsort::Status locals in
            # macros won't match anyway) or preceded by identifier chars
            # (e.g. "MyStatus").
            if prev.endswith(("::", "<", ",", "(")):
                continue
            names.add(m.group(1))
        for m in NONSTATUS_DECL.finditer(text):
            ambiguous.add(m.group(1))
    return names - ambiguous


def read(path):
    with open(path, "r", encoding="utf-8") as f:
        return f.read()


# ---------------------------------------------------------------------------
# Rules. Each takes (relpath, raw, stripped, raw_lines, ctx) and yields
# Finding objects. `relpath` is repo-relative with forward slashes.


def rule_nodiscard_status(relpath, raw, stripped, raw_lines, ctx):
    if not relpath.endswith(".h"):
        return
    for m in STATUS_DECL.finditer(stripped):
        prev = stripped[: m.start()].rstrip()
        if prev.endswith(("::", "<", ",", "(", "&", "*")):
            continue
        # Walk back over declaration specifiers to find where attributes
        # would sit.
        changed = True
        while changed:
            changed = False
            for kw in SPECIFIERS:
                if prev.endswith(kw):
                    prev = prev[: -len(kw)].rstrip()
                    changed = True
        lineno = line_of(stripped, m.start())
        if prev.endswith("[[nodiscard]]"):
            continue
        if suppressed(raw_lines, lineno, "nodiscard-status"):
            continue
        yield Finding(
            relpath,
            lineno,
            "nodiscard-status",
            f"'{m.group(1)}' returns Status/StatusOr but is not "
            "[[nodiscard]]",
        )


CALL_BOUNDARY = ";{}"


def _statement_prefix_ok(stripped, call_start):
    """True when the text between the previous statement boundary and the
    call consists only of receiver qualification (the call result is the
    whole statement => discarded)."""
    i = call_start - 1
    while i >= 0 and stripped[i] not in CALL_BOUNDARY + ")":
        i -= 1
    if i >= 0 and stripped[i] == ")":
        # `(void)Foo();` is the sanctioned explicit discard (the
        # void-discard-comment rule polices it); any other cast or
        # control-flow close-paren still starts a fresh statement.
        if re.search(r"\(\s*void\s*\)$", stripped[: i + 1]):
            return False
    prefix = stripped[i + 1 : call_start].strip()
    for kw in ("else", "do"):
        if prefix.startswith(kw + " ") or prefix == kw:
            prefix = prefix[len(kw) :].strip()
    return re.fullmatch(r"(?:[A-Za-z_]\w*\s*(?:\.|->|::)\s*)*", prefix) is not None


def _matching_paren(stripped, open_paren):
    depth = 0
    for j in range(open_paren, len(stripped)):
        if stripped[j] == "(":
            depth += 1
        elif stripped[j] == ")":
            depth -= 1
            if depth == 0:
                return j
    return -1


def rule_unchecked_status(relpath, raw, stripped, raw_lines, ctx):
    names = ctx["status_functions"]
    for m in re.finditer(r"\b([A-Za-z_]\w*)\s*\(", stripped):
        name = m.group(1)
        if name not in names:
            continue
        call_start = m.start()
        # The statement-prefix check accepts only receiver qualification
        # before the call, which also excludes declarations (`Status Foo(`
        # has the bare type token in the prefix and fails the check).
        if not _statement_prefix_ok(stripped, call_start):
            continue
        close = _matching_paren(stripped, m.end() - 1)
        if close == -1:
            continue
        rest = stripped[close + 1 :].lstrip()
        if not rest.startswith(";"):
            continue  # chained (.ok(), .status()), assigned, etc.
        lineno = line_of(stripped, call_start)
        if suppressed(raw_lines, lineno, "unchecked-status"):
            continue
        yield Finding(
            relpath,
            lineno,
            "unchecked-status",
            f"result of '{name}' (returns Status/StatusOr) is discarded; "
            "check it, propagate with RETURN_IF_ERROR, or use an explicit "
            "(void) cast with a comment",
        )


def rule_void_discard_comment(relpath, raw, stripped, raw_lines, ctx):
    names = ctx["status_functions"]
    pattern = re.compile(
        r"\(\s*void\s*\)\s*(?:[A-Za-z_]\w*\s*(?:\.|->|::)\s*)*([A-Za-z_]\w*)\s*\("
    )
    for m in pattern.finditer(stripped):
        if m.group(1) not in names:
            continue
        lineno = line_of(stripped, m.start())
        raw_line = raw_lines[lineno - 1] if lineno - 1 < len(raw_lines) else ""
        prev_line = raw_lines[lineno - 2].strip() if lineno >= 2 else ""
        # The explanation may sit on the same line or the line above.
        if "//" in raw_line or prev_line.startswith("//"):
            continue
        if suppressed(raw_lines, lineno, "void-discard-comment"):
            continue
        yield Finding(
            relpath,
            lineno,
            "void-discard-comment",
            f"intentional (void) discard of '{m.group(1)}' needs a "
            "same-line comment explaining why the Status may be ignored",
        )


def rule_io_category(relpath, raw, stripped, raw_lines, ctx):
    pattern = re.compile(r"([A-Za-z_]\w*)\s*(?:->|\.)\s*(Read|Write)\s*\(")
    for m in pattern.finditer(stripped):
        if not DEVICE_RECEIVER.search(m.group(1)):
            continue
        close = _matching_paren(stripped, m.end() - 1)
        if close == -1:
            continue
        args = stripped[m.end() : close]
        if "IoCategory::" in args or re.search(r"\b(?:\w*category\w*|cat)\b", args):
            continue
        lineno = line_of(stripped, m.start())
        if suppressed(raw_lines, lineno, "io-category"):
            continue
        yield Finding(
            relpath,
            lineno,
            "io-category",
            f"BlockDevice {m.group(2)} on '{m.group(1)}' without an "
            "explicit IoCategory argument (scope-based attribution races "
            "under concurrency)",
        )


STDIO_PATTERNS = [
    (re.compile(r"std::cout\b"), "std::cout"),
    (re.compile(r"(?<![A-Za-z_])printf\s*\("), "printf"),
    (re.compile(r"(?<![A-Za-z_])abort\s*\("), "abort"),
    (re.compile(r"(?<![A-Za-z_:.>])exit\s*\("), "exit"),
]


def rule_no_stdio(relpath, raw, stripped, raw_lines, ctx):
    for pattern, what in STDIO_PATTERNS:
        for m in pattern.finditer(stripped):
            lineno = line_of(stripped, m.start())
            if suppressed(raw_lines, lineno, "no-stdio"):
                continue
            yield Finding(
                relpath,
                lineno,
                "no-stdio",
                f"'{what}' in library code; report errors via Status "
                "(stderr logging and snprintf-to-buffer are allowed)",
            )


RANDOM_PATTERNS = [
    (re.compile(r"(?<![A-Za-z_])s?rand\s*\("), "rand/srand"),
    (re.compile(r"std::random_device\b"), "std::random_device"),
    (re.compile(r"(?<![A-Za-z_])time\s*\("), "time()"),
]


def rule_no_raw_random(relpath, raw, stripped, raw_lines, ctx):
    if re.match(r"src/util/random\.(h|cc)$", relpath):
        return
    for pattern, what in RANDOM_PATTERNS:
        for m in pattern.finditer(stripped):
            lineno = line_of(stripped, m.start())
            if suppressed(raw_lines, lineno, "no-raw-random"):
                continue
            yield Finding(
                relpath,
                lineno,
                "no-raw-random",
                f"'{what}' outside src/util/random.*; all randomness "
                "must be seeded and deterministic",
            )


STEADY_CLOCK_PATTERN = re.compile(r"\bsystem_clock\b")


def rule_steady_clock(relpath, raw, stripped, raw_lines, ctx):
    # Durations and timestamps in measurement paths must come from the
    # monotonic clock: system_clock jumps under NTP/DST and would corrupt
    # span durations, sampler timelines, and modeled-vs-wall comparisons.
    for m in STEADY_CLOCK_PATTERN.finditer(stripped):
        lineno = line_of(stripped, m.start())
        if suppressed(raw_lines, lineno, "steady-clock"):
            continue
        yield Finding(
            relpath,
            lineno,
            "steady-clock",
            "'system_clock' in a measurement path; use "
            "std::chrono::steady_clock (monotonic) so durations and "
            "timelines survive wall-clock jumps",
        )


def rule_include_first(relpath, raw, stripped, raw_lines, ctx):
    if not relpath.endswith((".cc", ".cpp")):
        return
    stem = re.sub(r"\.(cc|cpp)$", "", relpath)
    own = stem + ".h"
    if not os.path.exists(os.path.join(ctx["root"], own)):
        return
    expected = own[len("src/") :] if own.startswith("src/") else own
    includes = re.findall(r'^\s*#\s*include\s+["<]([^">]+)[">]', raw, re.M)
    if not includes:
        return
    if includes[0] != expected:
        lineno = next(
            (
                idx + 1
                for idx, line in enumerate(raw_lines)
                if re.match(r"\s*#\s*include", line)
            ),
            1,
        )
        if suppressed(raw_lines, lineno, "include-first"):
            return
        yield Finding(
            relpath,
            lineno,
            "include-first",
            f'first include must be the paired header "{expected}" '
            f'(found "{includes[0]}")',
        )


def rule_direct_include(relpath, raw, stripped, raw_lines, ctx):
    includes = set(re.findall(r'^\s*#\s*include\s+"([^"]+)"', raw, re.M))
    # Plain (`class X;`) and elaborated (`class X* p`) forward declarations
    # both satisfy the rule: the file names its dependency explicitly.
    forward_decls = set(
        re.findall(r"\b(?:class|struct)\s+([A-Za-z_]\w*)\s*[;*&]", stripped)
    )
    paired_includes = set()
    if relpath.endswith((".cc", ".cpp")):
        own = re.sub(r"\.(cc|cpp)$", ".h", relpath)
        own_path = os.path.join(ctx["root"], own)
        if os.path.exists(own_path):
            paired_includes = set(
                re.findall(r'^\s*#\s*include\s+"([^"]+)"', read(own_path), re.M)
            )
    for type_name, header in CANONICAL_HEADER.items():
        if relpath == "src/" + header or relpath == "src/" + header[:-2] + ".cc":
            continue
        if header in includes or header in paired_includes:
            continue
        if type_name in forward_decls:
            continue
        m = re.search(r"\b" + re.escape(type_name) + r"\b", stripped)
        if not m:
            continue
        lineno = line_of(stripped, m.start())
        if suppressed(raw_lines, lineno, "direct-include"):
            continue
        yield Finding(
            relpath,
            lineno,
            "direct-include",
            f"uses '{type_name}' without directly including "
            f'"{header}" (transitive includes are not a contract)',
        )


# The three shared-resource types only SortEnv may build. Each maps to the
# file stem whose header/impl pair is allowed to construct it (its own
# definition); src/env/** is allowed to construct all of them.
ENV_OWNED_TYPES = {
    "MemoryBudget": "src/extmem/memory_budget",
    "BufferPool": "src/cache/buffer_pool",
    "WorkerPool": "src/parallel/worker_pool",
}

ENV_CONSTRUCTION = re.compile(
    r"(?:\bnew\s+(MemoryBudget|BufferPool|WorkerPool)\b"
    r"|\bmake_(?:unique|shared)<\s*(MemoryBudget|BufferPool|WorkerPool)\s*>"
    r"|\b(MemoryBudget|BufferPool|WorkerPool)\s+[A-Za-z_]\w*\s*[({])"
)


def rule_env_construction(relpath, raw, stripped, raw_lines, ctx):
    if relpath.startswith("src/env/"):
        return
    for m in ENV_CONSTRUCTION.finditer(stripped):
        type_name = next(g for g in m.groups() if g)
        owner = ENV_OWNED_TYPES[type_name]
        if relpath in (owner + ".h", owner + ".cc"):
            continue
        lineno = line_of(stripped, m.start())
        if suppressed(raw_lines, lineno, "env-construction"):
            continue
        yield Finding(
            relpath,
            lineno,
            "env-construction",
            f"direct construction of '{type_name}' outside src/env/; "
            "resources are owned by the execution environment — build a "
            "SortEnv and use its accessors (docs/ARCHITECTURE.md)",
        )


# The one file allowed to touch the raw primitives: it defines the
# wrappers everything else must use.
RAW_MUTEX_ALLOWED = (
    "src/util/thread_annotations.h",
    "src/util/thread_annotations.cc",
)

RAW_MUTEX_PATTERN = re.compile(
    r"std::(?:(?:recursive_|timed_|recursive_timed_)?mutex"
    r"|shared_(?:timed_)?mutex"
    r"|condition_variable(?:_any)?"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)


def rule_raw_mutex(relpath, raw, stripped, raw_lines, ctx):
    if relpath in RAW_MUTEX_ALLOWED:
        return
    for m in RAW_MUTEX_PATTERN.finditer(stripped):
        lineno = line_of(stripped, m.start())
        if suppressed(raw_lines, lineno, "raw-mutex"):
            continue
        yield Finding(
            relpath,
            lineno,
            "raw-mutex",
            f"'{m.group(0)}' outside util/thread_annotations.*; use the "
            "annotated Mutex / MutexLock / CondVar / SharedMutex wrappers "
            "so the capability analysis and the lock-order checker see "
            "the acquisition",
        )


# A Mutex/SharedMutex member: brace-initialized (the wrappers have no
# default constructor — every instance carries a name and a rank).
# `MutexLock lock(&mu)` uses parens and never matches.
MUTEX_MEMBER = re.compile(r"\b(?:Mutex|SharedMutex)\s+([A-Za-z_]\w*)\s*\{")


def rule_guarded_by(relpath, raw, stripped, raw_lines, ctx):
    if relpath in RAW_MUTEX_ALLOWED:
        return
    for m in MUTEX_MEMBER.finditer(stripped):
        name = m.group(1)
        lineno = line_of(stripped, m.start())
        # The rationale comment conventionally sits on the declaration
        # line or at the end of the doc comment directly above it.
        if suppressed(raw_lines, lineno, "guarded-by") or (
            lineno >= 2 and suppressed(raw_lines, lineno - 1, "guarded-by")
        ):
            continue
        user = re.compile(
            r"NEXSORT_(?:PT_)?GUARDED_BY\(\s*" + re.escape(name) + r"\s*\)"
        )
        if user.search(stripped):
            continue
        yield Finding(
            relpath,
            lineno,
            "guarded-by",
            f"mutex '{name}' has no NEXSORT_GUARDED_BY({name}) field in "
            "this file; annotate what it guards or attach a "
            "`// lint-ok: guarded-by` rationale",
        )


def check_python_file(relpath, path):
    findings = []
    try:
        with tempfile.TemporaryDirectory() as tmp:
            py_compile.compile(path, cfile=os.path.join(tmp, "lint.pyc"), doraise=True)
    except py_compile.PyCompileError as err:
        findings.append(Finding(relpath, 1, "py-hygiene", f"does not compile: {err.msg}"))
        return findings
    text = read(path)
    lines = text.splitlines()
    if not lines or not lines[0].startswith("#!/usr/bin/env python3"):
        findings.append(
            Finding(relpath, 1, "py-hygiene", "missing '#!/usr/bin/env python3' shebang")
        )
    try:
        if ast.get_docstring(ast.parse(text)) is None:
            findings.append(Finding(relpath, 1, "py-hygiene", "missing module docstring"))
    except SyntaxError:
        pass  # unreachable: py_compile above would have failed
    for idx, line in enumerate(lines, start=1):
        if len(line) > 100:
            findings.append(
                Finding(relpath, idx, "py-hygiene", f"line longer than 100 chars ({len(line)})")
            )
        if "\t" in line:
            findings.append(Finding(relpath, idx, "py-hygiene", "tab character"))
    return findings


# Rule registry: id -> (function, scope predicate over repo-relative path).
def _in_src(relpath):
    return relpath.startswith("src/")


def _in_status_scope(relpath):
    return relpath.startswith(("src/", "bench/", "examples/"))


RULES = {
    "nodiscard-status": (rule_nodiscard_status, _in_src),
    "unchecked-status": (rule_unchecked_status, _in_status_scope),
    "void-discard-comment": (rule_void_discard_comment, _in_status_scope),
    "io-category": (rule_io_category, _in_src),
    "no-stdio": (rule_no_stdio, _in_src),
    "no-raw-random": (rule_no_raw_random, _in_src),
    "steady-clock": (rule_steady_clock, _in_src),
    "include-first": (rule_include_first, _in_src),
    "direct-include": (rule_direct_include, _in_src),
    "env-construction": (rule_env_construction, _in_status_scope),
    "raw-mutex": (rule_raw_mutex, _in_src),
    "guarded-by": (rule_guarded_by, _in_src),
}


def cxx_files_under(root, subdirs):
    out = []
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(CXX_EXTS):
                    out.append(
                        os.path.relpath(os.path.join(dirpath, name), root).replace(
                            os.sep, "/"
                        )
                    )
    return sorted(out)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument("--root", default=default_root)
    parser.add_argument("--rule", action="append", help="restrict to these rule ids")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument(
        "--treat-as",
        default=None,
        help="pretend explicit FILEs live under this tree (src/bench/examples) "
        "so scope-limited rules apply to them (fixture testing)",
    )
    parser.add_argument("files", nargs="*", help="explicit files (default: whole tree)")
    args = parser.parse_args()

    if args.list_rules:
        for rule in sorted(RULES) + ["py-hygiene"]:
            print(rule)
        return 0

    root = os.path.abspath(args.root)
    active = set(args.rule) if args.rule else set(RULES) | {"py-hygiene"}
    unknown = active - set(RULES) - {"py-hygiene"}
    if unknown:
        parser.error(f"unknown rule(s): {', '.join(sorted(unknown))}")

    if args.files:
        targets = [(os.path.abspath(f), None) for f in args.files]
    else:
        targets = [
            (os.path.join(root, rel), rel)
            for rel in cxx_files_under(root, ["src", "bench", "examples"])
        ]
        scripts_dir = os.path.join(root, "scripts")
        py_files = [
            os.path.join(scripts_dir, f)
            for f in sorted(os.listdir(scripts_dir))
            if f.endswith(".py")
        ]
        targets += [(p, lint_common.rel_to_root(root, p)) for p in py_files]

    # Status-returning names come from all src headers plus whatever is
    # being linted (so fixtures contribute their own declarations).
    name_sources = [
        os.path.join(root, rel) for rel in cxx_files_under(root, ["src"])
    ] + [p for p, _rel in targets if p.endswith(CXX_EXTS)]
    ctx = {"root": root, "status_functions": collect_status_functions(name_sources)}

    findings = []
    for path, rel in targets:
        if rel is None:
            rel = lint_common.rel_to_root(root, path)
            if args.treat_as and not rel.startswith(args.treat_as + "/"):
                rel = args.treat_as + "/" + os.path.basename(path)
        if path.endswith(".py"):
            if "py-hygiene" in active:
                findings += check_python_file(rel, path)
            continue
        raw = read(path)
        stripped = strip_comments_and_strings(raw)
        raw_lines = raw.splitlines()
        for rule_id, (fn, scope) in RULES.items():
            if rule_id not in active or not scope(rel):
                continue
            findings += list(fn(rel, raw, stripped, raw_lines, ctx))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for finding in findings:
        print(finding)
    if findings:
        print(f"nexsort_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
